#include "serve/server_core.h"

#include <utility>
#include <vector>

namespace wavekit {
namespace serve {

WireResult ToWireResult(const Status& status) {
  WireResult result;
  result.code = status.code();
  result.detail = status.message();
  return result;
}

ServerCore::ServerCore(Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : RealClock::Instance()) {
  if (options_.tenant_rate_limit_rps > 0 &&
      options_.tenant_rate_limit_burst <= 0) {
    options_.tenant_rate_limit_burst = options_.tenant_rate_limit_rps;
  }
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    reg->AddCounterCallback(
        "wavekit_server_requests_total", "Frames served by waved.", {},
        [this] { return requests_served(); }, this);
    reg->AddCounterCallback(
        "wavekit_server_errors_total", "Error replies sent by waved.", {},
        [this] { return errors_returned(); }, this);
    reg->AddCounterCallback(
        "wavekit_server_rate_limited_total",
        "Requests refused by per-tenant rate limiting.", {},
        [this] { return rate_limited(); }, this);
    reg->AddGaugeCallback(
        "wavekit_server_sessions", "Open client sessions.", {},
        [this] { return static_cast<double>(open_sessions()); }, this);
    reg->AddGaugeCallback(
        "wavekit_server_tenants", "Registered tenants.", {},
        [this] { return static_cast<double>(tenant_count()); }, this);
    reg->AddGaugeCallback(
        "wavekit_server_draining", "1 while the server is draining.", {},
        [this] { return draining() ? 1.0 : 0.0; }, this);
  }
}

ServerCore::~ServerCore() {
  if (options_.metrics_registry != nullptr) {
    options_.metrics_registry->Unregister(this);
  }
}

Status ServerCore::AddTenant(uint16_t tenant_id,
                             std::unique_ptr<WaveService> service) {
  if (service == nullptr) {
    return Status::InvalidArgument("tenant service must not be null");
  }
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto [it, inserted] = tenants_.emplace(tenant_id, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("tenant " + std::to_string(tenant_id) +
                                 " already registered");
  }
  it->second = std::make_unique<Tenant>();
  it->second->service = std::move(service);
  it->second->tokens = options_.tenant_rate_limit_burst;
  it->second->last_refill_us = clock_->NowMicros();
  return Status::OK();
}

WaveService* ServerCore::tenant(uint16_t tenant_id) const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second->service.get();
}

size_t ServerCore::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  return tenants_.size();
}

Result<ServerCore::Session*> ServerCore::OpenSession() {
  if (draining()) {
    return Status::FailedPrecondition("server is draining");
  }
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  if (options_.max_sessions > 0 && sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit " + std::to_string(options_.max_sessions) + " reached");
  }
  const uint64_t id = next_session_id_++;
  auto session = std::unique_ptr<Session>(new Session(id));
  Session* raw = session.get();
  sessions_.emplace(id, std::move(session));
  return raw;
}

void ServerCore::CloseSession(Session* session) {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.erase(session->id());
}

size_t ServerCore::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

Status ServerCore::Ingest(Session* session, const void* data, size_t size,
                          std::string* out) {
  const Status fed = session->reader_.Feed(data, size);
  Frame frame;
  while (session->reader_.Next(&frame)) {
    ServeFrame(session, frame, out);
  }
  // Check the reader again, not just Feed's return: the poisoned header may
  // have become visible only after Next() consumed the frames before it.
  const Status& broken = session->reader_.error();
  if (!broken.ok()) {
    AppendError(session->reader_.error_header(), FrameType::kErrorReply,
                StatusCode::kInvalidArgument, broken.message(), out);
    return broken;
  }
  return fed;
}

void ServerCore::ServeFrame(Session* session, const Frame& frame,
                            std::string* out) {
  session->requests_++;
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  if (!IsRequestType(frame.header.type)) {
    AppendError(frame.header, FrameType::kErrorReply,
                StatusCode::kInvalidArgument,
                "unknown request type " + std::to_string(frame.header.type),
                out);
    return;
  }
  const FrameType type = static_cast<FrameType>(frame.header.type);
  const FrameType reply_type =
      static_cast<FrameType>(frame.header.type | 0x80);

  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(frame.header.tenant_id);
    if (it != tenants_.end()) tenant = it->second.get();
  }
  if (tenant == nullptr) {
    AppendError(frame.header, reply_type, StatusCode::kNotFound,
                "unknown tenant " + std::to_string(frame.header.tenant_id),
                out);
    return;
  }

  // HEALTH and STATS are monitoring traffic; only the data path is
  // rate-limited, so an operator can always see *why* a tenant is throttled.
  if (type != FrameType::kHealth && type != FrameType::kStats &&
      !AdmitRequest(tenant)) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    AppendError(frame.header, reply_type, StatusCode::kResourceExhausted,
                "tenant rate limit exceeded", out);
    return;
  }

  switch (type) {
    case FrameType::kProbe:
      ServeProbe(tenant, frame, out);
      return;
    case FrameType::kScan:
      ServeScan(tenant, frame, out);
      return;
    case FrameType::kAdvance:
      ServeAdvance(tenant, frame, out);
      return;
    case FrameType::kStats:
      ServeStats(tenant, frame, out);
      return;
    case FrameType::kHealth:
      ServeHealth(tenant, frame, out);
      return;
    default:
      AppendError(frame.header, FrameType::kErrorReply, StatusCode::kInternal,
                  "unhandled request type", out);
      return;
  }
}

void ServerCore::ServeProbe(Tenant* tenant, const Frame& frame,
                            std::string* out) {
  ProbeRequest request;
  Status status = DecodeProbeRequest(frame.payload, &request);
  if (!status.ok()) {
    AppendError(frame.header, FrameType::kProbeReply, status.code(),
                status.message(), out);
    return;
  }
  QueryReply reply;
  status = tenant->service->TimedIndexProbe(request.range, request.value,
                                            &reply.entries, &reply.stats);
  // kPartialResult still carries the entries degraded serving could
  // assemble; anything else carries no body.
  reply.result = ToWireResult(status);
  if (!reply.result.has_body()) {
    errors_returned_.fetch_add(1, std::memory_order_relaxed);
  }
  out->append(EncodeQueryReply(frame.header, reply));
}

void ServerCore::ServeScan(Tenant* tenant, const Frame& frame,
                           std::string* out) {
  ScanRequest request;
  Status status = DecodeScanRequest(frame.payload, &request);
  if (!status.ok()) {
    AppendError(frame.header, FrameType::kScanReply, status.code(),
                status.message(), out);
    return;
  }
  uint32_t cap = request.max_entries;
  if (options_.scan_entry_cap > 0 &&
      (cap == 0 || cap > options_.scan_entry_cap)) {
    cap = options_.scan_entry_cap;
  }
  QueryReply reply;
  bool truncated = false;
  status = tenant->service->TimedSegmentScan(
      request.range,
      [&](const Value&, const Entry& entry) {
        if (cap > 0 && reply.entries.size() >= cap) {
          truncated = true;
          return;
        }
        reply.entries.push_back(entry);
      },
      &reply.stats);
  if (status.ok() && truncated) {
    status = Status::PartialResult("scan truncated at " +
                                   std::to_string(cap) + " entries");
  }
  reply.result = ToWireResult(status);
  if (!reply.result.has_body()) {
    errors_returned_.fetch_add(1, std::memory_order_relaxed);
  }
  out->append(EncodeQueryReply(frame.header, reply));
}

void ServerCore::ServeAdvance(Tenant* tenant, const Frame& frame,
                              std::string* out) {
  AdvanceRequest request;
  Status status = DecodeAdvanceRequest(frame.payload, &request);
  if (!status.ok()) {
    AppendError(frame.header, FrameType::kAdvanceReply, status.code(),
                status.message(), out);
    return;
  }
  AdvanceReply reply;
  if (options_.async_advance) {
    // Queue and acknowledge: the reply's current_day is the day queries see
    // *now*; STATS reports pending_advances until the transition publishes.
    tenant->service->AdvanceDayAsync(std::move(request.batch));
    status = Status::OK();
  } else {
    status = tenant->service->AdvanceDay(std::move(request.batch));
  }
  reply.result = ToWireResult(status);
  reply.current_day = tenant->service->current_day();
  if (!reply.result.has_body()) {
    errors_returned_.fetch_add(1, std::memory_order_relaxed);
  }
  out->append(EncodeAdvanceReply(frame.header, reply));
}

void ServerCore::ServeStats(Tenant* tenant, const Frame& frame,
                            std::string* out) {
  const ServiceMetrics metrics = tenant->service->Metrics();
  StatsReply reply;
  reply.probes = metrics.probes;
  reply.scans = metrics.scans;
  reply.days_advanced = metrics.days_advanced;
  reply.async_advances = metrics.async_advances;
  reply.pending_advances = metrics.pending_advances;
  reply.degraded_advances = metrics.degraded_advances;
  reply.partial_results = metrics.partial_results;
  reply.current_day = tenant->service->current_day();
  reply.degraded = tenant->service->degraded();
  out->append(EncodeStatsReply(frame.header, reply));
}

void ServerCore::ServeHealth(Tenant* tenant, const Frame& frame,
                             std::string* out) {
  HealthReply reply;
  reply.degraded = tenant->service->degraded();
  reply.detail = tenant->service->degraded_detail();
  out->append(EncodeHealthReply(frame.header, reply));
}

bool ServerCore::AdmitRequest(Tenant* tenant) {
  if (options_.tenant_rate_limit_rps <= 0) return true;
  std::lock_guard<std::mutex> lock(tenant->mutex);
  const uint64_t now = clock_->NowMicros();
  if (now > tenant->last_refill_us) {
    const double elapsed_s =
        static_cast<double>(now - tenant->last_refill_us) / 1e6;
    tenant->tokens += elapsed_s * options_.tenant_rate_limit_rps;
    if (tenant->tokens > options_.tenant_rate_limit_burst) {
      tenant->tokens = options_.tenant_rate_limit_burst;
    }
    tenant->last_refill_us = now;
  }
  if (tenant->tokens < 1.0) return false;
  tenant->tokens -= 1.0;
  return true;
}

void ServerCore::AppendError(const FrameHeader& request, FrameType type,
                             StatusCode code, const std::string& detail,
                             std::string* out) {
  errors_returned_.fetch_add(1, std::memory_order_relaxed);
  out->append(EncodeErrorReply(request, type, code, detail));
}

void ServerCore::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

Status ServerCore::WaitForMaintenance() {
  // Collect services first: WaitForMaintenance blocks, and holding
  // tenants_mutex_ across it would stall the request path.
  std::vector<WaveService*> services;
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    services.reserve(tenants_.size());
    for (auto& [id, tenant] : tenants_) services.push_back(tenant->service.get());
  }
  Status first;
  for (WaveService* service : services) {
    const Status status = service->WaitForMaintenance();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

}  // namespace serve
}  // namespace wavekit
