// Clock: the time source seam that makes the whole system simulable.
//
// Production code never calls std::chrono::steady_clock::now() or
// sleep_for directly for behaviour-relevant time (retry backoff, tracer
// timestamps, latency metering). It asks an injected Clock instead:
//
//   - RealClock      wall time; the default everywhere, so ordinary builds
//                    behave exactly as before this seam existed.
//   - SimClock       virtual time owned by the deterministic simulation
//                    harness (src/testing/). Sleeping advances the virtual
//                    clock instantly, so a thousand simulated retry backoffs
//                    cost nothing and every timestamp in an episode is a
//                    pure function of the episode's seed.
//
// Log-line timestamps (util/logging.cc) intentionally stay on the system
// clock: they are human-facing annotations, never compared by tests.

#ifndef WAVEKIT_UTIL_CLOCK_H_
#define WAVEKIT_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace wavekit {

/// \brief Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds since an arbitrary (per-clock) epoch.
  virtual uint64_t NowMicros() = 0;

  /// Blocks (or, in simulation, advances virtual time by) `us` microseconds.
  virtual void SleepUs(uint64_t us) = 0;
};

/// \brief The process-wide wall clock (std::chrono::steady_clock).
class RealClock : public Clock {
 public:
  /// The shared instance; used wherever no clock was injected.
  static RealClock* Instance();

  uint64_t NowMicros() override;
  void SleepUs(uint64_t us) override;
};

/// \brief A virtual clock for deterministic simulation. Time only moves when
/// something advances it: SleepUs jumps the clock forward by the requested
/// amount (so retry backoff is free and reproducible), and the simulation
/// driver calls Advance to model elapsing days. Thread-safe.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_us = 0) : now_us_(start_us) {}

  uint64_t NowMicros() override {
    return now_us_.load(std::memory_order_relaxed);
  }

  void SleepUs(uint64_t us) override { Advance(us); }

  /// Moves virtual time forward by `us`.
  void Advance(uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_us_;
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_CLOCK_H_
