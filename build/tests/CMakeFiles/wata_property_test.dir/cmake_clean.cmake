file(REMOVE_RECURSE
  "CMakeFiles/wata_property_test.dir/wave/wata_property_test.cc.o"
  "CMakeFiles/wata_property_test.dir/wave/wata_property_test.cc.o.d"
  "wata_property_test"
  "wata_property_test.pdb"
  "wata_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wata_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
