file(REMOVE_RECURSE
  "CMakeFiles/driver_test.dir/sim/driver_test.cc.o"
  "CMakeFiles/driver_test.dir/sim/driver_test.cc.o.d"
  "driver_test"
  "driver_test.pdb"
  "driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
