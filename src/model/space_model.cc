#include "model/space_model.h"

#include <algorithm>

namespace wavekit {
namespace model {
namespace {

/// Day counts a scheme holds beyond the W window days, plus its transition
/// shadow, all in "days of data".
struct DayFootprint {
  double avg_temp_days = 0;
  double max_temp_days = 0;
  double avg_extra_window_days = 0;  // soft-window residual (WATA family)
  double max_extra_window_days = 0;
  double avg_shadow_days = 0;  // transient extra during updates
  double max_shadow_days = 0;
};

DayFootprint FootprintOf(SchemeKind scheme, int window, int num_indexes) {
  const double w = window;
  const double n = num_indexes;
  const double x = w / n;
  const double y = n > 1 ? (w - 1) / (n - 1) : w;
  DayFootprint f;
  switch (scheme) {
    case SchemeKind::kDel:
      f.avg_shadow_days = x;
      f.max_shadow_days = x;
      break;
    case SchemeKind::kReindex:
      // The rebuilt cluster exists beside the old one until the swap.
      f.avg_shadow_days = x;
      f.max_shadow_days = x;
      break;
    case SchemeKind::kReindexPlus:
      // Temp ramps 1..X-1 days over an X-day cycle, then is dropped.
      f.avg_temp_days = (x - 1) / 2.0;
      f.max_temp_days = std::max(0.0, x - 1);
      f.avg_shadow_days = x;  // the aside copy of Temp that replaces I_j
      f.max_shadow_days = x;
      break;
    case SchemeKind::kReindexPlusPlus:
      // Ladder T_0..T_{X-1}: X(X-1)/2 days right after Initialize, draining
      // as rungs are promoted; T_0 accumulates the new days meanwhile.
      f.avg_temp_days = (x * x - 1) / 6.0 + (x - 1) / 2.0;
      f.max_temp_days = x * (x - 1) / 2.0;
      // Constituents are only replaced by renamed temporaries: no shadow.
      break;
    case SchemeKind::kWata:
    case SchemeKind::kKnownBoundWata:
      // Soft window: the residual of expired days ramps 0..Y-1.
      f.avg_extra_window_days = (y - 1) / 2.0;
      f.max_extra_window_days = y - 1;
      // Appending to I_last shadows it (its size ramps 1..Y).
      f.avg_shadow_days = (y + 1) / 2.0;
      f.max_shadow_days = y;
      break;
    case SchemeKind::kRata:
      // Ladder T_1..T_{Y-1}: Y(Y-1)/2 days after Initialize, draining.
      f.avg_temp_days = (y * y - 1) / 6.0;
      f.max_temp_days = y * (y - 1) / 2.0;
      f.avg_shadow_days = (y + 1) / 2.0;
      f.max_shadow_days = y;
      break;
  }
  return f;
}

}  // namespace

SpaceEstimate EstimateSpace(SchemeKind scheme, UpdateTechniqueKind technique,
                            const CaseParams& params, int window,
                            int num_indexes) {
  return EstimateSpace(scheme, technique, params, window, num_indexes,
                       /*compression_ratio=*/1.0);
}

SpaceEstimate EstimateSpace(SchemeKind scheme, UpdateTechniqueKind technique,
                            const CaseParams& params, int window,
                            int num_indexes, double compression_ratio) {
  const DayFootprint f = FootprintOf(scheme, window, num_indexes);
  // Codecs only ever shrink packed extents (selection keeps kRaw when a
  // codec does not strictly beat it), so the observed ratio is >= 1.
  const double ratio = std::max(compression_ratio, 1.0);
  const double packed_day_bytes = params.packed_day_bytes / ratio;
  const bool packed_constituents =
      scheme == SchemeKind::kReindex ||
      technique == UpdateTechniqueKind::kPackedShadow;
  const double cons_bytes = packed_constituents ? packed_day_bytes
                                                : params.unpacked_day_bytes;
  // Temporaries are grown incrementally, hence unpacked (and kRaw: only
  // packed builds emit compressed extents).
  const double temp_bytes = params.unpacked_day_bytes;
  // Shadows copy unpacked constituents (simple shadow) or write packed ones
  // (packed shadow); in-place updating needs no transient space at all.
  double shadow_bytes = 0;
  switch (technique) {
    case UpdateTechniqueKind::kInPlace:
      shadow_bytes = 0;
      break;
    case UpdateTechniqueKind::kSimpleShadow:
      shadow_bytes = params.unpacked_day_bytes;
      break;
    case UpdateTechniqueKind::kPackedShadow:
      shadow_bytes = packed_day_bytes;
      break;
  }
  // REINDEX always stages its rebuilt (packed) cluster regardless of the
  // configured technique.
  if (scheme == SchemeKind::kReindex) shadow_bytes = packed_day_bytes;

  SpaceEstimate out;
  out.avg_operation_bytes =
      (window + f.avg_extra_window_days) * cons_bytes +
      f.avg_temp_days * temp_bytes;
  out.max_operation_bytes =
      (window + f.max_extra_window_days) * cons_bytes +
      f.max_temp_days * temp_bytes;
  out.avg_transition_bytes = f.avg_shadow_days * shadow_bytes;
  out.max_transition_bytes = f.max_shadow_days * shadow_bytes;
  return out;
}

}  // namespace model
}  // namespace wavekit
