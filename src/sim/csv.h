// CSV export of experiment results, for plotting the reproduction's figures
// with external tools.

#ifndef WAVEKIT_SIM_CSV_H_
#define WAVEKIT_SIM_CSV_H_

#include <string>

#include "sim/experiment.h"
#include "util/status.h"

namespace wavekit {
namespace sim {

/// One CSV row per measured day: simulation and model costs, space, window
/// length. Includes a header row.
std::string DayStatsToCsv(const ExperimentResult& result);

/// Writes DayStatsToCsv(result) to `path`.
Status WriteCsv(const ExperimentResult& result, const std::string& path);

}  // namespace sim
}  // namespace wavekit

#endif  // WAVEKIT_SIM_CSV_H_
