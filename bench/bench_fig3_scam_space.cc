// Figure 3: average space required by SCAM (operation + transition) as the
// number of constituent indexes n varies, W = 7, simple shadow updating.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 3: SCAM average space (operation + transition) vs n (W=7)",
         "REINDEX requires the minimal space (packed, no temporaries); all "
         "schemes need less space as n increases.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 7;

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Average total space (GB)");

  std::map<SchemeKind, std::vector<double>> series;
  for (int n = 1; n <= window; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      const model::SpaceEstimate space = model::EstimateSpace(
          kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
      const double gb = space.avg_total() / 1e9;
      series[kind].push_back(gb);
      row.push_back(Fmt(gb, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  // REINDEX minimal at every n.
  bool reindex_min = true;
  for (int n = 2; n <= window; ++n) {
    const double reindex = model::EstimateSpace(SchemeKind::kReindex,
                                                UpdateTechniqueKind::kSimpleShadow,
                                                params, window, n)
                               .avg_total();
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n) || kind == SchemeKind::kReindex) continue;
      reindex_min &= reindex <= model::EstimateSpace(
                                    kind, UpdateTechniqueKind::kSimpleShadow,
                                    params, window, n)
                                    .avg_total() +
                                1.0;
    }
  }
  checks.Check(reindex_min, "REINDEX requires the minimal amount of space");
  for (SchemeKind kind : PaperSchemes()) {
    const auto& values = series[kind];
    bool decreasing = true;
    for (size_t i = 1; i < values.size(); ++i) {
      decreasing &= values[i] <= values[i - 1] + 1e-9;
    }
    checks.Check(decreasing, std::string(SchemeKindName(kind)) +
                                 " needs less space as n increases");
  }
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
