// wavekit: sliding-window ("wave") indexes over evolving databases.
//
// Umbrella header for the public API. Reproduction of Shivakumar &
// Garcia-Molina, "Wave-Indices: Indexing Evolving Databases", SIGMOD 1997.
//
// Typical usage (see examples/quickstart.cc):
//
//   wavekit::Store store;
//   wavekit::DayStore day_store;
//   wavekit::SchemeConfig config{.window = 7, .num_indexes = 3};
//   auto scheme = wavekit::MakeScheme(
//       wavekit::SchemeKind::kWata,
//       {store.device(), store.allocator(), &day_store}, config);
//   (*scheme)->Start(first_seven_batches);
//   (*scheme)->Transition(day8_batch);
//   (*scheme)->wave().IndexProbe("value", &entries);

#ifndef WAVEKIT_WAVEKIT_H_
#define WAVEKIT_WAVEKIT_H_

// Error handling.
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

// Fault-tolerance substrate.
#include "util/crash_point.h"
#include "util/crc32.h"
#include "util/fs.h"

// Storage substrate.
#include "storage/cost_model.h"
#include "storage/device.h"
#include "storage/disk_array.h"
#include "storage/extent_allocator.h"
#include "storage/fault_injecting_device.h"
#include "storage/file_device.h"
#include "storage/metered_device.h"
#include "storage/store.h"
#include "storage/synchronized_device.h"

// Index substrate.
#include "index/constituent_index.h"
#include "index/directory.h"
#include "index/entry.h"
#include "index/index_builder.h"
#include "index/record.h"

// Update techniques.
#include "update/update_technique.h"

// Wave indexes: the paper's contribution.
#include "wave/checkpoint.h"
#include "wave/day_store.h"
#include "wave/journal.h"
#include "wave/query_helpers.h"
#include "wave/recovery.h"
#include "wave/scheme.h"
#include "wave/scheme_factory.h"
#include "wave/wave_index.h"
#include "wave/wave_service.h"

// Observability: metrics registry, maintenance tracing, exporters.
#include "obs/attach.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Workloads and the analytic model (for experiments).
#include "model/params.h"
#include "model/total_work.h"
#include "workload/netnews.h"
#include "workload/tpcd.h"
#include "workload/usenet_trace.h"

#endif  // WAVEKIT_WAVEKIT_H_
