#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace wavekit {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter]() { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> gate{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&]() {
      ++gate;
      // Hold until several tasks are in flight so distinct workers engage.
      while (gate.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace wavekit
