// Crash-recovery torture: every scheme, every protocol crash point, many
// seeds. After a simulated crash anywhere inside the intent-journal commit
// protocol (wave/recovery.h), restart-time recovery must produce a wave
// index whose answers are identical to a brute-force oracle — queries never
// observe a half-applied transition.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "testing/test_env.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "util/thread_pool.h"
#include "wave/journal.h"
#include "wave/recovery.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

constexpr int kWindow = 6;
constexpr int kNumIndexes = 3;

// Every named crash point the AdvanceDay protocol passes through, in
// execution order. The first five roll back; the last three hit at or after
// the commit point (the checkpoint rename) and roll forward.
const char* const kProtocolCrashPoints[] = {
    "journal.intent.before_rename",
    "journal.intent.after_rename",
    "advance.after_intent",
    "advance.after_transition",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "advance.after_checkpoint",
    "journal.commit",
};

SchemeConfig Config(SchemeKind kind) {
  SchemeConfig config;
  config.window = kWindow;
  config.num_indexes = kNumIndexes;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  if (kind == SchemeKind::kKnownBoundWata) config.size_bound_entries = 2000;
  return config;
}

// Deterministic per-seed workload: seeds vary the batch sizes (and, via the
// caller, the day the crash lands on).
DayBatch Batch(Day day, uint64_t seed) {
  return MakeMixedBatch(day, 3 + static_cast<int>(seed % 4));
}

DurableMaintenance::Paths PathsFor(const std::string& tag) {
  const std::string prefix = ::testing::TempDir() + "wavekit_" + tag;
  DurableMaintenance::Paths paths{prefix + "_CHECKPOINT", prefix + "_JOURNAL"};
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
  return paths;
}

void CleanUp(const DurableMaintenance::Paths& paths) {
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
}

// The recovered index must answer exactly like the brute-force oracle for
// the window ending at `day` — every probe value and a full segment scan.
void VerifyAgainstOracle(const WaveIndex& wave, Day day, uint64_t seed) {
  ReferenceIndex reference;
  for (Day d = day - kWindow + 1; d <= day; ++d) reference.Add(Batch(d, seed));
  const DayRange range = DayRange::Window(day, kWindow);
  std::vector<Value> values = {"alpha", "beta", "gamma"};
  for (Day d = day - kWindow + 1; d <= day + 1; ++d) {
    values.push_back("day" + std::to_string(d));
  }
  for (const Value& value : values) {
    std::vector<Entry> out;
    QueryStats stats;
    Status status = wave.TimedIndexProbe(range, value, &out, &stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(stats.indexes_unhealthy, 0);
    EXPECT_EQ(stats.indexes_failed, 0);
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe(value, day - kWindow + 1, day))
        << "probe '" << value << "' at day " << day;
  }
  std::vector<Entry> scanned;
  Status status = wave.TimedSegmentScan(
      range, [&](const Value&, const Entry& e) { scanned.push_back(e); });
  ASSERT_TRUE(status.ok()) << status;
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(day - kWindow + 1, day))
      << "scan at day " << day;
}

// One crash-and-recover cycle: run to just before `crash_day`, arm `point`,
// crash inside the AdvanceDay, restart from durable state, verify, re-run,
// verify again, keep going. With `parallel` enabled the scheme's primitives
// take their multi-threaded paths (including the crash points inside
// parallel build/clone/flush stages).
void RunProtocolTorture(
    SchemeKind kind, const std::string& point, uint64_t seed,
    UpdateTechniqueKind technique = UpdateTechniqueKind::kSimpleShadow,
    const ParallelContext& parallel = {}) {
  CrashPoints::Reset();
  const DurableMaintenance::Paths paths =
      PathsFor(std::string("crash_") + SchemeKindName(kind) + "_" + point +
               "_" + std::to_string(seed));
  const Day crash_day = kWindow + 1 + static_cast<Day>(seed % 4);

  MemoryDevice memory(uint64_t{1} << 26);  // the "disk": survives the crash
  {
    MeteredDevice metered(&memory);
    ExtentAllocator allocator(memory.capacity());
    DayStore day_store;
    SchemeConfig config = Config(kind);
    config.technique = technique;
    SchemeEnv env{&metered, &allocator, &day_store};
    env.maintenance = parallel;
    auto made = MakeScheme(kind, env, config);
    ASSERT_TRUE(made.ok()) << made.status();
    std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
    DurableMaintenance maintenance(scheme.get(), paths);
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(Batch(d, seed));
    ASSERT_OK(maintenance.Start(std::move(first)));
    for (Day d = kWindow + 1; d < crash_day; ++d) {
      ASSERT_OK(maintenance.AdvanceDay(Batch(d, seed)));
    }
    CrashPoints::Arm(point);
    const Status crashed = maintenance.AdvanceDay(Batch(crash_day, seed));
    ASSERT_FALSE(crashed.ok()) << "crash point '" << point << "' never fired";
    ASSERT_TRUE(IsInjectedCrash(crashed)) << crashed;
    // Everything in this scope — scheme, allocator, pinned constituents —
    // is "RAM" and dies here. The memory device and the two files survive.
  }

  CrashPoints::Reset();
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  auto recovered = DurableMaintenance::Recover(paths, &metered, &allocator,
                                               ConstituentIndex::Options{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  DurableMaintenance::RecoveredState state =
      std::move(recovered).ValueOrDie();

  // The durable truth is all-or-nothing: either the pre-crash window (roll
  // back, re-run reported) or the post-transition window (roll forward).
  if (state.interrupted_day.has_value()) {
    EXPECT_EQ(*state.interrupted_day, crash_day);
    ASSERT_EQ(state.current_day, crash_day - 1);
  } else {
    ASSERT_TRUE(state.current_day == crash_day ||
                state.current_day == crash_day - 1)
        << state.current_day;
  }
  EXPECT_FALSE(FileExists(paths.journal));
  VerifyAgainstOracle(state.wave, state.current_day, seed);

  // Resume: adopt the recovered wave, re-run the interrupted day (if any),
  // and keep advancing — the crash must leave no scar.
  DayStore day_store;
  for (Day d = state.current_day - kWindow + 1; d <= state.current_day; ++d) {
    ASSERT_OK(day_store.Put(Batch(d, seed)));
  }
  SchemeConfig config = Config(kind);
  config.technique = technique;
  SchemeEnv env{&metered, &allocator, &day_store};
  env.maintenance = parallel;
  auto made = MakeScheme(kind, env, config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ASSERT_OK(scheme->Adopt(std::move(state.wave), state.current_day));
  DurableMaintenance maintenance(scheme.get(), paths);
  while (scheme->current_day() < crash_day) {
    ASSERT_OK(maintenance.AdvanceDay(Batch(scheme->current_day() + 1, seed)));
  }
  VerifyAgainstOracle(scheme->wave(), crash_day, seed);
  for (Day d = crash_day + 1; d <= crash_day + 3; ++d) {
    ASSERT_OK(maintenance.AdvanceDay(Batch(d, seed)));
  }
  VerifyAgainstOracle(scheme->wave(), crash_day + 3, seed);
  CleanUp(paths);
}

class CrashRecoveryTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(CrashRecoveryTest, EveryCrashPointEverySeedRecovers) {
  for (const char* point : kProtocolCrashPoints) {
    for (uint64_t i = 0; i < 8; ++i) {
      const uint64_t seed = testing::TestSeed(i);
      SCOPED_TRACE(std::string("crash point '") + point + "' seed " +
                   std::to_string(seed));
      RunProtocolTorture(GetParam(), point, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(CrashRecoveryTest, DeviceCrashMidTransitionRecovers) {
  // Device-level crashes (torn write then every I/O failing) instead of
  // protocol crash points: the countdown lands the crash at an arbitrary
  // write inside an arbitrary primitive of the transition.
  const SchemeKind kind = GetParam();
  for (uint64_t i = 0; i < 8; ++i) {
    const uint64_t seed = testing::TestSeed(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    CrashPoints::Reset();
    const DurableMaintenance::Paths paths =
        PathsFor(std::string("devcrash_") + SchemeKindName(kind) + "_" +
                 std::to_string(seed));
    MemoryDevice memory(uint64_t{1} << 26);
    FaultInjectingDevice::Options fault_options;
    fault_options.seed = seed;
    FaultInjectingDevice faulty(&memory, fault_options);
    Day failed_day = 0;
    {
      MeteredDevice metered(&faulty);
      ExtentAllocator allocator(memory.capacity());
      DayStore day_store;
      auto made = MakeScheme(
          kind, SchemeEnv{&metered, &allocator, &day_store}, Config(kind));
      ASSERT_TRUE(made.ok()) << made.status();
      std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
      DurableMaintenance maintenance(scheme.get(), paths);
      std::vector<DayBatch> first;
      for (Day d = 1; d <= kWindow; ++d) first.push_back(Batch(d, seed));
      ASSERT_OK(maintenance.Start(std::move(first)));
      faulty.ArmCrashAfterWrites(1 + (seed * 7) % 40);
      for (Day d = kWindow + 1; d <= kWindow + 14; ++d) {
        const Status status = maintenance.AdvanceDay(Batch(d, seed));
        if (!status.ok()) {
          ASSERT_TRUE(IsInjectedCrash(status)) << status;
          failed_day = d;
          break;
        }
      }
      ASSERT_NE(failed_day, 0) << "crash countdown never fired";
      EXPECT_TRUE(scheme->needs_recovery());
    }

    faulty.ClearCrash();  // the restart: persisted bytes stay, faults clear
    MeteredDevice metered(&faulty);
    ExtentAllocator allocator(memory.capacity());
    auto recovered = DurableMaintenance::Recover(paths, &metered, &allocator,
                                                 ConstituentIndex::Options{});
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    DurableMaintenance::RecoveredState state =
        std::move(recovered).ValueOrDie();
    ASSERT_EQ(state.current_day, failed_day - 1);
    ASSERT_TRUE(state.interrupted_day.has_value());
    EXPECT_EQ(*state.interrupted_day, failed_day);
    VerifyAgainstOracle(state.wave, state.current_day, seed);

    DayStore day_store;
    for (Day d = state.current_day - kWindow + 1; d <= state.current_day;
         ++d) {
      ASSERT_OK(day_store.Put(Batch(d, seed)));
    }
    auto made = MakeScheme(kind, SchemeEnv{&metered, &allocator, &day_store},
                           Config(kind));
    ASSERT_TRUE(made.ok()) << made.status();
    std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
    ASSERT_OK(scheme->Adopt(std::move(state.wave), state.current_day));
    DurableMaintenance maintenance(scheme.get(), paths);
    for (Day d = failed_day; d <= failed_day + 2; ++d) {
      ASSERT_OK(maintenance.AdvanceDay(Batch(d, seed)));
    }
    VerifyAgainstOracle(scheme->wave(), failed_day + 2, seed);
    CleanUp(paths);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CrashRecoveryTest,
    ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                      SchemeKind::kReindexPlus, SchemeKind::kReindexPlusPlus,
                      SchemeKind::kWata, SchemeKind::kRata,
                      SchemeKind::kKnownBoundWata),
    [](const auto& info) {
      std::string name = SchemeKindName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Crash points inside parallel maintenance stages ------------------------

TEST(ParallelStageCrashRecoveryTest, ParallelCrashPointsRecover) {
  // Crashes landing INSIDE the multi-threaded build/clone/flush stages must
  // recover exactly like protocol-level crashes: the stage fails
  // all-or-nothing on the coordinator thread and the journal protocol rolls
  // the transition back. Each case pairs a crash point with a scheme whose
  // transition actually runs that parallel stage.
  struct Case {
    SchemeKind kind;
    UpdateTechniqueKind technique;
    const char* point;
    // Seeds pick the crash day (kWindow + 1 + seed % 4); each case needs
    // days where its parallel stage actually executes.
    uint64_t seeds[3];
  };
  const Case kCases[] = {
      {SchemeKind::kReindex, UpdateTechniqueKind::kSimpleShadow,
       "builder.parallel.group", {1, 2, 3}},
      {SchemeKind::kReindex, UpdateTechniqueKind::kSimpleShadow,
       "builder.parallel.write", {1, 2, 3}},
      {SchemeKind::kReindexPlus, UpdateTechniqueKind::kSimpleShadow,
       "clone.parallel.copy", {1, 2, 3}},
      // WATA runs the packed updater only on "Wait" days (ThrowAway days
      // rebuild from scratch instead). With window 6 and 3 indexes, days
      // 9 and 11 are ThrowAway, so seeds must land the crash on 7, 8 or 10.
      {SchemeKind::kWata, UpdateTechniqueKind::kPackedShadow,
       "updater.packed.parallel_flush", {1, 3, 4}},
  };
  ThreadPool pool(4);
  const ParallelContext parallel{&pool, 4};
  for (const Case& c : kCases) {
    for (uint64_t seed : c.seeds) {
      SCOPED_TRACE(std::string(SchemeKindName(c.kind)) + " crash point '" +
                   c.point + "' seed " + std::to_string(seed));
      RunProtocolTorture(c.kind, c.point, seed, c.technique, parallel);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- Journal unit tests -----------------------------------------------------

TEST(MaintenanceJournalTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "wavekit_journal_rt";
  std::remove(path.c_str());
  MaintenanceJournal journal(path);
  ASSERT_OK(journal.WriteIntent(42));
  auto read = MaintenanceJournal::Read(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_TRUE(read.ValueOrDie().has_value());
  EXPECT_EQ(*read.ValueOrDie(), 42);
  ASSERT_OK(journal.Commit());
  auto gone = MaintenanceJournal::Read(path);
  ASSERT_TRUE(gone.ok()) << gone.status();
  EXPECT_FALSE(gone.ValueOrDie().has_value());
}

TEST(MaintenanceJournalTest, CorruptJournalIsRejected) {
  const std::string path = ::testing::TempDir() + "wavekit_journal_corrupt";
  MaintenanceJournal journal(path);
  ASSERT_OK(journal.WriteIntent(7));
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  // Tamper with the day but not the CRC.
  std::string tampered = contents;
  tampered.replace(tampered.find(" 7 "), 3, " 8 ");
  ASSERT_OK(AtomicWriteFile(path, tampered));
  auto read = MaintenanceJournal::Read(path);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status();
  std::remove(path.c_str());
}

TEST(CrashPointsTest, FireOnceThenDisarm) {
  CrashPoints::Reset();
  ASSERT_OK(CrashPoints::Check("some.point"));  // unarmed: free
  CrashPoints::Arm("some.point");
  EXPECT_EQ(CrashPoints::armed_count(), 1u);
  const Status fired = CrashPoints::Check("other.point");
  ASSERT_OK(fired);  // different point: untouched
  const Status crash = CrashPoints::Check("some.point");
  ASSERT_FALSE(crash.ok());
  EXPECT_TRUE(IsInjectedCrash(crash));
  ASSERT_OK(CrashPoints::Check("some.point"));  // fired once, now disarmed
  EXPECT_EQ(CrashPoints::armed_count(), 0u);
}

}  // namespace
}  // namespace wavekit
