# Empty compiler generated dependencies file for bench_table11_maintenance_packed.
# This may be replaced when dependencies are built.
