// Ablation: WATA* (purely online, 2-competitive on index size) vs KB-WATA
// (the Kleinberg et al. [KMRV97] refinement that assumes the maximum window
// size B is known in advance, improving the ratio toward n/(n-1)).
//
// Both schemes run over the same 200-day Usenet-shaped volume stream; we
// measure each one's maximum index size relative to the offline optimum.

#include "bench/common.h"

#include "storage/store.h"
#include "wave/scheme_factory.h"
#include "workload/usenet_trace.h"

namespace wavekit {
namespace bench {
namespace {

DayBatch SizedBatch(Day day, uint64_t entries) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (uint64_t i = 0; i < entries; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" + std::to_string(i % 11)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

uint64_t EagerMax(const std::vector<uint64_t>& volumes, int window) {
  uint64_t best = 0;
  for (size_t s = 0; s + static_cast<size_t>(window) <= volumes.size(); ++s) {
    uint64_t sum = 0;
    for (int k = 0; k < window; ++k) sum += volumes[s + static_cast<size_t>(k)];
    best = std::max(best, sum);
  }
  return best;
}

double SizeRatio(SchemeKind kind, const std::vector<uint64_t>& volumes,
                 int window, int n, uint64_t bound) {
  Store store;
  DayStore day_store;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = UpdateTechniqueKind::kInPlace;
  config.size_bound_entries = bound;
  auto made = MakeScheme(kind, SchemeEnv{store.device(), store.allocator(),
                                         &day_store},
                         config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) {
    first.push_back(SizedBatch(d, volumes[static_cast<size_t>(d - 1)]));
  }
  scheme->Start(std::move(first)).Abort("Start");
  uint64_t max_entries = scheme->wave().EntryCount();
  for (size_t i = static_cast<size_t>(window); i < volumes.size(); ++i) {
    scheme->Transition(SizedBatch(static_cast<Day>(i + 1), volumes[i]))
        .Abort("Transition");
    max_entries = std::max(max_entries, scheme->wave().EntryCount());
  }
  return static_cast<double>(max_entries) /
         static_cast<double>(EagerMax(volumes, window));
}

int Run() {
  Banner("Ablation: WATA* vs KB-WATA (known size bound) on index size",
         "Kleinberg et al. improve WATA's competitive ratio from 2.0 to "
         "n/(n-1) by assuming the max window size B is known ahead of time; "
         "WATA* stays purely online.");

  workload::UsenetTraceConfig trace_config;
  trace_config.scale = 0.002;
  workload::UsenetVolumeTrace trace(trace_config);
  const int days = 200;
  const int window = 28;  // larger window: day-granularity slack is small vs B
  const std::vector<uint64_t> volumes = trace.Series(days);
  const uint64_t bound = EagerMax(volumes, window);

  uint64_t max_day = 0;
  for (uint64_t v : volumes) max_day = std::max(max_day, v);
  // KB-WATA's guarantee: <= n slices alive, each at most
  // ceil(B/(n-1)) + one day's overshoot.
  auto kb_bound = [&](int n) {
    return (static_cast<double>(n) / (n - 1)) +
           static_cast<double>(n) * max_day / bound;
  };

  sim::TablePrinter table({"n", "WATA* ratio (guarantee 2.0)", "KB-WATA ratio",
                           "KB-WATA guarantee"});
  std::map<int, double> wata_ratio, kb_ratio;
  for (int n : {2, 3, 4, 6}) {
    wata_ratio[n] = SizeRatio(SchemeKind::kWata, volumes, window, n, 0);
    kb_ratio[n] =
        SizeRatio(SchemeKind::kKnownBoundWata, volumes, window, n, bound);
    table.AddRow({std::to_string(n), Fmt(wata_ratio[n], 3),
                  Fmt(kb_ratio[n], 3), Fmt(kb_bound(n), 3)});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  for (int n : {2, 3, 4, 6}) {
    checks.Check(kb_ratio[n] <= kb_bound(n) + 0.02,
                 "KB-WATA (n=" + std::to_string(n) +
                     ") honours its n/(n-1)-style guarantee");
    checks.Check(wata_ratio[n] <= 2.0,
                 "WATA* (n=" + std::to_string(n) +
                     ") honours its 2-competitive guarantee");
  }
  // The refinement's value: for n >= 3 the KB guarantee is strictly tighter
  // than WATA*'s worst case, and the measured ratios stay comparable to
  // WATA*'s on this benign trace.
  for (int n : {3, 4, 6}) {
    checks.Check(kb_bound(n) < 1.9,
                 "KB-WATA's guarantee at n=" + std::to_string(n) +
                     " is strictly tighter than WATA*'s 2.0");
    checks.Check(kb_ratio[n] <= wata_ratio[n] + 0.25,
                 "KB-WATA's measured size stays close to WATA*'s at n=" +
                     std::to_string(n));
  }
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
