#include "wave/query_helpers.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/macros.h"

namespace wavekit {
namespace {

// Gathers, per record, how many distinct query values it matched and its
// newest matching day.
Result<std::map<uint64_t, MatchResult>> GatherMatches(
    const WaveIndex& wave, const std::vector<Value>& values,
    const DayRange& range) {
  // Deduplicate query values: "war war" matches like "war".
  std::set<Value> distinct(values.begin(), values.end());
  std::map<uint64_t, MatchResult> matches;
  std::vector<Entry> entries;
  for (const Value& value : distinct) {
    entries.clear();
    WAVEKIT_RETURN_NOT_OK(wave.TimedIndexProbe(range, value, &entries));
    std::set<uint64_t> seen;  // one credit per (record, value) pair
    for (const Entry& e : entries) {
      MatchResult& match = matches[e.record_id];
      match.record_id = e.record_id;
      match.newest_day = std::max(match.newest_day, e.day);
      if (seen.insert(e.record_id).second) ++match.matched_values;
    }
  }
  return matches;
}

}  // namespace

Result<std::vector<MatchResult>> ConjunctiveProbe(
    const WaveIndex& wave, const std::vector<Value>& values,
    const DayRange& range) {
  if (values.empty()) return std::vector<MatchResult>{};
  const size_t need =
      std::set<Value>(values.begin(), values.end()).size();
  WAVEKIT_ASSIGN_OR_RETURN(auto matches, GatherMatches(wave, values, range));
  std::vector<MatchResult> out;
  for (const auto& [record_id, match] : matches) {
    if (match.matched_values == need) out.push_back(match);
  }
  std::sort(out.begin(), out.end(), [](const MatchResult& a,
                                       const MatchResult& b) {
    return std::tie(b.newest_day, b.record_id) < std::tie(a.newest_day, a.record_id);
  });
  return out;
}

Result<std::vector<MatchResult>> OverlapProbe(const WaveIndex& wave,
                                              const std::vector<Value>& values,
                                              const DayRange& range,
                                              size_t top_k) {
  WAVEKIT_ASSIGN_OR_RETURN(auto matches, GatherMatches(wave, values, range));
  std::vector<MatchResult> out;
  out.reserve(matches.size());
  for (const auto& [record_id, match] : matches) out.push_back(match);
  std::sort(out.begin(), out.end(),
            [](const MatchResult& a, const MatchResult& b) {
              return std::tie(b.matched_values, b.newest_day, b.record_id) <
                     std::tie(a.matched_values, a.newest_day, a.record_id);
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

Result<ScanAggregate> AggregateScan(const WaveIndex& wave,
                                    const DayRange& range) {
  ScanAggregate aggregate;
  WAVEKIT_RETURN_NOT_OK(wave.TimedSegmentScan(
      range, [&aggregate](const Value&, const Entry& e) {
        ++aggregate.count;
        aggregate.aux_sum += e.aux;
      }));
  return aggregate;
}

Result<ScanAggregate> AggregateProbe(const WaveIndex& wave, const Value& value,
                                     const DayRange& range) {
  std::vector<Entry> entries;
  WAVEKIT_RETURN_NOT_OK(wave.TimedIndexProbe(range, value, &entries));
  ScanAggregate aggregate;
  for (const Entry& e : entries) {
    ++aggregate.count;
    aggregate.aux_sum += e.aux;
  }
  return aggregate;
}

}  // namespace wavekit
