# Empty compiler generated dependencies file for op_log_test.
# This may be replaced when dependencies are built.
