# Empty compiler generated dependencies file for updater_test.
# This may be replaced when dependencies are built.
