# Empty compiler generated dependencies file for directory_test.
# This may be replaced when dependencies are built.
