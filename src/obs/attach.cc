#include "obs/attach.h"

namespace wavekit {
namespace obs {

void AttachMeteredDevice(MetricsRegistry* registry, const MeteredDevice* device,
                         std::string device_label, BackendIdentity identity,
                         const void* owner) {
  for (int p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    Labels labels = {{"device", device_label}, {"phase", PhaseName(phase)}};
    if (!identity.backend.empty()) {
      labels.emplace_back("backend", identity.backend);
      labels.emplace_back("direct", identity.direct_io ? "1" : "0");
    }
    registry->AddCounterCallback(
        "wavekit_device_seeks_total", "Modeled disk seeks per phase", labels,
        [device, phase]() { return device->counters(phase).seeks; }, owner);
    registry->AddCounterCallback(
        "wavekit_device_bytes_read_total", "Bytes read per phase", labels,
        [device, phase]() { return device->counters(phase).bytes_read; },
        owner);
    registry->AddCounterCallback(
        "wavekit_device_bytes_written_total", "Bytes written per phase",
        labels,
        [device, phase]() { return device->counters(phase).bytes_written; },
        owner);
    registry->AddCounterCallback(
        "wavekit_device_read_ops_total", "Read operations per phase", labels,
        [device, phase]() { return device->counters(phase).read_ops; }, owner);
    registry->AddCounterCallback(
        "wavekit_device_write_ops_total", "Write operations per phase", labels,
        [device, phase]() { return device->counters(phase).write_ops; },
        owner);
    registry->AddCounterCallback(
        "wavekit_device_sync_ops_total",
        "Device sync (durability flush) calls per phase", labels,
        [device, phase]() { return device->counters(phase).sync_ops; }, owner);
  }
}

void AttachMeteredDevice(MetricsRegistry* registry, const MeteredDevice* device,
                         std::string device_label, const void* owner) {
  AttachMeteredDevice(registry, device, std::move(device_label),
                      BackendIdentity{}, owner);
}

void AttachLatencyDevice(MetricsRegistry* registry,
                         const LatencyTrackingDevice* device,
                         const MeteredDevice* meter, CostModel model,
                         std::string device_label, const void* owner) {
  for (int p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    for (int o = 0; o < kNumOpKinds; ++o) {
      const OpKind op = static_cast<OpKind>(o);
      const Labels labels = {{"device", device_label},
                             {"op", OpKindName(op)},
                             {"phase", PhaseName(phase)}};
      registry->AddHistogramCallback(
          "wavekit_device_latency_us",
          "Measured wall-clock device operation latency, microseconds",
          labels,
          [device, op, phase]() { return device->histogram(op, phase); },
          owner);
    }
    const Labels labels = {{"device", device_label},
                           {"phase", PhaseName(phase)}};
    registry->AddGaugeCallback(
        "wavekit_device_observed_seconds",
        "Measured wall-clock seconds spent in device I/O per phase", labels,
        [device, phase]() { return device->observed_seconds(phase); }, owner);
    registry->AddGaugeCallback(
        "wavekit_device_modeled_seconds",
        "CostModel-predicted seconds for the metered I/O per phase", labels,
        [meter, model, phase]() {
          return model.Seconds(meter->counters(phase));
        },
        owner);
    registry->AddGaugeCallback(
        "wavekit_device_latency_drift_ratio",
        "Observed / modeled seconds per phase (0 when the model predicts 0)",
        labels,
        [device, meter, model, phase]() {
          const double modeled = model.Seconds(meter->counters(phase));
          return modeled > 0.0 ? device->observed_seconds(phase) / modeled
                               : 0.0;
        },
        owner);
  }
}

void AttachShardedCache(MetricsRegistry* registry,
                        const ShardedCachedDevice* cache,
                        std::string cache_label, const void* owner) {
  for (size_t shard = 0; shard < cache->num_shards(); ++shard) {
    const Labels labels = {{"cache", cache_label},
                           {"shard", std::to_string(shard)}};
    registry->AddCounterCallback(
        "wavekit_cache_hits_total", "Block reads served from cache, per shard",
        labels, [cache, shard]() { return cache->shard_stats(shard).hits; },
        owner);
    registry->AddCounterCallback(
        "wavekit_cache_misses_total",
        "Block reads that went to the device, per shard", labels,
        [cache, shard]() { return cache->shard_stats(shard).misses; }, owner);
    registry->AddCounterCallback(
        "wavekit_cache_evictions_total",
        "Blocks evicted to make room, per shard", labels,
        [cache, shard]() { return cache->shard_stats(shard).evictions; },
        owner);
  }
  const Labels labels = {{"cache", cache_label}};
  registry->AddGaugeCallback(
      "wavekit_cache_cached_blocks", "Blocks currently cached across shards",
      labels,
      [cache]() { return static_cast<double>(cache->cached_blocks()); },
      owner);
  registry->AddGaugeCallback(
      "wavekit_cache_hit_ratio", "Aggregate hit ratio since last reset",
      labels, [cache]() { return cache->stats().HitRatio(); }, owner);
}

void AttachThreadPool(MetricsRegistry* registry, const ThreadPool* pool,
                      std::string pool_label, const void* owner) {
  const Labels labels = {{"pool", pool_label}};
  registry->AddGaugeCallback(
      "wavekit_pool_queue_depth",
      "Tasks queued and not yet picked up by a worker", labels,
      [pool]() { return static_cast<double>(pool->queue_depth()); }, owner);
  registry->AddGaugeCallback(
      "wavekit_pool_in_flight", "Tasks queued or currently executing", labels,
      [pool]() { return static_cast<double>(pool->in_flight()); }, owner);
  registry->AddGaugeCallback(
      "wavekit_pool_threads", "Worker threads in the pool", labels,
      [pool]() { return static_cast<double>(pool->num_threads()); }, owner);
}

}  // namespace obs
}  // namespace wavekit
