#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace wavekit {
namespace obs {
namespace {

TEST(MetricKeyTest, FormatsNameAndLabels) {
  EXPECT_EQ(MetricKey("probes_total", {}), "probes_total");
  EXPECT_EQ(MetricKey("io", {{"device", "data"}, {"phase", "query"}}),
            "io{device=\"data\",phase=\"query\"}");
}

TEST(TimeSeriesCollectorTest, TickRespectsIntervalOnInjectedClock) {
  MetricsRegistry registry;
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.interval_us = 1000;
  options.clock = &clock;
  TimeSeriesCollector collector(options);

  // The first Tick always samples; further Ticks wait out the interval.
  EXPECT_TRUE(collector.Tick());
  EXPECT_FALSE(collector.Tick());
  clock.Advance(999);
  EXPECT_FALSE(collector.Tick());
  clock.Advance(1);
  EXPECT_TRUE(collector.Tick());
  EXPECT_EQ(collector.samples_taken(), 2u);

  const std::vector<TimeSeriesCollector::Sample> samples = collector.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].timestamp_us, 0u);
  EXPECT_EQ(samples[1].timestamp_us, 1000u);
}

TEST(TimeSeriesCollectorTest, RingEvictsOldestSample) {
  MetricsRegistry registry;
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.ring_capacity = 3;
  options.clock = &clock;
  TimeSeriesCollector collector(options);

  for (int i = 0; i < 5; ++i) {
    collector.SampleNow();
    clock.Advance(10);
  }
  EXPECT_EQ(collector.samples_taken(), 5u);
  const std::vector<TimeSeriesCollector::Sample> samples = collector.Samples();
  ASSERT_EQ(samples.size(), 3u);
  // Oldest first: timestamps 20, 30, 40 survive.
  EXPECT_EQ(samples[0].timestamp_us, 20u);
  EXPECT_EQ(samples[2].timestamp_us, 40u);
}

TEST(TimeSeriesCollectorTest, SeriesDerivesDeltasAndRates) {
  MetricsRegistry registry;
  Counter* probes = registry.AddCounter("probes_total", "Probes.");
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.clock = &clock;
  TimeSeriesCollector collector(options);

  collector.SampleNow();
  probes->Increment(10);
  clock.Advance(2'000'000);  // 2 s
  collector.SampleNow();
  probes->Increment(30);
  clock.Advance(1'000'000);  // 1 s
  collector.SampleNow();

  const std::vector<TimeSeriesCollector::Point> series =
      collector.Series("probes_total", {});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series[0].delta, 0.0);
  EXPECT_DOUBLE_EQ(series[1].value, 10.0);
  EXPECT_DOUBLE_EQ(series[1].delta, 10.0);
  EXPECT_DOUBLE_EQ(series[1].rate_per_sec, 5.0);
  EXPECT_DOUBLE_EQ(series[2].value, 40.0);
  EXPECT_DOUBLE_EQ(series[2].delta, 30.0);
  EXPECT_DOUBLE_EQ(series[2].rate_per_sec, 30.0);
}

TEST(TimeSeriesCollectorTest, SeriesMatchesExactLabelsOnly) {
  MetricsRegistry registry;
  registry.AddCounter("io_total", "IO.", {{"phase", "query"}})->Increment(7);
  registry.AddCounter("io_total", "IO.", {{"phase", "transition"}})
      ->Increment(3);
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.clock = &clock;
  TimeSeriesCollector collector(options);
  collector.SampleNow();

  const auto query = collector.Series("io_total", {{"phase", "query"}});
  ASSERT_EQ(query.size(), 1u);
  EXPECT_DOUBLE_EQ(query[0].value, 7.0);
  EXPECT_TRUE(collector.Series("io_total", {{"phase", "start"}}).empty());
  EXPECT_TRUE(collector.Series("nope_total", {}).empty());
}

TEST(TimeSeriesCollectorTest, HistogramsFlattenToCumulativeCount) {
  MetricsRegistry registry;
  ConcurrentHistogram* latency = registry.AddHistogram("lat_us", "Latency.");
  latency->Record(5);
  latency->Record(9);
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.clock = &clock;
  TimeSeriesCollector collector(options);
  collector.SampleNow();

  const auto series = collector.Series("lat_us", {});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].value, 2.0);  // cumulative count
}

TEST(TimeSeriesCollectorTest, RenderJsonContainsSamplesAndRates) {
  MetricsRegistry registry;
  Counter* probes = registry.AddCounter("probes_total", "Probes.");
  SimClock clock;
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.interval_us = 500;
  options.clock = &clock;
  TimeSeriesCollector collector(options);

  collector.SampleNow();
  probes->Increment(4);
  clock.Advance(1'000'000);
  collector.SampleNow();

  const std::string json = collector.RenderJson();
  EXPECT_NE(json.find("\"interval_us\": 500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples_taken\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"probes_total\""), std::string::npos) << json;
  // Rate between the last two samples: 4 increments over one second.
  EXPECT_NE(json.find("\"rates\""), std::string::npos) << json;
  EXPECT_NE(json.find("4"), std::string::npos) << json;
}

TEST(TimeSeriesCollectorTest, BackgroundThreadSamplesAndStops) {
  MetricsRegistry registry;
  registry.AddCounter("c_total", "C.");
  TimeSeriesCollector::Options options;
  options.registry = &registry;
  options.interval_us = 1000;  // 1 ms
  TimeSeriesCollector collector(options);

  collector.Start();
  collector.Start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (collector.samples_taken() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  collector.Stop();
  collector.Stop();  // idempotent
  EXPECT_GT(collector.samples_taken(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
