// OracleDB: the brute-force truth the simulation harness checks every query
// against.
//
// A sorted in-memory multimap of exactly the live sliding window: AdvanceDay
// appends the new day's (value, entry) pairs and expires the day that fell
// out of the window. Probe/Scan answers are definitionally correct, so any
// divergence from a wave index under test is a bug in the scheme (or a
// genuine invariant violation the harness injected on purpose).
//
// The oracle is also reconstructible at any day from the deterministic
// scenario workload (ResetToWindow), which is how the harness re-syncs it
// after a simulated crash + recovery lands on a rolled-back day.

#ifndef WAVEKIT_TESTING_ORACLE_H_
#define WAVEKIT_TESTING_ORACLE_H_

#include <map>
#include <vector>

#include "index/entry.h"
#include "index/record.h"
#include "util/day.h"
#include "wave/day_store.h"

namespace wavekit {
namespace testing {

/// \brief Sorted in-memory reference of the live window's entries.
class OracleDB {
 public:
  /// Incorporates `batch` (must be day current_day()+1, or any day when the
  /// oracle is empty) and expires days older than `window`.
  void AdvanceDay(const DayBatch& batch, int window);

  /// Clears everything (for ResetToWindow-style rebuilds).
  void Clear();

  /// Entries for `value` with day in `range`, sorted by (record_id, day,
  /// aux) for order-insensitive comparison.
  std::vector<Entry> Probe(const Value& value, const DayRange& range) const;

  /// All live entries with day in `range`, sorted.
  std::vector<Entry> ScanAll(const DayRange& range) const;

  /// Newest day incorporated (0 when empty).
  Day current_day() const { return current_day_; }

  /// Oldest live day (0 when empty).
  Day oldest_day() const {
    return days_.empty() ? 0 : days_.begin()->first;
  }

  /// Total live entries.
  size_t live_entries() const;

  /// Canonical comparison order used by Probe/ScanAll.
  static void Sort(std::vector<Entry>* entries);

 private:
  // Live window, keyed by value (the multimap) and by day (for expiry).
  std::map<Value, std::vector<Entry>> by_value_;
  std::map<Day, std::vector<std::pair<Value, Entry>>> days_;
  Day current_day_ = 0;
};

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTING_ORACLE_H_
