#include "util/crc32.h"

#include <array>

namespace wavekit {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // reflected IEEE polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(const void* data, size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace wavekit
