// Table 8: space utilization of the six wave-index schemes under simple
// shadow updating — average/maximum space during operation and the extra
// space during transitions.
//
// Two columns of evidence: the closed-form model (S / S' weighted day
// counts, Table 8's own formulas) and the device simulation (actual bytes
// allocated by the running schemes on a scaled-down Netnews workload).

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Table 8: space utilization (simple shadow updating, W=10, n=2)",
         "REINDEX stores W*S (packed, least); REINDEX+/++/RATA pay for "
         "temporaries; WATA pays the soft-window residual; shadows add a "
         "cluster's worth of transient space.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 10;
  const int n = 2;

  sim::TablePrinter table(
      {"scheme", "model avg op", "model max op", "model avg trans",
       "model max trans", "sim avg op", "sim max op", "sim avg trans"});
  table.SetTitle("Space in units of S' (one unpacked day) [model] and bytes "
                 "[sim, 70 articles/day scale]");

  struct Row {
    SchemeKind kind;
    model::SpaceEstimate model;
    sim::Aggregates sim;
  };
  std::vector<Row> rows;

  for (SchemeKind kind : PaperSchemes()) {
    Row row;
    row.kind = kind;
    row.model = model::EstimateSpace(kind, UpdateTechniqueKind::kSimpleShadow,
                                     params, window, n);

    sim::ExperimentConfig config;
    config.scheme = kind;
    config.scheme_config.window = window;
    config.scheme_config.num_indexes = n;
    config.scheme_config.technique = UpdateTechniqueKind::kSimpleShadow;
    config.netnews.articles_per_day = 70;
    config.netnews.words_per_article = 20;
    config.days_to_run = 3 * window;
    config.warmup_days = window;
    config.query_mix = {};  // space experiment: no queries
    config.paper = params;
    auto run = sim::ExperimentDriver::Run(config);
    if (!run.ok()) run.status().Abort("sim run");
    row.sim = run.ValueOrDie().aggregates;
    rows.push_back(row);
  }

  const double sprime = params.unpacked_day_bytes;
  for (const Row& row : rows) {
    table.AddRow({std::string(SchemeKindName(row.kind)),
                  Fmt(row.model.avg_operation_bytes / sprime, 2) + " S'",
                  Fmt(row.model.max_operation_bytes / sprime, 2) + " S'",
                  Fmt(row.model.avg_transition_bytes / sprime, 2) + " S'",
                  Fmt(row.model.max_transition_bytes / sprime, 2) + " S'",
                  FormatBytes(static_cast<uint64_t>(row.sim.avg_operation_bytes)),
                  FormatBytes(row.sim.max_operation_bytes),
                  FormatBytes(static_cast<uint64_t>(
                      row.sim.avg_transition_extra_bytes))});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  auto find = [&](SchemeKind kind) -> const Row& {
    for (const Row& row : rows) {
      if (row.kind == kind) return row;
    }
    std::abort();
  };
  const Row& reindex = find(SchemeKind::kReindex);
  bool reindex_min_model = true;
  bool reindex_min_sim = true;
  for (const Row& row : rows) {
    if (row.kind == SchemeKind::kReindex) continue;
    reindex_min_model &=
        reindex.model.avg_operation_bytes <= row.model.avg_operation_bytes;
    reindex_min_sim &=
        reindex.sim.avg_operation_bytes <= row.sim.avg_operation_bytes;
  }
  checks.Check(reindex_min_model,
               "REINDEX requires the minimal operation space (model)");
  checks.Check(reindex_min_sim,
               "REINDEX requires the minimal operation space (simulation)");
  checks.Check(find(SchemeKind::kReindexPlusPlus).sim.avg_transition_extra_bytes <
                   find(SchemeKind::kDel).sim.avg_transition_extra_bytes,
               "REINDEX++ needs (almost) no transition space: it only touches "
               "temporaries");
  checks.Check(find(SchemeKind::kWata).sim.avg_operation_bytes >
                   find(SchemeKind::kDel).sim.avg_operation_bytes,
               "WATA's soft window costs extra operation space vs DEL");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
