#include "index/codec.h"

#include <bit>
#include <cstring>
#include <limits>

namespace wavekit {
namespace {

// ---------------------------------------------------------------------------
// Varint / zigzag primitives (LEB128, little-endian groups of 7 bits).

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline void PutVarint(uint64_t v, std::vector<std::byte>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<std::byte>(v));
}

// Bounds-checked varint read. Rejects encodings longer than 10 bytes and
// set bits beyond the 64th (non-canonical / overflowing input).
inline bool GetVarint(const std::byte* data, size_t size, size_t* at,
                      uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*at >= size) return false;
    const uint64_t b = static_cast<uint64_t>(data[(*at)++]);
    if (shift == 63 && (b & 0xfe) != 0) return false;  // overflows 64 bits
    v |= (b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Bit packing primitives.

inline int BitWidth(uint64_t max_delta) {
  return max_delta == 0 ? 0 : 64 - std::countl_zero(max_delta);
}

inline uint64_t PackedBytes(size_t count, int width) {
  return (static_cast<uint64_t>(count) * static_cast<uint64_t>(width) + 7) / 8;
}

void PutFixed(uint64_t v, int bytes, std::vector<std::byte>* out) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<std::byte>(v & 0xff));
    v >>= 8;
  }
}

inline bool GetFixed(const std::byte* data, size_t size, size_t* at, int bytes,
                     uint64_t* out) {
  if (size - *at < static_cast<size_t>(bytes)) return false;
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(data[*at + i]) << (8 * i);
  }
  *at += bytes;
  *out = v;
  return true;
}

// Appends `count` fields of `width` bits each, LSB-first in a little-endian
// bit stream. Requires width <= 57 so a field always fits the accumulator
// alongside up to 7 pending bits; wider fields go through PackColumnWide.
void PackColumn(const uint64_t* deltas, size_t count, int width,
                std::vector<std::byte>* out) {
  if (width == 0) return;
  uint64_t acc = 0;
  int acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    acc |= deltas[i] << acc_bits;
    acc_bits += width;
    while (acc_bits >= 8) {
      out->push_back(static_cast<std::byte>(acc & 0xff));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out->push_back(static_cast<std::byte>(acc & 0xff));
}

bool UnpackColumn(const std::byte* data, size_t size, size_t* at, size_t count,
                  int width, uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < count; ++i) out[i] = 0;
    return true;
  }
  const uint64_t need = PackedBytes(count, width);
  if (size - *at < need) return false;
  const std::byte* p = data + *at;
  uint64_t acc = 0;
  int acc_bits = 0;
  size_t byte_at = 0;
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < width) {
      // Widths up to 57 always fit; for wider fields split the load.
      if (acc_bits <= 56) {
        acc |= static_cast<uint64_t>(p[byte_at++]) << acc_bits;
        acc_bits += 8;
      } else {
        break;
      }
    }
    if (acc_bits >= width) {
      out[i] = acc & mask;
      acc >>= width;
      acc_bits -= width;
    } else {
      // width in (57, 64]: assemble from acc plus the remaining high bits.
      uint64_t v = acc;
      int have = acc_bits;
      acc = 0;
      acc_bits = 0;
      while (have < width) {
        const uint64_t b = static_cast<uint64_t>(p[byte_at++]);
        if (have + 8 <= width) {
          v |= b << have;
          have += 8;
        } else {
          const int take = width - have;
          v |= (b & ((uint64_t{1} << take) - 1)) << have;
          acc = b >> take;
          acc_bits = 8 - take;
          have = width;
        }
      }
      out[i] = v & mask;
    }
  }
  *at += need;
  return true;
}

// The wide-field path in PackColumn: widths above 57 can carry more pending
// bits than the 64-bit accumulator holds after a flush, so packing splits
// each field into byte-sized emissions directly.
void PackColumnWide(const uint64_t* deltas, size_t count, int width,
                    std::vector<std::byte>* out) {
  uint64_t acc = 0;
  int acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = deltas[i];
    int left = width;
    while (left > 0) {
      const int take = std::min(8 - acc_bits, left);
      acc |= (v & ((uint64_t{1} << take) - 1)) << acc_bits;
      v >>= take;
      left -= take;
      acc_bits += take;
      if (acc_bits == 8) {
        out->push_back(static_cast<std::byte>(acc));
        acc = 0;
        acc_bits = 0;
      }
    }
  }
  if (acc_bits > 0) out->push_back(static_cast<std::byte>(acc));
}

// ---------------------------------------------------------------------------
// kDelta: columnar zigzag-delta varints.

size_t DeltaSize(const Entry* entries, size_t count) {
  size_t total = 0;
  int64_t prev_id = 0;
  int64_t prev_day = 0;
  for (size_t i = 0; i < count; ++i) {
    total += VarintSize(
        ZigZag(static_cast<int64_t>(entries[i].record_id) - prev_id));
    total += VarintSize(ZigZag(static_cast<int64_t>(entries[i].day) -
                               prev_day));
    total += VarintSize(entries[i].aux);
    prev_id = static_cast<int64_t>(entries[i].record_id);
    prev_day = entries[i].day;
  }
  return total;
}

void DeltaEncode(const Entry* entries, size_t count,
                 std::vector<std::byte>* out) {
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t id = static_cast<int64_t>(entries[i].record_id);
    PutVarint(ZigZag(id - prev), out);
    prev = id;
  }
  prev = 0;
  for (size_t i = 0; i < count; ++i) {
    PutVarint(ZigZag(entries[i].day - prev), out);
    prev = entries[i].day;
  }
  for (size_t i = 0; i < count; ++i) {
    PutVarint(entries[i].aux, out);
  }
}

Status DeltaDecode(const std::byte* data, size_t size, size_t count,
                   Entry* out) {
  size_t at = 0;
  uint64_t v = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    if (!GetVarint(data, size, &at, &v)) {
      return Status::DataLoss("codec: truncated delta record_id column");
    }
    prev += UnZigZag(v);
    out[i].record_id = static_cast<uint64_t>(prev);
  }
  prev = 0;
  for (size_t i = 0; i < count; ++i) {
    if (!GetVarint(data, size, &at, &v)) {
      return Status::DataLoss("codec: truncated delta day column");
    }
    prev += UnZigZag(v);
    if (prev < std::numeric_limits<Day>::min() ||
        prev > std::numeric_limits<Day>::max()) {
      return Status::DataLoss("codec: delta day out of range");
    }
    out[i].day = static_cast<Day>(prev);
  }
  for (size_t i = 0; i < count; ++i) {
    if (!GetVarint(data, size, &at, &v)) {
      return Status::DataLoss("codec: truncated delta aux column");
    }
    if (v > std::numeric_limits<uint32_t>::max()) {
      return Status::DataLoss("codec: delta aux out of range");
    }
    out[i].aux = static_cast<uint32_t>(v);
  }
  if (at != size) {
    return Status::DataLoss("codec: trailing bytes after delta columns");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// kBitPack: per-column base + fixed-width packed (value - base).
//
// Layout: [id base: 8B][id width: 1B][packed ids]
//         [day base: 4B][day width: 1B][packed days]
//         [aux base: 4B][aux width: 1B][packed auxes]
// Deltas are computed in the column's unsigned representation, so signed
// days work via two's-complement wraparound.

struct BitPackPlan {
  uint64_t id_base = 0, day_base = 0, aux_base = 0;
  int id_width = 0, day_width = 0, aux_width = 0;
};

BitPackPlan PlanBitPack(const Entry* entries, size_t count) {
  BitPackPlan plan;
  uint64_t id_min = entries[0].record_id, id_max = entries[0].record_id;
  uint32_t day_min = static_cast<uint32_t>(entries[0].day);
  uint32_t day_max = day_min;
  uint32_t aux_min = entries[0].aux, aux_max = entries[0].aux;
  for (size_t i = 1; i < count; ++i) {
    id_min = std::min(id_min, entries[i].record_id);
    id_max = std::max(id_max, entries[i].record_id);
    const uint32_t d = static_cast<uint32_t>(entries[i].day);
    day_min = std::min(day_min, d);
    day_max = std::max(day_max, d);
    aux_min = std::min(aux_min, entries[i].aux);
    aux_max = std::max(aux_max, entries[i].aux);
  }
  plan.id_base = id_min;
  plan.day_base = day_min;
  plan.aux_base = aux_min;
  plan.id_width = BitWidth(id_max - id_min);
  plan.day_width = BitWidth(uint64_t{day_max} - day_min);
  plan.aux_width = BitWidth(uint64_t{aux_max} - aux_min);
  return plan;
}

size_t BitPackSize(size_t count, const BitPackPlan& plan) {
  return (8 + 1 + PackedBytes(count, plan.id_width)) +
         (4 + 1 + PackedBytes(count, plan.day_width)) +
         (4 + 1 + PackedBytes(count, plan.aux_width));
}

void BitPackEncode(const Entry* entries, size_t count, const BitPackPlan& plan,
                   std::vector<std::byte>* out) {
  std::vector<uint64_t> deltas(count);

  PutFixed(plan.id_base, 8, out);
  PutFixed(static_cast<uint64_t>(plan.id_width), 1, out);
  for (size_t i = 0; i < count; ++i) {
    deltas[i] = entries[i].record_id - plan.id_base;
  }
  if (plan.id_width > 57) {
    PackColumnWide(deltas.data(), count, plan.id_width, out);
  } else {
    PackColumn(deltas.data(), count, plan.id_width, out);
  }

  PutFixed(plan.day_base, 4, out);
  PutFixed(static_cast<uint64_t>(plan.day_width), 1, out);
  for (size_t i = 0; i < count; ++i) {
    deltas[i] = uint64_t{static_cast<uint32_t>(entries[i].day)} -
                plan.day_base;
  }
  PackColumn(deltas.data(), count, plan.day_width, out);

  PutFixed(plan.aux_base, 4, out);
  PutFixed(static_cast<uint64_t>(plan.aux_width), 1, out);
  for (size_t i = 0; i < count; ++i) {
    deltas[i] = uint64_t{entries[i].aux} - plan.aux_base;
  }
  PackColumn(deltas.data(), count, plan.aux_width, out);
}

Status BitPackDecode(const std::byte* data, size_t size, size_t count,
                     Entry* out) {
  size_t at = 0;
  uint64_t base = 0, width = 0;
  std::vector<uint64_t> deltas(count);

  if (!GetFixed(data, size, &at, 8, &base) ||
      !GetFixed(data, size, &at, 1, &width) || width > 64 ||
      !UnpackColumn(data, size, &at, count, static_cast<int>(width),
                    deltas.data())) {
    return Status::DataLoss("codec: malformed bitpack record_id column");
  }
  for (size_t i = 0; i < count; ++i) out[i].record_id = base + deltas[i];

  if (!GetFixed(data, size, &at, 4, &base) ||
      !GetFixed(data, size, &at, 1, &width) || width > 32 ||
      !UnpackColumn(data, size, &at, count, static_cast<int>(width),
                    deltas.data())) {
    return Status::DataLoss("codec: malformed bitpack day column");
  }
  for (size_t i = 0; i < count; ++i) {
    out[i].day = static_cast<Day>(
        static_cast<uint32_t>(base + deltas[i]));
  }

  if (!GetFixed(data, size, &at, 4, &base) ||
      !GetFixed(data, size, &at, 1, &width) || width > 32 ||
      !UnpackColumn(data, size, &at, count, static_cast<int>(width),
                    deltas.data())) {
    return Status::DataLoss("codec: malformed bitpack aux column");
  }
  for (size_t i = 0; i < count; ++i) {
    out[i].aux = static_cast<uint32_t>(base + deltas[i]);
  }

  if (at != size) {
    return Status::DataLoss("codec: trailing bytes after bitpack columns");
  }
  return Status::OK();
}

}  // namespace

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kRaw:
      return "raw";
    case Codec::kDelta:
      return "delta";
    case Codec::kBitPack:
      return "bitpack";
  }
  return "unknown";
}

const char* CodecModeName(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kAuto:
      return "auto";
    case CodecMode::kDelta:
      return "delta";
    case CodecMode::kBitPack:
      return "bitpack";
  }
  return "unknown";
}

Result<CodecMode> CodecModeFromName(const std::string& name) {
  if (name == "raw") return CodecMode::kRaw;
  if (name == "auto") return CodecMode::kAuto;
  if (name == "delta") return CodecMode::kDelta;
  if (name == "bitpack") return CodecMode::kBitPack;
  return Status::InvalidArgument("unknown codec mode: " + name +
                                 " (want raw|auto|delta|bitpack)");
}

Result<Codec> CodecFromId(uint64_t id) {
  if (id >= static_cast<uint64_t>(kNumCodecs)) {
    return Status::InvalidArgument("codec id out of range: " +
                                   std::to_string(id));
  }
  return static_cast<Codec>(id);
}

EncodedBucket EncodeBucket(const Entry* entries, size_t count,
                           CodecMode mode) {
  EncodedBucket result;
  if (mode == CodecMode::kRaw || count == 0) return result;

  const size_t raw_size = count * kEntrySize;
  const bool try_delta =
      mode == CodecMode::kAuto || mode == CodecMode::kDelta;
  const bool try_bitpack =
      mode == CodecMode::kAuto || mode == CodecMode::kBitPack;

  const size_t delta_size =
      try_delta ? DeltaSize(entries, count) : raw_size;
  BitPackPlan plan;
  size_t bitpack_size = raw_size;
  if (try_bitpack) {
    plan = PlanBitPack(entries, count);
    bitpack_size = BitPackSize(count, plan);
  }

  // Strictly-smaller-than-raw wins; between codecs the smaller wins, with
  // kDelta (the lower id) as the deterministic tiebreak.
  Codec winner = Codec::kRaw;
  size_t winner_size = raw_size;
  if (try_delta && delta_size < winner_size) {
    winner = Codec::kDelta;
    winner_size = delta_size;
  }
  if (try_bitpack && bitpack_size < winner_size) {
    winner = Codec::kBitPack;
    winner_size = bitpack_size;
  }
  if (winner == Codec::kRaw) return result;

  result.codec = winner;
  result.bytes.reserve(winner_size);
  if (winner == Codec::kDelta) {
    DeltaEncode(entries, count, &result.bytes);
  } else {
    BitPackEncode(entries, count, plan, &result.bytes);
  }
  return result;
}

Status DecodeBucket(Codec codec, const std::byte* data, size_t size,
                    size_t count, Entry* out) {
  switch (codec) {
    case Codec::kRaw:
      if (size != count * kEntrySize) {
        return Status::DataLoss("codec: raw bucket size mismatch");
      }
      if (count > 0) std::memcpy(out, data, size);
      return Status::OK();
    case Codec::kDelta:
      return DeltaDecode(data, size, count, out);
    case Codec::kBitPack:
      return BitPackDecode(data, size, count, out);
  }
  return Status::DataLoss("codec: unknown codec id");
}

}  // namespace wavekit
