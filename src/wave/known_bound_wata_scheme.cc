#include "wave/known_bound_wata_scheme.h"

#include <algorithm>

#include "util/logging.h"
#include "util/macros.h"

namespace wavekit {

Status KnownBoundWataScheme::ValidateConfig() const {
  WAVEKIT_RETURN_NOT_OK(Scheme::ValidateConfig());
  if (config_.num_indexes < 2) {
    return Status::InvalidArgument(
        "KB-WATA, like WATA, requires at least two constituent indexes");
  }
  if (config_.size_bound_entries == 0) {
    return Status::InvalidArgument(
        "KB-WATA requires size_bound_entries > 0 (the known bound B)");
  }
  return Status::OK();
}

uint64_t KnownBoundWataScheme::SliceBound() const {
  const uint64_t parts = static_cast<uint64_t>(config_.num_indexes) - 1;
  return (config_.size_bound_entries + parts - 1) / parts;
}

Status KnownBoundWataScheme::DoStart() {
  // Fill constituents greedily by the size slice: start a new one whenever
  // the current one would exceed B/(n-1) entries.
  const uint64_t slice = SliceBound();
  TimeSet cluster;
  uint64_t cluster_entries = 0;
  auto flush = [&]() -> Status {
    if (cluster.empty()) return Status::OK();
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(cluster, "I" + std::to_string(++next_name_), Phase::kStart));
    slots_.push_back(std::move(index));
    cluster.clear();
    cluster_entries = 0;
    return Status::OK();
  };
  for (Day d = 1; d <= config_.window; ++d) {
    WAVEKIT_ASSIGN_OR_RETURN(const DayBatch* batch, env_.day_store->Get(d));
    // Close a slice only once it has REACHED the threshold (allowing slight
    // overshoot): under-full slices would mean more than n-1 slices per
    // window, breaking the n/(n-1) bound.
    if (cluster_entries >= slice) {
      WAVEKIT_RETURN_NOT_OK(flush());
    }
    cluster.insert(d);
    cluster_entries += batch->EntryCount();
  }
  WAVEKIT_RETURN_NOT_OK(flush());
  RegisterSlots();
  return Status::OK();
}

Status KnownBoundWataScheme::DropFullyExpired() {
  const Day oldest_live = current_day_ - config_.window + 1;
  for (size_t j = 0; j < slots_.size();) {
    const TimeSet& days = slots_[j]->time_set();
    if (!days.empty() && *days.rbegin() < oldest_live) {
      WAVEKIT_RETURN_NOT_OK(DropIndex(slots_[j]));
      slots_.erase(slots_.begin() + static_cast<long>(j));
    } else {
      ++j;
    }
  }
  return Status::OK();
}

Status KnownBoundWataScheme::DoAdopt() {
  // KB-WATA's constituent count varies with the data (it is only bounded by
  // n), so the base slot-count check does not apply. Slots are already
  // sorted oldest-first; the back one is the fill target. Name continuation:
  // start numbering past the adopted count.
  if (static_cast<int>(slots_.size()) > config_.num_indexes) {
    return Status::InvalidArgument(
        "adopted wave index has more constituents than n");
  }
  next_name_ = static_cast<int>(slots_.size());
  return Status::OK();
}

Status KnownBoundWataScheme::DoTransition(const DayBatch& new_day) {
  WAVEKIT_RETURN_NOT_OK(DropFullyExpired());
  const uint64_t slice = SliceBound();
  std::shared_ptr<ConstituentIndex>* fill =
      slots_.empty() ? nullptr : &slots_.back();
  // Roll once the filling constituent has reached its slice (slices may
  // overshoot by one day but are never under-full, which keeps the live
  // constituent count at <= n for any volume stream within the bound B).
  const bool fill_full = fill != nullptr && (*fill)->entry_count() >= slice;
  const bool slot_free =
      static_cast<int>(slots_.size()) < config_.num_indexes;
  if (fill == nullptr || (fill_full && slot_free)) {
    obs::Span span = TraceOp("KB-WATA.new_slice");
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> fresh,
        BuildIndex({new_day.day}, "I" + std::to_string(++next_name_),
                   Phase::kTransition));
    slots_.push_back(fresh);
    wave_.AddIndex(std::move(fresh));
  } else {
    obs::Span span = TraceOp("KB-WATA.fill_slice");
    if (fill_full) {
      // The promised bound was optimistic: degrade gracefully rather than
      // fail, as a production system must.
      WAVEKIT_LOG(Warning) << "KB-WATA: size bound exceeded with all "
                           << config_.num_indexes
                           << " constituents in use; appending past the slice";
    }
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, fill, Phase::kTransition));
  }
  return Status::OK();
}

}  // namespace wavekit
