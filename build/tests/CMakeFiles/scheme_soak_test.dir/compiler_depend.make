# Empty compiler generated dependencies file for scheme_soak_test.
# This may be replaced when dependencies are built.
