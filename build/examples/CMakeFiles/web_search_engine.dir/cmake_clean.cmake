file(REMOVE_RECURSE
  "CMakeFiles/web_search_engine.dir/web_search_engine.cc.o"
  "CMakeFiles/web_search_engine.dir/web_search_engine.cc.o.d"
  "web_search_engine"
  "web_search_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_search_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
