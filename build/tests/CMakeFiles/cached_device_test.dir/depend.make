# Empty dependencies file for cached_device_test.
# This may be replaced when dependencies are built.
