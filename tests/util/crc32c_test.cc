// CRC-32C (Castagnoli): known-answer vectors, the Extend composition
// property the in-place bucket append relies on, and domain separation from
// the metadata CRC-32 (util/crc32.h).

#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/crc32.h"

namespace wavekit {
namespace {

TEST(Crc32cTest, EmptyIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c(std::string_view()), 0u);
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // The classic check value for CRC-32C (reflected, init/final 0xFFFFFFFF).
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);

  // RFC 3720 (iSCSI) appendix vectors: 32 bytes of zeros / ones.
  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesLikeConcatenation) {
  const std::string a = "the quick brown fox ";
  const std::string b = "jumps over the lazy dog";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
  // Extending with nothing is the identity.
  EXPECT_EQ(Crc32cExtend(Crc32c(a), nullptr, 0), Crc32c(a));
  // Extending the empty CRC is a plain checksum.
  EXPECT_EQ(Crc32cExtend(0, b.data(), b.size()), Crc32c(b));
}

TEST(Crc32cTest, ExtendChainMatchesByteAtATime) {
  const std::string data = "0123456789abcdefghijklmnopqrstuvwxyz";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, Crc32c(data));
}

TEST(Crc32cTest, EveryBitFlipChangesTheChecksum) {
  // CRC-32C detects all single-bit errors; verify over a 16-byte "entry".
  const std::string entry = "wavekit-entry-00";
  const uint32_t clean = Crc32c(entry);
  for (size_t byte = 0; byte < entry.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = entry;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, DomainSeparatedFromMetadataCrc32) {
  // The data-plane checksum (Castagnoli) and the metadata checksum (IEEE,
  // util/crc32.h) must disagree on ordinary inputs, so a bucket checksum can
  // never be confused for a checkpoint footer and vice versa.
  const std::string_view probe = "123456789";
  EXPECT_NE(Crc32c(probe), Crc32(probe));
}

}  // namespace
}  // namespace wavekit
