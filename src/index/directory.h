// Directory: the in-memory search structure mapping values to buckets.
//
// The paper assumes "the directory is in memory, and the buckets are on
// disk" and allows "e.g., a B+Tree or a hash table". wavekit provides both:
// HashDirectory (unordered, O(1) lookups) and BTreeDirectory (ordered
// iteration, range-friendly). Directory operations are never charged device
// I/O.

#ifndef WAVEKIT_INDEX_DIRECTORY_H_
#define WAVEKIT_INDEX_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "index/codec.h"
#include "index/entry.h"
#include "index/record.h"
#include "storage/device.h"
#include "util/status.h"

namespace wavekit {

/// \brief Location and occupancy of one value's bucket on the device.
///
/// `capacity` is the number of entry slots the bucket holds; `count` is how
/// many are live. A packed bucket has count == capacity.
///
/// `codec` names the on-device layout (index/codec.h). For kRaw the extent
/// is capacity * kEntrySize bytes of verbatim entries, appendable in place.
/// For a compressed codec the bucket is immutable-on-device: count ==
/// capacity, and the extent is exactly the encoded byte string (strictly
/// smaller than the raw form — selection never keeps a non-winning codec).
/// Mutations of a compressed bucket decode and rewrite it as kRaw.
///
/// `crc` is the CRC-32C (util/crc32c.h) of the *stored* bytes — the first
/// stored_length() bytes of the extent (the live prefix for kRaw, the whole
/// encoded extent otherwise); kRaw slack beyond the live prefix is not
/// covered. Every mutation primitive keeps it current, the read paths verify
/// it, and the checkpoint persists it (the "sidecar map" lives in the
/// directory, so verification costs no extra I/O).
struct BucketInfo {
  Extent extent;
  uint32_t count = 0;
  uint32_t capacity = 0;
  uint32_t crc = 0;
  Codec codec = Codec::kRaw;

  /// Bytes the checksum covers and reads must transfer: the live prefix for
  /// kRaw, the whole (exactly-sized) extent for compressed codecs.
  uint64_t stored_length() const {
    return codec == Codec::kRaw ? uint64_t{count} * kEntrySize
                                : extent.length;
  }

  bool operator==(const BucketInfo& other) const = default;
};

/// \brief Which directory implementation an index uses.
enum class DirectoryKind {
  kHash,
  kBTree,
};

const char* DirectoryKindName(DirectoryKind kind);

/// \brief Abstract value -> BucketInfo map.
class Directory {
 public:
  virtual ~Directory() = default;

  virtual DirectoryKind kind() const = 0;

  /// Returns the bucket info for `value`, or nullptr if absent. The pointer
  /// stays valid until the next mutation of the directory.
  virtual BucketInfo* Find(const Value& value) = 0;
  virtual const BucketInfo* Find(const Value& value) const = 0;

  /// Inserts a new mapping. Fails with AlreadyExists if present.
  virtual Status Insert(const Value& value, const BucketInfo& info) = 0;

  /// Removes a mapping. Fails with NotFound if absent.
  virtual Status Remove(const Value& value) = 0;

  /// Number of distinct values.
  virtual size_t size() const = 0;

  /// Visits every (value, bucket) pair. BTreeDirectory visits in ascending
  /// value order; HashDirectory order is unspecified but stable between
  /// mutations.
  virtual void ForEach(
      const std::function<void(const Value&, const BucketInfo&)>& fn) const = 0;

  /// A fresh, empty directory of the same kind.
  virtual std::unique_ptr<Directory> CloneEmpty() const = 0;

  /// True iff ForEach visits values in sorted order.
  virtual bool ordered() const = 0;
};

/// Factory for the given kind.
std::unique_ptr<Directory> MakeDirectory(DirectoryKind kind);

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_DIRECTORY_H_
