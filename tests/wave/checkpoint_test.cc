#include "wave/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "index/codec.h"
#include "index/index_builder.h"
#include "storage/file_device.h"
#include "testing/test_env.h"
#include "util/crc32.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class CheckpointTest : public testing::StoreTest {
 protected:
  // A wave index of two constituents (one packed, one incrementally grown).
  void BuildWave() {
    std::vector<DayBatch> batches;
    for (Day d = 1; d <= 3; ++d) {
      batches.push_back(MakeMixedBatch(d));
      reference_.Add(batches.back());
    }
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    auto packed = IndexBuilder::BuildPacked(store_.device(),
                                            store_.allocator(), Options(),
                                            ptrs, "packed-part");
    ASSERT_TRUE(packed.ok()) << packed.status();
    wave_.AddIndex(std::move(packed).ValueOrDie());

    auto grown = std::make_shared<ConstituentIndex>(
        store_.device(), store_.allocator(), Options(), "grown-part");
    for (Day d = 4; d <= 6; ++d) {
      DayBatch batch = MakeMixedBatch(d);
      reference_.Add(batch);
      ASSERT_OK(grown->AddBatch(batch));
    }
    wave_.AddIndex(std::move(grown));
  }

  WaveIndex wave_;
  ReferenceIndex reference_;
};

TEST_F(CheckpointTest, SerializeIsDeterministic) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string a, SerializeCheckpoint(wave_));
  ASSERT_OK_AND_ASSIGN(std::string b, SerializeCheckpoint(wave_));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("wavekit-checkpoint 4"), std::string::npos);
  EXPECT_NE(a.find("packed-part"), std::string::npos);
  EXPECT_NE(a.find("\nfooter "), std::string::npos);
}

TEST_F(CheckpointTest, RoundTripPreservesEverything) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  // Reopen against the same device with a FRESH allocator (as a restart
  // would): every bucket extent must be re-reserved.
  ExtentAllocator fresh_allocator(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh_allocator,
                            Options()));
  ASSERT_EQ(reopened.num_constituents(), 2u);
  EXPECT_EQ(reopened.CoveredDays(), (TimeSet{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(reopened.EntryCount(), wave_.EntryCount());

  // Queries over the reopened index match brute force.
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));
  std::vector<Entry> scanned;
  ASSERT_OK(reopened.TimedSegmentScan(
      DayRange{2, 5},
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference_.ScanAll(2, 5));

  // Packedness survived; so did structural invariants.
  EXPECT_TRUE(reopened.constituents()[0]->packed());
  ASSERT_OK(reopened.constituents()[0]->CheckPacked());
  for (const auto& c : reopened.constituents()) {
    ASSERT_OK(c->CheckConsistency());
  }
  // The fresh allocator accounts exactly the live bytes.
  EXPECT_EQ(fresh_allocator.allocated_bytes(), wave_.AllocatedBytes());
}

TEST_F(CheckpointTest, ReopenedIndexSupportsFurtherMaintenance) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh_allocator(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh_allocator,
                            Options()));
  // New allocations must not clobber reserved buckets: add a day to the
  // grown part and re-check both parts.
  auto grown = reopened.constituents()[1];
  DayBatch batch = MakeMixedBatch(7);
  reference_.Add(batch);
  ASSERT_OK(grown->AddBatch(batch));
  ASSERT_OK(grown->CheckConsistency());
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("beta", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("beta", kDayNegInf, kDayPosInf));
}

TEST_F(CheckpointTest, FileRoundTripOnDurableDevice) {
  // Full restart simulation: build on a FileDevice, checkpoint to a second
  // file, drop every in-memory object, reopen both files, query.
  const std::string data_path = ::testing::TempDir() + "wavekit_ckpt_data";
  const std::string ckpt_path = ::testing::TempDir() + "wavekit_ckpt_meta";
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
  ReferenceIndex reference;
  {
    ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(data_path, 1 << 24));
    MeteredDevice device(file.get());
    ExtentAllocator allocator(1 << 24);
    WaveIndex wave;
    for (Day d = 1; d <= 4; ++d) {
      DayBatch batch = MakeMixedBatch(d);
      reference.Add(batch);
      auto built = IndexBuilder::BuildPacked(&device, &allocator, {}, batch,
                                             "I" + std::to_string(d));
      ASSERT_TRUE(built.ok()) << built.status();
      wave.AddIndex(std::move(built).ValueOrDie());
    }
    ASSERT_OK(WriteCheckpoint(wave, ckpt_path));
    ASSERT_OK(file->Sync());
    // Prevent the destructors from freeing the (persisted) extents being a
    // problem: allocator and indexes die here, the FILE keeps the bytes.
  }
  {
    ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(data_path, 1 << 24));
    MeteredDevice device(file.get());
    ExtentAllocator allocator(1 << 24);
    ASSERT_OK_AND_ASSIGN(WaveIndex wave,
                         LoadCheckpoint(ckpt_path, &device, &allocator, {}));
    EXPECT_EQ(wave.num_constituents(), 4u);
    std::vector<Entry> out;
    ASSERT_OK(wave.IndexProbe("gamma", &out));
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe("gamma", kDayNegInf, kDayPosInf));
  }
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(CheckpointTest, CorruptCheckpointsAreRejected) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh(store_.allocator()->capacity());
  // Bad magic.
  EXPECT_FALSE(DeserializeCheckpoint("not-a-checkpoint 1", store_.device(),
                                     &fresh, Options())
                   .ok());
  // Bad version.
  std::string bad_version = contents;
  bad_version.replace(bad_version.find(" 4\n"), 3, " 9\n");
  EXPECT_FALSE(DeserializeCheckpoint(bad_version, store_.device(), &fresh,
                                     Options())
                   .ok());
  // Truncation.
  EXPECT_FALSE(DeserializeCheckpoint(contents.substr(0, contents.size() / 2),
                                     store_.device(), &fresh, Options())
                   .ok());
  // Overlapping buckets (same checkpoint loaded twice into one allocator).
  // The first load must stay alive, or its destructor releases the
  // reservations again.
  ExtentAllocator once(store_.allocator()->capacity());
  auto first_load =
      DeserializeCheckpoint(contents, store_.device(), &once, Options());
  ASSERT_TRUE(first_load.ok()) << first_load.status();
  auto again =
      DeserializeCheckpoint(contents, store_.device(), &once, Options());
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsFailedPrecondition());
}

TEST_F(CheckpointTest, LoadFromMissingFileFails) {
  ExtentAllocator fresh(1024);
  EXPECT_TRUE(LoadCheckpoint("/no/such/file", store_.device(), &fresh,
                             Options())
                  .status()
                  .IsNotFound());
}

TEST_F(CheckpointTest, TruncatedFileIsRejectedWithClearError) {
  // Every proper prefix must be rejected — a crash mid-write (without the
  // atomic-rename discipline) leaves exactly this shape on disk.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  for (size_t len : {size_t{0}, contents.size() / 4, contents.size() / 2,
                     contents.size() - 1}) {
    ExtentAllocator fresh(store_.allocator()->capacity());
    auto loaded = DeserializeCheckpoint(contents.substr(0, len),
                                        store_.device(), &fresh, Options());
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_NE(loaded.status().message().find("truncat"), std::string::npos)
        << loaded.status();
  }
}

TEST_F(CheckpointTest, EveryFlippedByteIsDetected) {
  // The CRC32 footer must catch a single flipped byte anywhere in the body,
  // and the length field must catch tampering with the footer itself.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  // Stride through the file (checking every byte is O(n^2) work for no
  // additional coverage; CRC32 detects all single-byte errors by design).
  for (size_t i = 0; i < contents.size(); i += 7) {
    std::string corrupt = contents;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    ExtentAllocator fresh(store_.allocator()->capacity());
    EXPECT_FALSE(DeserializeCheckpoint(corrupt, store_.device(), &fresh,
                                       Options())
                     .ok())
        << "flipped byte at offset " << i << " accepted";
  }
}

TEST_F(CheckpointTest, WrongVersionReportsVersion) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  std::string bad_version = contents;
  bad_version.replace(bad_version.find(" 4\n"), 3, " 9\n");
  ExtentAllocator fresh(store_.allocator()->capacity());
  auto loaded =
      DeserializeCheckpoint(bad_version, store_.device(), &fresh, Options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version 9"), std::string::npos)
      << loaded.status();
}

// Re-seals a (possibly tampered) checkpoint body with a correct footer, so a
// test can prove a deeper validation layer — not the footer CRC — rejects it.
std::string Reseal(const std::string& body) {
  return body + "footer " + std::to_string(body.size()) + " " +
         std::to_string(Crc32(body)) + "\n";
}

// Doctors a serialized v4 checkpoint down to the v2 format: version header
// rewritten, the per-bucket <crc32c> <codec> <stored> columns stripped,
// footer recomputed. This is byte-for-byte what a pre-upgrade deployment
// would have written.
std::string DowngradeToV2(const std::string& v4) {
  const size_t footer_at = v4.rfind("\nfooter ");
  EXPECT_NE(footer_at, std::string::npos);
  std::istringstream in(v4.substr(0, footer_at + 1));
  std::string body, line;
  while (std::getline(in, line)) {
    if (line.rfind("wavekit-checkpoint ", 0) == 0) {
      line = "wavekit-checkpoint 2";
    } else if (line.rfind("bucket ", 0) == 0) {
      for (int i = 0; i < 3; ++i) line.erase(line.rfind(' '));
    }
    body += line + "\n";
  }
  return Reseal(body);
}

// Same doctoring down to the v3 format: the <codec> <stored> columns are
// dropped, keeping the checksum column.
std::string DowngradeToV3(const std::string& v4) {
  const size_t footer_at = v4.rfind("\nfooter ");
  EXPECT_NE(footer_at, std::string::npos);
  std::istringstream in(v4.substr(0, footer_at + 1));
  std::string body, line;
  while (std::getline(in, line)) {
    if (line.rfind("wavekit-checkpoint ", 0) == 0) {
      line = "wavekit-checkpoint 3";
    } else if (line.rfind("bucket ", 0) == 0) {
      for (int i = 0; i < 2; ++i) line.erase(line.rfind(' '));
    }
    body += line + "\n";
  }
  return Reseal(body);
}

TEST_F(CheckpointTest, V2CheckpointUpgradesWithRecomputedChecksums) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v4, SerializeCheckpoint(wave_));
  const std::string v2 = DowngradeToV2(v4);
  ASSERT_NE(v2, v4);
  EXPECT_NE(v2.find("wavekit-checkpoint 2"), std::string::npos);

  // A v2 file loads: checksums are seeded from the device bytes.
  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(v2, store_.device(), &fresh, Options()));
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));

  // And the upgrade is complete, not cosmetic: re-serializing writes v4
  // with the recomputed checksums, identical to the native v4 file (the
  // buckets are raw, so the codec/stored columns are the trivial ones).
  ASSERT_OK_AND_ASSIGN(std::string resaved, SerializeCheckpoint(reopened));
  EXPECT_EQ(resaved, v4);

  // The seeded checksums have teeth: rot AFTER the upgrade is caught.
  Extent live{0, 0};
  ASSERT_OK(reopened.constituents()[0]->ForEachBucket(
      [&](const Value& v, const BucketInfo& info) {
        if (v == "alpha") {
          live = Extent{info.extent.offset, uint64_t{info.count} * kEntrySize};
        }
      }));
  ASSERT_GT(live.length, 0u);
  std::vector<std::byte> buf(static_cast<size_t>(live.length));
  ASSERT_OK(store_.device()->Read(live.offset, buf));
  buf[0] ^= std::byte{0x04};
  ASSERT_OK(store_.device()->Write(live.offset, buf));
  out.clear();
  EXPECT_TRUE(reopened.constituents()[0]->Probe("alpha", &out).IsDataLoss());
}

TEST_F(CheckpointTest, V3ChecksumColumnCatchesRotThatV2CannotSee) {
  // Rot the medium AFTER the checkpoint was taken but BEFORE it is loaded —
  // the at-rest window a restart cannot observe directly. The v3 file
  // carries the pre-rot checksum and catches the rot on first read; the v2
  // file has nothing to compare against and trusts the rotten bytes. This
  // asymmetry is the reason the format grew the column.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v4, SerializeCheckpoint(wave_));
  const std::string v2 = DowngradeToV2(v4);
  Extent live{0, 0};
  ASSERT_OK(wave_.constituents()[0]->ForEachBucket(
      [&](const Value& v, const BucketInfo& info) {
        if (v == "beta") {
          live = Extent{info.extent.offset, uint64_t{info.count} * kEntrySize};
        }
      }));
  ASSERT_GT(live.length, 0u);
  std::vector<std::byte> buf(static_cast<size_t>(live.length));
  ASSERT_OK(store_.device()->Read(live.offset, buf));
  buf[buf.size() / 2] ^= std::byte{0x20};
  ASSERT_OK(store_.device()->Write(live.offset, buf));

  std::vector<Entry> out;
  {
    ExtentAllocator fresh(store_.allocator()->capacity());
    ASSERT_OK_AND_ASSIGN(
        WaveIndex from_v4,
        DeserializeCheckpoint(v4, store_.device(), &fresh, Options()));
    EXPECT_TRUE(from_v4.constituents()[0]->Probe("beta", &out).IsDataLoss());
    EXPECT_TRUE(from_v4.constituents()[0]->corrupt());
  }
  {
    ExtentAllocator fresh(store_.allocator()->capacity());
    ASSERT_OK_AND_ASSIGN(
        WaveIndex from_v2,
        DeserializeCheckpoint(v2, store_.device(), &fresh, Options()));
    out.clear();
    EXPECT_OK(from_v2.constituents()[0]->Probe("beta", &out));  // trusted rot
    EXPECT_FALSE(from_v2.constituents()[0]->corrupt());
  }
}

TEST_F(CheckpointTest, DoctoredChecksumColumnIsCaughtOnFirstRead) {
  // An attacker (or bug) that rewrites a bucket checksum AND re-seals the
  // footer gets past the file-integrity layer by construction — the data
  // checksum verification at read time is the layer that must catch it.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v4, SerializeCheckpoint(wave_));
  const size_t footer_at = v4.rfind("\nfooter ");
  std::istringstream in(v4.substr(0, footer_at + 1));
  std::string body, line;
  bool doctored = false;
  while (std::getline(in, line)) {
    if (!doctored && line.rfind("bucket ", 0) == 0) {
      // v4 bucket line: ... <crc32c> <codec> <stored>; the checksum is the
      // third-from-last column.
      size_t end = line.size();
      for (int i = 0; i < 2; ++i) end = line.rfind(' ', end - 1);
      const size_t crc_at = line.rfind(' ', end - 1) + 1;
      uint64_t crc = std::stoull(line.substr(crc_at, end - crc_at));
      line = line.substr(0, crc_at) + std::to_string(crc ^ 0x00010000u) +
             line.substr(end);
      doctored = true;
    }
    body += line + "\n";
  }
  ASSERT_TRUE(doctored);
  const std::string tampered = Reseal(body);
  ASSERT_NE(tampered, v4);

  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(tampered, store_.device(), &fresh, Options()));
  // The doctored bucket is the first one serialized for constituent 0; a
  // full scan of that constituent must trip over it.
  EXPECT_TRUE(reopened.constituents()[0]
                  ->Scan([](const Value&, const Entry&) {})
                  .IsDataLoss());
  EXPECT_TRUE(reopened.constituents()[0]->corrupt());
}

TEST_F(CheckpointTest, TruncatedChecksumColumnIsRejected) {
  // A v3 header whose bucket lines lost the checksum column (a bad partial
  // upgrade, or v2 bucket lines pasted under a v3 header) must be rejected
  // by the parser even with a correct footer — never silently read as v2.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v3, SerializeCheckpoint(wave_));
  std::string v2_body_v3_header = DowngradeToV2(v3);
  const size_t at = v2_body_v3_header.find("wavekit-checkpoint 2");
  ASSERT_NE(at, std::string::npos);
  v2_body_v3_header.replace(at, 20, "wavekit-checkpoint 3");
  const size_t footer_at = v2_body_v3_header.rfind("\nfooter ");
  const std::string resealed =
      Reseal(v2_body_v3_header.substr(0, footer_at + 1));
  ExtentAllocator fresh(store_.allocator()->capacity());
  EXPECT_FALSE(
      DeserializeCheckpoint(resealed, store_.device(), &fresh, Options())
          .ok());
}

TEST_F(CheckpointTest, V3CheckpointLoadsBucketsAsRaw) {
  // v3 predates per-bucket codecs: every bucket loads as kRaw, and a resave
  // upgrades the file to v4 with the trivial codec/stored columns.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v4, SerializeCheckpoint(wave_));
  const std::string v3 = DowngradeToV3(v4);
  ASSERT_NE(v3, v4);
  EXPECT_NE(v3.find("wavekit-checkpoint 3"), std::string::npos);
  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(v3, store_.device(), &fresh, Options()));
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));
  for (const auto& c : reopened.constituents()) {
    ASSERT_OK(c->ForEachBucket([](const Value&, const BucketInfo& info) {
      EXPECT_EQ(info.codec, Codec::kRaw);
    }));
  }
  ASSERT_OK_AND_ASSIGN(std::string resaved, SerializeCheckpoint(reopened));
  EXPECT_EQ(resaved, v4);
}

TEST_F(CheckpointTest, BadCodecColumnIsRejected) {
  // An out-of-range codec id must be rejected at parse time, even under a
  // correct footer — decoding with a nonsense codec would misread bytes.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string v4, SerializeCheckpoint(wave_));
  const size_t footer_at = v4.rfind("\nfooter ");
  std::istringstream in(v4.substr(0, footer_at + 1));
  std::string body, line;
  bool doctored = false;
  while (std::getline(in, line)) {
    if (!doctored && line.rfind("bucket ", 0) == 0) {
      // Rewrite the <codec> column (second-from-last) to an unknown id.
      const size_t end = line.rfind(' ');
      const size_t codec_at = line.rfind(' ', end - 1) + 1;
      line = line.substr(0, codec_at) + "9" + line.substr(end);
      doctored = true;
    }
    body += line + "\n";
  }
  ASSERT_TRUE(doctored);
  ExtentAllocator fresh(store_.allocator()->capacity());
  auto loaded = DeserializeCheckpoint(Reseal(body), store_.device(), &fresh,
                                      Options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("codec"), std::string::npos)
      << loaded.status();
}

TEST_F(CheckpointTest, CompressedBucketsRoundTrip) {
  // v4's codec/stored columns are load-bearing: a compressed bucket's extent
  // is its encoded length, not count * kEntrySize, and the reloaded index
  // must reserve and verify exactly those bytes.
  std::vector<DayBatch> batches;
  ReferenceIndex reference;
  for (Day d = 1; d <= 3; ++d) {
    batches.push_back(MakeMixedBatch(d, /*num_records=*/64));
    reference.Add(batches.back());
  }
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);
  ConstituentIndex::Options options = Options();
  options.codec = CodecMode::kAuto;
  auto built = IndexBuilder::BuildPacked(store_.device(), store_.allocator(),
                                         options, ptrs, "packed-codec");
  ASSERT_TRUE(built.ok()) << built.status();
  std::shared_ptr<ConstituentIndex> packed = std::move(built).ValueOrDie();
  const ConstituentIndex::CodecBreakdown stats = packed->CodecStats();
  ASSERT_GT(stats.buckets[1] + stats.buckets[2], 0u)
      << "expected at least one compressed bucket";
  WaveIndex wave;
  wave.AddIndex(packed);
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave));

  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh, options));
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference.Probe("alpha", kDayNegInf, kDayPosInf));
  ASSERT_OK(reopened.constituents()[0]->CheckConsistency());
  ASSERT_OK(reopened.constituents()[0]->CheckPacked());
  EXPECT_EQ(fresh.allocated_bytes(), wave.AllocatedBytes());
  const ConstituentIndex::CodecBreakdown reloaded =
      reopened.constituents()[0]->CodecStats();
  EXPECT_EQ(reloaded.stored_bytes, stats.stored_bytes);
  EXPECT_EQ(reloaded.uncompressed_bytes, stats.uncompressed_bytes);
}

TEST_F(CheckpointTest, ExtentOverlappingReservedRangeIsRejected) {
  // A checkpoint referencing bytes some other component already owns must
  // not load: trusting it would let two owners scribble on each other.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh(store_.allocator()->capacity());
  // Squat on the whole device before loading.
  ASSERT_TRUE(fresh.Reserve(Extent{0, fresh.capacity()}).ok());
  auto loaded =
      DeserializeCheckpoint(contents, store_.device(), &fresh, Options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition()) << loaded.status();
}

TEST_F(CheckpointTest, SchemeWaveCanBeCheckpointed) {
  // End to end with a real scheme: run WATA* for a while, checkpoint its
  // wave, reload, compare query results.
  DayStore day_store;
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(SchemeKind::kWata,
                         SchemeEnv{store_.device(), store_.allocator(),
                                   &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ReferenceIndex reference;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));
  for (Day d = 7; d <= 15; ++d) {
    ASSERT_OK(scheme->Transition(MakeMixedBatch(d)));
  }
  ASSERT_OK_AND_ASSIGN(std::string contents,
                       SerializeCheckpoint(scheme->wave()));
  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh, Options()));
  std::vector<Entry> original, reloaded;
  ASSERT_OK(scheme->wave().IndexProbe("alpha", &original));
  ASSERT_OK(reopened.IndexProbe("alpha", &reloaded));
  ReferenceIndex::Sort(&original);
  ReferenceIndex::Sort(&reloaded);
  EXPECT_EQ(reloaded, original);
}

}  // namespace
}  // namespace wavekit
