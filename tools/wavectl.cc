// wavectl: command-line experiment runner for wavekit.
//
//   wavectl schemes
//       List the maintenance schemes and update techniques.
//
//   wavectl run [--scheme=wata] [--window=7] [--indexes=3]
//               [--technique=simple-shadow] [--workload=netnews|tpcd]
//               [--days=21] [--records=100] [--probes=1000] [--scans=5]
//               [--case=scam|wse|tpcd] [--disks=N] [--per-day] [--csv=out.csv]
//       Run a scheme day by day on a synthetic workload; print per-day and
//       aggregate measurements (metered simulation + paper-priced model).
//
//   wavectl model [--case=scam] [--scheme=reindex] [--indexes=4]
//                 [--technique=simple-shadow] [--window=<case default>]
//       Analytic evaluation only (Tables 8-11 style numbers).
//
//   wavectl advise [--case=scam] [--window=<case default>] [--hard-window]
//                  [--no-packed-shadow] [--no-delete] [--max-indexes=10]
//                  [--max-probe-ms=...] [--top=5]
//       Rank wave-index configurations for the scenario under the given
//       constraints (the paper's Section 6 selection process).

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "model/space_model.h"
#include "model/total_work.h"
#include "sim/csv.h"
#include "sim/driver.h"
#include "sim/table_printer.h"
#include "util/format.h"
#include "wave/advisor.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return Get(key, "false") == "true";
  }

 private:
  std::map<std::string, std::string> values_;
};

model::CaseParams CaseByName(const std::string& name) {
  if (name == "wse") return model::CaseParams::Wse();
  if (name == "tpcd") return model::CaseParams::Tpcd();
  return model::CaseParams::Scam();
}

int Schemes() {
  sim::TablePrinter table({"scheme", "window", "daily critical path",
                           "needs delete code"});
  table.AddRow({"DEL", "hard", "one AddToIndex (after precomputed delete)",
                "yes"});
  table.AddRow({"REINDEX", "hard", "rebuild W/n days (always packed)", "no"});
  table.AddRow({"REINDEX+", "hard", "copy Temp + re-add shrinking tail", "no"});
  table.AddRow({"REINDEX++", "hard", "one AddToIndex (precomputed ladder)",
                "no"});
  table.AddRow({"WATA*", "soft", "one AddToIndex (bulk expiry by drop)",
                "no"});
  table.AddRow({"RATA*", "hard", "one AddToIndex + rename", "no"});
  table.AddRow({"KB-WATA", "soft", "one AddToIndex (size-bounded slices)",
                "no"});
  table.Print(std::cout);
  std::cout << "\nupdate techniques: in-place | simple-shadow | packed-shadow\n";
  return 0;
}

int RunExperiment(const Args& args) {
  sim::ExperimentConfig config;
  auto scheme = SchemeKindFromName(args.Get("scheme", "wata"));
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 2;
  }
  auto technique = UpdateTechniqueFromName(
      args.Get("technique", "simple-shadow"));
  if (!technique.ok()) {
    std::cerr << technique.status() << "\n";
    return 2;
  }
  config.scheme = scheme.ValueOrDie();
  config.scheme_config.window = args.GetInt("window", 7);
  config.scheme_config.num_indexes = args.GetInt("indexes", 3);
  config.scheme_config.technique = technique.ValueOrDie();
  config.workload = args.Get("workload", "netnews") == "tpcd"
                        ? sim::WorkloadKind::kTpcd
                        : sim::WorkloadKind::kNetnews;
  config.netnews.articles_per_day =
      static_cast<uint64_t>(args.GetInt("records", 100));
  config.tpcd.rows_per_day = static_cast<uint64_t>(args.GetInt("records", 500));
  config.days_to_run = args.GetInt("days", 3 * config.scheme_config.window);
  config.warmup_days =
      std::min(config.scheme_config.window, config.days_to_run / 2);
  config.query_mix.probes_per_day = args.GetInt("probes", 1000);
  config.query_mix.probe_sample = 8;
  config.query_mix.scans_per_day = args.GetInt("scans", 5);
  config.query_mix.scan_sample = 1;
  config.paper = CaseByName(args.Get("case", "scam"));
  config.num_disks = args.GetInt("disks", 1);
  if (config.scheme == SchemeKind::kKnownBoundWata) {
    config.scheme_config.size_bound_entries = static_cast<uint64_t>(
        args.GetInt("records", 100) * 60 * config.scheme_config.window);
  }

  auto run = sim::ExperimentDriver::Run(config);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const sim::ExperimentResult result = std::move(run).ValueOrDie();

  const std::string csv_path = args.Get("csv", "");
  if (!csv_path.empty()) {
    Status s = sim::WriteCsv(result, csv_path);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::cout << "per-day measurements written to " << csv_path << "\n";
  }

  if (args.GetBool("per-day")) {
    sim::TablePrinter days({"day", "sim trans", "sim pre", "sim query",
                            "model trans", "model pre", "space", "length"});
    for (const sim::DayStats& d : result.days) {
      days.AddRow({std::to_string(d.day),
                   FormatSeconds(d.sim_transition_seconds),
                   FormatSeconds(d.sim_precompute_seconds),
                   FormatSeconds(d.sim_query_seconds),
                   FormatSeconds(d.model_transition_seconds),
                   FormatSeconds(d.model_precompute_seconds),
                   FormatBytes(d.operation_bytes),
                   std::to_string(d.wave_length_days)});
    }
    days.Print(std::cout);
    std::cout << "\n";
  }

  const sim::Aggregates& agg = result.aggregates;
  sim::TablePrinter table({"measure", "simulation (scaled data)",
                           "model (paper parameters)"});
  table.SetTitle(std::string(SchemeKindName(config.scheme)) + " W=" +
                 std::to_string(config.scheme_config.window) + " n=" +
                 std::to_string(config.scheme_config.num_indexes) + " (" +
                 UpdateTechniqueKindName(config.scheme_config.technique) +
                 "), averages over the last " +
                 std::to_string(config.days_to_run - config.warmup_days) +
                 " days");
  table.AddRow({"transition/day", FormatSeconds(agg.avg_sim_transition_seconds),
                FormatSeconds(agg.avg_model_transition_seconds)});
  table.AddRow({"precompute/day", FormatSeconds(agg.avg_sim_precompute_seconds),
                FormatSeconds(agg.avg_model_precompute_seconds)});
  table.AddRow({"queries/day", FormatSeconds(agg.avg_sim_query_seconds),
                FormatSeconds(agg.avg_model_query_seconds)});
  table.AddRow({"total work/day", FormatSeconds(agg.avg_sim_total_work),
                FormatSeconds(agg.avg_model_total_work)});
  if (config.num_disks > 1) {
    table.AddRow({"queries/day (parallel, " +
                      std::to_string(config.num_disks) + " disks)",
                  FormatSeconds(agg.avg_sim_query_parallel_seconds), "-"});
  }
  table.AddRow({"steady space",
                FormatBytes(static_cast<uint64_t>(agg.avg_operation_bytes)),
                "-"});
  table.AddRow({"transition extra space",
                FormatBytes(static_cast<uint64_t>(agg.avg_transition_extra_bytes)),
                "-"});
  table.AddRow({"max wave length (days)",
                std::to_string(agg.max_wave_length_days), "-"});
  table.Print(std::cout);
  return 0;
}

int Model(const Args& args) {
  const model::CaseParams params = CaseByName(args.Get("case", "scam"));
  auto scheme = SchemeKindFromName(args.Get("scheme", "reindex"));
  auto technique = UpdateTechniqueFromName(
      args.Get("technique", "simple-shadow"));
  if (!scheme.ok() || !technique.ok()) {
    std::cerr << (scheme.ok() ? technique.status() : scheme.status()) << "\n";
    return 2;
  }
  const int window = args.GetInt("window", params.window);
  const int n = args.GetInt("indexes", 4);

  auto work = model::EstimateTotalWork(scheme.ValueOrDie(),
                                       technique.ValueOrDie(), params, window,
                                       n);
  if (!work.ok()) {
    std::cerr << work.status() << "\n";
    return 1;
  }
  const model::SpaceEstimate space = model::EstimateSpace(
      scheme.ValueOrDie(), technique.ValueOrDie(), params, window, n);

  sim::TablePrinter table({"measure", "value"});
  table.SetTitle(params.name + " / " +
                 std::string(SchemeKindName(scheme.ValueOrDie())) + " W=" +
                 std::to_string(window) + " n=" + std::to_string(n));
  table.AddRow({"transition/day",
                FormatSeconds(work.ValueOrDie().transition_seconds)});
  table.AddRow({"precompute/day",
                FormatSeconds(work.ValueOrDie().precompute_seconds)});
  table.AddRow({"queries/day", FormatSeconds(work.ValueOrDie().query_seconds)});
  table.AddRow({"total work/day", FormatSeconds(work.ValueOrDie().total())});
  table.AddRow({"avg operation space",
                FormatBytes(static_cast<uint64_t>(space.avg_operation_bytes))});
  table.AddRow({"max operation space",
                FormatBytes(static_cast<uint64_t>(space.max_operation_bytes))});
  table.AddRow({"avg transition space",
                FormatBytes(static_cast<uint64_t>(space.avg_transition_bytes))});
  table.Print(std::cout);
  return 0;
}

int Advise(const Args& args) {
  const model::CaseParams params = CaseByName(args.Get("case", "scam"));
  const int window = args.GetInt("window", params.window);
  AdvisorConstraints constraints;
  constraints.require_hard_window = args.GetBool("hard-window");
  constraints.can_implement_packed_shadow = !args.GetBool("no-packed-shadow");
  constraints.can_implement_delete = !args.GetBool("no-delete");
  constraints.max_indexes = args.GetInt("max-indexes", 10);
  const int max_probe_ms = args.GetInt("max-probe-ms", 0);
  if (max_probe_ms > 0) constraints.max_probe_seconds = max_probe_ms / 1000.0;

  auto ranked = RankWaveIndexOptions(params, window, constraints);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }
  if (ranked.ValueOrDie().empty()) {
    std::cerr << "no configuration satisfies the constraints\n";
    return 1;
  }
  const int top = args.GetInt("top", 5);
  sim::TablePrinter table({"#", "scheme", "n", "technique", "work/day",
                           "transition", "avg space", "probe"});
  table.SetTitle(params.name + " (W=" + std::to_string(window) + ")");
  int rank = 0;
  for (const Recommendation& r : ranked.ValueOrDie()) {
    if (++rank > top) break;
    table.AddRow({std::to_string(rank), std::string(SchemeKindName(r.scheme)),
                  std::to_string(r.num_indexes),
                  UpdateTechniqueKindName(r.technique),
                  FormatSeconds(r.work.total()),
                  FormatSeconds(r.work.transition_seconds),
                  FormatBytes(static_cast<uint64_t>(r.space.avg_total())),
                  FormatSeconds(r.probe_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nrecommendation: " << ranked.ValueOrDie().front().rationale
            << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  Args args(argc, argv);
  if (command == "schemes") return Schemes();
  if (command == "run") return RunExperiment(args);
  if (command == "model") return Model(args);
  if (command == "advise") return Advise(args);
  std::cerr << "usage: wavectl <schemes|run|model|advise> [--flag=value ...]\n"
               "see the header of tools/wavectl.cc for the full flag list\n";
  return 2;
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) { return wavekit::Main(argc, argv); }
