// Adopt: resuming maintenance over a checkpoint-reloaded wave index must be
// indistinguishable (query-wise) from never having restarted.

#include <gtest/gtest.h>

#include "testing/test_env.h"
#include "wave/checkpoint.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

SchemeConfig Config(SchemeKind kind, int window, int n) {
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  if (kind == SchemeKind::kKnownBoundWata) {
    config.size_bound_entries = 1000;
  }
  return config;
}

std::vector<Entry> Probe(const WaveIndex& wave, const Value& value,
                         const DayRange& range) {
  std::vector<Entry> out;
  Status s = wave.TimedIndexProbe(range, value, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  ReferenceIndex::Sort(&out);
  return out;
}

class AdoptTest : public ::testing::TestWithParam<SchemeKind> {};

void RunRestartEquivalence(SchemeKind kind, Day checkpoint_day,
                           int continue_days);

TEST_P(AdoptTest, RestartEquivalence) {
  RunRestartEquivalence(GetParam(), /*checkpoint_day=*/8 + 9,
                        /*continue_days=*/12);
}

TEST_P(AdoptTest, RestartEquivalenceAtEveryRotationPhase) {
  // A rotation cycle is W/n (or (W-1)/(n-1)) days long; adopting must work
  // whatever mid-cycle state the checkpoint caught.
  for (Day checkpoint_day = 8 + 6; checkpoint_day <= 8 + 10; ++checkpoint_day) {
    SCOPED_TRACE("checkpoint at day " + std::to_string(checkpoint_day));
    RunRestartEquivalence(GetParam(), checkpoint_day, /*continue_days=*/8);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

void RunRestartEquivalence(SchemeKind kind, Day checkpoint_day,
                           int continue_days) {
  const int window = 8;
  const int n = (kind == SchemeKind::kWata || kind == SchemeKind::kRata ||
                 kind == SchemeKind::kKnownBoundWata)
                    ? 3
                    : 4;
  const Day final_day = checkpoint_day + continue_days;

  // --- Uninterrupted run ----------------------------------------------------
  Store store_a(uint64_t{1} << 26);
  DayStore day_store_a;
  auto made_a = MakeScheme(kind,
                           SchemeEnv{store_a.device(), store_a.allocator(),
                                     &day_store_a},
                           Config(kind, window, n));
  ASSERT_TRUE(made_a.ok()) << made_a.status();
  std::unique_ptr<Scheme> uninterrupted = std::move(made_a).ValueOrDie();
  {
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(uninterrupted->Start(std::move(first)));
  }
  for (Day d = window + 1; d <= final_day; ++d) {
    ASSERT_OK(uninterrupted->Transition(MakeMixedBatch(d)));
  }

  // --- Run to the checkpoint, serialize, "restart", adopt, continue ----------
  Store store_b(uint64_t{1} << 26);
  std::string checkpoint;
  {
    DayStore day_store_b;
    auto made_b = MakeScheme(kind,
                             SchemeEnv{store_b.device(), store_b.allocator(),
                                       &day_store_b},
                             Config(kind, window, n));
    ASSERT_TRUE(made_b.ok()) << made_b.status();
    std::unique_ptr<Scheme> before_restart = std::move(made_b).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(before_restart->Start(std::move(first)));
    for (Day d = window + 1; d <= checkpoint_day; ++d) {
      ASSERT_OK(before_restart->Transition(MakeMixedBatch(d)));
    }
    ASSERT_OK_AND_ASSIGN(checkpoint,
                         SerializeCheckpoint(before_restart->wave()));
    // The scheme (and its temporaries) die here; the "disk" (store_b's
    // device) keeps the bucket bytes, exactly like a process restart over a
    // durable device.
  }
  ExtentAllocator fresh_allocator(store_b.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reloaded,
      DeserializeCheckpoint(checkpoint, store_b.device(), &fresh_allocator,
                            ConstituentIndex::Options{}));
  DayStore day_store_resumed;
  // The re-indexing schemes need the window's batches back (a production
  // system retains them on durable storage too).
  for (Day d = checkpoint_day - window + 1; d <= checkpoint_day; ++d) {
    ASSERT_OK(day_store_resumed.Put(MakeMixedBatch(d)));
  }
  SchemeEnv env_resumed{store_b.device(), &fresh_allocator, &day_store_resumed};
  auto made_resumed = MakeScheme(kind, env_resumed, Config(kind, window, n));
  ASSERT_TRUE(made_resumed.ok()) << made_resumed.status();
  std::unique_ptr<Scheme> resumed = std::move(made_resumed).ValueOrDie();
  ASSERT_OK(resumed->Adopt(std::move(reloaded), checkpoint_day));
  EXPECT_EQ(resumed->current_day(), checkpoint_day);
  for (Day d = checkpoint_day + 1; d <= final_day; ++d) {
    ASSERT_OK(resumed->Transition(MakeMixedBatch(d))) << "day " << d;
    if (resumed->hard_window()) {
      ASSERT_EQ(resumed->WaveLength(), window) << "day " << d;
    }
  }

  // --- Same answers as the uninterrupted run --------------------------------
  const DayRange range = DayRange::Window(final_day, window);
  for (const Value& value :
       {Value("alpha"), Value("beta"), Value("gamma"),
        Value("day" + std::to_string(final_day)),
        Value("day" + std::to_string(final_day - window + 1))}) {
    EXPECT_EQ(Probe(resumed->wave(), value, range),
              Probe(uninterrupted->wave(), value, range))
        << "value '" << value << "'";
  }
  for (const auto& c : resumed->wave().constituents()) {
    ASSERT_OK(c->CheckConsistency());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AdoptTest,
                         ::testing::Values(SchemeKind::kDel,
                                           SchemeKind::kReindex,
                                           SchemeKind::kReindexPlus,
                                           SchemeKind::kReindexPlusPlus,
                                           SchemeKind::kWata, SchemeKind::kRata,
                                           SchemeKind::kKnownBoundWata),
                         [](const auto& info) {
                           std::string name = SchemeKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST_P(AdoptTest, RestartEquivalenceDegenerateWEqualsN) {
  // W == n: every cluster is one day; ladders and temps are all empty.
  const SchemeKind kind = GetParam();
  if (kind == SchemeKind::kKnownBoundWata) GTEST_SKIP();
  // (WATA-family W==n is valid; REINDEX+ degenerates to REINDEX.)
  const int window = 5;
  const Day checkpoint_day = window + 7;

  Store store_a(uint64_t{1} << 26);
  DayStore day_store_a;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = window;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made_a = MakeScheme(kind,
                           SchemeEnv{store_a.device(), store_a.allocator(),
                                     &day_store_a},
                           config);
  ASSERT_TRUE(made_a.ok()) << made_a.status();
  std::unique_ptr<Scheme> reference_run = std::move(made_a).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(reference_run->Start(std::move(first)));
  for (Day d = window + 1; d <= checkpoint_day + 6; ++d) {
    ASSERT_OK(reference_run->Transition(MakeMixedBatch(d)));
  }

  Store store_b(uint64_t{1} << 26);
  std::string checkpoint;
  {
    DayStore day_store_b;
    auto made_b = MakeScheme(kind,
                             SchemeEnv{store_b.device(), store_b.allocator(),
                                       &day_store_b},
                             config);
    ASSERT_TRUE(made_b.ok()) << made_b.status();
    std::unique_ptr<Scheme> before = std::move(made_b).ValueOrDie();
    std::vector<DayBatch> start;
    for (Day d = 1; d <= window; ++d) start.push_back(MakeMixedBatch(d));
    ASSERT_OK(before->Start(std::move(start)));
    for (Day d = window + 1; d <= checkpoint_day; ++d) {
      ASSERT_OK(before->Transition(MakeMixedBatch(d)));
    }
    ASSERT_OK_AND_ASSIGN(checkpoint, SerializeCheckpoint(before->wave()));
  }
  ExtentAllocator fresh(store_b.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(WaveIndex reloaded,
                       DeserializeCheckpoint(checkpoint, store_b.device(),
                                             &fresh,
                                             ConstituentIndex::Options{}));
  DayStore resumed_days;
  for (Day d = checkpoint_day - window + 1; d <= checkpoint_day; ++d) {
    ASSERT_OK(resumed_days.Put(MakeMixedBatch(d)));
  }
  auto made_r = MakeScheme(kind, SchemeEnv{store_b.device(), &fresh,
                                           &resumed_days},
                           config);
  ASSERT_TRUE(made_r.ok()) << made_r.status();
  std::unique_ptr<Scheme> resumed = std::move(made_r).ValueOrDie();
  ASSERT_OK(resumed->Adopt(std::move(reloaded), checkpoint_day));
  for (Day d = checkpoint_day + 1; d <= checkpoint_day + 6; ++d) {
    ASSERT_OK(resumed->Transition(MakeMixedBatch(d))) << "day " << d;
  }
  const Day final_day = checkpoint_day + 6;
  const DayRange range = DayRange::Window(final_day, window);
  for (const Value& value : {Value("alpha"), Value("beta")}) {
    EXPECT_EQ(Probe(resumed->wave(), value, range),
              Probe(reference_run->wave(), value, range));
  }
}

TEST(AdoptValidationTest, RejectsBadAdoptions) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 2;

  auto make = [&]() {
    auto made = MakeScheme(SchemeKind::kDel, env, config);
    if (!made.ok()) made.status().Abort("make");
    return std::move(made).ValueOrDie();
  };

  // Empty wave.
  EXPECT_TRUE(make()->Adopt(WaveIndex{}, 10).IsInvalidArgument());

  // A wave with a window gap.
  {
    WaveIndex wave;
    auto index = std::make_shared<ConstituentIndex>(
        store.device(), store.allocator(), ConstituentIndex::Options{}, "I1");
    ASSERT_OK(index->AddBatch(testing::MakeMixedBatch(5)));
    wave.AddIndex(index);
    EXPECT_TRUE(make()->Adopt(std::move(wave), 10).IsInvalidArgument());
  }

  // Hard-window scheme adopting expired days.
  {
    WaveIndex wave;
    auto index = std::make_shared<ConstituentIndex>(
        store.device(), store.allocator(), ConstituentIndex::Options{}, "I1");
    for (Day d = 1; d <= 10; ++d) {
      ASSERT_OK(index->AddBatch(testing::MakeMixedBatch(d)));
    }
    auto other = std::make_shared<ConstituentIndex>(
        store.device(), store.allocator(), ConstituentIndex::Options{}, "I2");
    ASSERT_OK(other->AddBatch(testing::MakeMixedBatch(11)));
    wave.AddIndex(index);
    wave.AddIndex(other);
    // Window [6, 11] is covered, but days 1..5 are expired: DEL must refuse.
    EXPECT_TRUE(make()->Adopt(std::move(wave), 11).IsInvalidArgument());
  }

  // Wrong constituent count for the configured n.
  {
    WaveIndex wave;
    auto index = std::make_shared<ConstituentIndex>(
        store.device(), store.allocator(), ConstituentIndex::Options{}, "I1");
    for (Day d = 5; d <= 10; ++d) {
      ASSERT_OK(index->AddBatch(testing::MakeMixedBatch(d)));
    }
    wave.AddIndex(index);  // one constituent, n = 2
    EXPECT_TRUE(make()->Adopt(std::move(wave), 10).IsInvalidArgument());
  }

  // Adopt after Start.
  {
    auto scheme = make();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= 6; ++d) first.push_back(testing::MakeMixedBatch(d));
    ASSERT_OK(scheme->Start(std::move(first)));
    EXPECT_TRUE(scheme->Adopt(WaveIndex{}, 6).IsFailedPrecondition());
  }
}

}  // namespace
}  // namespace wavekit
