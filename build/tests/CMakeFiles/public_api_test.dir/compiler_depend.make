# Empty compiler generated dependencies file for public_api_test.
# This may be replaced when dependencies are built.
