#include "util/format.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace {

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(uint64_t{5} << 20), "5.00 MiB");
  EXPECT_EQ(FormatBytes(uint64_t{3} << 30), "3.00 GiB");
  EXPECT_EQ(FormatBytes(uint64_t{2} << 40), "2.00 TiB");
}

TEST(FormatSecondsTest, Units) {
  EXPECT_EQ(FormatSeconds(1.5), "1.50 s");
  EXPECT_EQ(FormatSeconds(0.25), "250.00 ms");
  EXPECT_EQ(FormatSeconds(2e-5), "20.00 us");
  EXPECT_EQ(FormatSeconds(3e-8), "30.00 ns");
  EXPECT_EQ(FormatSeconds(0.0), "0.00 s");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.005, 1), "-1.0");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

}  // namespace
}  // namespace wavekit
