#include "wave/rata_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status RataScheme::ValidateConfig() const {
  WAVEKIT_RETURN_NOT_OK(Scheme::ValidateConfig());
  if (config_.num_indexes < 2) {
    return Status::InvalidArgument(
        "RATA, like WATA, requires at least two constituent indexes");
  }
  return Status::OK();
}

Status RataScheme::InitializeLadder(const TimeSet& days, Phase phase) {
  for (auto& temp : temps_) {
    if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(DropIndex(temp));
  }
  temps_.clear();
  temp_used_ = 0;
  if (days.empty()) return Status::OK();

  std::vector<Day> descending(days.rbegin(), days.rend());
  WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> rung,
                           BuildIndex({descending[0]}, "T1", phase));
  temps_.push_back(rung);
  for (size_t i = 1; i < descending.size(); ++i) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> next,
        CopyIndex(*temps_.back(), "T" + std::to_string(i + 1), phase));
    WAVEKIT_RETURN_NOT_OK(AddToIndex({descending[i]}, &next, phase));
    temps_.push_back(std::move(next));
  }
  temp_used_ = static_cast<int>(descending.size());
  return Status::OK();
}

Status RataScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWataWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  last_ = slots_.size() - 1;
  // Prepare the ladder for the first cluster (minus day 1, expiring first).
  TimeSet init_days = slots_[0]->time_set();
  init_days.erase(init_days.begin());
  return InitializeLadder(init_days, Phase::kStart);
}

Status RataScheme::DoAdopt() {
  WAVEKIT_RETURN_NOT_OK(Scheme::DoAdopt());
  last_ = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (*slots_[i]->time_set().rbegin() >
        *slots_[last_]->time_set().rbegin()) {
      last_ = i;
    }
  }
  // Rebuild the suffix ladder for the cluster expiring next.
  WAVEKIT_ASSIGN_OR_RETURN(
      size_t j, FindSlotContaining(current_day_ - config_.window + 1));
  TimeSet init_days = slots_[j]->time_set();
  init_days.erase(current_day_ - config_.window + 1);
  return InitializeLadder(init_days, Phase::kPrecompute);
}

Status RataScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));
  int days_in_others = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i != j) days_in_others += static_cast<int>(slots_[i]->time_set().size());
  }
  if (days_in_others == config_.window - 1) {
    // ThrowAway: as in WATA*, then precompute the ladder for the next
    // expiring cluster.
    obs::Span span = TraceOp("RATA.throw_away");
    WAVEKIT_RETURN_NOT_OK(DropIndex(slots_[j]));
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> fresh,
        BuildIndex({new_day.day}, "I" + std::to_string(j + 1),
                   Phase::kTransition, static_cast<int>(j)));
    slots_[j] = fresh;
    wave_.AddIndex(std::move(fresh));
    last_ = j;
    WAVEKIT_ASSIGN_OR_RETURN(size_t j_next, FindSlotContaining(expired + 1));
    TimeSet init_days = slots_[j_next]->time_set();
    init_days.erase(expired + 1);
    WAVEKIT_RETURN_NOT_OK(InitializeLadder(init_days, Phase::kPrecompute));
  } else {
    // Wait: append the new day to the last-modified index, then simulate the
    // hard window by swapping the expiring constituent for the precomputed
    // suffix that excludes today's expired day.
    obs::Span span = TraceOp("RATA.promote_rung");
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, &slots_[last_], Phase::kTransition));
    if (temp_used_ <= 0) {
      return Status::Internal(
          "RATA ladder exhausted before the cluster fully expired");
    }
    std::shared_ptr<ConstituentIndex> promoted =
        std::move(temps_[static_cast<size_t>(temp_used_ - 1)]);
    temps_[static_cast<size_t>(temp_used_ - 1)] = nullptr;
    --temp_used_;
    promoted->set_name(slots_[j]->name());
    LogRename(*promoted);
    if (config_.technique == UpdateTechniqueKind::kPackedShadow) {
      WAVEKIT_RETURN_NOT_OK(PackIndex(&promoted, Phase::kTransition));
    }
    WAVEKIT_RETURN_NOT_OK(DropIndex(slots_[j]));
    slots_[j] = promoted;
    wave_.AddIndex(std::move(promoted));
  }
  return Status::OK();
}

std::vector<const ConstituentIndex*> RataScheme::TemporaryIndexes() const {
  std::vector<const ConstituentIndex*> out;
  for (const auto& temp : temps_) {
    if (temp != nullptr) out.push_back(temp.get());
  }
  return out;
}

}  // namespace wavekit
