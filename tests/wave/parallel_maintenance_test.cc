// The parallel maintenance pipeline end to end: REINDEX++'s concurrent
// ladder builds match the serial scheme transition for transition, schemes
// gated at threads=1 stay op-for-op identical to the serial paths, and
// WaveService's background AdvanceDayAsync publishes atomically while
// queries keep serving (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "testing/test_env.h"
#include "util/crash_point.h"
#include "util/thread_pool.h"
#include "wave/checkpoint.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

constexpr int kWindow = 6;

DayBatch Batch(Day day) { return MakeMixedBatch(day, 8); }

std::vector<DayBatch> FirstWindow() {
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(Batch(d));
  return first;
}

std::vector<Value> ProbeValues(Day day) {
  std::vector<Value> values = {"alpha", "beta", "gamma"};
  for (Day d = day - kWindow; d <= day + 1; ++d) {
    values.push_back("day" + std::to_string(d));
  }
  return values;
}

/// The wave must answer exactly like the brute-force oracle for the window
/// ending at `day`.
void VerifyWave(const WaveIndex& wave, Day day) {
  ReferenceIndex reference;
  for (Day d = day - kWindow + 1; d <= day; ++d) reference.Add(Batch(d));
  const DayRange range = DayRange::Window(day, kWindow);
  for (const Value& value : ProbeValues(day)) {
    std::vector<Entry> out;
    ASSERT_OK(wave.TimedIndexProbe(range, value, &out));
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe(value, day - kWindow + 1, day))
        << "probe '" << value << "' at day " << day;
  }
  std::vector<Entry> scanned;
  ASSERT_OK(wave.TimedSegmentScan(
      range, [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(day - kWindow + 1, day));
}

/// (time_set, entry_count) per constituent, in wave order — the logical
/// shape two equivalent schemes must share (device offsets may differ).
std::vector<std::pair<TimeSet, uint64_t>> WaveShape(const WaveIndex& wave) {
  std::vector<std::pair<TimeSet, uint64_t>> shape;
  for (const auto& constituent : wave.constituents()) {
    shape.emplace_back(constituent->time_set(), constituent->entry_count());
  }
  return shape;
}

struct SchemeRig {
  explicit SchemeRig(const ParallelContext& parallel, SchemeKind kind,
                     UpdateTechniqueKind technique)
      : memory(uint64_t{1} << 26), metered(&memory),
        allocator(memory.capacity()) {
    SchemeConfig config;
    config.window = kWindow;
    config.num_indexes = 3;
    config.technique = technique;
    SchemeEnv env{&metered, &allocator, &day_store};
    env.maintenance = parallel;
    auto made = MakeScheme(kind, env, config);
    if (!made.ok()) made.status().Abort("make scheme");
    scheme = std::move(made).ValueOrDie();
  }

  MemoryDevice memory;
  MeteredDevice metered;
  ExtentAllocator allocator;
  DayStore day_store;
  std::unique_ptr<Scheme> scheme;
};

TEST(ParallelMaintenanceTest, ReindexPlusPlusLadderMatchesSerial) {
  // The concurrent ladder (N independent builds) must leave the wave in the
  // same logical state as the serial build-then-clone chain after every
  // transition, across more than two full ladder cycles.
  ThreadPool pool(4);
  SchemeRig serial({}, SchemeKind::kReindexPlusPlus,
                   UpdateTechniqueKind::kSimpleShadow);
  SchemeRig parallel({&pool, 4}, SchemeKind::kReindexPlusPlus,
                     UpdateTechniqueKind::kSimpleShadow);
  ASSERT_OK(serial.scheme->Start(FirstWindow()));
  ASSERT_OK(parallel.scheme->Start(FirstWindow()));
  EXPECT_EQ(WaveShape(serial.scheme->wave()),
            WaveShape(parallel.scheme->wave()));
  VerifyWave(parallel.scheme->wave(), kWindow);
  for (Day d = kWindow + 1; d <= kWindow + 8; ++d) {
    ASSERT_OK(serial.scheme->Transition(Batch(d)));
    ASSERT_OK(parallel.scheme->Transition(Batch(d)));
    EXPECT_EQ(WaveShape(serial.scheme->wave()),
              WaveShape(parallel.scheme->wave()))
        << "day " << d;
    VerifyWave(parallel.scheme->wave(), d);
  }
}

TEST(ParallelMaintenanceTest, ReindexPlusPlusAdoptBuildsLadderInParallel) {
  // Adopt (restart) rebuilds the whole ladder; with a maintenance pool the
  // rungs build concurrently and must serve the same answers afterwards.
  MemoryDevice memory(uint64_t{1} << 26);
  std::string checkpoint;
  Day adopt_day = 0;
  {
    MeteredDevice metered(&memory);
    ExtentAllocator allocator(memory.capacity());
    DayStore day_store;
    SchemeConfig config;
    config.window = kWindow;
    config.num_indexes = 3;
    auto made = MakeScheme(SchemeKind::kReindexPlusPlus,
                           SchemeEnv{&metered, &allocator, &day_store},
                           config);
    ASSERT_TRUE(made.ok()) << made.status();
    std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
    ASSERT_OK(scheme->Start(FirstWindow()));
    ASSERT_OK(scheme->Transition(Batch(kWindow + 1)));
    ASSERT_OK_AND_ASSIGN(checkpoint, SerializeCheckpoint(scheme->wave()));
    adopt_day = scheme->current_day();
  }

  ThreadPool pool(4);
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex wave,
      DeserializeCheckpoint(checkpoint, &metered, &allocator, {}));
  DayStore day_store;
  for (Day d = adopt_day - kWindow + 1; d <= adopt_day; ++d) {
    ASSERT_OK(day_store.Put(Batch(d)));
  }
  SchemeConfig config;
  config.window = kWindow;
  config.num_indexes = 3;
  SchemeEnv env{&metered, &allocator, &day_store};
  env.maintenance = ParallelContext{&pool, 4};
  auto made = MakeScheme(SchemeKind::kReindexPlusPlus, env, config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ASSERT_OK(scheme->Adopt(std::move(wave), adopt_day));
  VerifyWave(scheme->wave(), adopt_day);
  for (Day d = adopt_day + 1; d <= adopt_day + 3; ++d) {
    ASSERT_OK(scheme->Transition(Batch(d)));
    VerifyWave(scheme->wave(), d);
  }
}

TEST(ParallelMaintenanceTest, ThreadsOneIsOpForOpIdenticalToSerial) {
  // The gate: a pool with threads=1 (enabled() == false) must run the exact
  // serial code paths — same op log, same metered I/O per phase.
  for (SchemeKind kind :
       {SchemeKind::kReindex, SchemeKind::kReindexPlusPlus,
        SchemeKind::kWata}) {
    SCOPED_TRACE(SchemeKindName(kind));
    ThreadPool pool(4);
    const UpdateTechniqueKind technique =
        kind == SchemeKind::kWata ? UpdateTechniqueKind::kPackedShadow
                                  : UpdateTechniqueKind::kSimpleShadow;
    SchemeRig serial({}, kind, technique);
    SchemeRig gated({&pool, 1}, kind, technique);
    ASSERT_OK(serial.scheme->Start(FirstWindow()));
    ASSERT_OK(gated.scheme->Start(FirstWindow()));
    for (Day d = kWindow + 1; d <= kWindow + 4; ++d) {
      ASSERT_OK(serial.scheme->Transition(Batch(d)));
      ASSERT_OK(gated.scheme->Transition(Batch(d)));
    }
    EXPECT_EQ(serial.scheme->op_log().ToString(),
              gated.scheme->op_log().ToString());
    for (Phase phase : {Phase::kStart, Phase::kTransition, Phase::kPrecompute,
                        Phase::kQuery, Phase::kOther}) {
      EXPECT_EQ(serial.metered.counters(phase), gated.metered.counters(phase))
          << "phase " << static_cast<int>(phase);
    }
  }
}

// --- WaveService: pool plumbing and background maintenance ------------------

WaveService::Options ServiceOptions(SchemeKind kind, int maintenance_threads) {
  WaveService::Options options;
  options.scheme = kind;
  options.config.window = kWindow;
  options.config.num_indexes = 3;
  options.config.technique = kind == SchemeKind::kReindex
                                 ? UpdateTechniqueKind::kPackedShadow
                                 : UpdateTechniqueKind::kSimpleShadow;
  options.device_capacity = uint64_t{1} << 26;
  options.num_maintenance_threads = maintenance_threads;
  return options;
}

TEST(ParallelMaintenanceServiceTest, ParallelServiceServesOracleAnswers) {
  for (SchemeKind kind : {SchemeKind::kReindex, SchemeKind::kReindexPlusPlus,
                          SchemeKind::kWata}) {
    SCOPED_TRACE(SchemeKindName(kind));
    ASSERT_OK_AND_ASSIGN(auto service,
                         WaveService::Create(ServiceOptions(kind, 4)));
    ASSERT_NE(service->maintenance_pool(), nullptr);
    EXPECT_EQ(service->maintenance_pool()->num_threads(), 4);
    ASSERT_OK(service->Start(FirstWindow()));
    for (Day d = kWindow + 1; d <= kWindow + 6; ++d) {
      ASSERT_OK(service->AdvanceDay(Batch(d)));
      VerifyWave(*service->Snapshot(), d);
    }
  }
}

TEST(ParallelMaintenanceServiceTest, SerialServiceOwnsNoPool) {
  ASSERT_OK_AND_ASSIGN(
      auto service, WaveService::Create(ServiceOptions(SchemeKind::kWata, 1)));
  EXPECT_EQ(service->maintenance_pool(), nullptr);
}

TEST(ParallelMaintenanceServiceTest, AsyncAdvancesApplyInOrder) {
  ASSERT_OK_AND_ASSIGN(
      auto service,
      WaveService::Create(ServiceOptions(SchemeKind::kReindexPlusPlus, 4)));
  ASSERT_OK(service->Start(FirstWindow()));
  for (Day d = kWindow + 1; d <= kWindow + 5; ++d) {
    service->AdvanceDayAsync(Batch(d));
  }
  ASSERT_OK(service->WaitForMaintenance());
  EXPECT_EQ(service->current_day(), kWindow + 5);
  EXPECT_EQ(service->pending_advances(), 0);
  const ServiceMetrics metrics = service->Metrics();
  EXPECT_EQ(metrics.async_advances, 5u);
  EXPECT_EQ(metrics.days_advanced, 5u);
  EXPECT_EQ(metrics.degraded_advances, 0u);
  VerifyWave(*service->Snapshot(), kWindow + 5);
  // Sync and async advances interleave on the same serialized path.
  ASSERT_OK(service->AdvanceDay(Batch(kWindow + 6)));
  service->AdvanceDayAsync(Batch(kWindow + 7));
  ASSERT_OK(service->WaitForMaintenance());
  EXPECT_EQ(service->current_day(), kWindow + 7);
  VerifyWave(*service->Snapshot(), kWindow + 7);
}

TEST(ParallelMaintenanceServiceTest, AsyncFailureIsStickyAndDropsQueued) {
  WaveService::Options options = ServiceOptions(SchemeKind::kReindex, 4);
  FaultInjectingDevice* faulty = nullptr;
  options.device_interposer = [&faulty](Device* inner) {
    FaultInjectingDevice::Options fault_options;
    auto device = std::make_unique<FaultInjectingDevice>(inner, fault_options);
    faulty = device.get();
    return device;
  };
  ASSERT_OK_AND_ASSIGN(auto service, WaveService::Create(std::move(options)));
  ASSERT_OK(service->Start(FirstWindow()));
  const Day before = service->current_day();

  // The first queued advance crashes mid-transition; the two behind it must
  // be dropped, not applied on top of a wounded scheme.
  faulty->ArmCrashAfterWrites(3);
  service->AdvanceDayAsync(Batch(kWindow + 1));
  service->AdvanceDayAsync(Batch(kWindow + 2));
  service->AdvanceDayAsync(Batch(kWindow + 3));
  const Status failed = service->WaitForMaintenance();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsInjectedCrash(failed)) << failed;
  EXPECT_EQ(service->current_day(), before);
  EXPECT_EQ(service->pending_advances(), 0);
  EXPECT_EQ(service->Metrics().days_advanced, 0u);
  EXPECT_EQ(service->Metrics().degraded_advances, 1u);

  // Still sticky after more submissions; the service keeps serving the
  // pre-failure snapshot (possibly degraded — ok or partial, never down).
  faulty->ClearCrash();
  service->AdvanceDayAsync(Batch(kWindow + 1));
  const Status still_failed = service->WaitForMaintenance();
  ASSERT_FALSE(still_failed.ok());
  EXPECT_TRUE(IsInjectedCrash(still_failed));
  std::vector<Entry> out;
  const Status query = service->TimedIndexProbe(
      DayRange::Window(before, kWindow), "alpha", &out);
  EXPECT_TRUE(query.ok() || query.IsPartialResult()) << query;
}

TEST(ParallelMaintenanceServiceTest, ProbesServeThroughBackgroundAdvances) {
  // The TSan target: query threads hammer probes while transitions run on
  // the background runner and fan out on the maintenance pool. Every probe
  // must succeed against some complete snapshot.
  WaveService::Options options = ServiceOptions(SchemeKind::kReindexPlusPlus, 4);
  options.num_query_threads = 2;
  ASSERT_OK_AND_ASSIGN(auto service, WaveService::Create(std::move(options)));
  ASSERT_OK(service->Start(FirstWindow()));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> probes{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&service, &done, &probes]() {
      while (!done.load()) {
        // The snapshot day may lag current_day(); use the published value.
        const Day day = service->current_day();
        std::vector<Entry> out;
        Status s = service->TimedIndexProbe(DayRange::Window(day, kWindow),
                                            "alpha", &out);
        if (!s.ok()) s.Abort("probe during background advance");
        ++probes;
      }
    });
  }
  for (Day d = kWindow + 1; d <= kWindow + 6; ++d) {
    service->AdvanceDayAsync(Batch(d));
  }
  ASSERT_OK(service->WaitForMaintenance());
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(service->current_day(), kWindow + 6);
  EXPECT_GT(probes.load(), 0u);
  VerifyWave(*service->Snapshot(), kWindow + 6);
}

}  // namespace
}  // namespace wavekit
