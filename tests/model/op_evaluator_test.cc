#include "model/op_evaluator.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace model {
namespace {

OpRecord Rec(OpKind kind, Phase phase, Day day, int op_days,
             ApplyMode mode = ApplyMode::kIncremental) {
  return OpRecord{kind, phase, day, op_days, 0, 0, mode};
}

class OpEvaluatorTest : public ::testing::Test {
 protected:
  OpEvaluatorTest() : evaluator_(CaseParams::Scam()) {}
  OpEvaluator evaluator_;
};

TEST_F(OpEvaluatorTest, BuildPricedPerDay) {
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kBuildIndex, Phase::kTransition, 1, 5)),
      5 * 1686.0);
}

TEST_F(OpEvaluatorTest, AddModes) {
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kAddToIndex, Phase::kTransition, 1, 2)),
      2 * 3341.0);
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(
          Rec(OpKind::kAddToIndex, Phase::kTransition, 1, 2,
              ApplyMode::kRebuild)),
      2 * 1686.0);
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kAddToIndex, Phase::kTransition, 1, 2,
                             ApplyMode::kMerged)),
      0.0);
}

TEST_F(OpEvaluatorTest, DeleteModes) {
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(
          Rec(OpKind::kDeleteFromIndex, Phase::kPrecompute, 1, 1)),
      3341.0);
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kDeleteFromIndex, Phase::kTransition, 1,
                             1, ApplyMode::kMerged)),
      0.0);
}

TEST_F(OpEvaluatorTest, CopiesPricedByTargetSize) {
  const CaseParams p = CaseParams::Scam();
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kCopyIndex, Phase::kPrecompute, 1, 4)),
      4 * p.CpSeconds());
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(
          Rec(OpKind::kSmartCopyIndex, Phase::kTransition, 1, 4)),
      4 * p.SmcpSeconds());
}

TEST_F(OpEvaluatorTest, DropIsCheapRenameIsFree) {
  EXPECT_LT(evaluator_.PriceOp(Rec(OpKind::kDropIndex, Phase::kTransition, 1,
                                   100)),
            0.1);
  EXPECT_DOUBLE_EQ(
      evaluator_.PriceOp(Rec(OpKind::kRename, Phase::kTransition, 1, 100)),
      0.0);
}

TEST_F(OpEvaluatorTest, PriceDaySplitsPhases) {
  OpLog log;
  log.Record(Rec(OpKind::kAddToIndex, Phase::kTransition, 11, 1));
  log.Record(Rec(OpKind::kAddToIndex, Phase::kPrecompute, 11, 2));
  log.Record(Rec(OpKind::kAddToIndex, Phase::kTransition, 12, 1));
  MaintenanceCost day11 = evaluator_.PriceDay(log, 11);
  EXPECT_DOUBLE_EQ(day11.transition_seconds, 3341.0);
  EXPECT_DOUBLE_EQ(day11.precompute_seconds, 2 * 3341.0);
  EXPECT_DOUBLE_EQ(day11.total(), 3 * 3341.0);
}

TEST_F(OpEvaluatorTest, AverageOverDays) {
  OpLog log;
  for (Day d = 11; d <= 20; ++d) {
    log.Record(Rec(OpKind::kAddToIndex, Phase::kTransition, d, 1));
  }
  log.Record(Rec(OpKind::kBuildIndex, Phase::kPrecompute, 15, 10));
  // Days (10, 20]: 10 adds + one 10-day build amortized over 10 days.
  MaintenanceCost avg = evaluator_.AverageOverDays(log, 10, 20);
  EXPECT_DOUBLE_EQ(avg.transition_seconds, 3341.0);
  EXPECT_DOUBLE_EQ(avg.precompute_seconds, 1686.0);
  // Records outside the range (the Start ops at day <= first) are excluded.
  log.Record(Rec(OpKind::kBuildIndex, Phase::kTransition, 10, 100));
  MaintenanceCost unchanged = evaluator_.AverageOverDays(log, 10, 20);
  EXPECT_DOUBLE_EQ(unchanged.transition_seconds, 3341.0);
}

}  // namespace
}  // namespace model
}  // namespace wavekit
