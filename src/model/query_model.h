// Query-performance model (paper Table 9): closed-form TimedIndexProbe and
// TimedSegmentScan times.

#ifndef WAVEKIT_MODEL_QUERY_MODEL_H_
#define WAVEKIT_MODEL_QUERY_MODEL_H_

#include "model/params.h"
#include "update/update_technique.h"
#include "wave/scheme.h"

namespace wavekit {
namespace model {

/// \brief Static per-scheme query shape: how many days one constituent
/// covers on average, and whether scans read packed (S) or unpacked (S')
/// bytes.
struct QueryShape {
  double days_per_index = 0;
  bool packed = false;
};

/// Derives the query shape of `scheme` with `technique` at (W, n). WATA's
/// soft window adds its average residual days; REINDEX (and any scheme under
/// packed shadow updating) reads packed bytes.
QueryShape ShapeOf(SchemeKind scheme, UpdateTechniqueKind technique, int window,
                   int num_indexes);

/// Table 9, left column: seconds for one TimedIndexProbe touching
/// `indexes_touched` constituents: each probe is one seek plus the bucket
/// transfer of days_per_index days at c bytes/day.
double TimedIndexProbeSeconds(const CaseParams& params, const QueryShape& shape,
                              int indexes_touched);

/// Table 9, right column: seconds for one TimedSegmentScan touching
/// `indexes_touched` constituents: each scan is one seek plus a sweep of the
/// constituent's S (packed) or S' (unpacked) bytes per day.
double TimedSegmentScanSeconds(const CaseParams& params,
                               const QueryShape& shape, int indexes_touched);

/// Modeled seconds for one whole day of the case study's query workload
/// (Probe_num probes + Scan_num scans, each touching the number of indexes
/// the case study prescribes).
double DailyQuerySeconds(const CaseParams& params, SchemeKind scheme,
                         UpdateTechniqueKind technique, int window,
                         int num_indexes);

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_QUERY_MODEL_H_
