// libFuzzer target for the bucket codecs (index/codec.h).
//
// DecodeBucket is a trust boundary: with verify_checksums=false the decoder
// is the only thing standing between rotten device bytes and the query
// path. The contract under fuzzing:
//
//   - DecodeBucket on arbitrary bytes, under every codec id and a spread of
//     claimed entry counts, never crashes, overreads, or trips a sanitizer
//     (it may return OK or DataLoss, nothing else matters here);
//   - EncodeBucket is deterministic, never beats itself (two encodes of the
//     same entries are byte-identical), never exceeds the raw size, and
//     round-trips: decode(encode(entries)) == entries for every CodecMode.
//
// Build (Clang only):  cmake -B build-fuzz -S . -DWAVEKIT_FUZZ=ON \
//                          -DCMAKE_CXX_COMPILER=clang++
//                      cmake --build build-fuzz --target fuzz_codec
// Run:                 build-fuzz/tests/fuzz/fuzz_codec \
//                          tests/fuzz/corpus/codec
//
// Without Clang, -DWAVEKIT_FUZZ_STANDALONE=ON builds the same harness with a
// plain main() that replays corpus files passed on the command line — a
// regression driver, not a fuzzer.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "index/codec.h"
#include "index/entry.h"

namespace {

// Decode allocates `count` entries up front, so cap the claimed counts the
// harness tries: large enough to exercise count/size mismatches, small
// enough that the fuzzer spends cycles on the parser, not the allocator.
constexpr size_t kMaxCount = size_t{1} << 20;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace wavekit;
  const std::byte* bytes = reinterpret_cast<const std::byte*>(data);

  // Arbitrary bytes through every decoder, with claimed counts both
  // consistent and inconsistent with the input size.
  const size_t counts[] = {0, 1, size / kEntrySize, size / 4 + 1,
                           2 * size + 7};
  for (int c = 0; c < kNumCodecs; ++c) {
    const Codec codec = static_cast<Codec>(c);
    for (const size_t count : counts) {
      if (count > kMaxCount) continue;
      std::vector<Entry> out(count);
      const Status status = DecodeBucket(codec, bytes, size, count, out.data());
      if (codec == Codec::kRaw && size == count * kEntrySize && !status.ok()) {
        std::fprintf(stderr, "raw decode rejected an exact-size input\n");
        __builtin_trap();
      }
    }
  }

  // Reinterpret the input as entries and assert the encode/decode identity
  // for every build mode.
  const size_t count = size / kEntrySize;
  if (count == 0) return 0;
  std::vector<Entry> entries(count);
  std::memcpy(entries.data(), data, count * kEntrySize);
  for (const CodecMode mode : {CodecMode::kRaw, CodecMode::kAuto,
                               CodecMode::kDelta, CodecMode::kBitPack}) {
    const EncodedBucket encoded = EncodeBucket(entries.data(), count, mode);
    const EncodedBucket again = EncodeBucket(entries.data(), count, mode);
    if (encoded.codec != again.codec || encoded.bytes != again.bytes) {
      std::fprintf(stderr, "encode is not deterministic\n");
      __builtin_trap();
    }
    if (encoded.stored_length(count) > count * kEntrySize) {
      std::fprintf(stderr, "encoded bucket larger than raw\n");
      __builtin_trap();
    }
    std::vector<Entry> decoded(count);
    const Status status =
        encoded.codec == Codec::kRaw
            ? DecodeBucket(Codec::kRaw, bytes, count * kEntrySize, count,
                           decoded.data())
            : DecodeBucket(encoded.codec, encoded.bytes.data(),
                           encoded.bytes.size(), count, decoded.data());
    if (!status.ok()) {
      std::fprintf(stderr, "decode of a fresh encode failed: %s\n",
                   status.ToString().c_str());
      __builtin_trap();
    }
    if (std::memcmp(decoded.data(), entries.data(), count * kEntrySize) != 0) {
      std::fprintf(stderr, "round-trip mismatch under mode %s\n",
                   CodecModeName(mode));
      __builtin_trap();
    }
  }
  return 0;
}

#ifdef WAVEKIT_FUZZ_STANDALONE
// Corpus replay driver for toolchains without libFuzzer.
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(contents.data()), contents.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], contents.size());
  }
  return 0;
}
#endif  // WAVEKIT_FUZZ_STANDALONE
