#include "workload/usenet_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace wavekit {
namespace workload {
namespace {

TEST(UsenetTraceTest, MagnitudesMatchFigure2) {
  UsenetVolumeTrace trace;
  std::vector<uint64_t> series = trace.Series(30);
  const uint64_t low = *std::min_element(series.begin(), series.end());
  const uint64_t high = *std::max_element(series.begin(), series.end());
  // Figure 2: troughs around 30k on Sundays, peaks around 110k mid-week.
  EXPECT_GT(low, 20000u);
  EXPECT_LT(low, 40000u);
  EXPECT_GT(high, 95000u);
  EXPECT_LT(high, 130000u);
}

TEST(UsenetTraceTest, WeeklyPatternSundayTrough) {
  UsenetTraceConfig config;
  config.first_weekday = 0;  // day 1 = Monday => days 7, 14, ... are Sundays
  config.noise = 0.0;
  UsenetVolumeTrace trace(config);
  for (int sunday : {7, 14, 21, 28}) {
    const uint64_t sun = trace.PostingsOn(sunday);
    const uint64_t wed = trace.PostingsOn(sunday - 4);
    EXPECT_LT(sun, wed / 2) << "Sunday " << sunday;
  }
}

TEST(UsenetTraceTest, DeterministicForSeed) {
  UsenetVolumeTrace a, b;
  EXPECT_EQ(a.Series(50), b.Series(50));
  UsenetTraceConfig other;
  other.seed = 2;
  UsenetVolumeTrace c(other);
  EXPECT_NE(a.Series(50), c.Series(50));
}

TEST(UsenetTraceTest, ScaleIsLinear) {
  UsenetTraceConfig small;
  small.scale = 0.01;
  small.noise = 0.0;
  UsenetTraceConfig big;
  big.scale = 1.0;
  big.noise = 0.0;
  UsenetVolumeTrace s(small), b(big);
  for (int d = 1; d <= 14; ++d) {
    EXPECT_NEAR(static_cast<double>(s.PostingsOn(d)),
                static_cast<double>(b.PostingsOn(d)) * 0.01, 2.0);
  }
}

TEST(UsenetTraceTest, NeverZero) {
  UsenetTraceConfig tiny;
  tiny.scale = 1e-9;
  UsenetVolumeTrace trace(tiny);
  for (int d = 1; d <= 10; ++d) EXPECT_GE(trace.PostingsOn(d), 1u);
}

}  // namespace
}  // namespace workload
}  // namespace wavekit
