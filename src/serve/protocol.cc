#include "serve/protocol.h"

#include <cstring>

namespace wavekit {
namespace serve {
namespace {

// --- Little-endian primitives ----------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutBytes(std::string* out, const std::string& v) {
  out->append(v);
}

/// Bounds-checked cursor over a decoder input. Every Get* returns false once
/// the input is exhausted; error text is attached by the caller.
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!GetU8(&lo) || !GetU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (static_cast<uint16_t>(hi) << 8));
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint16_t lo, hi;
    if (!GetU16(&lo) || !GetU16(&hi)) return false;
    *v = lo | (static_cast<uint32_t>(hi) << 16);
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = lo | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool GetI32(int32_t* v) {
    uint32_t u;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool GetBytes(size_t n, std::string* v) {
    if (remaining() < n) return false;
    v->assign(data_, pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed frame payload: " + what);
}

std::string EncodeFrame(uint8_t type, uint16_t tenant_id, uint32_t request_id,
                        const std::string& payload) {
  return EncodeRawFrame(kProtocolVersion, type, tenant_id, request_id, payload);
}

void PutResult(std::string* out, const WireResult& result) {
  // The detail is advisory; clamp rather than fail so a pathological message
  // cannot make an (infallible) encoder produce an unparseable frame.
  const size_t detail_len =
      result.detail.size() > 0xFFFF ? 0xFFFF : result.detail.size();
  PutU8(out, static_cast<uint8_t>(result.code));
  PutU16(out, static_cast<uint16_t>(detail_len));
  out->append(result.detail, 0, detail_len);
}

bool GetResult(WireReader* in, WireResult* out) {
  uint8_t code;
  uint16_t detail_len;
  if (!in->GetU8(&code) || !in->GetU16(&detail_len)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) return false;
  if (!in->GetBytes(detail_len, &out->detail)) return false;
  out->code = static_cast<StatusCode>(code);
  return true;
}

void PutStats(std::string* out, const QueryStats& stats) {
  PutU32(out, static_cast<uint32_t>(stats.indexes_accessed));
  PutU32(out, static_cast<uint32_t>(stats.indexes_skipped));
  PutU32(out, static_cast<uint32_t>(stats.indexes_unhealthy));
  PutU32(out, static_cast<uint32_t>(stats.indexes_failed));
  PutU32(out, static_cast<uint32_t>(stats.probe_fallbacks));
  PutU64(out, stats.entries_returned);
}

bool GetStats(WireReader* in, QueryStats* stats) {
  uint32_t accessed, skipped, unhealthy, failed, fallbacks;
  if (!in->GetU32(&accessed) || !in->GetU32(&skipped) ||
      !in->GetU32(&unhealthy) || !in->GetU32(&failed) ||
      !in->GetU32(&fallbacks) || !in->GetU64(&stats->entries_returned)) {
    return false;
  }
  stats->indexes_accessed = static_cast<int>(accessed);
  stats->indexes_skipped = static_cast<int>(skipped);
  stats->indexes_unhealthy = static_cast<int>(unhealthy);
  stats->indexes_failed = static_cast<int>(failed);
  stats->probe_fallbacks = static_cast<int>(fallbacks);
  return true;
}

}  // namespace

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kProbe) &&
         type <= static_cast<uint8_t>(FrameType::kHealth);
}

std::string EncodeRawFrame(uint8_t version, uint8_t type, uint16_t tenant_id,
                           uint32_t request_id, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU8(&out, version);
  PutU8(&out, type);
  PutU16(&out, tenant_id);
  PutU32(&out, request_id);
  PutBytes(&out, payload);
  return out;
}

// --- Request encoders -------------------------------------------------------

std::string EncodeProbeRequest(uint16_t tenant_id, uint32_t request_id,
                               const ProbeRequest& request) {
  std::string payload;
  PutI32(&payload, request.range.lo);
  PutI32(&payload, request.range.hi);
  PutU32(&payload, static_cast<uint32_t>(request.value.size()));
  PutBytes(&payload, request.value);
  return EncodeFrame(static_cast<uint8_t>(FrameType::kProbe), tenant_id,
                     request_id, payload);
}

std::string EncodeScanRequest(uint16_t tenant_id, uint32_t request_id,
                              const ScanRequest& request) {
  std::string payload;
  PutI32(&payload, request.range.lo);
  PutI32(&payload, request.range.hi);
  PutU32(&payload, request.max_entries);
  return EncodeFrame(static_cast<uint8_t>(FrameType::kScan), tenant_id,
                     request_id, payload);
}

std::string EncodeAdvanceRequest(uint16_t tenant_id, uint32_t request_id,
                                 const AdvanceRequest& request) {
  std::string payload;
  PutI32(&payload, request.batch.day);
  PutU32(&payload, static_cast<uint32_t>(request.batch.records.size()));
  for (const Record& record : request.batch.records) {
    PutU64(&payload, record.record_id);
    PutU16(&payload, static_cast<uint16_t>(record.values.size()));
    for (size_t i = 0; i < record.values.size(); ++i) {
      PutU32(&payload, static_cast<uint32_t>(record.values[i].size()));
      PutBytes(&payload, record.values[i]);
      PutU32(&payload, record.AuxFor(i));
    }
  }
  return EncodeFrame(static_cast<uint8_t>(FrameType::kAdvance), tenant_id,
                     request_id, payload);
}

std::string EncodeStatsRequest(uint16_t tenant_id, uint32_t request_id) {
  return EncodeFrame(static_cast<uint8_t>(FrameType::kStats), tenant_id,
                     request_id, std::string());
}

std::string EncodeHealthRequest(uint16_t tenant_id, uint32_t request_id) {
  return EncodeFrame(static_cast<uint8_t>(FrameType::kHealth), tenant_id,
                     request_id, std::string());
}

// --- Reply encoders ---------------------------------------------------------

std::string EncodeQueryReply(const FrameHeader& request,
                             const QueryReply& reply) {
  std::string payload;
  PutResult(&payload, reply.result);
  if (reply.result.has_body()) {
    PutStats(&payload, reply.stats);
    PutU32(&payload, static_cast<uint32_t>(reply.entries.size()));
    for (const Entry& entry : reply.entries) {
      PutU64(&payload, entry.record_id);
      PutI32(&payload, entry.day);
      PutU32(&payload, entry.aux);
    }
  }
  const uint8_t type = request.type == static_cast<uint8_t>(FrameType::kScan)
                           ? static_cast<uint8_t>(FrameType::kScanReply)
                           : static_cast<uint8_t>(FrameType::kProbeReply);
  return EncodeFrame(type, request.tenant_id, request.request_id, payload);
}

std::string EncodeAdvanceReply(const FrameHeader& request,
                               const AdvanceReply& reply) {
  std::string payload;
  PutResult(&payload, reply.result);
  if (reply.result.has_body()) PutI32(&payload, reply.current_day);
  return EncodeFrame(static_cast<uint8_t>(FrameType::kAdvanceReply),
                     request.tenant_id, request.request_id, payload);
}

std::string EncodeStatsReply(const FrameHeader& request,
                             const StatsReply& reply) {
  std::string payload;
  PutResult(&payload, reply.result);
  if (reply.result.has_body()) {
    PutU64(&payload, reply.probes);
    PutU64(&payload, reply.scans);
    PutU64(&payload, reply.days_advanced);
    PutU64(&payload, reply.async_advances);
    PutU64(&payload, reply.pending_advances);
    PutU64(&payload, reply.degraded_advances);
    PutU64(&payload, reply.partial_results);
    PutI32(&payload, reply.current_day);
    PutU8(&payload, reply.degraded ? 1 : 0);
  }
  return EncodeFrame(static_cast<uint8_t>(FrameType::kStatsReply),
                     request.tenant_id, request.request_id, payload);
}

std::string EncodeHealthReply(const FrameHeader& request,
                              const HealthReply& reply) {
  std::string payload;
  PutResult(&payload, reply.result);
  if (reply.result.has_body()) {
    PutU8(&payload, reply.degraded ? 1 : 0);
    PutU32(&payload, static_cast<uint32_t>(reply.detail.size()));
    PutBytes(&payload, reply.detail);
  }
  return EncodeFrame(static_cast<uint8_t>(FrameType::kHealthReply),
                     request.tenant_id, request.request_id, payload);
}

std::string EncodeErrorReply(const FrameHeader& request, FrameType type,
                             StatusCode code, const std::string& detail) {
  std::string payload;
  WireResult result;
  result.code = code == StatusCode::kOk ? StatusCode::kInternal : code;
  result.detail = detail;
  PutResult(&payload, result);
  return EncodeFrame(static_cast<uint8_t>(type), request.tenant_id,
                     request.request_id, payload);
}

// --- Request decoders -------------------------------------------------------

Status DecodeProbeRequest(const std::string& payload, ProbeRequest* out) {
  WireReader in(payload);
  ProbeRequest parsed;
  uint32_t value_len;
  if (!in.GetI32(&parsed.range.lo) || !in.GetI32(&parsed.range.hi) ||
      !in.GetU32(&value_len) || !in.GetBytes(value_len, &parsed.value)) {
    return Malformed("truncated PROBE");
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after PROBE");
  *out = std::move(parsed);
  return Status::OK();
}

Status DecodeScanRequest(const std::string& payload, ScanRequest* out) {
  WireReader in(payload);
  ScanRequest parsed;
  if (!in.GetI32(&parsed.range.lo) || !in.GetI32(&parsed.range.hi) ||
      !in.GetU32(&parsed.max_entries)) {
    return Malformed("truncated SCAN");
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after SCAN");
  *out = parsed;
  return Status::OK();
}

Status DecodeAdvanceRequest(const std::string& payload, AdvanceRequest* out) {
  WireReader in(payload);
  AdvanceRequest parsed;
  uint32_t record_count;
  if (!in.GetI32(&parsed.batch.day) || !in.GetU32(&record_count)) {
    return Malformed("truncated ADVANCE");
  }
  // A record costs at least 10 payload bytes (id + value count), so a count
  // the remaining bytes cannot cover is rejected before reserving anything —
  // a hostile count field cannot drive allocation.
  if (record_count > in.remaining() / 10) {
    return Malformed("ADVANCE record count exceeds payload");
  }
  parsed.batch.records.reserve(record_count);
  for (uint32_t r = 0; r < record_count; ++r) {
    Record record;
    record.day = parsed.batch.day;
    uint16_t num_values;
    if (!in.GetU64(&record.record_id) || !in.GetU16(&num_values)) {
      return Malformed("truncated ADVANCE record");
    }
    // Same guard: a value costs at least 8 bytes (len + aux).
    if (num_values > in.remaining() / 8) {
      return Malformed("ADVANCE value count exceeds payload");
    }
    record.values.reserve(num_values);
    record.aux.reserve(num_values);
    for (uint16_t v = 0; v < num_values; ++v) {
      uint32_t value_len, aux;
      Value value;
      if (!in.GetU32(&value_len) || !in.GetBytes(value_len, &value) ||
          !in.GetU32(&aux)) {
        return Malformed("truncated ADVANCE value");
      }
      record.values.push_back(std::move(value));
      record.aux.push_back(aux);
    }
    parsed.batch.records.push_back(std::move(record));
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after ADVANCE");
  *out = std::move(parsed);
  return Status::OK();
}

// --- Reply decoders ---------------------------------------------------------

Status DecodeResultPrefix(const std::string& payload, WireResult* out) {
  WireReader in(payload);
  WireResult result;
  if (!GetResult(&in, &result)) return Malformed("truncated result prefix");
  *out = std::move(result);
  return Status::OK();
}

Status DecodeQueryReply(const std::string& payload, QueryReply* out) {
  WireReader in(payload);
  QueryReply parsed;
  if (!GetResult(&in, &parsed.result)) {
    return Malformed("truncated query reply result");
  }
  if (parsed.result.has_body()) {
    uint32_t entry_count;
    if (!GetStats(&in, &parsed.stats) || !in.GetU32(&entry_count)) {
      return Malformed("truncated query reply stats");
    }
    if (entry_count > in.remaining() / 16) {
      return Malformed("query reply entry count exceeds payload");
    }
    parsed.entries.reserve(entry_count);
    for (uint32_t i = 0; i < entry_count; ++i) {
      Entry entry;
      if (!in.GetU64(&entry.record_id) || !in.GetI32(&entry.day) ||
          !in.GetU32(&entry.aux)) {
        return Malformed("truncated query reply entry");
      }
      parsed.entries.push_back(entry);
    }
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after query reply");
  *out = std::move(parsed);
  return Status::OK();
}

Status DecodeAdvanceReply(const std::string& payload, AdvanceReply* out) {
  WireReader in(payload);
  AdvanceReply parsed;
  if (!GetResult(&in, &parsed.result)) {
    return Malformed("truncated advance reply");
  }
  if (parsed.result.has_body() && !in.GetI32(&parsed.current_day)) {
    return Malformed("truncated advance reply day");
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after advance reply");
  *out = std::move(parsed);
  return Status::OK();
}

Status DecodeStatsReply(const std::string& payload, StatsReply* out) {
  WireReader in(payload);
  StatsReply parsed;
  if (!GetResult(&in, &parsed.result)) return Malformed("truncated stats reply");
  if (parsed.result.has_body()) {
    uint8_t degraded;
    if (!in.GetU64(&parsed.probes) || !in.GetU64(&parsed.scans) ||
        !in.GetU64(&parsed.days_advanced) ||
        !in.GetU64(&parsed.async_advances) ||
        !in.GetU64(&parsed.pending_advances) ||
        !in.GetU64(&parsed.degraded_advances) ||
        !in.GetU64(&parsed.partial_results) ||
        !in.GetI32(&parsed.current_day) || !in.GetU8(&degraded)) {
      return Malformed("truncated stats reply body");
    }
    parsed.degraded = degraded != 0;
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after stats reply");
  *out = std::move(parsed);
  return Status::OK();
}

Status DecodeHealthReply(const std::string& payload, HealthReply* out) {
  WireReader in(payload);
  HealthReply parsed;
  if (!GetResult(&in, &parsed.result)) {
    return Malformed("truncated health reply");
  }
  if (parsed.result.has_body()) {
    uint8_t degraded;
    uint32_t detail_len;
    if (!in.GetU8(&degraded) || !in.GetU32(&detail_len) ||
        !in.GetBytes(detail_len, &parsed.detail)) {
      return Malformed("truncated health reply body");
    }
    parsed.degraded = degraded != 0;
  }
  if (!in.AtEnd()) return Malformed("trailing bytes after health reply");
  *out = std::move(parsed);
  return Status::OK();
}

// --- FrameReader ------------------------------------------------------------

Status FrameReader::Feed(const void* data, size_t size) {
  if (!error_.ok()) return error_;

  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), size);

  // Validate the next unconsumed header eagerly: a poisoned length field is
  // caught before Next() is ever called and before payload bytes pile up.
  if (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    const unsigned char* h =
        reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
    FrameHeader header;
    header.payload_len = static_cast<uint32_t>(h[0]) |
                         (static_cast<uint32_t>(h[1]) << 8) |
                         (static_cast<uint32_t>(h[2]) << 16) |
                         (static_cast<uint32_t>(h[3]) << 24);
    header.version = h[4];
    header.type = h[5];
    header.tenant_id =
        static_cast<uint16_t>(h[6] | (static_cast<uint16_t>(h[7]) << 8));
    header.request_id = static_cast<uint32_t>(h[8]) |
                        (static_cast<uint32_t>(h[9]) << 8) |
                        (static_cast<uint32_t>(h[10]) << 16) |
                        (static_cast<uint32_t>(h[11]) << 24);
    if (header.version != kProtocolVersion) {
      error_ = Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(header.version));
      error_header_ = header;
    } else if (header.payload_len > max_payload_bytes_) {
      error_ = Status::InvalidArgument(
          "frame payload " + std::to_string(header.payload_len) +
          " exceeds limit " + std::to_string(max_payload_bytes_));
      error_header_ = header;
    }
    if (!error_.ok()) {
      buffer_.clear();
      consumed_ = 0;
      return error_;
    }
  }
  return Status::OK();
}

bool FrameReader::Next(Frame* out) {
  if (!error_.ok()) return false;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;

  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  FrameHeader header;
  header.payload_len = static_cast<uint32_t>(h[0]) |
                       (static_cast<uint32_t>(h[1]) << 8) |
                       (static_cast<uint32_t>(h[2]) << 16) |
                       (static_cast<uint32_t>(h[3]) << 24);
  header.version = h[4];
  header.type = h[5];
  header.tenant_id =
      static_cast<uint16_t>(h[6] | (static_cast<uint16_t>(h[7]) << 8));
  header.request_id = static_cast<uint32_t>(h[8]) |
                      (static_cast<uint32_t>(h[9]) << 8) |
                      (static_cast<uint32_t>(h[10]) << 16) |
                      (static_cast<uint32_t>(h[11]) << 24);

  if (available < kFrameHeaderBytes + header.payload_len) return false;

  out->header = header;
  out->payload.assign(buffer_, consumed_ + kFrameHeaderBytes,
                      header.payload_len);
  consumed_ += kFrameHeaderBytes + header.payload_len;

  // The *following* frame's header may be the poisoned one; re-validate it
  // now so error() flips as soon as the bad header is fully buffered.
  if (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    (void)Feed("", 0);
  }
  return true;
}

}  // namespace serve
}  // namespace wavekit
