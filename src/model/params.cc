#include "model/params.h"

#include <cmath>

namespace wavekit {
namespace model {

CaseParams CaseParams::Scaled(double sf) const {
  CaseParams out = *this;
  out.packed_day_bytes *= sf;
  out.unpacked_day_bytes *= sf;
  out.bucket_bytes_per_day *= sf;
  out.build_seconds *= sf;
  out.add_seconds *= sf;
  out.delete_seconds *= sf;
  // Memory-pressure amplification of incremental updates: Table 12's Add/Del
  // were measured with the day's index cache-resident. Once S' * SF exceeds
  // RAM, CONTIGUOUS relocations (read old bucket, write bigger bucket) churn
  // through disk instead of cache. Packed builds are two sequential passes
  // and stay linear. The exponent is calibrated so WATA* (one Add per day)
  // keeps beating REINDEX until SF ~ 3 for the SCAM W=14 scenario, matching
  // Figure 10.
  const double pressure = out.unpacked_day_bytes / out.memory_bytes;
  if (pressure > 1.0) {
    const double amplification = std::pow(pressure, 0.85);
    out.add_seconds *= amplification;
    out.delete_seconds *= amplification;
  }
  return out;
}

CaseParams CaseParams::Scam() {
  CaseParams p;
  p.name = "SCAM";
  p.packed_day_bytes = 56e6;
  p.unpacked_day_bytes = 78.4e6;
  p.bucket_bytes_per_day = 100;
  p.probes_per_day = 100000;  // 100 queries x 1000 probes over the window
  p.probes_touch_all_indexes = true;
  p.scans_per_day = 10;  // registration checks against the current day only
  p.scans_touch_all_indexes = false;
  p.growth_factor = 2.0;
  p.build_seconds = 1686;
  p.add_seconds = 3341;
  p.delete_seconds = 3341;
  p.window = 7;
  return p;
}

CaseParams CaseParams::Wse() {
  CaseParams p;
  p.name = "WSE";
  p.packed_day_bytes = 75e6;
  p.unpacked_day_bytes = 105e6;
  p.bucket_bytes_per_day = 100;
  p.probes_per_day = 340000;  // ~170k queries x 2 words
  p.probes_touch_all_indexes = true;
  p.scans_per_day = 0;
  p.scans_touch_all_indexes = false;
  p.growth_factor = 2.0;
  p.build_seconds = 2276;
  p.add_seconds = 4678;
  p.delete_seconds = 4678;
  p.window = 35;
  return p;
}

CaseParams CaseParams::Tpcd() {
  CaseParams p;
  p.name = "TPC-D";
  p.packed_day_bytes = 600e6;
  p.unpacked_day_bytes = 627e6;
  p.bucket_bytes_per_day = 100;
  p.probes_per_day = 0;
  p.probes_touch_all_indexes = true;
  p.scans_per_day = 10;  // complex analytical queries over the whole window
  p.scans_touch_all_indexes = true;
  p.growth_factor = 1.08;
  p.build_seconds = 8406;
  p.add_seconds = 11431;
  p.delete_seconds = 11431;
  p.window = 100;
  return p;
}

}  // namespace model
}  // namespace wavekit
