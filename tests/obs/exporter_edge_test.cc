// Renderer edge cases: label/JSON escaping and empty-histogram output. The
// CI telemetry job feeds /metrics to a Prometheus-format check and the JSON
// endpoints to a JSON parser; these tests pin the escaping rules those
// checks depend on.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace wavekit {
namespace obs {
namespace {

TEST(PrometheusEscapingTest, LabelValuesEscapeQuoteBackslashNewline) {
  MetricsRegistry registry;
  registry
      .AddCounter("paths_total", "Paths.",
                  {{"path", "C:\\tmp\\\"quoted\"\nnext"}})
      ->Increment();
  const std::string text = registry.RenderPrometheus();
  // Prometheus label escaping: backslash -> \\, quote -> \", newline -> \n.
  EXPECT_NE(text.find("C:\\\\tmp\\\\\\\"quoted\\\"\\nnext"), std::string::npos)
      << text;
  // No raw newline may survive inside the label value (it would split the
  // exposition line).
  const size_t value_start = text.find("path=\"");
  ASSERT_NE(value_start, std::string::npos);
  const size_t line_end = text.find('\n', value_start);
  const std::string line = text.substr(value_start, line_end - value_start);
  EXPECT_EQ(line.find("quoted\"\n"), std::string::npos);
}

TEST(PrometheusEscapingTest, EmptyHistogramRendersZeroSeriesWithoutNan) {
  MetricsRegistry registry;
  registry.AddHistogram("lat_us", "Latency.", {{"op", "probe"}});
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("lat_us_count"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_sum"), std::string::npos) << text;
  EXPECT_NE(text.find("quantile"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
}

TEST(PrometheusEscapingTest, EmptyHistogramQuantilesAreZero) {
  MetricsRegistry registry;
  registry.AddHistogram("lat_us", "Latency.");
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  const Histogram& h = snapshot.metrics[0].histogram;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(JsonEscapingTest, MetricsJsonEscapesLabelValues) {
  MetricsRegistry registry;
  registry
      .AddCounter("files_total", "Files.",
                  {{"file", "a\"b\\c\nd\te"}})
      ->Increment(2);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te"), std::string::npos) << json;
  // The rendered document must not contain a raw newline inside any quoted
  // string: every line break in the output separates whole JSON tokens.
  for (size_t pos = json.find('\n'); pos != std::string::npos;
       pos = json.find('\n', pos + 1)) {
    size_t quotes = 0;
    for (size_t i = 0; i < pos; ++i) {
      if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
    }
    EXPECT_EQ(quotes % 2, 0u) << "newline inside a quoted string at " << pos;
  }
}

TEST(JsonEscapingTest, ControlCharactersBecomeUnicodeEscapes) {
  MetricsRegistry registry;
  std::string value = "bell";
  value.push_back('\x07');
  registry.AddCounter("c_total", "C.", {{"v", value}})->Increment();
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\\u0007"), std::string::npos) << json;
}

TEST(JsonEscapingTest, EmptyHistogramJsonHasZeroStats) {
  MetricsRegistry registry;
  registry.AddHistogram("lat_us", "Latency.");
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("lat_us"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
