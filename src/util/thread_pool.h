// ThreadPool: a small fixed-size worker pool for parallel query fan-out.
//
// The paper (Introduction and Section 8): "if multiple disks and computers
// are available, the queries across indexes can be easily parallelized."
// WaveIndex::ParallelTimedIndexProbe uses this pool to probe constituents
// concurrently.

#ifndef WAVEKIT_UTIL_THREAD_POOL_H_
#define WAVEKIT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavekit {

/// \brief Fixed set of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_THREAD_POOL_H_
