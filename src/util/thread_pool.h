// ThreadPool: a small fixed-size worker pool for parallel query fan-out.
//
// The paper (Introduction and Section 8): "if multiple disks and computers
// are available, the queries across indexes can be easily parallelized."
// WaveIndex::ParallelTimedIndexProbe uses this pool to probe constituents
// concurrently.

#ifndef WAVEKIT_UTIL_THREAD_POOL_H_
#define WAVEKIT_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavekit {

/// \brief Fixed set of worker threads executing submitted tasks FIFO.
///
/// Concurrency contract (relied on by WaveService, which shares one pool
/// across all query threads):
///  - Submit is safe from any thread at any time before destruction begins,
///    INCLUDING from a task running on a worker (reentrant submits) and
///    concurrently with Wait.
///  - Wait blocks until the pool is idle: every task submitted
///    happens-before the Wait call has finished, including children those
///    tasks submitted transitively. Tasks submitted concurrently with Wait
///    (from other threads) may or may not be covered — call Wait again.
///  - Destruction drains: queued tasks (and tasks they submit) all execute
///    before the destructor returns. No task is dropped.
///  - Tasks must not throw (an escaping exception terminates the process)
///    and must not call Wait (a worker waiting for itself deadlocks).
///
/// Submit/Wait are virtual so a deterministic drop-in can honor the same
/// contract without real threads: testing::SimExecutor queues every task and
/// runs them single-threaded in a seeded pseudo-random order when Wait (or a
/// WaitGroup::Wait) drains it. Code written against ThreadPool* simulates
/// for free.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  virtual ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  virtual void Submit(std::function<void()> task);

  /// Blocks until every previously submitted task (and its transitive
  /// reentrant children) has finished executing.
  virtual void Wait();

  /// \brief Scoped join over a subset of a pool's tasks.
  ///
  /// ThreadPool::Wait drains the WHOLE pool — on a pool shared with query
  /// fan-out, a maintenance stage calling it would block on unrelated query
  /// work. A WaitGroup counts only the tasks submitted through it, so a
  /// parallel build stage joins exactly its own children:
  ///
  ///   ThreadPool::WaitGroup group(pool);
  ///   for (auto& part : partitions) group.Submit([&] { Sort(part); });
  ///   group.Wait();  // only the Sort tasks, not concurrent probes
  ///
  /// Contract:
  ///  - Submit is safe from any thread, including from a task already running
  ///    in this group (reentrant submits); Wait covers such children because
  ///    the pending count is raised before the parent's completion lowers it.
  ///  - Wait must NOT be called from a pool worker (same rule as
  ///    ThreadPool::Wait): with all workers blocked in Wait the children
  ///    could never run. Maintenance code keeps every Wait on the
  ///    coordinator thread.
  ///  - The group must outlive its tasks; the destructor Waits as a backstop.
  class WaitGroup {
   public:
    explicit WaitGroup(ThreadPool* pool) : pool_(pool) {}
    ~WaitGroup() { Wait(); }

    WaitGroup(const WaitGroup&) = delete;
    WaitGroup& operator=(const WaitGroup&) = delete;

    /// Enqueues `task` on the pool and counts it toward this group's Wait.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted through this group (including
    /// reentrant children submitted through it) has finished.
    void Wait();

    /// Tasks submitted through this group still queued or running.
    int pending() const;

   private:
    ThreadPool* pool_;
    mutable std::mutex mutex_;
    std::condition_variable done_;
    int pending_ = 0;
  };

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued and not yet picked up by a worker (point-in-time sample;
  /// safe from any thread — used by the observability layer).
  virtual size_t queue_depth() const;

  /// Queued + currently executing tasks (the count Wait waits to hit zero).
  virtual int in_flight() const;

 protected:
  /// For executor subclasses that schedule tasks themselves: spawns no
  /// workers and leaves the base queue unused.
  ThreadPool() = default;

  /// Called by WaitGroup::Wait before it blocks on the group's condition.
  /// Worker-backed pools need nothing (workers drain the queue); an executor
  /// with no workers overrides this to run its queued tasks inline on the
  /// waiting thread, so the group's pending count can reach zero.
  virtual void DrainForWait() {}

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  // Queued + currently executing tasks. A task's reentrant Submit increments
  // this before the parent's own completion decrements it, so Wait (which
  // waits for zero) cannot wake between a parent finishing and its children
  // starting.
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// \brief How much parallelism a maintenance stage may use, and on which
/// pool. Default-constructed = serial: the stage runs the exact single-thread
/// code path, so cost-model runs reproduce byte-identically.
///
/// Stages fan work out through a ThreadPool::WaitGroup and join on the
/// calling (coordinator) thread; per WaitGroup's contract the coordinator
/// must not itself be a worker of `pool`.
struct ParallelContext {
  ThreadPool* pool = nullptr;
  int threads = 1;

  /// True when a stage should take its parallel path.
  bool enabled() const { return pool != nullptr && threads > 1; }

  /// Partition count for `items` units of work: at most `threads`, at least
  /// 1, never more than the number of items.
  size_t Partitions(size_t items) const {
    if (!enabled() || items == 0) return 1;
    return std::min(items, static_cast<size_t>(threads));
  }
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_THREAD_POOL_H_
