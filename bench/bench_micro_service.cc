// Micro-benchmark of the concurrent serving layer: probe throughput as the
// number of reader threads grows, with and without a concurrent writer.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

std::unique_ptr<WaveService> MakeService() {
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = 7;
  options.config.num_indexes = 3;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto created = WaveService::Create(options);
  if (!created.ok()) created.status().Abort("Create");
  std::unique_ptr<WaveService> service = std::move(created).ValueOrDie();
  workload::NetnewsConfig config;
  config.articles_per_day = 150;
  config.words_per_article = 15;
  workload::NetnewsGenerator gen(config);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 7; ++d) first.push_back(gen.GenerateDay(d));
  service->Start(std::move(first)).Abort("Start");
  return service;
}

// Shared across benchmark threads of one run.
WaveService* g_service = nullptr;
std::unique_ptr<WaveService> g_service_owner;

void BM_ServiceProbe(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_service_owner = MakeService();
    g_service = g_service_owner.get();
  }
  workload::NetnewsGenerator gen({});
  Rng rng(static_cast<uint64_t>(state.thread_index()) + 1);
  std::vector<Entry> out;
  for (auto _ : state) {
    out.clear();
    g_service->IndexProbe(gen.SampleWord(rng), &out).Abort("probe");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_service = nullptr;
    g_service_owner.reset();
  }
}
BENCHMARK(BM_ServiceProbe)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_ServiceProbeWithConcurrentWriter(benchmark::State& state) {
  std::unique_ptr<WaveService> service = MakeService();
  workload::NetnewsConfig config;
  config.articles_per_day = 150;
  config.words_per_article = 15;
  workload::NetnewsGenerator gen(config);
  // Skip to the serving day so the writer can continue the stream.
  for (Day d = 1; d <= 7; ++d) (void)gen.GenerateDay(d);

  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    Day d = 7;
    while (!stop.load()) {
      service->AdvanceDay(gen.GenerateDay(++d)).Abort("advance");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Rng rng(11);
  workload::NetnewsGenerator sampler({});
  std::vector<Entry> out;
  for (auto _ : state) {
    out.clear();
    service->IndexProbe(sampler.SampleWord(rng), &out).Abort("probe");
    benchmark::DoNotOptimize(out);
  }
  stop.store(true);
  writer.join();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("1 reader + live writer");
}
BENCHMARK(BM_ServiceProbeWithConcurrentWriter)->UseRealTime();

}  // namespace
}  // namespace wavekit

BENCHMARK_MAIN();
