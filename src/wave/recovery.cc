#include "wave/recovery.h"

#include <utility>

#include "util/crash_point.h"
#include "util/fs.h"
#include "util/macros.h"
#include "wave/scrubber.h"

namespace wavekit {

Status DurableMaintenance::Start(std::vector<DayBatch> first_window) {
  // A stale journal can only come from a previous incarnation whose state
  // the caller chose to abandon by starting fresh.
  WAVEKIT_RETURN_NOT_OK(RemoveFileDurable(paths_.journal));
  WAVEKIT_RETURN_NOT_OK(scheme_->Start(std::move(first_window)));
  return Checkpoint();
}

Status DurableMaintenance::Checkpoint() {
  if (data_device_ != nullptr) {
    // Bucket bytes must be stable BEFORE the checkpoint rename that makes
    // them the durable truth; a failed flush must fail the transition.
    Status sync = data_device_->Sync();
    if (!sync.ok()) {
      return Status::IOError("data-device sync before checkpoint failed: " +
                             sync.message());
    }
    WAVEKIT_RETURN_NOT_OK(CrashPoints::Check("checkpoint.after_data_sync"));
  }
  return WriteCheckpoint(scheme_->wave(), paths_.checkpoint);
}

Result<Scheme::HealReport> DurableMaintenance::Heal() {
  // Pin for the same reason AdvanceDay does: until the post-heal checkpoint
  // is the durable truth, the extents the last checkpoint references (the
  // corrupt constituent's included — corrupt bytes are still the recovery
  // baseline) must stay reserved. Kept on failure, released on commit.
  pinned_ = scheme_->wave();
  WAVEKIT_ASSIGN_OR_RETURN(Scheme::HealReport report,
                           scheme_->HealUnhealthy());
  if (report.healed > 0) {
    WAVEKIT_RETURN_NOT_OK(Checkpoint());
  }
  pinned_ = WaveIndex();
  return report;
}

Status DurableMaintenance::AdvanceDay(DayBatch new_day) {
  const Day day = new_day.day;
  MaintenanceJournal journal(paths_.journal);
  WAVEKIT_RETURN_NOT_OK(journal.WriteIntent(day));
  WAVEKIT_RETURN_NOT_OK(CrashPoints::Check("advance.after_intent"));
  // Pin: until the new checkpoint is the durable truth, the old checkpoint
  // must stay loadable, which requires the extents it references to stay
  // reserved (a dropped constituent's extents would otherwise be freed and
  // could be handed to this very transition's new indexes).
  pinned_ = scheme_->wave();
  WAVEKIT_RETURN_NOT_OK(scheme_->Transition(std::move(new_day)));
  WAVEKIT_RETURN_NOT_OK(CrashPoints::Check("advance.after_transition"));
  WAVEKIT_RETURN_NOT_OK(Checkpoint());
  WAVEKIT_RETURN_NOT_OK(CrashPoints::Check("advance.after_checkpoint"));
  WAVEKIT_RETURN_NOT_OK(journal.Commit());
  pinned_ = WaveIndex();  // the old constituents' extents may now be reused
  return Status::OK();
}

Result<DurableMaintenance::RecoveredState> DurableMaintenance::Recover(
    const Paths& paths, Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options, obs::EventJournal* events) {
  // A journal that fails its CRC never became durable, so no transition work
  // can have followed it — same as no intent at all.
  std::optional<Day> intent;
  {
    Result<std::optional<Day>> read = MaintenanceJournal::Read(paths.journal);
    if (read.ok()) {
      intent = read.ValueOrDie();
    } else if (!read.status().IsInvalidArgument()) {
      return read.status();
    }
  }
  WAVEKIT_ASSIGN_OR_RETURN(
      WaveIndex wave,
      LoadCheckpoint(paths.checkpoint, device, allocator, options));
  const TimeSet covered = wave.CoveredDays();
  if (covered.empty()) {
    return Status::InvalidArgument(
        "recovered checkpoint covers no days: '" + paths.checkpoint + "'");
  }
  RecoveredState state;
  state.current_day = *covered.rbegin();
  state.wave = std::move(wave);
  if (options.verify_checksums) {
    // Revalidate every live extent against the checkpoint's checksums before
    // trusting the recovered wave. Corruption quarantines the constituent
    // (degraded serving + online heal) instead of failing recovery: the
    // healthy remainder of the window is still worth serving.
    ScrubOptions scrub;
    scrub.events = events;
    scrub.integrity = options.integrity;
    scrub.day = state.current_day;
    WAVEKIT_ASSIGN_OR_RETURN(ScrubReport scrubbed,
                             ScrubWave(state.wave, scrub));
    state.quarantined = std::move(scrubbed.quarantined);
  }
  if (intent.has_value() && *intent > state.current_day) {
    // The journaled transition never committed: serve the pre-transition
    // window and have the caller re-run the day.
    state.interrupted_day = intent;
    if (events != nullptr) {
      events->Append(obs::EventType::kRecoveryRollBack, *intent,
                     "journaled transition never committed; serving day " +
                         std::to_string(state.current_day));
    }
  } else if (intent.has_value()) {
    // The checkpoint already covers the journaled day: the crash hit between
    // checkpoint and journal commit, so the transition is durable.
    if (events != nullptr) {
      events->Append(obs::EventType::kRecoveryRollForward, *intent,
                     "checkpoint already covers the journaled day");
    }
  }
  // Committed-or-rolled-back either way: the journal's job is done.
  WAVEKIT_RETURN_NOT_OK(RemoveFileDurable(paths.journal));
  return state;
}

}  // namespace wavekit
