#include "wave/scheme_factory.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace {

TEST(SchemeFactoryTest, MakesEveryKind) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  for (SchemeKind kind : kAllSchemeKinds) {
    SchemeConfig config;
    config.window = 8;
    config.num_indexes = 2;
    auto made = MakeScheme(kind, env, config);
    ASSERT_TRUE(made.ok()) << SchemeKindName(kind) << ": " << made.status();
    EXPECT_EQ(made.ValueOrDie()->kind(), kind);
  }
}

TEST(SchemeFactoryTest, SchemeNamesRoundTrip) {
  for (SchemeKind kind : kAllSchemeKinds) {
    auto parsed = SchemeKindFromName(SchemeKindName(kind));
    ASSERT_TRUE(parsed.ok()) << SchemeKindName(kind);
    EXPECT_EQ(parsed.ValueOrDie(), kind);
  }
  auto kb = SchemeKindFromName(SchemeKindName(SchemeKind::kKnownBoundWata));
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb.ValueOrDie(), SchemeKind::kKnownBoundWata);
}

TEST(SchemeFactoryTest, SchemeNameParsingIsForgiving) {
  EXPECT_EQ(SchemeKindFromName("del").ValueOrDie(), SchemeKind::kDel);
  EXPECT_EQ(SchemeKindFromName("WATA").ValueOrDie(), SchemeKind::kWata);
  EXPECT_EQ(SchemeKindFromName("wata*").ValueOrDie(), SchemeKind::kWata);
  EXPECT_EQ(SchemeKindFromName("Reindex++").ValueOrDie(),
            SchemeKind::kReindexPlusPlus);
  EXPECT_EQ(SchemeKindFromName("reindexplus").ValueOrDie(),
            SchemeKind::kReindexPlus);
  EXPECT_EQ(SchemeKindFromName("kb-wata").ValueOrDie(),
            SchemeKind::kKnownBoundWata);
  EXPECT_TRUE(SchemeKindFromName("btree").status().IsInvalidArgument());
}

TEST(SchemeFactoryTest, TechniqueNameParsing) {
  EXPECT_EQ(UpdateTechniqueFromName("in-place").ValueOrDie(),
            UpdateTechniqueKind::kInPlace);
  EXPECT_EQ(UpdateTechniqueFromName("InPlace").ValueOrDie(),
            UpdateTechniqueKind::kInPlace);
  EXPECT_EQ(UpdateTechniqueFromName("simple-shadow").ValueOrDie(),
            UpdateTechniqueKind::kSimpleShadow);
  EXPECT_EQ(UpdateTechniqueFromName("shadow").ValueOrDie(),
            UpdateTechniqueKind::kSimpleShadow);
  EXPECT_EQ(UpdateTechniqueFromName("packed").ValueOrDie(),
            UpdateTechniqueKind::kPackedShadow);
  EXPECT_TRUE(UpdateTechniqueFromName("wal").status().IsInvalidArgument());
}

}  // namespace
}  // namespace wavekit
