file(REMOVE_RECURSE
  "CMakeFiles/table4_naive_wata_test.dir/wave/table4_naive_wata_test.cc.o"
  "CMakeFiles/table4_naive_wata_test.dir/wave/table4_naive_wata_test.cc.o.d"
  "table4_naive_wata_test"
  "table4_naive_wata_test.pdb"
  "table4_naive_wata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_naive_wata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
