// Quickstart: maintain a 7-day wave index over a trivial record stream,
// query it, and watch days expire.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "storage/store.h"
#include "util/format.h"
#include "wave/scheme_factory.h"

using namespace wavekit;

namespace {

// A day's batch: a few "log lines", each tagged with one keyword.
DayBatch MakeDay(Day day) {
  static const char* kKeywords[] = {"error", "warning", "info"};
  DayBatch batch;
  batch.day = day;
  for (int i = 0; i < 5; ++i) {
    Record record;
    record.record_id = static_cast<uint64_t>(day) * 100 + i;
    record.day = day;
    record.values = {kKeywords[i % 3]};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

}  // namespace

int main() {
  // 1. A simulated disk (metered: it counts seeks & transferred bytes) and
  //    the archive of recent day batches some schemes re-index from.
  Store store;
  DayStore day_store;

  // 2. Pick a maintenance scheme. WATA* never needs deletion code: it drops
  //    whole constituent indexes once all their days have expired.
  SchemeConfig config;
  config.window = 7;       // index the last 7 days
  config.num_indexes = 3;  // spread across 3 constituent indexes
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto scheme = MakeScheme(SchemeKind::kWata,
                           SchemeEnv{store.device(), store.allocator(),
                                     &day_store},
                           config);
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 1;
  }

  // 3. Start with the first W days...
  std::vector<DayBatch> first_week;
  for (Day d = 1; d <= 7; ++d) first_week.push_back(MakeDay(d));
  (*scheme)->Start(std::move(first_week)).Abort("Start");

  // ...then feed one new day at a time; old data expires automatically.
  for (Day d = 8; d <= 12; ++d) {
    (*scheme)->Transition(MakeDay(d)).Abort("Transition");
  }

  // 4. Query. An IndexProbe finds every "error" record still in the window.
  std::vector<Entry> errors;
  QueryStats stats;
  (*scheme)->wave().IndexProbe("error", &errors, &stats).Abort("probe");
  std::cout << "records tagged 'error' in the window: " << errors.size()
            << " (searched " << stats.indexes_accessed
            << " constituent indexes)\n";
  for (const Entry& e : errors) {
    std::cout << "  record " << e.record_id << " from day " << e.day << "\n";
  }

  // A TimedSegmentScan restricted to the last 3 days.
  uint64_t recent = 0;
  (*scheme)
      ->wave()
      .TimedSegmentScan(DayRange::Window((*scheme)->current_day(), 3),
                        [&recent](const Value&, const Entry&) { ++recent; })
      .Abort("scan");
  std::cout << "entries inserted in the last 3 days: " << recent << "\n";

  // 5. Introspection: what does the wave index look like, and what did all
  //    of this cost on the (simulated) disk?
  std::cout << "\nconstituent indexes:\n";
  for (const auto& index : (*scheme)->wave().constituents()) {
    std::cout << "  " << index->name() << " covers days "
              << TimeSetToString(index->time_set()) << " ("
              << FormatBytes(index->allocated_bytes()) << ")\n";
  }
  const IoCounters io = store.device()->total();
  std::cout << "total device traffic: " << io.ToString() << "\n"
            << "modeled time at 14ms seek / 10 MB/s: "
            << FormatSeconds(CostModel::Paper().Seconds(io)) << "\n";
  return 0;
}
