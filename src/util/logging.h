// Minimal leveled logging to stderr (or an embedder-provided sink).
//
// Usage: WAVEKIT_LOG(INFO) << "built index for day " << day;
// The default threshold is WARNING so library users see nothing unless they
// opt in via SetLogLevel. Lines carry a wall-clock timestamp and thread id:
//   [WARN 2026-08-05 12:34:56.789 tid=140512 file.cc:42] message
// Embedders can capture lines instead of losing them to stderr with
// SetLogSink (used by the obs slow-op log and by tests).

#ifndef WAVEKIT_UTIL_LOGGING_H_
#define WAVEKIT_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string_view>

namespace wavekit {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives each emitted log line (full prefix included, no trailing
/// newline). Called after level filtering, from whichever thread logged.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the destination of log lines; pass an empty function (or
/// nullptr) to restore the stderr default. The sink must not log.
void SetLogSink(LogSink sink);

namespace internal {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. Created by the WAVEKIT_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wavekit

#define WAVEKIT_LOG(level)                                    \
  ::wavekit::internal::LogMessage(                            \
      ::wavekit::LogLevel::k##level, __FILE__, __LINE__)

#endif  // WAVEKIT_UTIL_LOGGING_H_
