#include "wave/wave_service.h"

#include "obs/attach.h"
#include "storage/backend_registry.h"
#include "util/macros.h"
#include "wave/scheme_factory.h"

namespace wavekit {

WaveService::WaveService(Options options, std::unique_ptr<Device> base_device)
    : options_(options),
      clock_(options_.clock != nullptr ? options_.clock
                                       : RealClock::Instance()),
      base_device_(std::move(base_device)),
      interposed_(options_.device_interposer
                      ? options_.device_interposer(base_device_.get())
                      : nullptr),
      latency_(options_.track_device_latency
                   ? std::make_unique<obs::LatencyTrackingDevice>(
                         interposed_ != nullptr ? interposed_.get()
                                                : base_device_.get(),
                         obs::LatencyTrackingDevice::Options{clock_})
                   : nullptr),
      device_(latency_ != nullptr
                  ? static_cast<Device*>(latency_.get())
                  : (interposed_ != nullptr ? interposed_.get()
                                            : base_device_.get())),
      allocator_(options.device_capacity) {
  if (latency_ != nullptr) {
    // The meter sits above the latency layer; its phase labels the measured
    // histograms.
    latency_->set_phase_source(&device_);
  }
  if (options_.cache_blocks > 0) {
    cache_ = std::make_unique<ShardedCachedDevice>(
        &device_, options_.cache_blocks, options_.cache_block_size,
        options_.cache_shards);
  }
  if (options_.num_query_threads > 1) {
    query_pool_ = MakePool(options_.num_query_threads, "query");
  }
  if (options_.num_maintenance_threads > 1) {
    maintenance_pool_ = MakePool(options_.num_maintenance_threads, "maintenance");
  }
  obs::Tracer::Options trace_options;
  trace_options.sample_rate = options_.trace_sample_rate;
  trace_options.ring_capacity = options_.trace_ring_capacity;
  trace_options.slow_op_threshold_us = options_.slow_op_threshold_us;
  trace_options.meter = &device_;
  trace_options.clock = clock_;
  tracer_ = std::make_unique<obs::Tracer>(trace_options);
  if (options_.event_ring_capacity > 0) {
    obs::EventJournal::Options event_options;
    event_options.ring_capacity = options_.event_ring_capacity;
    event_options.jsonl_path = options_.event_jsonl_path;
    event_options.clock = clock_;
    events_ = std::make_unique<obs::EventJournal>(event_options);
  }
  if (options_.metrics_registry != nullptr &&
      options_.collector_interval_us > 0) {
    obs::TimeSeriesCollector::Options collector_options;
    collector_options.registry = options_.metrics_registry;
    collector_options.interval_us = options_.collector_interval_us;
    collector_options.ring_capacity = options_.collector_ring_capacity;
    collector_options.clock = clock_;
    collector_ = std::make_unique<obs::TimeSeriesCollector>(collector_options);
  }
  if (options_.metrics_registry != nullptr) {
    RegisterMetrics();
  }
  if (collector_ != nullptr && options_.collector_background_thread) {
    collector_->Start();
  }
}

std::unique_ptr<ThreadPool> WaveService::MakePool(int threads,
                                                  const std::string& role) {
  if (options_.pool_factory) return options_.pool_factory(threads, role);
  return std::make_unique<ThreadPool>(threads);
}

uint64_t WaveService::MicrosSince(uint64_t start_us) const {
  const uint64_t now_us = clock_->NowMicros();
  // Clamped to >= 1 so histograms retain sub-microsecond events.
  return now_us > start_us ? now_us - start_us : 1;
}

WaveService::~WaveService() {
  // Stop the sampling thread before its callbacks' subjects start dying.
  if (collector_ != nullptr) collector_->Stop();
  if (options_.metrics_registry != nullptr) {
    options_.metrics_registry->Unregister(this);
  }
}

std::string WaveService::degraded_detail() const {
  std::lock_guard<std::mutex> lock(degraded_mutex_);
  return degraded_detail_;
}

void WaveService::SetDegraded(bool degraded, const std::string& detail,
                              Day day) {
  const bool was = degraded_.exchange(degraded, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(degraded_mutex_);
    degraded_detail_ = degraded ? detail : "";
  }
  if (events_ != nullptr && was != degraded) {
    events_->Append(degraded ? obs::EventType::kDegradedEnter
                             : obs::EventType::kDegradedExit,
                    day, detail);
  }
}

void WaveService::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics_registry;
  obs::AttachMeteredDevice(
      registry, &device_, "primary",
      obs::BackendIdentity{options_.storage_backend, options_.direct_io},
      this);
  if (latency_ != nullptr) {
    obs::AttachLatencyDevice(registry, latency_.get(), &device_,
                             CostModel::Paper(), "primary", this);
  }
  if (cache_ != nullptr) {
    obs::AttachShardedCache(registry, cache_.get(), "block_cache", this);
  }
  if (query_pool_ != nullptr) {
    obs::AttachThreadPool(registry, query_pool_.get(), "query_pool", this);
  }
  if (maintenance_pool_ != nullptr) {
    obs::AttachThreadPool(registry, maintenance_pool_.get(),
                          "maintenance_pool", this);
  }
  registry->AddCounterCallback(
      "wavekit_service_probes_total", "Index probes served.", {},
      [this] { return probes_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_service_scans_total", "Segment scans served.", {},
      [this] { return scans_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_service_days_advanced_total",
      "Window transitions completed by AdvanceDay.", {},
      [this] { return days_advanced_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_service_async_advances_total",
      "Background transitions submitted via AdvanceDayAsync.", {},
      [this] { return async_advances_.load(std::memory_order_relaxed); }, this);
  registry->AddGaugeCallback(
      "wavekit_service_pending_advances",
      "Async advances queued or running right now.", {},
      [this] {
        return static_cast<double>(
            pending_advances_.load(std::memory_order_relaxed));
      },
      this);
  registry->AddCounterCallback(
      "wavekit_service_degraded_advances_total",
      "AdvanceDay calls that failed (service kept the last good snapshot).",
      {},
      [this] { return degraded_advances_.load(std::memory_order_relaxed); },
      this);
  registry->AddCounterCallback(
      "wavekit_service_partial_results_total",
      "Queries answered with a partial result (degraded-mode serving).", {},
      [this] { return partial_results_.load(std::memory_order_relaxed); },
      this);
  // scheme_ is assigned after construction (Create), so guard the reads.
  registry->AddCounterCallback(
      "wavekit_maintenance_transient_io_errors_total",
      "Transient I/O errors hit by maintenance primitives.", {},
      [this] {
        return scheme_ != nullptr ? scheme_->fault_stats().transient_io_errors
                                  : 0;
      },
      this);
  registry->AddCounterCallback(
      "wavekit_maintenance_retries_total",
      "Retries of maintenance primitives after transient I/O errors.", {},
      [this] { return scheme_ != nullptr ? scheme_->fault_stats().retries : 0; },
      this);
  registry->AddCounterCallback(
      "wavekit_maintenance_retries_exhausted_total",
      "Maintenance primitives that failed even after their retry budget.", {},
      [this] {
        return scheme_ != nullptr ? scheme_->fault_stats().retries_exhausted
                                  : 0;
      },
      this);
  registry->AddCounterCallback(
      "wavekit_constituents_marked_unhealthy_total",
      "Constituent indexes excluded from serving after a failed rebuild.", {},
      [this] {
        return scheme_ != nullptr
                   ? scheme_->fault_stats().constituents_marked_unhealthy
                   : 0;
      },
      this);
  registry->AddGaugeCallback(
      "wavekit_service_degraded",
      "1 while serving a stale snapshot after a failed AdvanceDay.", {},
      [this] { return degraded() ? 1.0 : 0.0; }, this);
  registry->AddCounterCallback(
      "wavekit_checksum_verified_buckets_total",
      "Bucket extents whose CRC-32C was verified (read path + scrub).", {},
      [this] {
        return integrity_.verified_buckets.load(std::memory_order_relaxed);
      },
      this);
  registry->AddCounterCallback(
      "wavekit_checksum_trusted_buckets_total",
      "Buckets served from verified-resident cache blocks (verification "
      "skipped; the scrubber covers medium rot under them).",
      {},
      [this] {
        return integrity_.trusted_buckets.load(std::memory_order_relaxed);
      },
      this);
  registry->AddCounterCallback(
      "wavekit_corruption_detected_total",
      "Checksum mismatches detected on any path.", {},
      [this] {
        return integrity_.corruptions_detected.load(std::memory_order_relaxed);
      },
      this);
  registry->AddCounterCallback(
      "wavekit_quarantines_total",
      "Constituent indexes quarantined after a checksum mismatch.", {},
      [this] {
        return integrity_.quarantines.load(std::memory_order_relaxed);
      },
      this);
  registry->AddCounterCallback(
      "wavekit_scrub_passes_total", "Completed background scrub passes.", {},
      [this] { return scrub_passes_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_scrub_extents_total",
      "Live bucket extents verified by the background scrubber.", {},
      [this] { return scrub_extents_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_scrub_bytes_total",
      "Bytes re-read from the device by the background scrubber.", {},
      [this] { return scrub_bytes_.load(std::memory_order_relaxed); }, this);
  registry->AddCounterCallback(
      "wavekit_constituents_healed_total",
      "Quarantined constituents rebuilt online from segment data.", {},
      [this] { return constituents_healed_.load(std::memory_order_relaxed); },
      this);
  registry->AddCounterCallback(
      "wavekit_heals_skipped_total",
      "Heal attempts skipped because the day store lacked the source days.",
      {},
      [this] { return heals_skipped_.load(std::memory_order_relaxed); }, this);
  registry->AddHistogramCallback(
      "wavekit_retry_backoff_us",
      "Retry backoff sleeps in microseconds.", {},
      [this] { return retry_backoff_us_.Snapshot(); }, this);
  // The Prometheus-conventional seconds view of the same data (the integer
  // histogram itself records microseconds).
  registry->AddGaugeCallback(
      "wavekit_retry_backoff_seconds_sum",
      "Total seconds slept in retry backoff.", {},
      [this] {
        return static_cast<double>(retry_backoff_us_.Snapshot().sum()) / 1e6;
      },
      this);
  registry->AddCounterCallback(
      "wavekit_retry_backoff_seconds_count",
      "Retry backoff sleeps recorded.", {},
      [this] { return retry_backoff_us_.Snapshot().count(); }, this);
  if (events_ != nullptr) {
    registry->AddCounterCallback(
        "wavekit_events_appended_total",
        "Maintenance lifecycle events appended to the event journal.", {},
        [this] { return events_->total_appended(); }, this);
  }
  if (collector_ != nullptr) {
    registry->AddCounterCallback(
        "wavekit_timeseries_samples_total",
        "Registry samples taken by the time-series collector.", {},
        [this] { return collector_->samples_taken(); }, this);
  }
  registry->AddCounterCallback(
      "wavekit_trace_roots_sampled_total",
      "AdvanceDay traces sampled into the span ring.", {},
      [this] { return tracer_->roots_sampled(); }, this);
  registry->AddHistogramCallback(
      "wavekit_service_probe_latency_us",
      "Wall-clock probe latency in microseconds.", {},
      [this] { return probe_latency_us_.Snapshot(); }, this);
  registry->AddHistogramCallback(
      "wavekit_service_scan_latency_us",
      "Wall-clock scan latency in microseconds.", {},
      [this] { return scan_latency_us_.Snapshot(); }, this);
  registry->AddHistogramCallback(
      "wavekit_service_advance_latency_us",
      "Wall-clock AdvanceDay latency in microseconds.", {},
      [this] { return advance_latency_us_.Snapshot(); }, this);
  registry->AddGaugeCallback(
      "wavekit_bucket_compressed_bytes",
      "Live stored bucket bytes across the snapshot (compressed extents at "
      "their encoded size, raw buckets at count * entry size).",
      {},
      [this] { return static_cast<double>(CodecTotals().stored_bytes); },
      this);
  registry->AddGaugeCallback(
      "wavekit_bucket_uncompressed_bytes",
      "The same live entries at the raw 16-byte layout.", {},
      [this] {
        return static_cast<double>(CodecTotals().uncompressed_bytes);
      },
      this);
  registry->AddGaugeCallback(
      "wavekit_bucket_compression_ratio",
      "uncompressed_bytes / compressed_bytes over the snapshot (1.0 when "
      "nothing is compressed).",
      {}, [this] { return CodecTotals().ratio(); }, this);
  for (int c = 0; c < kNumCodecs; ++c) {
    registry->AddGaugeCallback(
        "wavekit_bucket_codec_buckets",
        "Live buckets stored under each codec.",
        {{"codec", CodecName(static_cast<Codec>(c))}},
        [this, c] {
          return static_cast<double>(CodecTotals().buckets[c]);
        },
        this);
  }
}

ConstituentIndex::CodecBreakdown WaveService::CodecTotals() const {
  ConstituentIndex::CodecBreakdown totals;
  const std::shared_ptr<const WaveIndex> snapshot = Snapshot();
  if (snapshot == nullptr) return totals;
  for (const auto& constituent : snapshot->constituents()) {
    const ConstituentIndex::CodecBreakdown one = constituent->CodecStats();
    for (int c = 0; c < kNumCodecs; ++c) totals.buckets[c] += one.buckets[c];
    totals.stored_bytes += one.stored_bytes;
    totals.uncompressed_bytes += one.uncompressed_bytes;
  }
  return totals;
}

Result<std::unique_ptr<WaveService>> WaveService::Create(Options options) {
  if (options.config.technique == UpdateTechniqueKind::kInPlace) {
    return Status::InvalidArgument(
        "WaveService requires a shadow update technique: in-place updating "
        "mutates buckets concurrent readers may be scanning");
  }
  BackendConfig backend_config;
  backend_config.path = options.storage_path;
  backend_config.capacity = options.device_capacity;
  backend_config.direct_io = options.direct_io;
  backend_config.queue_depth = options.io_queue_depth;
  WAVEKIT_ASSIGN_OR_RETURN(
      std::unique_ptr<Device> base_device,
      BackendRegistry::Global().Create(options.storage_backend,
                                       backend_config));
  WAVEKIT_ASSIGN_OR_RETURN(const BackendCapabilities capabilities,
                           BackendRegistry::Global().EffectiveCapabilities(
                               options.storage_backend, backend_config));
  std::unique_ptr<WaveService> service(
      new WaveService(options, std::move(base_device)));
  if (capabilities.alignment > 1) {
    // O_DIRECT backends want every bucket extent block-aligned; setting this
    // before the scheme exists means no allocation ever bypasses it.
    service->allocator_.set_default_alignment(capabilities.alignment);
  }
  SchemeEnv env{&service->device_, &service->allocator_,
                &service->day_store_};
  env.io_device = service->cache_.get();  // nullptr = straight to the meter
  env.tracer = service->tracer_.get();
  env.events = service->events_.get();  // nullptr = no retry journaling
  env.retry = options.retry;
  env.integrity = &service->integrity_;
  env.retry_backoff_us = &service->retry_backoff_us_;
  env.clock = service->clock_;
  if (service->maintenance_pool_ != nullptr) {
    env.maintenance.pool = service->maintenance_pool_.get();
    env.maintenance.threads = options.num_maintenance_threads;
  }
  WAVEKIT_ASSIGN_OR_RETURN(service->scheme_,
                           MakeScheme(options.scheme, env, options.config));
  return service;
}

Status WaveService::Start(std::vector<DayBatch> first_window) {
  WAVEKIT_RETURN_NOT_OK(scheme_->Start(std::move(first_window)));
  last_scrub_us_ = clock_->NowMicros();  // first pass one interval from now
  Publish();
  if (events_ != nullptr) {
    events_->Append(obs::EventType::kServiceStart, scheme_->current_day(),
                    std::string(scheme_->name()));
  }
  if (collector_ != nullptr) collector_->Tick();
  return Status::OK();
}

Status WaveService::AdvanceDay(DayBatch new_day) {
  std::lock_guard<std::mutex> lock(advance_mutex_);
  return AdvanceDayLocked(std::move(new_day));
}

void WaveService::AdvanceDayAsync(DayBatch new_day) {
  // Lazy creation is safe: the maintenance API is single-caller, and the
  // runner pointer is never touched by query threads or metric callbacks.
  if (advance_runner_ == nullptr) {
    advance_runner_ = MakePool(1, "advance");
  }
  async_advances_.fetch_add(1, std::memory_order_relaxed);
  pending_advances_.fetch_add(1, std::memory_order_relaxed);
  advance_runner_->Submit([this, batch = std::move(new_day)]() mutable {
    {
      std::lock_guard<std::mutex> lock(advance_mutex_);
      if (async_error_.ok()) {
        // Publish happens inside, under snapshot_mutex_ — queries flip to
        // the new snapshot atomically, mid-probe readers finish on the old.
        Status status = AdvanceDayLocked(std::move(batch));
        if (!status.ok()) async_error_ = std::move(status);
      }
      // else: an earlier queued advance failed; drop this one (the scheme
      // would refuse it anyway — needs_recovery) and keep the first error.
    }
    pending_advances_.fetch_sub(1, std::memory_order_relaxed);
  });
}

Status WaveService::WaitForMaintenance() {
  if (advance_runner_ != nullptr) advance_runner_->Wait();
  std::lock_guard<std::mutex> lock(advance_mutex_);
  return async_error_;
}

Status WaveService::AdvanceDayLocked(DayBatch new_day) {
  // The scheme's wave index is only touched under advance_mutex_; queries
  // never see it directly — they use the published snapshot, whose
  // constituents shadow updates never mutate in place.
  const uint64_t start = clock_->NowMicros();
  const Day day = new_day.day;
  if (events_ != nullptr) {
    events_->Append(obs::EventType::kAdvanceStart, day, "");
  }
  {
    // Root span: the scheme's primitives nest under it as children.
    obs::Span span = tracer_->StartSpan("AdvanceDay");
    const Status transitioned = scheme_->Transition(std::move(new_day));
    if (!transitioned.ok()) {
      // Degraded mode: keep serving the last good snapshot. No republish is
      // needed for health flags — snapshots share the constituent objects,
      // so any MarkUnhealthy the scheme did is already visible to readers.
      degraded_advances_.fetch_add(1, std::memory_order_relaxed);
      if (events_ != nullptr) {
        events_->Append(obs::EventType::kAdvanceRollback, day,
                        transitioned.message());
      }
      SetDegraded(true, "advance to day " + std::to_string(day) +
                            " failed: " + transitioned.message(),
                  day);
      if (collector_ != nullptr) collector_->Tick();
      return transitioned;
    }
  }
  Publish();
  days_advanced_.fetch_add(1, std::memory_order_relaxed);
  advance_latency_us_.Record(MicrosSince(start));
  if (events_ != nullptr) {
    events_->Append(obs::EventType::kAdvanceCommit, day, "");
  }
  SetDegraded(false, "", day);
  // Proactive integrity: the scrub (and any auto-heal) runs INLINE on the
  // maintenance path under advance_mutex_ — submitting it to a pool that a
  // later AdvanceDay waits on while holding this mutex would deadlock.
  MaybeScrubLocked();
  // Maintenance drives the deterministic sampling cadence: the injected
  // clock decides whether a sample is actually due.
  if (collector_ != nullptr) collector_->Tick();
  return Status::OK();
}

void WaveService::MaybeScrubLocked() {
  if (options_.scrub_interval_us == 0) return;
  const uint64_t now = clock_->NowMicros();
  if (now - last_scrub_us_ < options_.scrub_interval_us) return;
  last_scrub_us_ = now;
  const Result<ScrubReport> scrubbed = ScrubLocked();
  if (!scrubbed.ok()) {
    // Infrastructure failure (not corruption — that is in the report):
    // serving is unaffected, but surface it.
    SetDegraded(true, "scrub failed: " + scrubbed.status().message(),
                scheme_->current_day());
  }
}

Result<ScrubReport> WaveService::Scrub() {
  std::lock_guard<std::mutex> lock(advance_mutex_);
  if (scheme_ == nullptr || Snapshot() == nullptr) {
    return Status::FailedPrecondition("service not started");
  }
  return ScrubLocked();
}

Result<Scheme::HealReport> WaveService::Heal() {
  std::lock_guard<std::mutex> lock(advance_mutex_);
  if (scheme_ == nullptr || Snapshot() == nullptr) {
    return Status::FailedPrecondition("service not started");
  }
  return HealLocked();
}

Result<ScrubReport> WaveService::ScrubLocked() {
  ScrubOptions scrub;
  scrub.io_batch_bytes = options_.scrub_io_batch_bytes;
  scrub.pause_us_per_batch = options_.scrub_pause_us;
  scrub.clock = clock_;
  scrub.events = events_.get();
  scrub.integrity = &integrity_;
  scrub.day = scheme_->current_day();
  // Scrub the medium, not the block cache: constituents read through the
  // cache (env.io_device), which would happily serve clean pre-rot copies
  // of every warm block. The meter sits directly above stable storage.
  scrub.device = &device_;
  WAVEKIT_ASSIGN_OR_RETURN(ScrubReport report,
                           ScrubWave(scheme_->wave(), scrub));
  scrub_passes_.fetch_add(1, std::memory_order_relaxed);
  scrub_extents_.fetch_add(report.buckets_verified, std::memory_order_relaxed);
  scrub_bytes_.fetch_add(report.bytes_read, std::memory_order_relaxed);
  if (!report.quarantined.empty()) {
    std::string detail = "corruption quarantined:";
    for (const std::string& name : report.quarantined) detail += " " + name;
    SetDegraded(true, detail, scheme_->current_day());
    if (options_.auto_heal) {
      const Result<Scheme::HealReport> healed = HealLocked();
      if (!healed.ok()) {
        SetDegraded(true, detail + "; self-heal failed: " +
                              healed.status().message(),
                    scheme_->current_day());
      }
    }
  }
  return report;
}

Result<Scheme::HealReport> WaveService::HealLocked() {
  WAVEKIT_ASSIGN_OR_RETURN(Scheme::HealReport report,
                           scheme_->HealUnhealthy());
  constituents_healed_.fetch_add(static_cast<uint64_t>(report.healed),
                                 std::memory_order_relaxed);
  heals_skipped_.fetch_add(static_cast<uint64_t>(report.skipped),
                           std::memory_order_relaxed);
  if (report.healed > 0) Publish();
  // Whole again? Only a heal that left no unhealthy constituent clears the
  // degraded flag; skipped slots (source days pruned) keep it raised.
  std::vector<std::string> still_unhealthy;
  for (const auto& constituent : scheme_->wave().constituents()) {
    if (!constituent->healthy()) still_unhealthy.push_back(constituent->name());
  }
  if (still_unhealthy.empty()) {
    SetDegraded(false, "", scheme_->current_day());
  } else {
    std::string detail = "unhealthy constituents awaiting heal:";
    for (const std::string& name : still_unhealthy) detail += " " + name;
    SetDegraded(true, detail, scheme_->current_day());
  }
  return report;
}

void WaveService::Publish() {
  // Snapshot = a WaveIndex holding shared_ptr copies of the current
  // constituents. Retired constituents stay alive until the last in-flight
  // query (or older snapshot) releases them.
  auto snapshot = std::make_shared<WaveIndex>(scheme_->wave());
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
  published_day_.store(scheme_->current_day());
}

std::shared_ptr<const WaveIndex> WaveService::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

ServiceMetrics WaveService::Metrics() const {
  ServiceMetrics out;
  out.probes = probes_.load(std::memory_order_relaxed);
  out.scans = scans_.load(std::memory_order_relaxed);
  out.days_advanced = days_advanced_.load(std::memory_order_relaxed);
  out.async_advances = async_advances_.load(std::memory_order_relaxed);
  out.pending_advances =
      static_cast<uint64_t>(pending_advances_.load(std::memory_order_relaxed));
  out.degraded_advances = degraded_advances_.load(std::memory_order_relaxed);
  out.partial_results = partial_results_.load(std::memory_order_relaxed);
  if (scheme_ != nullptr) out.faults = scheme_->fault_stats();
  out.probe_latency_us = probe_latency_us_.Snapshot();
  out.scan_latency_us = scan_latency_us_.Snapshot();
  out.advance_latency_us = advance_latency_us_.Snapshot();
  out.checksum_verified_buckets =
      integrity_.verified_buckets.load(std::memory_order_relaxed);
  out.checksum_trusted_buckets =
      integrity_.trusted_buckets.load(std::memory_order_relaxed);
  out.corruptions_detected =
      integrity_.corruptions_detected.load(std::memory_order_relaxed);
  out.quarantines = integrity_.quarantines.load(std::memory_order_relaxed);
  out.scrub_passes = scrub_passes_.load(std::memory_order_relaxed);
  out.scrub_extents = scrub_extents_.load(std::memory_order_relaxed);
  out.scrub_bytes = scrub_bytes_.load(std::memory_order_relaxed);
  out.constituents_healed =
      constituents_healed_.load(std::memory_order_relaxed);
  out.heals_skipped = heals_skipped_.load(std::memory_order_relaxed);
  out.retry_backoff_us = retry_backoff_us_.Snapshot();
  return out;
}

void WaveService::ResetMetrics() {
  probes_.store(0, std::memory_order_relaxed);
  scans_.store(0, std::memory_order_relaxed);
  days_advanced_.store(0, std::memory_order_relaxed);
  async_advances_.store(0, std::memory_order_relaxed);
  degraded_advances_.store(0, std::memory_order_relaxed);
  partial_results_.store(0, std::memory_order_relaxed);
  probe_latency_us_.Reset();
  scan_latency_us_.Reset();
  advance_latency_us_.Reset();
  integrity_.verified_buckets.store(0, std::memory_order_relaxed);
  integrity_.trusted_buckets.store(0, std::memory_order_relaxed);
  integrity_.corruptions_detected.store(0, std::memory_order_relaxed);
  integrity_.quarantines.store(0, std::memory_order_relaxed);
  scrub_passes_.store(0, std::memory_order_relaxed);
  scrub_extents_.store(0, std::memory_order_relaxed);
  scrub_bytes_.store(0, std::memory_order_relaxed);
  constituents_healed_.store(0, std::memory_order_relaxed);
  heals_skipped_.store(0, std::memory_order_relaxed);
  retry_backoff_us_.Reset();
}

Status WaveService::TimedIndexProbe(const DayRange& range, const Value& value,
                                    std::vector<Entry>* out,
                                    QueryStats* stats) const {
  std::shared_ptr<const WaveIndex> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("service not started");
  }
  const uint64_t start = clock_->NowMicros();
  Status status =
      query_pool_ != nullptr
          ? snapshot->ParallelTimedIndexProbe(query_pool_.get(), range, value,
                                              out, stats)
          : snapshot->TimedIndexProbe(range, value, out, stats);
  if (status.IsPartialResult()) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
  }
  probes_.fetch_add(1, std::memory_order_relaxed);
  probe_latency_us_.Record(MicrosSince(start));
  return status;
}

Status WaveService::IndexProbe(const Value& value, std::vector<Entry>* out,
                               QueryStats* stats) const {
  return TimedIndexProbe(DayRange::All(), value, out, stats);
}

Status WaveService::TimedSegmentScan(const DayRange& range,
                                     const EntryCallback& callback,
                                     QueryStats* stats) const {
  std::shared_ptr<const WaveIndex> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("service not started");
  }
  const uint64_t start = clock_->NowMicros();
  Status status = snapshot->TimedSegmentScan(range, callback, stats);
  if (status.IsPartialResult()) {
    partial_results_.fetch_add(1, std::memory_order_relaxed);
  }
  scans_.fetch_add(1, std::memory_order_relaxed);
  scan_latency_us_.Record(MicrosSince(start));
  return status;
}

}  // namespace wavekit
