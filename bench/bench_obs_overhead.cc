// Telemetry overhead: the full observability pipeline vs. observability off.
//
// PR 7's pipeline hangs five observers onto a serving WaveService: the
// metrics registry (callback-polled), the span tracer at sample rate 1.0,
// the wall-clock latency decorator under the meter, the maintenance event
// journal, and a background time-series collector. The design claim is that
// all of it stays off the query hot path — callbacks are polled only at
// snapshot time, histogram records are relaxed atomics, the collector runs
// on its own thread. This bench quantifies the claim: single-thread probe
// throughput with everything on must stay within 5% of a service with no
// telemetry at all.
//
// Rounds alternate off/on (A/B interleaving) so clock drift and cache state
// hit both variants equally. `--smoke` runs a miniature configuration and
// skips the timing-based shape check (structural checks still run).
//
// Emits BENCH_obs.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/event_journal.h"
#include "obs/latency_device.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/random.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

struct Config {
  bool smoke = false;
  int window = 7;
  int num_indexes = 3;
  int days = 10;                // transitions past the start window
  uint64_t records = 400;       // articles per day
  int rounds = 6;               // timed rounds per variant, interleaved
  int probes_per_round = 20000;
};

/// One service under test. The registry is declared before the service so
/// it outlives the service's destructor (which unregisters its callbacks).
struct Variant {
  std::string name;
  obs::MetricsRegistry registry;
  std::unique_ptr<WaveService> service;
  double seconds = 0;
  uint64_t probes = 0;

  double ops_per_sec() const { return seconds > 0 ? probes / seconds : 0; }
};

Status BuildVariant(const Config& config, bool telemetry, Variant* variant) {
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = config.window;
  options.config.num_indexes = config.num_indexes;
  options.cache_blocks = 1024;
  if (telemetry) {
    options.metrics_registry = &variant->registry;
    options.trace_sample_rate = 1.0;
    options.trace_ring_capacity = 512;
    options.track_device_latency = true;
    options.event_ring_capacity = 256;
    options.collector_interval_us = 10'000;  // 10 ms background sampling
    options.collector_ring_capacity = 256;
    options.collector_background_thread = true;
  }
  WAVEKIT_ASSIGN_OR_RETURN(variant->service, WaveService::Create(options));

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = config.records;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= config.window; ++d) {
    first_window.push_back(netnews.GenerateDay(d));
  }
  WAVEKIT_RETURN_NOT_OK(variant->service->Start(std::move(first_window)));
  for (Day d = config.window + 1;
       d <= config.window + static_cast<Day>(config.days); ++d) {
    WAVEKIT_RETURN_NOT_OK(variant->service->AdvanceDay(netnews.GenerateDay(d)));
  }
  return Status::OK();
}

/// One timed round of single-thread probes; adds into the variant's totals.
Status RunRound(const Config& config, Variant* variant) {
  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = config.records;
  workload::NetnewsGenerator netnews(netnews_config);
  Rng rng(config.probes_per_round);  // same word sequence for every round
  std::vector<Entry> out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < config.probes_per_round; ++i) {
    WAVEKIT_RETURN_NOT_OK(
        variant->service->IndexProbe(netnews.SampleWord(rng), &out));
  }
  variant->seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  variant->probes += static_cast<uint64_t>(config.probes_per_round);
  return Status::OK();
}

void WriteJson(const Config& config, const Variant& off, const Variant& on,
               double overhead_pct) {
  const WaveService& svc = *on.service;
  std::ofstream out("BENCH_obs.json");
  out << "{\n"
      << "  \"bench\": \"obs_overhead\",\n"
      << "  \"smoke\": " << (config.smoke ? "true" : "false") << ",\n"
      << "  \"window\": " << config.window << ",\n"
      << "  \"days\": " << config.days << ",\n"
      << "  \"records_per_day\": " << config.records << ",\n"
      << "  \"rounds\": " << config.rounds << ",\n"
      << "  \"probes_per_round\": " << config.probes_per_round << ",\n"
      << "  \"probes_per_variant\": " << off.probes << ",\n"
      << "  \"obs_off_seconds\": " << off.seconds << ",\n"
      << "  \"obs_on_seconds\": " << on.seconds << ",\n"
      << "  \"obs_off_probes_per_sec\": " << off.ops_per_sec() << ",\n"
      << "  \"obs_on_probes_per_sec\": " << on.ops_per_sec() << ",\n"
      << "  \"overhead_pct\": " << overhead_pct << ",\n"
      << "  \"telemetry\": {\n"
      << "    \"registered_metrics\": " << on.registry.size() << ",\n"
      << "    \"spans_recorded\": " << svc.tracer()->spans_recorded() << ",\n"
      << "    \"events_appended\": " << svc.events()->total_appended() << ",\n"
      << "    \"timeseries_samples\": " << svc.collector()->samples_taken()
      << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) config.smoke = true;
  }
  if (config.smoke) {
    config.days = 4;
    config.records = 100;
    config.rounds = 2;
    config.probes_per_round = 500;
  }

  bench::Banner(
      "Telemetry overhead: full observability pipeline vs. obs off",
      "the registry/tracer/latency/event/collector pipeline is polled-or-"
      "relaxed-atomic off the hot path; probes must stay within 5%");

  Variant off, on;
  off.name = "obs_off";
  on.name = "obs_on";
  Status status = BuildVariant(config, /*telemetry=*/false, &off);
  if (status.ok()) status = BuildVariant(config, /*telemetry=*/true, &on);
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Warmup (untimed): fault the caches for both variants.
  off.seconds = on.seconds = 0;
  Config warmup = config;
  warmup.probes_per_round = config.probes_per_round / 4 + 1;
  status = RunRound(warmup, &off);
  if (status.ok()) status = RunRound(warmup, &on);
  off.seconds = on.seconds = 0;
  off.probes = on.probes = 0;

  for (int round = 0; status.ok() && round < config.rounds; ++round) {
    status = RunRound(config, &off);
    if (status.ok()) status = RunRound(config, &on);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "probe loop failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const double overhead_pct =
      off.ops_per_sec() > 0
          ? (off.ops_per_sec() - on.ops_per_sec()) / off.ops_per_sec() * 100.0
          : 0.0;

  std::printf("\n%-10s %12s %10s %14s\n", "variant", "probes", "seconds",
              "probes/sec");
  for (const Variant* v : {&off, &on}) {
    std::printf("%-10s %12llu %10.4f %14.0f\n", v->name.c_str(),
                static_cast<unsigned long long>(v->probes), v->seconds,
                v->ops_per_sec());
  }
  std::printf("\ntelemetry-on pipeline state after the run:\n");
  std::printf("  registered metrics : %zu\n", on.registry.size());
  std::printf("  spans recorded     : %llu\n",
              static_cast<unsigned long long>(on.service->tracer()
                                                  ->spans_recorded()));
  std::printf("  events appended    : %llu\n",
              static_cast<unsigned long long>(on.service->events()
                                                  ->total_appended()));
  std::printf("  timeseries samples : %llu\n",
              static_cast<unsigned long long>(on.service->collector()
                                                  ->samples_taken()));
  std::printf("  probe overhead     : %.2f%%\n", overhead_pct);

  WriteJson(config, off, on, overhead_pct);
  std::printf("Wrote BENCH_obs.json\n");

  bench::ShapeChecks checks;
  checks.Check(on.registry.size() > 0,
               "telemetry variant registered metrics into the registry");
  checks.Check(on.service->tracer()->spans_recorded() > 0,
               "tracer recorded spans at sample rate 1.0");
  checks.Check(on.service->events()->total_appended() > 0,
               "event journal captured maintenance lifecycle events");
  checks.Check(on.service->latency_device() != nullptr &&
                   on.service->latency_device()
                           ->histogram(obs::OpKind::kRead, Phase::kQuery)
                           .count() +
                       on.service->latency_device()
                           ->histogram(obs::OpKind::kRead, Phase::kTransition)
                           .count() >
                       0,
               "latency decorator recorded real device reads");
  if (!config.smoke) {
    checks.Check(overhead_pct < 5.0,
                 "full telemetry costs < 5% single-thread probe throughput");
  }
  return checks.Finish();
}
