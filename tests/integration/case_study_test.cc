// Integration tests: the three case studies of Section 6 run end to end at
// reduced scale, and the headline recommendations of the paper hold on the
// analytic model.

#include <gtest/gtest.h>

#include "model/total_work.h"
#include "sim/driver.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

sim::ExperimentConfig ScamConfig(SchemeKind scheme, int n) {
  sim::ExperimentConfig config;
  config.scheme = scheme;
  config.scheme_config.window = 7;
  config.scheme_config.num_indexes = n;
  config.scheme_config.technique = UpdateTechniqueKind::kSimpleShadow;
  config.workload = sim::WorkloadKind::kNetnews;
  config.netnews.articles_per_day = 70;  // paper's 70k scaled 1000x down
  config.netnews.words_per_article = 20;
  config.netnews.vocabulary_size = 2000;
  config.days_to_run = 14;
  config.warmup_days = 7;
  config.query_mix.probes_per_day = 1000;
  config.query_mix.probe_sample = 8;
  config.query_mix.scans_per_day = 10;
  config.query_mix.scan_sample = 1;
  config.query_mix.scans_whole_window = false;  // registration checks
  config.paper = model::CaseParams::Scam();
  return config;
}

TEST(CaseStudyTest, ScamPipelineRunsForAllSchemes) {
  for (SchemeKind kind : kAllSchemeKinds) {
    SCOPED_TRACE(SchemeKindName(kind));
    const int n = 4;
    auto run = sim::ExperimentDriver::Run(ScamConfig(kind, n));
    ASSERT_TRUE(run.ok()) << run.status();
    const sim::Aggregates& agg = run.ValueOrDie().aggregates;
    EXPECT_GT(agg.avg_sim_total_work, 0.0);
    EXPECT_GT(agg.avg_model_total_work, 0.0);
  }
}

TEST(CaseStudyTest, ScamReindexWinsAtN4OnTotalWork) {
  // Figure 5 + Section 6: "we recommend using REINDEX for SCAM with n = 4".
  const model::CaseParams params = model::CaseParams::Scam();
  auto reindex = model::EstimateTotalWork(
      SchemeKind::kReindex, UpdateTechniqueKind::kSimpleShadow, params, 7, 4);
  ASSERT_TRUE(reindex.ok()) << reindex.status();
  for (SchemeKind other :
       {SchemeKind::kDel, SchemeKind::kReindexPlus,
        SchemeKind::kReindexPlusPlus, SchemeKind::kRata}) {
    auto work = model::EstimateTotalWork(
        other, UpdateTechniqueKind::kSimpleShadow, params, 7, 4);
    ASSERT_TRUE(work.ok()) << work.status();
    EXPECT_LT(reindex.ValueOrDie().total(), work.ValueOrDie().total())
        << SchemeKindName(other);
  }
}

TEST(CaseStudyTest, WseReindexLosesBadly) {
  // Figure 6: "REINDEX that performed best in SCAM, now in fact performs the
  // worst" under WSE's heavy query volume and W = 35.
  const model::CaseParams params = model::CaseParams::Wse();
  for (int n : {2, 5, 7}) {
    auto reindex =
        model::EstimateTotalWork(SchemeKind::kReindex,
                                 UpdateTechniqueKind::kPackedShadow, params,
                                 35, n);
    auto del = model::EstimateTotalWork(
        SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow, params, 35, n);
    ASSERT_TRUE(reindex.ok() && del.ok());
    EXPECT_GT(reindex.ValueOrDie().total(), del.ValueOrDie().total())
        << "n=" << n;
  }
}

TEST(CaseStudyTest, WseRecommendationIsDelN1) {
  // Section 6: "we recommend using DEL (n = 1) with packed shadow updating
  // for a WSE".
  const model::CaseParams params = model::CaseParams::Wse();
  auto del1 = model::EstimateTotalWork(
      SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow, params, 35, 1);
  ASSERT_TRUE(del1.ok());
  for (int n : {2, 5}) {
    auto deln = model::EstimateTotalWork(
        SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow, params, 35, n);
    ASSERT_TRUE(deln.ok());
    EXPECT_LT(del1.ValueOrDie().total(), deln.ValueOrDie().total());
  }
}

TEST(CaseStudyTest, TpcdPackedShadowBeatsSimpleShadow) {
  // Figures 7 vs 8: "the work done is significantly less in case of packed
  // shadowing" (deletion folds into the copy; scans read packed indexes).
  const model::CaseParams params = model::CaseParams::Tpcd();
  for (SchemeKind kind : {SchemeKind::kDel, SchemeKind::kWata}) {
    for (int n : {2, 5, 10}) {
      auto packed = model::EstimateTotalWork(
          kind, UpdateTechniqueKind::kPackedShadow, params, 100, n);
      auto simple = model::EstimateTotalWork(
          kind, UpdateTechniqueKind::kSimpleShadow, params, 100, n);
      ASSERT_TRUE(packed.ok() && simple.ok());
      EXPECT_LT(packed.ValueOrDie().total(), simple.ValueOrDie().total())
          << SchemeKindName(kind) << " n=" << n;
    }
  }
}

TEST(CaseStudyTest, TpcdReindexIsWorst) {
  // Figures 7/8: REINDEX performs the worst for TPC-D (W = 100).
  const model::CaseParams params = model::CaseParams::Tpcd();
  auto reindex = model::EstimateTotalWork(
      SchemeKind::kReindex, UpdateTechniqueKind::kSimpleShadow, params, 100,
      5);
  auto wata = model::EstimateTotalWork(
      SchemeKind::kWata, UpdateTechniqueKind::kSimpleShadow, params, 100, 5);
  ASSERT_TRUE(reindex.ok() && wata.ok());
  EXPECT_GT(reindex.ValueOrDie().total(), wata.ValueOrDie().total());
}

TEST(CaseStudyTest, SimulationAgreesWithModelOnWhoWins) {
  // The device-level simulation must produce the same ordering as the
  // analytic model for the SCAM scenario's headline comparison at n = 4:
  // REINDEX does less maintenance I/O than REINDEX+.
  auto reindex = sim::ExperimentDriver::Run(ScamConfig(SchemeKind::kReindex, 4));
  auto plus =
      sim::ExperimentDriver::Run(ScamConfig(SchemeKind::kReindexPlus, 4));
  ASSERT_TRUE(reindex.ok() && plus.ok());
  const double reindex_maint =
      reindex.ValueOrDie().aggregates.avg_sim_transition_seconds +
      reindex.ValueOrDie().aggregates.avg_sim_precompute_seconds;
  const double plus_maint =
      plus.ValueOrDie().aggregates.avg_sim_transition_seconds +
      plus.ValueOrDie().aggregates.avg_sim_precompute_seconds;
  EXPECT_LT(reindex_maint, plus_maint);
}

}  // namespace
}  // namespace wavekit
