// libFuzzer target for the constituent read-verify path.
//
// A constituent's bucket extents are the one data-plane surface whose bytes
// can change underneath the process: bit rot, torn data writes, misdirected
// I/O. The read path re-checksums every bucket's live prefix before
// delivering entries (index/constituent_index.cc VerifyBucketBytes). The
// contract under fuzzing, with the fuzz input interpreted as an arbitrary
// overwrite of the device:
//
//   - no crash, throw, or sanitizer trip, no matter what bytes land where;
//   - every access returns OK or DataLoss — nothing else;
//   - any DataLoss quarantines the constituent (corrupt + unhealthy);
//   - if every access returns OK, the entries served are EXACTLY the
//     pristine ones — corrupt data is never silently returned.
//
// Build (Clang only):  cmake -B build-fuzz -S . -DWAVEKIT_FUZZ=ON \
//                          -DCMAKE_CXX_COMPILER=clang++
//                      cmake --build build-fuzz --target fuzz_constituent
// Run:                 build-fuzz/tests/fuzz/fuzz_constituent \
//                          tests/fuzz/corpus/constituent
//
// Without Clang, -DWAVEKIT_FUZZ_STANDALONE=ON builds the same harness with a
// plain main() that replays corpus files passed on the command line.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "index/constituent_index.h"
#include "index/index_builder.h"
#include "index/record.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"

namespace {

constexpr uint64_t kDeviceBytes = uint64_t{1} << 20;

using Row = std::tuple<std::string, uint64_t, wavekit::Day, uint32_t>;

// Deterministic two-day workload: a few values with multi-entry buckets so
// both the probe and the coalesced scan paths have something to verify.
std::vector<wavekit::DayBatch> MakeBatches() {
  std::vector<wavekit::DayBatch> batches;
  for (wavekit::Day day = 1; day <= 2; ++day) {
    wavekit::DayBatch batch;
    batch.day = day;
    for (uint64_t r = 0; r < 8; ++r) {
      wavekit::Record record;
      record.record_id = static_cast<uint64_t>(day) * 100 + r;
      record.day = day;
      record.values = {std::string(1, static_cast<char>('a' + r % 4)),
                       "common"};
      batch.records.push_back(std::move(record));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

wavekit::Status CollectRows(const wavekit::ConstituentIndex& index,
                            std::vector<Row>* rows) {
  rows->clear();
  wavekit::Status status =
      index.Scan([&](const wavekit::Value& value, const wavekit::Entry& e) {
        rows->emplace_back(value, e.record_id, e.day, e.aux);
      });
  std::sort(rows->begin(), rows->end());
  return status;
}

bool OkOrDataLoss(const wavekit::Status& status) {
  return status.ok() || status.IsDataLoss();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  wavekit::MemoryDevice device(kDeviceBytes);
  wavekit::ExtentAllocator allocator(device.capacity());

  const std::vector<wavekit::DayBatch> batches = MakeBatches();
  std::vector<const wavekit::DayBatch*> ptrs;
  for (const wavekit::DayBatch& b : batches) ptrs.push_back(&b);
  auto built = wavekit::IndexBuilder::BuildPacked(&device, &allocator, {},
                                                  ptrs, "fuzz");
  if (!built.ok()) {
    std::fprintf(stderr, "pristine build failed: %s\n",
                 built.status().ToString().c_str());
    __builtin_trap();
  }
  auto index = std::move(built).ValueOrDie();

  std::vector<Row> pristine;
  if (!CollectRows(*index, &pristine).ok()) {
    std::fprintf(stderr, "pristine scan failed\n");
    __builtin_trap();
  }

  // The fuzz input is an overwrite plan: 8 bytes of offset seed, then the
  // payload to splat at (seed % capacity), clamped to the device end. This
  // models arbitrary medium corruption beneath the index's bookkeeping.
  if (size > 8) {
    uint64_t seed = 0;
    std::memcpy(&seed, data, sizeof(seed));
    const uint64_t offset = seed % device.capacity();
    const size_t payload = std::min<size_t>(
        size - 8, static_cast<size_t>(device.capacity() - offset));
    if (payload > 0) {
      auto bytes = reinterpret_cast<const std::byte*>(data + 8);
      if (!device.Write(offset, std::span(bytes, payload)).ok()) {
        std::fprintf(stderr, "in-bounds device write failed\n");
        __builtin_trap();
      }
    }
  }

  // Exercise every read path. Each must cleanly succeed or report DataLoss.
  bool data_loss = false;
  for (const wavekit::Value& value : index->layout_order()) {
    std::vector<wavekit::Entry> out;
    wavekit::Status status = index->Probe(value, &out);
    if (!OkOrDataLoss(status)) {
      std::fprintf(stderr, "probe: unexpected status %s\n",
                   status.ToString().c_str());
      __builtin_trap();
    }
    data_loss = data_loss || status.IsDataLoss();

    out.clear();
    status = index->TimedProbe(value, wavekit::DayRange::Window(2, 2), &out);
    if (!OkOrDataLoss(status)) {
      std::fprintf(stderr, "timed probe: unexpected status %s\n",
                   status.ToString().c_str());
      __builtin_trap();
    }
    data_loss = data_loss || status.IsDataLoss();
  }

  std::vector<Row> rows;
  wavekit::Status scan = CollectRows(*index, &rows);
  if (!OkOrDataLoss(scan)) {
    std::fprintf(stderr, "scan: unexpected status %s\n",
                 scan.ToString().c_str());
    __builtin_trap();
  }
  data_loss = data_loss || scan.IsDataLoss();

  if (data_loss) {
    // Detection must quarantine: corrupt + unhealthy, never served silently.
    if (!index->corrupt() || index->healthy()) {
      std::fprintf(stderr, "DataLoss without quarantine\n");
      __builtin_trap();
    }
  } else if (scan.ok() && rows != pristine) {
    // Every path said OK, so the bytes must be the pristine ones: either the
    // overwrite landed outside live prefixes (slack / free space) or wrote
    // back identical bytes. Divergence here is silent corruption served.
    std::fprintf(stderr, "silent corruption: scan OK but rows differ\n");
    __builtin_trap();
  }
  return 0;
}

#ifdef WAVEKIT_FUZZ_STANDALONE
// Corpus replay driver for toolchains without libFuzzer.
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(contents.data()), contents.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], contents.size());
  }
  return 0;
}
#endif  // WAVEKIT_FUZZ_STANDALONE
