// Backend conformance: every registered storage backend must present the
// same Device semantics — zero-fill of never-written ranges, out-of-range
// rejection, batch results identical to the scalar loop, base WriteBatch
// ordering for overlapping extents, capacity reporting, and (for persistent
// backends) survival across close + reopen. The index layers are
// device-agnostic only as long as these hold.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/backend_registry.h"
#include "storage/file_device.h"
#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

constexpr uint64_t kCapacity = uint64_t{1} << 20;  // 1 MiB

struct BackendVariant {
  const char* backend;  // registry name
  bool direct_io;
  const char* label;  // test-suffix-safe name
};

const BackendVariant kVariants[] = {
    {"memory", false, "memory"},
    {"file", false, "file"},
    {"file", true, "file_direct"},
    {"uring", false, "uring"},
    {"uring", true, "uring_direct"},
    {"mmap", false, "mmap"},
};

class DeviceConformanceTest : public ::testing::TestWithParam<BackendVariant> {
 protected:
  void SetUp() override {
    const BackendVariant& variant = GetParam();
    // O_DIRECT support depends on the filesystem backing TempDir (tmpfs
    // rejects it); probe at runtime instead of assuming.
    if (variant.direct_io &&
        !FileDevice::DirectIoSupported(::testing::TempDir())) {
      GTEST_SKIP() << "O_DIRECT unsupported on " << ::testing::TempDir();
    }
    path_ = ::testing::TempDir() + "wavekit_conformance_" + variant.label +
            "_" + std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".dat";
    std::remove(path_.c_str());
    config_.path = path_;
    config_.capacity = kCapacity;
    config_.direct_io = variant.direct_io;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Result<std::unique_ptr<Device>> OpenDevice() {
    return BackendRegistry::Global().Create(GetParam().backend, config_);
  }

  std::string path_;
  BackendConfig config_;
};

// Deterministic content so reopen checks need no side channel.
std::byte PatternByte(uint64_t offset) {
  return static_cast<std::byte>((offset * 131) ^ (offset >> 8));
}

std::vector<std::byte> Pattern(uint64_t offset, size_t length) {
  std::vector<std::byte> out(length);
  for (size_t i = 0; i < length; ++i) out[i] = PatternByte(offset + i);
  return out;
}

TEST_P(DeviceConformanceTest, ReportsConfiguredCapacity) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  EXPECT_EQ(device->capacity(), kCapacity);
}

TEST_P(DeviceConformanceTest, NeverWrittenRangesReadZero) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  // One write far below keeps sparse backends honest about ranges past the
  // last materialized byte.
  ASSERT_OK(device->Write(8, Pattern(8, 16)));
  std::vector<std::byte> out(4096, std::byte{0xFF});
  ASSERT_OK(device->Read(kCapacity / 2, out));
  for (std::byte b : out) ASSERT_EQ(b, std::byte{0});
}

TEST_P(DeviceConformanceTest, UnalignedScalarRoundTrip) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  // Deliberately odd offsets/lengths: direct-mode backends must hide their
  // 4 KiB alignment behind the bounce path.
  const uint64_t offsets[] = {0, 1, 511, 4095, 4096, 4097, 70001};
  for (const uint64_t offset : offsets) {
    const size_t length = 100 + static_cast<size_t>(offset % 400);
    ASSERT_OK(device->Write(offset, Pattern(offset, length)));
  }
  for (const uint64_t offset : offsets) {
    const size_t length = 100 + static_cast<size_t>(offset % 400);
    std::vector<std::byte> out(length);
    ASSERT_OK(device->Read(offset, out));
    // Later writes may have overwritten earlier overlapping ranges; recompute
    // the expected byte per position from the LAST write covering it.
    for (size_t i = 0; i < length; ++i) {
      std::byte expected{0};
      for (const uint64_t w : offsets) {
        const size_t wlen = 100 + static_cast<size_t>(w % 400);
        if (offset + i >= w && offset + i < w + wlen) {
          expected = PatternByte(offset + i);
        }
      }
      ASSERT_EQ(out[i], expected) << "offset " << offset << " byte " << i;
    }
  }
}

TEST_P(DeviceConformanceTest, RejectsOutOfRangeAccess) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  std::vector<std::byte> buf(64);
  EXPECT_FALSE(device->Read(kCapacity - 32, buf).ok());
  EXPECT_FALSE(device->Write(kCapacity - 32, buf).ok());
  EXPECT_FALSE(device->Read(kCapacity, buf).ok());
  EXPECT_FALSE(device->Write(kCapacity + 1, buf).ok());
  // Batches containing one bad extent fail before any partial read leaks out.
  const Extent extents[] = {{0, 32}, {kCapacity - 16, 32}};
  std::vector<std::byte> batch(64);
  EXPECT_FALSE(device->ReadBatch(extents, batch).ok());
  EXPECT_FALSE(device->WriteBatch(extents, batch).ok());
  // The last valid byte is still accessible.
  std::vector<std::byte> one(1);
  EXPECT_OK(device->Write(kCapacity - 1, one));
  EXPECT_OK(device->Read(kCapacity - 1, one));
}

TEST_P(DeviceConformanceTest, ReadBatchMatchesScalarLoop) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  ASSERT_OK(device->Write(0, Pattern(0, 64 * 1024)));
  Rng rng(testing::TestSeed(1));
  for (int round = 0; round < 8; ++round) {
    std::vector<Extent> extents;
    uint64_t total = 0;
    const int count = 1 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < count; ++i) {
      // Mix written, sparse (past 64 KiB), adjacent, and empty extents.
      const uint64_t offset = rng.Uniform(128 * 1024);
      const uint64_t length = rng.Uniform(3) == 0 ? 0 : 1 + rng.Uniform(2000);
      extents.push_back({offset, length});
      total += length;
      if (rng.Uniform(4) == 0 && length > 0) {
        extents.push_back({offset + length, 64});  // file-adjacent run
        total += 64;
      }
    }
    std::vector<std::byte> batched(total, std::byte{0xAA});
    ASSERT_OK(device->ReadBatch(extents, batched));
    std::vector<std::byte> looped(total, std::byte{0x55});
    size_t cursor = 0;
    for (const Extent& extent : extents) {
      ASSERT_OK(device->Read(
          extent.offset,
          std::span<std::byte>(looped.data() + cursor, extent.length)));
      cursor += extent.length;
    }
    ASSERT_EQ(batched, looped) << "round " << round;
  }
}

TEST_P(DeviceConformanceTest, WriteBatchMatchesScalarLoop) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  MemoryDevice reference(kCapacity);  // base per-extent semantics
  Rng rng(testing::TestSeed(2));
  for (int round = 0; round < 6; ++round) {
    std::vector<Extent> extents;
    uint64_t total = 0;
    const int count = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < count; ++i) {
      const uint64_t offset = rng.Uniform(96 * 1024);
      const uint64_t length = 1 + rng.Uniform(1500);
      extents.push_back({offset, length});
      total += length;
    }
    std::vector<std::byte> data(total);
    for (auto& b : data) b = static_cast<std::byte>(rng.Uniform(256));
    ASSERT_OK(device->WriteBatch(extents, data));
    size_t cursor = 0;
    for (const Extent& extent : extents) {
      ASSERT_OK(reference.Write(
          extent.offset, std::span<const std::byte>(data.data() + cursor,
                                                    extent.length)));
      cursor += extent.length;
    }
  }
  std::vector<std::byte> got(128 * 1024), want(128 * 1024);
  ASSERT_OK(device->Read(0, got));
  ASSERT_OK(reference.Read(0, want));
  ASSERT_EQ(got, want);
}

TEST_P(DeviceConformanceTest, OverlappingWriteBatchKeepsCallOrder) {
  // Base Device semantics: extents apply in call order, so where extents
  // overlap the LATER extent's bytes win. Backends that sort for fewer
  // seeks must detect overlap and preserve this.
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  const Extent extents[] = {{100, 8}, {104, 8}, {96, 4}};
  std::vector<std::byte> data(20);
  for (size_t i = 0; i < 8; ++i) data[i] = std::byte{0x11};
  for (size_t i = 8; i < 16; ++i) data[i] = std::byte{0x22};
  for (size_t i = 16; i < 20; ++i) data[i] = std::byte{0x33};
  ASSERT_OK(device->WriteBatch(extents, data));
  std::vector<std::byte> out(20);
  ASSERT_OK(device->Read(96, out));
  const std::byte expected[] = {
      std::byte{0x33}, std::byte{0x33}, std::byte{0x33}, std::byte{0x33},
      std::byte{0x11}, std::byte{0x11}, std::byte{0x11}, std::byte{0x11},
      std::byte{0x22}, std::byte{0x22}, std::byte{0x22}, std::byte{0x22},
      std::byte{0x22}, std::byte{0x22}, std::byte{0x22}, std::byte{0x22},
      std::byte{0},    std::byte{0},    std::byte{0},    std::byte{0}};
  EXPECT_EQ(std::memcmp(out.data(), expected, 20), 0);
}

TEST_P(DeviceConformanceTest, SyncSucceeds) {
  ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
  ASSERT_OK(device->Write(123, Pattern(123, 77)));
  EXPECT_OK(device->Sync());
}

TEST_P(DeviceConformanceTest, PersistentBackendsSurviveReopen) {
  ASSERT_OK_AND_ASSIGN(
      const BackendCapabilities caps,
      BackendRegistry::Global().GetCapabilities(GetParam().backend));
  if (!caps.persistent) {
    GTEST_SKIP() << GetParam().backend << " is volatile by design";
  }
  {
    ASSERT_OK_AND_ASSIGN(auto device, OpenDevice());
    ASSERT_OK(device->Write(5000, Pattern(5000, 300)));
    ASSERT_OK(device->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto reopened, OpenDevice());
  std::vector<std::byte> out(300);
  ASSERT_OK(reopened->Read(5000, out));
  EXPECT_EQ(out, Pattern(5000, 300));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DeviceConformanceTest,
                         ::testing::ValuesIn(kVariants),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

}  // namespace
}  // namespace wavekit
