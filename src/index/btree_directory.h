// BTreeDirectory: B+Tree-backed Directory with ordered iteration.
//
// Values are kept in sorted order, so packed builds that lay buckets out in
// directory order produce an on-device layout sorted by value — useful for
// prefix/range access patterns and deterministic layouts. The tree is a
// textbook B+Tree: all mappings live in leaves, internal nodes hold
// separators, leaves are chained for in-order traversal.

#ifndef WAVEKIT_INDEX_BTREE_DIRECTORY_H_
#define WAVEKIT_INDEX_BTREE_DIRECTORY_H_

#include <memory>
#include <vector>

#include "index/directory.h"

namespace wavekit {

/// \brief Directory backed by an in-memory B+Tree.
class BTreeDirectory : public Directory {
 public:
  /// `max_keys` is the maximum number of keys per node (order - 1); nodes
  /// split when they exceed it and merge when they fall below max_keys / 2.
  /// Must be >= 3.
  explicit BTreeDirectory(size_t max_keys = 32);
  ~BTreeDirectory() override;

  DirectoryKind kind() const override { return DirectoryKind::kBTree; }
  BucketInfo* Find(const Value& value) override;
  const BucketInfo* Find(const Value& value) const override;
  Status Insert(const Value& value, const BucketInfo& info) override;
  Status Remove(const Value& value) override;
  size_t size() const override { return size_; }
  void ForEach(const std::function<void(const Value&, const BucketInfo&)>& fn)
      const override;
  std::unique_ptr<Directory> CloneEmpty() const override;
  bool ordered() const override { return true; }

  /// Height of the tree (0 for an empty tree, 1 when the root is a leaf).
  size_t height() const;

  /// Validates B+Tree invariants (key ordering, fanout bounds, uniform leaf
  /// depth, leaf chain completeness). For tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  Node* FindLeaf(const Value& value) const;
  // Inserts into the subtree at `node`; on split, returns the new right
  // sibling and its separator key via `*split`.
  Status InsertRecursive(Node* node, const Value& value, const BucketInfo& info,
                         SplitResult* split, bool* did_split);
  // Removes from the subtree at `node`; sets *underflow when `node` dropped
  // below the minimum occupancy and its parent must rebalance.
  Status RemoveRecursive(Node* node, const Value& value, bool* underflow);
  void RebalanceChild(Node* parent, size_t child_idx);

  Status CheckNode(const Node* node, const Value* lower, const Value* upper,
                   size_t depth, size_t leaf_depth) const;
  size_t LeafDepth() const;

  size_t max_keys_;
  size_t min_keys_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_BTREE_DIRECTORY_H_
