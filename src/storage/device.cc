#include "storage/device.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace wavekit {

MemoryDevice::MemoryDevice(uint64_t capacity) : capacity_(capacity) {}

Status MemoryDevice::CheckRange(uint64_t offset, size_t length) const {
  if (offset > capacity_ || length > capacity_ - offset) {
    return Status::OutOfRange(
        "device access [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") exceeds capacity " +
        std::to_string(capacity_));
  }
  return Status::OK();
}

Status MemoryDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, out.size()));
  if (out.empty()) return Status::OK();
  // Bytes beyond the materialized high-water mark read as zero.
  const uint64_t materialized = bytes_.size();
  const uint64_t end = offset + out.size();
  std::memset(out.data(), 0, out.size());
  if (offset < materialized) {
    const size_t n = static_cast<size_t>(std::min(end, materialized) - offset);
    std::memcpy(out.data(), bytes_.data() + offset, n);
  }
  return Status::OK();
}

Status MemoryDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, data.size()));
  if (data.empty()) return Status::OK();
  const uint64_t end = offset + data.size();
  if (end > bytes_.size()) bytes_.resize(end);
  std::memcpy(bytes_.data() + offset, data.data(), data.size());
  return Status::OK();
}

}  // namespace wavekit
