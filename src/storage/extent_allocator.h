// ExtentAllocator: first-fit free-list allocation of contiguous byte extents.
//
// Constituent indexes place their buckets through this allocator. Packed
// builds request one large extent so all buckets land contiguously (enabling
// single-seek SegmentScans); the CONTIGUOUS incremental scheme [FJ92]
// relocates buckets into fresh, larger extents as they grow.

#ifndef WAVEKIT_STORAGE_EXTENT_ALLOCATOR_H_
#define WAVEKIT_STORAGE_EXTENT_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// \brief Manages the free space of a Device's address range.
///
/// First-fit with eager coalescing of adjacent free extents. Byte-granular:
/// the paper sizes indexes in bytes (S, S'), so no alignment padding is added.
///
/// Lookup is segregated-fit: alongside the offset-ordered free list, free
/// extents are indexed by power-of-two size class, so Allocate inspects at
/// most one class's candidates plus the head of each larger class instead of
/// scanning the whole list. The chosen extent is still the LOWEST-OFFSET free
/// extent that fits — bit-for-bit the same placement the linear scan made —
/// so layouts (and therefore seek counts) are unchanged; only the search cost
/// stops degrading with fragment count.
///
/// Thread-safe: shadow-updated indexes may be released by whichever query
/// thread drops the last reference (see wave/wave_service.h), so Allocate and
/// Free may race; an internal mutex serializes them.
class ExtentAllocator {
 public:
  /// Manages [0, capacity_bytes).
  explicit ExtentAllocator(uint64_t capacity_bytes);

  /// Allocates a contiguous extent of exactly `length` bytes.
  /// Fails with ResourceExhausted if no single free extent is large enough.
  /// When a default alignment > 1 is set (O_DIRECT backends), behaves as
  /// AllocateAligned(length, default_alignment()).
  Result<Extent> Allocate(uint64_t length);

  /// Allocates `length` bytes whose offset is a multiple of `alignment`
  /// (power of two). The extent is still the lowest-offset placement that
  /// fits after rounding; alignment padding carved off the front of a free
  /// extent STAYS FREE, so no space leaks. Length is not rounded up —
  /// O_DIRECT tails go through the devices' bounce read-modify-write path.
  Result<Extent> AllocateAligned(uint64_t length, uint64_t alignment);

  /// Alignment applied by every subsequent Allocate (1 = byte-granular, the
  /// default; kDirectIoAlignment when the backing device is O_DIRECT).
  /// Must be a power of two. Set once at scheme construction, before any
  /// allocation traffic.
  void set_default_alignment(uint64_t alignment) {
    std::lock_guard<std::mutex> lock(mutex_);
    default_alignment_ = alignment == 0 ? 1 : alignment;
  }
  uint64_t default_alignment() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return default_alignment_;
  }

  /// Marks a SPECIFIC byte range as allocated (checkpoint restore: buckets
  /// already persisted on the device reclaim their exact locations). Fails
  /// with FailedPrecondition if any part of the range is already allocated.
  Status Reserve(const Extent& extent);

  /// Returns an extent to the free list. The extent must have come from
  /// Allocate and not have been freed already; overlapping frees are detected
  /// and rejected with InvalidArgument.
  Status Free(const Extent& extent);

  /// Total bytes currently free (may be fragmented).
  uint64_t free_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_bytes_;
  }

  /// Total bytes currently allocated.
  uint64_t allocated_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_ - free_bytes_;
  }

  /// High-water mark of allocated_bytes() since the last ResetPeak(). Used
  /// to measure the transient extra space of shadow updates.
  uint64_t peak_allocated_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_allocated_;
  }
  void ResetPeak() {
    std::lock_guard<std::mutex> lock(mutex_);
    peak_allocated_ = capacity_ - free_bytes_;
  }

  /// Largest single free extent (what the next Allocate can satisfy).
  uint64_t largest_free_extent() const;

  /// Number of free-list fragments (1 when completely unfragmented & empty).
  size_t fragment_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

  uint64_t capacity() const { return capacity_; }

  /// Internal-consistency check: free extents are sorted, non-overlapping,
  /// non-adjacent (coalesced) and within capacity. For tests.
  Status CheckConsistency() const;

 private:
  using FreeMap = std::map<uint64_t, uint64_t>;

  Result<Extent> AllocateLocked(uint64_t length);
  Result<Extent> AllocateAlignedLocked(uint64_t length, uint64_t alignment);
  uint64_t LargestFreeExtentLocked() const;

  // All free-list mutations go through these so free_ and classes_ stay in
  // lockstep (mutex_ held).
  void InsertFreeLocked(uint64_t offset, uint64_t length);
  void EraseFreeLocked(FreeMap::iterator it);

  mutable std::mutex mutex_;
  uint64_t capacity_;
  uint64_t free_bytes_;
  uint64_t peak_allocated_ = 0;
  uint64_t default_alignment_ = 1;
  // offset -> length of each free extent, keyed by offset. Canonical: the
  // coalescing neighbor checks in Free/Reserve rely on offset order.
  FreeMap free_;
  // Size-class index: classes_[c] holds the offsets of free extents whose
  // length has bit_width c+1 (i.e. length in [2^c, 2^(c+1))). 64 classes
  // cover the whole uint64_t range.
  std::array<std::set<uint64_t>, 64> classes_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_EXTENT_ALLOCATOR_H_
