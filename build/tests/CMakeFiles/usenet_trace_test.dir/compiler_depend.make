# Empty compiler generated dependencies file for usenet_trace_test.
# This may be replaced when dependencies are built.
