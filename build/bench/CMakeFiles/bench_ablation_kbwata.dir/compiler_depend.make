# Empty compiler generated dependencies file for bench_ablation_kbwata.
# This may be replaced when dependencies are built.
