// Checkpointing: persist a wave index's METADATA so that an index whose
// buckets live on a durable device (storage/file_device.h) can be reopened
// after a restart without rebuilding anything.
//
// A checkpoint records, for every constituent: its name, packed flag,
// time-set, and each bucket's (value, device extent, count, capacity). The
// bucket BYTES are not copied — they are already on the device; loading
// re-reserves their extents with the allocator and re-registers them in
// fresh directories.
//
// Scope: checkpoints capture the queryable wave index, not the maintenance
// scheme's private state (temporary-index ladders, DaysToAdd). After a
// restart the index serves queries immediately; to resume maintenance,
// start a fresh scheme with Start() over retained day batches, or adopt a
// scheme (like WATA*/DEL) whose state is exactly the constituent set.

#ifndef WAVEKIT_WAVE_CHECKPOINT_H_
#define WAVEKIT_WAVE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "index/constituent_index.h"
#include "util/result.h"
#include "wave/wave_index.h"

namespace wavekit {

/// Current checkpoint format version. Version 2 added a trailing
/// "footer <body-length> <crc32>" line so corrupt or truncated files are
/// rejected outright instead of partially parsed. Version 3 added each
/// bucket's data CRC-32C (BucketInfo::crc) to the bucket line, persisting
/// the integrity map across restarts. Version 4 added the bucket codec id
/// and stored byte length (index/codec.h), persisting compressed-extent
/// geometry. Older files still load: version-3 buckets load as kRaw, and
/// version-2 bucket checksums are recomputed from the device (the one-time
/// upgrade cost); the next checkpoint writes version 4.
inline constexpr int kCheckpointVersion = 4;

/// Oldest version DeserializeCheckpoint still accepts.
inline constexpr int kMinCheckpointVersion = 2;

/// \brief Serializes `wave`'s metadata to a string (one checkpoint file's
/// contents). Deterministic for a given wave index.
Result<std::string> SerializeCheckpoint(const WaveIndex& wave);

/// \brief Writes SerializeCheckpoint(wave) to `path` atomically AND durably
/// (temp file + fsync + rename + parent-directory fsync): after a crash the
/// path holds either the previous complete checkpoint or the new one.
Status WriteCheckpoint(const WaveIndex& wave, const std::string& path);

/// \brief Reconstructs a wave index from checkpoint `contents`. The footer
/// (length + CRC32) is validated before anything is parsed, so a truncated
/// or bit-flipped file fails with a clear InvalidArgument and no partial
/// state.
///
/// `device` must hold the bucket bytes the checkpoint refers to (the same
/// device the wave index was built on); `allocator` must be freshly
/// constructed over that device's range — every bucket extent is Reserved
/// with it so subsequent maintenance cannot clobber live data.
Result<WaveIndex> DeserializeCheckpoint(const std::string& contents,
                                        Device* device,
                                        ExtentAllocator* allocator,
                                        ConstituentIndex::Options options);

/// \brief Reads `path` and deserializes it.
Result<WaveIndex> LoadCheckpoint(const std::string& path, Device* device,
                                 ExtentAllocator* allocator,
                                 ConstituentIndex::Options options);

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_CHECKPOINT_H_
