// Figure 5: total daily work for SCAM (maintenance + 100k probes + 10
// current-day scans) vs n, W = 7, simple shadow updating.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 5: SCAM average total work per day vs n (W=7)",
         "REINDEX performs poorly for small n but is the most efficient for "
         "large n; DEL/WATA/RATA are stable and rise slowly with n (probes "
         "touch more indexes). The paper recommends REINDEX with n = 4.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 7;

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled)");

  std::map<SchemeKind, std::map<int, double>> series;
  std::map<SchemeKind, std::map<int, double>> maintenance;
  for (int n = 1; n <= window; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      const model::TotalWork work = TotalWorkOrDie(
          kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
      series[kind][n] = work.total();
      maintenance[kind][n] = work.transition_seconds + work.precompute_seconds;
      row.push_back(Fmt(series[kind][n], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  checks.Check(series[SchemeKind::kReindex][1] >
                   series[SchemeKind::kDel][1],
               "REINDEX performs poorly for small n");
  bool reindex_best_large_n = true;
  for (SchemeKind kind : PaperSchemes()) {
    if (kind == SchemeKind::kReindex) continue;
    reindex_best_large_n &=
        series[SchemeKind::kReindex][window] <= series[kind][window] * 1.001;
  }
  checks.Check(reindex_best_large_n,
               "REINDEX is the most efficient scheme at large n (n = W)");
  // DEL/WATA/RATA "incrementally add and delete a small constant number of
  // days each day": their maintenance stays bounded by a couple of
  // single-day operations at every n, instead of scaling with W/n.
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kWata, SchemeKind::kRata}) {
    double hi = 0;
    for (const auto& [n, v] : maintenance[kind]) hi = std::max(hi, v);
    checks.Check(hi <= 2.2 * params.add_seconds,
                 std::string(SchemeKindName(kind)) +
                     " maintains a small constant number of days per day "
                     "at every n");
  }
  checks.Check(maintenance[SchemeKind::kReindex][1] >
                   2.5 * maintenance[SchemeKind::kReindex][window],
               "REINDEX's maintenance falls steeply as n grows");
  // Slowly increasing with n due to probe fan-out.
  checks.Check(series[SchemeKind::kDel][window] > series[SchemeKind::kDel][1],
               "DEL's work rises with n (TimedIndexProbes touch more indexes)");
  // The paper's recommendation: at n = 4, REINDEX beats every other
  // hard-window scheme (the soft-window WATA* family trades window accuracy
  // for its small edge, and loses on space per Figure 3).
  bool reindex_wins_at_4 = true;
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kReindexPlus,
        SchemeKind::kReindexPlusPlus, SchemeKind::kRata}) {
    reindex_wins_at_4 &= series[SchemeKind::kReindex][4] <= series[kind][4];
  }
  checks.Check(reindex_wins_at_4,
               "at the recommended n = 4, REINDEX does the least total work "
               "among hard-window schemes");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
