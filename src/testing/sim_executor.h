// SimExecutor: a deterministic, single-threaded stand-in for ThreadPool.
//
// The FoundationDB lesson: concurrency bugs reproduce only if the scheduler
// is part of the seed. SimExecutor honours the full ThreadPool submit/wait
// contract (reentrant submits, WaitGroup joins, drain-on-destruction) with
// zero real threads: Submit only queues; tasks execute when the owner (or a
// Wait/WaitGroup::Wait) drains the queue, and the drain order is a seeded
// pseudo-random permutation — every run with the same seed interleaves
// identically, and different seeds explore different interleavings.
//
// Control surface for the simulation driver:
//   - RunOne()       executes exactly one queued task (seeded pick), so a
//                    test can interleave probes between queued async
//                    transitions at any granularity.
//   - RunUntilIdle() drains everything, including tasks submitted by the
//                    tasks it runs.
//
// Deliberately NOT thread-safe in the way ThreadPool is: the simulation is
// single-threaded by design (that is the whole point). A mutex still guards
// the queue so incidental cross-thread Submits (e.g. from code that also
// runs in production) are not data races, but tasks always execute on the
// draining thread.

#ifndef WAVEKIT_TESTING_SIM_EXECUTOR_H_
#define WAVEKIT_TESTING_SIM_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "util/random.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace testing {

/// \brief Deterministic workerless ThreadPool: tasks queue on Submit and run
/// in a seeded pseudo-random order when drained.
///
/// `width` models the worker count of the pool being simulated: a real
/// k-worker pool picks tasks up FIFO, so only the k oldest queued tasks can
/// ever be in flight (and finish in any order) at once. The drain therefore
/// picks uniformly among the first `width` queued tasks — width 1 is strict
/// FIFO (exactly a 1-thread pool, which WaveService's async advance runner
/// depends on for ordering), larger widths explore the bounded reorderings a
/// real pool could produce.
class SimExecutor : public ThreadPool {
 public:
  explicit SimExecutor(uint64_t seed, size_t width = 1)
      : rng_(seed), width_(width == 0 ? 1 : width) {}
  ~SimExecutor() override { RunUntilIdle(); }

  /// Queues `task`; nothing executes until a drain.
  void Submit(std::function<void()> task) override;

  /// Drains the queue on the calling thread (ThreadPool::Wait contract:
  /// covers tasks the drained tasks submit).
  void Wait() override { RunUntilIdle(); }

  /// Runs one queued task, chosen by the seeded interleaving. Returns false
  /// when the queue was empty.
  bool RunOne();

  /// Runs queued tasks (and their reentrant children) until none remain.
  /// Returns how many tasks ran.
  size_t RunUntilIdle();

  size_t queue_depth() const override;
  int in_flight() const override;

  /// Tasks executed so far (for trace/assertion purposes).
  uint64_t tasks_run() const { return tasks_run_; }

 protected:
  void DrainForWait() override { RunUntilIdle(); }

 private:
  mutable std::mutex mutex_;
  std::deque<std::function<void()>> queue_;
  Rng rng_;
  size_t width_;
  uint64_t tasks_run_ = 0;
};

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTING_SIM_EXECUTOR_H_
