#include "wave/reindex_plus_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status ReindexPlusScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  // Temp <- phi.
  temp_.reset();
  days_to_add_.clear();
  return Status::OK();
}

Status ReindexPlusScheme::PromoteCopyOfTemp(size_t j,
                                            const TimeSet& extra_days) {
  WAVEKIT_ASSIGN_OR_RETURN(
      std::shared_ptr<ConstituentIndex> replacement,
      CopyIndex(*temp_, slots_[j]->name(), Phase::kTransition));
  WAVEKIT_RETURN_NOT_OK(
      AddToIndex(extra_days, &replacement, Phase::kTransition));
  if (config_.technique == UpdateTechniqueKind::kPackedShadow) {
    WAVEKIT_RETURN_NOT_OK(PackIndex(&replacement, Phase::kTransition));
  }
  return ReplaceSlot(j, std::move(replacement));
}

Status ReindexPlusScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));

  if (temp_ == nullptr) {
    if (slots_[j]->time_set().size() == 1) {
      // Degenerate single-day cluster: Temp cannot save anything; rebuild
      // directly (equivalent to REINDEX for this cluster).
      obs::Span span = TraceOp("REINDEX+.rebuild_single_day");
      WAVEKIT_ASSIGN_OR_RETURN(
          std::shared_ptr<ConstituentIndex> rebuilt,
          BuildIndex({new_day.day}, slots_[j]->name(), Phase::kTransition));
      WAVEKIT_RETURN_NOT_OK(ReplaceSlot(j, std::move(rebuilt)));
    } else {
      // First day of a cluster rotation: Temp, I_j <- BuildIndex(d_new);
      // AddToIndex(DaysToAdd, I_j).
      obs::Span span = TraceOp("REINDEX+.start_rotation");
      days_to_add_ = slots_[j]->time_set();
      days_to_add_.erase(expired);
      WAVEKIT_ASSIGN_OR_RETURN(
          temp_, BuildIndex({new_day.day}, "Temp", Phase::kTransition));
      WAVEKIT_RETURN_NOT_OK(PromoteCopyOfTemp(j, days_to_add_));
    }
  } else if (days_to_add_.empty()) {
    // Last day of the rotation: I_j <- Temp; AddToIndex(d_new, I_j);
    // Temp <- phi.
    obs::Span span = TraceOp("REINDEX+.finish_rotation");
    WAVEKIT_RETURN_NOT_OK(PromoteCopyOfTemp(j, {new_day.day}));
    WAVEKIT_RETURN_NOT_OK(DropIndex(temp_));
    temp_.reset();
  } else {
    // Middle of the rotation: AddToIndex(d_new, Temp); I_j <- Temp;
    // AddToIndex(DaysToAdd, I_j).
    obs::Span span = TraceOp("REINDEX+.mid_rotation");
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, &temp_, Phase::kTransition));
    WAVEKIT_RETURN_NOT_OK(PromoteCopyOfTemp(j, days_to_add_));
  }

  // DaysToAdd <- DaysToAdd - {new - W + 1}: the day expiring tomorrow no
  // longer needs re-adding.
  days_to_add_.erase(expired + 1);
  return Status::OK();
}

Status ReindexPlusScheme::DoAdopt() {
  WAVEKIT_RETURN_NOT_OK(Scheme::DoAdopt());
  // Reconstruct Temp and DaysToAdd for the cluster whose rotation is in
  // flight. In any (possibly partially rotated) expiring cluster, the OLD
  // days are those expiring during this rotation — d < min(cluster) +
  // |cluster| — and the rest are recent days Temp had accumulated before the
  // restart.
  const Day oldest = current_day_ - config_.window + 1;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(oldest));
  const TimeSet& cluster = slots_[j]->time_set();
  const Day old_limit = *cluster.begin() + static_cast<Day>(cluster.size());
  TimeSet recent;
  TimeSet old_rest;  // old days other than tomorrow's expiring one
  for (Day d : cluster) {
    if (d >= old_limit) {
      recent.insert(d);
    } else if (d != oldest) {
      old_rest.insert(d);
    }
  }
  temp_.reset();
  days_to_add_.clear();
  if (!recent.empty()) {
    WAVEKIT_ASSIGN_OR_RETURN(temp_,
                             BuildIndex(recent, "Temp", Phase::kPrecompute));
    days_to_add_ = old_rest;
  }
  return Status::OK();
}

std::vector<const ConstituentIndex*> ReindexPlusScheme::TemporaryIndexes()
    const {
  if (temp_ == nullptr) return {};
  return {temp_.get()};
}

}  // namespace wavekit
