// Micro-benchmarks of the storage extensions: checkpoint serialize/load,
// the LRU cached device, the extent allocator, and the thread pool.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "index/index_builder.h"
#include "storage/cached_device.h"
#include "storage/store.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "wave/checkpoint.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

WaveIndex BuildWave(Store& store, int days) {
  workload::NetnewsConfig config;
  config.articles_per_day = 150;
  config.words_per_article = 20;
  workload::NetnewsGenerator gen(config);
  WaveIndex wave;
  for (Day d = 1; d <= days; ++d) {
    DayBatch batch = gen.GenerateDay(d);
    auto built = IndexBuilder::BuildPacked(store.device(), store.allocator(),
                                           {}, batch, "I" + std::to_string(d));
    if (!built.ok()) built.status().Abort("build");
    wave.AddIndex(std::move(built).ValueOrDie());
  }
  return wave;
}

void BM_CheckpointSerialize(benchmark::State& state) {
  Store store;
  WaveIndex wave = BuildWave(store, static_cast<int>(state.range(0)));
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto serialized = SerializeCheckpoint(wave);
    if (!serialized.ok()) serialized.status().Abort("serialize");
    bytes = serialized.ValueOrDie().size();
    benchmark::DoNotOptimize(serialized);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_CheckpointSerialize)->Arg(2)->Arg(7)->Arg(30);

void BM_CheckpointDeserialize(benchmark::State& state) {
  Store store;
  WaveIndex wave = BuildWave(store, static_cast<int>(state.range(0)));
  auto serialized = SerializeCheckpoint(wave);
  if (!serialized.ok()) serialized.status().Abort("serialize");
  for (auto _ : state) {
    ExtentAllocator fresh(uint64_t{16} << 30);
    auto loaded = DeserializeCheckpoint(serialized.ValueOrDie(),
                                        store.device(), &fresh, {});
    if (!loaded.ok()) loaded.status().Abort("deserialize");
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(serialized.ValueOrDie().size()) *
      state.iterations());
}
BENCHMARK(BM_CheckpointDeserialize)->Arg(2)->Arg(7)->Arg(30);

void BM_CachedDeviceRead(benchmark::State& state) {
  const bool hot = state.range(0) != 0;
  MemoryDevice memory(uint64_t{1} << 24);
  CachedDevice cached(&memory, /*capacity_blocks=*/256);
  std::vector<std::byte> buf(4096, std::byte{1});
  for (uint64_t i = 0; i < 1024; ++i) {
    memory.Write(i * 4096, buf).Abort("fill");
  }
  Rng rng(7);
  for (auto _ : state) {
    // Hot: 64-block working set (fits); cold: 1024 blocks (thrashes).
    const uint64_t universe = hot ? 64 : 1024;
    const uint64_t block = rng.Uniform(universe);
    cached.Read(block * 4096, buf).Abort("read");
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(4096 * state.iterations());
  state.SetLabel(hot ? "hot(cached)" : "cold(thrashing)");
}
BENCHMARK(BM_CachedDeviceRead)->Arg(1)->Arg(0);

void BM_AllocatorChurn(benchmark::State& state) {
  ExtentAllocator allocator(uint64_t{1} << 26);
  Rng rng(3);
  std::vector<Extent> live;
  for (auto _ : state) {
    if (live.size() < 512 && (live.empty() || rng.Bernoulli(0.55))) {
      auto extent = allocator.Allocate(64 + rng.Uniform(8192));
      if (extent.ok()) live.push_back(extent.ValueOrDie());
    } else {
      const size_t pick = rng.Uniform(live.size());
      allocator.Free(live[pick]).Abort("free");
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (const Extent& e : live) allocator.Free(e).Abort("cleanup");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorChurn);

void BM_AllocatorFragmented(benchmark::State& state) {
  // Allocation cost versus free-list fragmentation: carve out 2N small
  // extents and free every other one, leaving N isolated 64-byte holes that
  // can never coalesce. A 4 KiB request fits none of them — a linear
  // first-fit walk would touch all N holes per call, while the
  // size-bucketed free list goes straight to a class that fits, so
  // time/iteration stays flat as N grows.
  const uint64_t fragments = static_cast<uint64_t>(state.range(0));
  ExtentAllocator allocator(uint64_t{1} << 30);
  std::vector<Extent> carved;
  carved.reserve(2 * fragments);
  for (uint64_t i = 0; i < 2 * fragments; ++i) {
    auto extent = allocator.Allocate(64);
    if (!extent.ok()) extent.status().Abort("carve");
    carved.push_back(extent.ValueOrDie());
  }
  for (uint64_t i = 0; i < carved.size(); i += 2) {
    allocator.Free(carved[i]).Abort("hole");
  }
  for (auto _ : state) {
    auto extent = allocator.Allocate(4096);
    if (!extent.ok()) extent.status().Abort("alloc");
    allocator.Free(extent.ValueOrDie()).Abort("free");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(fragments) + " holes");
}
BENCHMARK(BM_AllocatorFragmented)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([]() { benchmark::DoNotOptimize(1 + 1); });
    }
    pool.Wait();
  }
  state.SetItemsProcessed(64 * state.iterations());
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

}  // namespace
}  // namespace wavekit

BENCHMARK_MAIN();
