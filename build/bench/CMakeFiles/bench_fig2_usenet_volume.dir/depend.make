# Empty dependencies file for bench_fig2_usenet_volume.
# This may be replaced when dependencies are built.
