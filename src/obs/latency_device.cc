#include "obs/latency_device.h"

namespace wavekit {
namespace obs {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kReadBatch:
      return "read_batch";
    case OpKind::kWriteBatch:
      return "write_batch";
    case OpKind::kSync:
      return "sync";
  }
  return "?";
}

LatencyTrackingDevice::LatencyTrackingDevice(Device* inner, Options options)
    : inner_(inner),
      clock_(options.clock != nullptr ? options.clock
                                      : RealClock::Instance()) {}

Status LatencyTrackingDevice::Finish(OpKind op, Phase phase, uint64_t start_us,
                                     Status status) {
  const uint64_t end_us = clock_->NowMicros();
  // Clamp to 1us: sub-microsecond ops (memory backend, page cache hits) and
  // SimClock (time does not pass inside a call) would otherwise record 0,
  // which the log-bucketed histogram cannot hold.
  const uint64_t elapsed_us = end_us > start_us ? end_us - start_us : 1;
  Cell(op, phase).Record(elapsed_us);
  return status;
}

Status LatencyTrackingDevice::Read(uint64_t offset, std::span<std::byte> out) {
  const Phase phase = CurrentPhase();
  const uint64_t start_us = clock_->NowMicros();
  return Finish(OpKind::kRead, phase, start_us, inner_->Read(offset, out));
}

Status LatencyTrackingDevice::Write(uint64_t offset,
                                    std::span<const std::byte> data) {
  const Phase phase = CurrentPhase();
  const uint64_t start_us = clock_->NowMicros();
  return Finish(OpKind::kWrite, phase, start_us, inner_->Write(offset, data));
}

Status LatencyTrackingDevice::ReadBatch(std::span<const Extent> extents,
                                        std::span<std::byte> out) {
  const Phase phase = CurrentPhase();
  const uint64_t start_us = clock_->NowMicros();
  return Finish(OpKind::kReadBatch, phase, start_us,
                inner_->ReadBatch(extents, out));
}

Status LatencyTrackingDevice::WriteBatch(std::span<const Extent> extents,
                                         std::span<const std::byte> data) {
  const Phase phase = CurrentPhase();
  const uint64_t start_us = clock_->NowMicros();
  return Finish(OpKind::kWriteBatch, phase, start_us,
                inner_->WriteBatch(extents, data));
}

Status LatencyTrackingDevice::Sync() {
  const Phase phase = CurrentPhase();
  const uint64_t start_us = clock_->NowMicros();
  return Finish(OpKind::kSync, phase, start_us, inner_->Sync());
}

Histogram LatencyTrackingDevice::histogram(OpKind op, Phase phase) const {
  return Cell(op, phase).Snapshot();
}

double LatencyTrackingDevice::observed_seconds(Phase phase) const {
  uint64_t total_us = 0;
  for (int op = 0; op < kNumOpKinds; ++op) {
    total_us += Cell(static_cast<OpKind>(op), phase).Snapshot().sum();
  }
  return static_cast<double>(total_us) / 1e6;
}

void LatencyTrackingDevice::Reset() {
  for (ConcurrentHistogram& cell : cells_) cell.Reset();
}

}  // namespace obs
}  // namespace wavekit
