#include "storage/disk_array.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace {

TEST(DiskArrayTest, IndependentDisks) {
  DiskArray disks(3, 1 << 20);
  EXPECT_EQ(disks.size(), 3);
  std::vector<std::byte> buf(100, std::byte{1});
  ASSERT_OK(disks.device(0)->Write(0, buf));
  ASSERT_OK(disks.device(2)->Write(0, buf));
  EXPECT_EQ(disks.device(0)->total().bytes_written, 100u);
  EXPECT_EQ(disks.device(1)->total().bytes_written, 0u);
  EXPECT_EQ(disks.device(2)->total().bytes_written, 100u);
}

TEST(DiskArrayTest, PhaseBroadcast) {
  DiskArray disks(2);
  disks.SetPhaseAll(Phase::kQuery);
  for (MeteredDevice* device : disks.devices()) {
    EXPECT_EQ(device->phase(), Phase::kQuery);
  }
}

TEST(DiskArrayTest, ParallelVsSerialSeconds) {
  DiskArray disks(4, 1 << 20);
  CostModel cost;
  disks.SetPhaseAll(Phase::kQuery);
  std::vector<std::byte> buf(1000, std::byte{1});
  // Even traffic across 4 disks: parallel time ~ serial / 4.
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(disks.device(i)->Write(0, buf));
  }
  const double parallel = disks.ParallelSeconds(cost, Phase::kQuery);
  const double serial = disks.SerialSeconds(cost, Phase::kQuery);
  EXPECT_NEAR(serial, 4 * parallel, 1e-9);
  // Skewed traffic: parallel time tracks the hottest disk.
  ASSERT_OK(disks.device(0)->Write(0, buf));
  ASSERT_OK(disks.device(0)->Write(2000, buf));
  EXPECT_GT(disks.ParallelSeconds(cost, Phase::kQuery), parallel);
}

TEST(DiskArrayTest, TotalsAndReset) {
  DiskArray disks(2, 1 << 20);
  disks.SetPhaseAll(Phase::kTransition);
  std::vector<std::byte> buf(64, std::byte{1});
  ASSERT_OK(disks.device(0)->Write(0, buf));
  ASSERT_OK(disks.device(1)->Write(0, buf));
  EXPECT_EQ(disks.TotalCounters(Phase::kTransition).bytes_written, 128u);
  disks.ResetAll();
  EXPECT_EQ(disks.TotalCounters(Phase::kTransition).bytes_written, 0u);
}

TEST(DiskArrayTest, MultiPhaseScopeRestoresAll) {
  DiskArray disks(2);
  disks.SetPhaseAll(Phase::kOther);
  {
    MultiPhaseScope scope(disks.devices(), Phase::kPrecompute);
    for (MeteredDevice* device : disks.devices()) {
      EXPECT_EQ(device->phase(), Phase::kPrecompute);
    }
  }
  for (MeteredDevice* device : disks.devices()) {
    EXPECT_EQ(device->phase(), Phase::kOther);
  }
}

}  // namespace
}  // namespace wavekit
