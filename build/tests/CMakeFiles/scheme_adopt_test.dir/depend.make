# Empty dependencies file for scheme_adopt_test.
# This may be replaced when dependencies are built.
