file(REMOVE_RECURSE
  "CMakeFiles/usenet_trace_test.dir/workload/usenet_trace_test.cc.o"
  "CMakeFiles/usenet_trace_test.dir/workload/usenet_trace_test.cc.o.d"
  "usenet_trace_test"
  "usenet_trace_test.pdb"
  "usenet_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usenet_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
