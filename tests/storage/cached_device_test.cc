#include "storage/cached_device.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/metered_device.h"
#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string AsString(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

class CachedDeviceTest : public ::testing::Test {
 protected:
  CachedDeviceTest()
      : memory_(1 << 20),
        metered_(&memory_),
        // Cache ABOVE the meter: hits are not charged as device traffic.
        cached_(&metered_, /*capacity_blocks=*/4, /*block_size=*/64) {}

  MemoryDevice memory_;
  MeteredDevice metered_;
  CachedDevice cached_;
};

TEST_F(CachedDeviceTest, ReadThroughAndHit) {
  ASSERT_OK(cached_.Write(10, Bytes("hello")));
  std::vector<std::byte> out(5);
  ASSERT_OK(cached_.Read(10, out));
  EXPECT_EQ(AsString(out), "hello");
  EXPECT_EQ(cached_.stats().misses, 1u);  // block 0 loaded once
  ASSERT_OK(cached_.Read(10, out));
  ASSERT_OK(cached_.Read(12, std::span<std::byte>(out.data(), 3)));
  EXPECT_EQ(cached_.stats().hits, 2u);
  EXPECT_EQ(cached_.stats().misses, 1u);
}

TEST_F(CachedDeviceTest, HitsDoNotTouchTheMeteredDevice) {
  ASSERT_OK(cached_.Write(0, Bytes("abcdef")));
  std::vector<std::byte> out(6);
  ASSERT_OK(cached_.Read(0, out));
  const uint64_t bytes_after_first = metered_.total().bytes_read;
  for (int i = 0; i < 10; ++i) ASSERT_OK(cached_.Read(0, out));
  EXPECT_EQ(metered_.total().bytes_read, bytes_after_first)
      << "cached reads must not be charged as disk traffic";
}

TEST_F(CachedDeviceTest, ReadsSpanningBlocks) {
  std::string long_data(200, 'x');
  for (size_t i = 0; i < long_data.size(); ++i) {
    long_data[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_OK(cached_.Write(30, Bytes(long_data)));
  std::vector<std::byte> out(200);
  ASSERT_OK(cached_.Read(30, out));
  EXPECT_EQ(AsString(out), long_data);
}

TEST_F(CachedDeviceTest, LruEviction) {
  std::vector<std::byte> buf(1);
  // Touch 5 distinct blocks with a 4-block cache: one eviction.
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_OK(cached_.Read(b * 64, buf));
  }
  EXPECT_EQ(cached_.stats().evictions, 1u);
  EXPECT_EQ(cached_.cached_blocks(), 4u);
  // Block 0 (LRU) was evicted: re-reading it misses; block 4 still hits.
  const uint64_t misses_before = cached_.stats().misses;
  ASSERT_OK(cached_.Read(4 * 64, buf));
  EXPECT_EQ(cached_.stats().misses, misses_before);
  ASSERT_OK(cached_.Read(0, buf));
  EXPECT_EQ(cached_.stats().misses, misses_before + 1);
}

TEST_F(CachedDeviceTest, LruOrderUpdatedOnHit) {
  std::vector<std::byte> buf(1);
  for (uint64_t b = 0; b < 4; ++b) ASSERT_OK(cached_.Read(b * 64, buf));
  // Touch block 0 so block 1 becomes LRU, then overflow.
  ASSERT_OK(cached_.Read(0, buf));
  ASSERT_OK(cached_.Read(4 * 64, buf));  // evicts block 1
  const uint64_t misses_before = cached_.stats().misses;
  ASSERT_OK(cached_.Read(0, buf));  // still cached
  EXPECT_EQ(cached_.stats().misses, misses_before);
  ASSERT_OK(cached_.Read(1 * 64, buf));  // was evicted
  EXPECT_EQ(cached_.stats().misses, misses_before + 1);
}

TEST_F(CachedDeviceTest, WriteThroughUpdatesCachedBlocks) {
  ASSERT_OK(cached_.Write(0, Bytes("aaaa")));
  std::vector<std::byte> out(4);
  ASSERT_OK(cached_.Read(0, out));  // block cached
  ASSERT_OK(cached_.Write(1, Bytes("bb")));
  ASSERT_OK(cached_.Read(0, out));  // served from cache
  EXPECT_EQ(AsString(out), "abba");
  // And the inner device has the same bytes (write-through).
  std::vector<std::byte> direct(4);
  ASSERT_OK(memory_.Read(0, direct));
  EXPECT_EQ(AsString(direct), "abba");
}

TEST_F(CachedDeviceTest, InvalidateDropsBlocksKeepsStats) {
  std::vector<std::byte> buf(1);
  ASSERT_OK(cached_.Read(0, buf));
  const CacheStats before = cached_.stats();
  cached_.Invalidate();
  EXPECT_EQ(cached_.cached_blocks(), 0u);
  EXPECT_EQ(cached_.stats().misses, before.misses);
  ASSERT_OK(cached_.Read(0, buf));
  EXPECT_EQ(cached_.stats().misses, before.misses + 1);
}

TEST_F(CachedDeviceTest, OutOfRangeRejected) {
  std::vector<std::byte> buf(16);
  EXPECT_TRUE(cached_.Read((1 << 20) - 8, buf).IsOutOfRange());
}

TEST_F(CachedDeviceTest, RandomizedEquivalenceWithUncachedDevice) {
  MemoryDevice plain(1 << 16);
  Rng rng(12345);
  for (int step = 0; step < 3000; ++step) {
    const uint64_t offset = rng.Uniform((1 << 16) - 128);
    const size_t length = 1 + rng.Uniform(127);
    if (rng.Bernoulli(0.4)) {
      std::vector<std::byte> data(length);
      for (std::byte& b : data) b = static_cast<std::byte>(rng.Uniform(256));
      ASSERT_OK(cached_.Write(offset, data));
      ASSERT_OK(plain.Write(offset, data));
    } else {
      std::vector<std::byte> from_cache(length), from_plain(length);
      ASSERT_OK(cached_.Read(offset, from_cache));
      ASSERT_OK(plain.Read(offset, from_plain));
      ASSERT_EQ(from_cache, from_plain) << "step " << step;
    }
  }
  EXPECT_GT(cached_.stats().HitRatio(), 0.0);
}

}  // namespace
}  // namespace wavekit
