file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_schemes.dir/bench_micro_schemes.cc.o"
  "CMakeFiles/bench_micro_schemes.dir/bench_micro_schemes.cc.o.d"
  "bench_micro_schemes"
  "bench_micro_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
