// MeteredDevice: wraps a Device and records the seek/transfer pattern,
// attributed to workload phases.
//
// A "seek" is charged whenever an access does not continue sequentially from
// the end of the previous access — the same head-movement model the paper's
// analysis uses (e.g., an IndexProbe is "one seek followed by a transfer of
// the corresponding bucket", a SegmentScan over a packed index is one seek
// plus a sequential sweep).

#ifndef WAVEKIT_STORAGE_METERED_DEVICE_H_
#define WAVEKIT_STORAGE_METERED_DEVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "storage/cost_model.h"
#include "storage/device.h"

namespace wavekit {

/// \brief What a piece of I/O was done for. Maintenance work is split the way
/// the paper's Section 5 splits it: transition (critical path until the new
/// day is queryable) vs. pre-computation (temporary-index preparation).
enum class Phase : int {
  kStart = 0,       ///< Initial build of the first W days.
  kTransition = 1,  ///< Daily work before new data is queryable.
  kPrecompute = 2,  ///< Daily work preparing temporary indexes.
  kQuery = 3,       ///< TimedIndexProbe / TimedSegmentScan traffic.
  kOther = 4,       ///< Anything not explicitly attributed.
};

inline constexpr int kNumPhases = 5;

const char* PhaseName(Phase phase);

/// \brief Device decorator that counts seeks and transferred bytes per Phase.
///
/// Counters are relaxed atomics, so Read/ReadBatch are safe from any number
/// of threads concurrently with the (single) writer — no outer lock is
/// needed on the read path. Under concurrency the totals stay exact; seek
/// attribution (which depends on the interleaving of the shared head
/// position) and phase attribution (set_phase is writer-advisory) are
/// best-effort, matching how a real disk arm would interleave anyway.
class MeteredDevice : public Device {
 public:
  /// Does not take ownership of `inner`, which must outlive this object.
  explicit MeteredDevice(Device* inner);

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status ReadBatch(std::span<const Extent> extents,
                   std::span<std::byte> out) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  // Sync counts toward the phase's sync_ops but charges no seeks or bytes:
  // durability traffic is visible to observability, yet stays outside the
  // paper's seek/transfer model (which has no fsync analogue) — see
  // IoCounters::sync_ops.
  Status Sync() override;

  /// Sets the phase subsequent I/O is attributed to.
  void set_phase(Phase phase) { phase_.store(phase, std::memory_order_relaxed); }
  Phase phase() const { return phase_.load(std::memory_order_relaxed); }

  /// Counters for one phase since the last Reset (a consistent-enough copy;
  /// each field is read atomically).
  IoCounters counters(Phase phase) const {
    return counters_[static_cast<size_t>(phase)].Load();
  }

  /// Sum over all phases.
  IoCounters total() const;

  /// \brief All phase counters plus their sum in one struct — the unit the
  /// observability layer (obs/attach.h) and exporters consume, instead of
  /// N ad-hoc counters() calls.
  struct Snapshot {
    struct PhaseIo {
      Phase phase = Phase::kOther;
      const char* name = "";  ///< PhaseName(phase).
      IoCounters io;
    };
    std::array<PhaseIo, kNumPhases> phases;
    IoCounters total;  ///< Sum over all phases.
  };

  /// A consistent-enough copy of every phase's counters (each field read
  /// atomically; `total` summed from the same per-phase reads).
  Snapshot snapshot() const;

  /// Zeroes all counters (head position is kept). Not linearizable against
  /// in-flight I/O; quiesce first for exact accounting.
  void Reset();

 private:
  /// IoCounters with each field a relaxed atomic; Load() materializes a
  /// plain IoCounters snapshot.
  struct AtomicIoCounters {
    std::atomic<uint64_t> seeks{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
    std::atomic<uint64_t> sync_ops{0};

    IoCounters Load() const;
    void ResetAll();
  };

  // `phase` is captured once per public call: a batch spanning a concurrent
  // set_phase is attributed entirely to the phase active when the call was
  // issued, never split across phases mid-batch.
  void Account(Phase phase, uint64_t offset, uint64_t length, bool is_write);

  Device* inner_;
  std::atomic<Phase> phase_{Phase::kOther};
  std::array<AtomicIoCounters, kNumPhases> counters_;
  // One past the last byte touched; next access starting here is sequential.
  // kHeadInvalid until the first access.
  static constexpr uint64_t kHeadInvalid = ~uint64_t{0};
  std::atomic<uint64_t> head_position_{kHeadInvalid};
};

/// \brief RAII phase setter over several devices at once (multi-disk
/// deployments): switches every device's phase and restores them all.
class MultiPhaseScope {
 public:
  MultiPhaseScope(const std::vector<MeteredDevice*>& devices, Phase phase)
      : devices_(devices) {
    previous_.reserve(devices_.size());
    for (MeteredDevice* device : devices_) {
      previous_.push_back(device->phase());
      device->set_phase(phase);
    }
  }
  ~MultiPhaseScope() {
    for (size_t i = 0; i < devices_.size(); ++i) {
      devices_[i]->set_phase(previous_[i]);
    }
  }

  MultiPhaseScope(const MultiPhaseScope&) = delete;
  MultiPhaseScope& operator=(const MultiPhaseScope&) = delete;

 private:
  std::vector<MeteredDevice*> devices_;
  std::vector<Phase> previous_;
};

/// \brief RAII phase setter: switches a MeteredDevice's phase and restores the
/// previous one on destruction.
class PhaseScope {
 public:
  PhaseScope(MeteredDevice* device, Phase phase)
      : device_(device), previous_(device->phase()) {
    device_->set_phase(phase);
  }
  ~PhaseScope() { device_->set_phase(previous_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  MeteredDevice* device_;
  Phase previous_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_METERED_DEVICE_H_
