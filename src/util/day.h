// Day arithmetic for sliding windows.
//
// Following the paper, a "day" is one time interval of the evolving database
// (not necessarily 24 hours); days are identified by consecutive positive
// integers starting at 1.

#ifndef WAVEKIT_UTIL_DAY_H_
#define WAVEKIT_UTIL_DAY_H_

#include <cstdint>
#include <limits>
#include <set>
#include <string>

namespace wavekit {

/// Identifier of one time interval; day 1 is the first day of the system.
using Day = int32_t;

/// Sentinel bounds for timed queries: TimedIndexProbe(-inf, +inf, v) is a
/// plain IndexProbe (paper Section 2.2).
inline constexpr Day kDayNegInf = std::numeric_limits<Day>::min();
inline constexpr Day kDayPosInf = std::numeric_limits<Day>::max();

/// A time-set: the (not necessarily contiguous) set of days covered by one
/// constituent index. Ordered for deterministic iteration and printing.
using TimeSet = std::set<Day>;

/// \brief Closed day interval [lo, hi].
struct DayRange {
  Day lo = kDayNegInf;
  Day hi = kDayPosInf;

  /// The full range (-inf, +inf): untimed probes and scans.
  static DayRange All() { return DayRange{kDayNegInf, kDayPosInf}; }

  /// The hard window of width `w` ending at (and including) `latest`.
  static DayRange Window(Day latest, Day w) {
    return DayRange{static_cast<Day>(latest - w + 1), latest};
  }

  bool Contains(Day d) const { return lo <= d && d <= hi; }

  /// True iff any day of `ts` falls in this range.
  bool Intersects(const TimeSet& ts) const {
    auto it = ts.lower_bound(lo);
    return it != ts.end() && *it <= hi;
  }

  /// True iff every day of `ts` falls in this range (then per-entry timestamp
  /// filtering can be skipped for that constituent).
  bool Covers(const TimeSet& ts) const {
    return !ts.empty() && lo <= *ts.begin() && *ts.rbegin() <= hi;
  }

  bool operator==(const DayRange& other) const = default;
};

/// "{2, 3, 4, 11}" — rendering used by tests that replicate the paper's
/// transition tables.
std::string TimeSetToString(const TimeSet& ts);

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_DAY_H_
