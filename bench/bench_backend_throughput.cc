// Backend throughput: the same wave index on real storage backends.
//
// Two layers of comparison, both emitted into BENCH_backend.json:
//
// 1. SERVICE LEVEL — WaveService with storage_backend = memory / file /
//    uring / mmap on one packed-REINDEX workload: Start, per-day transition
//    time, probe latency, and windowed segment-scan time. Query results
//    must be identical across backends (the backend is an execution
//    substrate, not a different index).
//
// 2. DEVICE LEVEL — the packed-REINDEX transition's bucket-write pattern is
//    recorded once (offsets + lengths of every maintenance write) and then
//    replayed against real files two ways: the "plain" path issues one
//    pwrite per bucket extent, exactly like today's serial maintenance
//    loop; the "uring batched" path hands each transition's whole extent
//    set to UringDevice::WriteBatch, which maps it 1:1 onto SQE chains
//    submitted in queue-depth waves. Same bytes, same file — the measured
//    difference is pure submission efficiency, and the headline number
//    `uring_batched_vs_file_plain_speedup` must clear 1.5x.
//
// `--smoke` runs a miniature configuration and skips timing-based shape
// checks (CI coverage); `--dir <path>` overrides where backing files live.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/common.h"
#include "storage/backend_registry.h"
#include "storage/file_device.h"
#include "storage/uring_device.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

struct BenchConfig {
  int window = 6;
  int num_indexes = 2;
  int records_per_day = 4000;
  uint64_t num_values = 512;
  int measured_days = 8;
  int replay_rounds = 3;
  uint64_t capacity = uint64_t{1} << 26;  // 64 MiB
  bool smoke = false;
  std::string dir = "/tmp";
};

DayBatch MakeBatch(const BenchConfig& config, Day day) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < config.records_per_day; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" +
                     std::to_string(record.record_id % config.num_values)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

/// Interposer that records the extents of every maintenance write while
/// armed, grouped by transition (BeginGroup is called per AdvanceDay).
class RecordingDevice : public Device {
 public:
  explicit RecordingDevice(Device* inner) : inner_(inner) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    return inner_->Read(offset, out);
  }
  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    Note(offset, data.size());
    return inner_->Write(offset, data);
  }
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (armed_ && !groups_.empty()) {
        for (const Extent& e : extents) {
          if (e.length > 0) groups_.back().push_back(e);
        }
      }
    }
    return inner_->WriteBatch(extents, data);
  }
  uint64_t capacity() const override { return inner_->capacity(); }
  Status Sync() override { return inner_->Sync(); }

  void Arm() {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_ = true;
  }
  void BeginGroup() {
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.emplace_back();
  }
  std::vector<std::vector<Extent>> TakeGroups() {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_ = false;
    return std::move(groups_);
  }

 private:
  void Note(uint64_t offset, uint64_t length) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (armed_ && !groups_.empty() && length > 0) {
      groups_.back().push_back({offset, length});
    }
  }

  Device* inner_;
  std::mutex mutex_;
  bool armed_ = false;
  std::vector<std::vector<Extent>> groups_;
};

struct ServiceCell {
  std::string backend;
  bool available = true;
  double start_seconds = 0;
  double advance_seconds = 0;  // sum over measured_days
  double probe_avg_us = 0;
  double scan_seconds = 0;
  uint64_t probe_entries = 0;  // parity fingerprint
};

std::string DevicePathFor(const BenchConfig& config,
                          const std::string& backend) {
  return config.dir + "/wavekit_bench_backend_" + backend + "_" +
         std::to_string(::getpid()) + ".wavedev";
}

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

ServiceCell RunServiceWorkload(const BenchConfig& config,
                               const std::string& backend) {
  ServiceCell cell;
  cell.backend = backend;
  const std::string path = DevicePathFor(config, backend);
  std::remove(path.c_str());

  WaveService::Options options;
  options.scheme = SchemeKind::kReindex;
  options.config.window = config.window;
  options.config.num_indexes = config.num_indexes;
  options.config.technique = UpdateTechniqueKind::kPackedShadow;
  options.device_capacity = config.capacity;
  bench::BackendChoice choice;
  choice.backend = backend;
  choice.path = path;
  bench::ApplyBackend(choice, &options);
  auto made = WaveService::Create(std::move(options));
  if (!made.ok()) made.status().Abort("Create(" + backend + ")");
  std::unique_ptr<WaveService> service = std::move(made).ValueOrDie();

  std::vector<DayBatch> first;
  for (Day d = 1; d <= config.window; ++d) {
    first.push_back(MakeBatch(config, d));
  }
  auto t0 = std::chrono::steady_clock::now();
  Status started = service->Start(std::move(first));
  if (!started.ok()) started.Abort("Start(" + backend + ")");
  cell.start_seconds = Seconds(t0);

  t0 = std::chrono::steady_clock::now();
  for (Day d = config.window + 1;
       d <= config.window + config.measured_days; ++d) {
    Status advanced = service->AdvanceDay(MakeBatch(config, d));
    if (!advanced.ok()) advanced.Abort("AdvanceDay(" + backend + ")");
  }
  cell.advance_seconds = Seconds(t0);

  // Probe a deterministic sample; count entries as the parity fingerprint.
  t0 = std::chrono::steady_clock::now();
  uint64_t probes = 0;
  for (uint64_t v = 0; v < config.num_values; v += 3) {
    std::vector<Entry> out;
    Status probed = service->IndexProbe("v" + std::to_string(v), &out);
    if (!probed.ok()) probed.Abort("probe(" + backend + ")");
    cell.probe_entries += out.size();
    ++probes;
  }
  cell.probe_avg_us = probes > 0 ? Seconds(t0) * 1e6 / probes : 0;

  t0 = std::chrono::steady_clock::now();
  const Day day = service->current_day();
  uint64_t scanned = 0;
  Status scan = service->TimedSegmentScan(
      DayRange::Window(day, config.window),
      [&](const Value&, const Entry&) { ++scanned; });
  if (!scan.ok()) scan.Abort("scan(" + backend + ")");
  cell.scan_seconds = Seconds(t0);
  cell.probe_entries += scanned;

  service.reset();  // close the backing file before unlinking it
  std::remove(path.c_str());
  return cell;
}

/// Records the packed-REINDEX maintenance write pattern on a memory-backed
/// service: one group of (offset, length) extents per transition.
std::vector<std::vector<Extent>> RecordTransitionPattern(
    const BenchConfig& config) {
  RecordingDevice* recorder = nullptr;
  WaveService::Options options;
  options.scheme = SchemeKind::kReindex;
  options.config.window = config.window;
  options.config.num_indexes = config.num_indexes;
  options.config.technique = UpdateTechniqueKind::kPackedShadow;
  options.device_capacity = config.capacity;
  options.device_interposer = [&recorder](Device* inner) {
    auto device = std::make_unique<RecordingDevice>(inner);
    recorder = device.get();
    return device;
  };
  auto made = WaveService::Create(std::move(options));
  if (!made.ok()) made.status().Abort("Create(recorder)");
  std::unique_ptr<WaveService> service = std::move(made).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= config.window; ++d) {
    first.push_back(MakeBatch(config, d));
  }
  Status started = service->Start(std::move(first));
  if (!started.ok()) started.Abort("Start(recorder)");
  recorder->Arm();
  for (Day d = config.window + 1;
       d <= config.window + config.measured_days; ++d) {
    recorder->BeginGroup();
    Status advanced = service->AdvanceDay(MakeBatch(config, d));
    if (!advanced.ok()) advanced.Abort("AdvanceDay(recorder)");
  }
  return recorder->TakeGroups();
}

struct ReplayStats {
  double seconds = 0;
  uint64_t extents = 0;
  uint64_t bytes = 0;
  uint64_t batches = 0;  // WriteBatch calls (0 for the plain loop)
};

/// Re-lays the recorded pattern out at direct-I/O alignment: every bucket
/// write keeps its own extent (the per-bucket granularity is the point of
/// the comparison) but gets a 4 KiB-aligned slot with a block-multiple
/// length, so both the O_DIRECT pwrite loop and the O_DIRECT SQE path write
/// the same device blocks without read-modify-write bounces.
std::vector<std::vector<Extent>> AlignPattern(
    const std::vector<std::vector<Extent>>& groups, uint64_t capacity) {
  std::vector<std::vector<Extent>> aligned;
  aligned.reserve(groups.size());
  for (const auto& group : groups) {
    // Each transition reuses the same region, like the allocator reusing
    // freed shadow extents across days.
    uint64_t cursor = 0;
    std::vector<Extent> out;
    out.reserve(group.size());
    for (const Extent& e : group) {
      const uint64_t length =
          (e.length + kDirectIoAlignment - 1) & ~(kDirectIoAlignment - 1);
      if (cursor + length > capacity) break;  // never overflow the device
      out.push_back({cursor, length});
      cursor += length;
    }
    aligned.push_back(std::move(out));
  }
  return aligned;
}

/// Today's serial path: one pwrite per bucket extent.
ReplayStats ReplayPlain(Device* device,
                        const std::vector<std::vector<Extent>>& groups,
                        std::span<const std::byte> blob, int rounds) {
  ReplayStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& group : groups) {
      for (const Extent& e : group) {
        Status written =
            device->Write(e.offset, blob.subspan(0, e.length));
        if (!written.ok()) written.Abort("replay plain write");
        ++stats.extents;
        stats.bytes += e.length;
      }
    }
  }
  Status synced = device->Sync();
  if (!synced.ok()) synced.Abort("replay plain sync");
  stats.seconds = Seconds(t0);
  return stats;
}

/// The batched path: each transition's whole extent set in one WriteBatch
/// (chunked to bound the staging buffer).
ReplayStats ReplayBatched(Device* device,
                          const std::vector<std::vector<Extent>>& groups,
                          std::span<const std::byte> blob, int rounds) {
  constexpr size_t kChunkExtents = 1024;
  ReplayStats stats;
  std::vector<std::byte> staging;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& group : groups) {
      for (size_t begin = 0; begin < group.size(); begin += kChunkExtents) {
        const size_t end = std::min(begin + kChunkExtents, group.size());
        const std::span<const Extent> chunk(group.data() + begin,
                                            end - begin);
        uint64_t total = 0;
        for (const Extent& e : chunk) total += e.length;
        staging.resize(total);
        uint64_t cursor = 0;
        for (const Extent& e : chunk) {
          std::memcpy(staging.data() + cursor, blob.data(), e.length);
          cursor += e.length;
        }
        Status written = device->WriteBatch(chunk, staging);
        if (!written.ok()) written.Abort("replay batched write");
        ++stats.batches;
        stats.extents += chunk.size();
        stats.bytes += total;
      }
    }
  }
  Status synced = device->Sync();
  if (!synced.ok()) synced.Abort("replay batched sync");
  stats.seconds = Seconds(t0);
  return stats;
}

void WriteJson(const BenchConfig& config,
               const std::vector<ServiceCell>& cells, bool uring_ring,
               bool direct, const ReplayStats& plain,
               const ReplayStats& batched, double speedup) {
  std::ofstream out("BENCH_backend.json");
  out << "{\n"
      << "  \"bench\": \"backend_throughput\",\n"
      << "  \"scheme\": \"REINDEX\",\n"
      << "  \"technique\": \"packed-shadow\",\n"
      << "  \"smoke\": " << (config.smoke ? "true" : "false") << ",\n"
      << "  \"window\": " << config.window << ",\n"
      << "  \"records_per_day\": " << config.records_per_day << ",\n"
      << "  \"measured_days\": " << config.measured_days << ",\n"
      << "  \"uring_ring_active\": " << (uring_ring ? "true" : "false")
      << ",\n"
      << "  \"service_cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const ServiceCell& c = cells[i];
    out << "    {\"backend\": \"" << c.backend << "\""
        << ", \"start_seconds\": " << c.start_seconds
        << ", \"advance_seconds\": " << c.advance_seconds
        << ", \"probe_avg_us\": " << c.probe_avg_us
        << ", \"scan_seconds\": " << c.scan_seconds
        << ", \"result_fingerprint\": " << c.probe_entries << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"transition_replay\": {\n"
      << "    \"rounds\": " << config.replay_rounds << ",\n"
      << "    \"direct_io\": " << (direct ? "true" : "false") << ",\n"
      << "    \"file_plain\": {\"seconds\": " << plain.seconds
      << ", \"extents\": " << plain.extents << ", \"bytes\": " << plain.bytes
      << "},\n"
      << "    \"uring_batched\": {\"seconds\": " << batched.seconds
      << ", \"extents\": " << batched.extents
      << ", \"bytes\": " << batched.bytes
      << ", \"batches\": " << batched.batches << "},\n"
      << "    \"uring_batched_vs_file_plain_speedup\": " << speedup << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) config.smoke = true;
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      config.dir = argv[++i];
    }
  }
  if (config.smoke) {
    config.records_per_day = 400;
    config.num_values = 64;
    config.measured_days = 3;
    config.replay_rounds = 1;
    config.capacity = uint64_t{1} << 24;
  }

  bench::Banner(
      "Backend throughput: memory vs file vs uring vs mmap",
      "the cost model charges seeks and transfers; real backends realize "
      "them — batched shadow writes amortize per-request overhead, which is "
      "where io_uring's single-submission batches beat one pwrite per "
      "bucket");

  // --- Service-level workload on every backend -------------------------------
  std::vector<ServiceCell> cells;
  for (const char* backend : {"memory", "file", "uring", "mmap"}) {
    cells.push_back(RunServiceWorkload(config, backend));
    const ServiceCell& c = cells.back();
    std::printf("%-8s start %.3fs  advance(%dd) %.3fs  probe %.1fus  scan "
                "%.3fs  fingerprint %llu\n",
                c.backend.c_str(), c.start_seconds, config.measured_days,
                c.advance_seconds, c.probe_avg_us, c.scan_seconds,
                static_cast<unsigned long long>(c.probe_entries));
  }

  // --- Device-level replay: plain pwrite loop vs uring batches ---------------
  //
  // Run in O_DIRECT mode when the filesystem allows it: buffered writes
  // collapse into page-cache memcpys where submission cost is noise; direct
  // writes pay real device latency, which the plain loop serializes and the
  // ring overlaps at queue depth.
  std::printf("\nRecording packed-REINDEX transition write pattern...\n");
  const std::vector<std::vector<Extent>> recorded =
      RecordTransitionPattern(config);
  const bool direct = FileDevice::DirectIoSupported(config.dir);
  const std::vector<std::vector<Extent>> groups =
      direct ? AlignPattern(recorded, config.capacity) : recorded;
  uint64_t pattern_extents = 0, pattern_bytes = 0, max_extent = 0;
  for (const auto& group : groups) {
    for (const Extent& e : group) {
      ++pattern_extents;
      pattern_bytes += e.length;
      max_extent = std::max(max_extent, e.length);
    }
  }
  std::printf("  %zu transitions, %llu extents, %.1f MiB (%s)\n",
              groups.size(),
              static_cast<unsigned long long>(pattern_extents),
              static_cast<double>(pattern_bytes) / (1 << 20),
              direct ? "O_DIRECT, block-aligned" : "buffered");
  const std::vector<std::byte> blob(max_extent, std::byte{0x6B});

  const std::string plain_path = DevicePathFor(config, "replay_plain");
  const std::string uring_path = DevicePathFor(config, "replay_uring");
  std::remove(plain_path.c_str());
  std::remove(uring_path.c_str());

  FileDevice::OpenOptions plain_options;
  plain_options.direct_io = direct;
  auto plain_open = FileDevice::Open(plain_path, config.capacity,
                                     plain_options);
  if (!plain_open.ok()) plain_open.status().Abort("open plain");
  std::unique_ptr<FileDevice> plain_device =
      std::move(plain_open).ValueOrDie();
  const ReplayStats plain = ReplayPlain(plain_device.get(), groups, blob,
                                        config.replay_rounds);

  UringDevice::Options uring_options;
  uring_options.direct_io = direct;
  auto uring_open = UringDevice::Open(uring_path, config.capacity,
                                      uring_options);
  if (!uring_open.ok()) uring_open.status().Abort("open uring");
  std::unique_ptr<UringDevice> uring_device =
      std::move(uring_open).ValueOrDie();
  const bool ring_active = uring_device->using_ring();
  const ReplayStats batched = ReplayBatched(uring_device.get(), groups, blob,
                                            config.replay_rounds);

  const double speedup =
      batched.seconds > 0 ? plain.seconds / batched.seconds : 0;
  std::printf("\nTransition write replay (%d rounds):\n",
              config.replay_rounds);
  std::printf("  file plain loop    %8.3fs  (%llu pwrites)\n", plain.seconds,
              static_cast<unsigned long long>(plain.extents));
  std::printf("  uring batched      %8.3fs  (%llu batches, ring %s)\n",
              batched.seconds,
              static_cast<unsigned long long>(batched.batches),
              ring_active ? "active" : "FALLBACK");
  std::printf("  speedup            %8.2fx\n", speedup);

  plain_device.reset();
  uring_device.reset();
  std::remove(plain_path.c_str());
  std::remove(uring_path.c_str());

  WriteJson(config, cells, ring_active, direct, plain, batched, speedup);
  std::printf("Wrote BENCH_backend.json\n");

  bench::ShapeChecks checks;
  bool parity = true;
  for (const ServiceCell& c : cells) {
    if (c.probe_entries != cells.front().probe_entries) parity = false;
  }
  checks.Check(parity, "identical query results on every backend");
  checks.Check(batched.extents == plain.extents,
               "replay paths wrote the same extent set");
  if (!config.smoke) {
    // Only enforceable where the physics exist: a live ring and O_DIRECT
    // (buffered page-cache writes have no device latency to overlap).
    checks.Check(
        !(ring_active && direct) || speedup >= 1.5,
        "uring batched transition replay >= 1.5x plain file pwrite loop");
  }
  return checks.Finish();
}
