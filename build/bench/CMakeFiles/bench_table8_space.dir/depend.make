# Empty dependencies file for bench_table8_space.
# This may be replaced when dependencies are built.
