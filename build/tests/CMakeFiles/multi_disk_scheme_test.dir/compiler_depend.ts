# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for multi_disk_scheme_test.
