// Crash-recovery torture on REAL storage backends: the intent-journal
// protocol of wave/recovery.h run over FileDevice and UringDevice, with the
// data device Sync()ed before every checkpoint commit. A "crash" closes the
// device and drops all in-RAM state; recovery reopens the backing file
// through the registry and must reproduce oracle-identical answers. Also
// covers the satellite requirement that a failing Sync() propagates a
// Status through the checkpoint path instead of committing silently.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/backend_registry.h"
#include "testing/test_env.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "wave/recovery.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

constexpr int kWindow = 5;
constexpr int kNumIndexes = 3;
constexpr uint64_t kDeviceBytes = uint64_t{1} << 24;  // 16 MiB per run

SchemeConfig Config() {
  SchemeConfig config;
  config.window = kWindow;
  config.num_indexes = kNumIndexes;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  return config;
}

DayBatch Batch(Day day, uint64_t seed) {
  return MakeMixedBatch(day, 3 + static_cast<int>(seed % 4));
}

struct RunPaths {
  DurableMaintenance::Paths protocol;
  std::string device;
};

RunPaths PathsFor(const std::string& tag) {
  const std::string prefix = ::testing::TempDir() + "wavekit_dbk_" + tag +
                             "_" + std::to_string(::getpid());
  RunPaths paths;
  paths.protocol =
      DurableMaintenance::Paths{prefix + "_CHECKPOINT", prefix + "_JOURNAL"};
  paths.device = prefix + ".wavedev";
  std::remove(paths.protocol.checkpoint.c_str());
  std::remove(paths.protocol.journal.c_str());
  std::remove(paths.device.c_str());
  return paths;
}

void CleanUp(const RunPaths& paths) {
  std::remove(paths.protocol.checkpoint.c_str());
  std::remove(paths.protocol.journal.c_str());
  std::remove(paths.device.c_str());
}

Result<std::unique_ptr<Device>> OpenBackend(const std::string& backend,
                                            const std::string& device_path) {
  BackendConfig config;
  config.path = device_path;
  config.capacity = kDeviceBytes;
  return BackendRegistry::Global().Create(backend, config);
}

void VerifyAgainstOracle(const WaveIndex& wave, Day day, uint64_t seed) {
  ReferenceIndex reference;
  for (Day d = day - kWindow + 1; d <= day; ++d) reference.Add(Batch(d, seed));
  const DayRange range = DayRange::Window(day, kWindow);
  std::vector<Value> values = {"alpha", "beta", "gamma"};
  for (Day d = day - kWindow + 1; d <= day + 1; ++d) {
    values.push_back("day" + std::to_string(d));
  }
  for (const Value& value : values) {
    std::vector<Entry> out;
    Status status = wave.TimedIndexProbe(range, value, &out);
    ASSERT_TRUE(status.ok()) << status;
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe(value, day - kWindow + 1, day))
        << "probe '" << value << "' at day " << day;
  }
  std::vector<Entry> scanned;
  Status status = wave.TimedSegmentScan(
      range, [&](const Value&, const Entry& e) { scanned.push_back(e); });
  ASSERT_TRUE(status.ok()) << status;
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(day - kWindow + 1, day));
}

// One crash-and-recover cycle on a real backend: crash at `point` during the
// AdvanceDay for `crash_day`, CLOSE the device (all RAM state dies), reopen
// the backing file, recover, verify, resume, verify again.
void RunBackendTorture(const std::string& backend, const std::string& point,
                       uint64_t seed) {
  CrashPoints::Reset();
  const RunPaths paths = PathsFor(backend + "_" + point + "_" +
                                  std::to_string(seed));
  const Day crash_day = kWindow + 1 + static_cast<Day>(seed % 3);
  {
    auto opened = OpenBackend(backend, paths.device);
    ASSERT_TRUE(opened.ok()) << opened.status();
    std::unique_ptr<Device> device = std::move(opened).ValueOrDie();
    MeteredDevice metered(device.get());
    ExtentAllocator allocator(kDeviceBytes);
    DayStore day_store;
    auto made = MakeScheme(SchemeKind::kReindex,
                           SchemeEnv{&metered, &allocator, &day_store},
                           Config());
    ASSERT_TRUE(made.ok()) << made.status();
    std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
    // The data device is wired in: bucket bytes are fdatasync'ed before
    // every checkpoint rename.
    DurableMaintenance maintenance(scheme.get(), paths.protocol,
                                   device.get());
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(Batch(d, seed));
    ASSERT_OK(maintenance.Start(std::move(first)));
    for (Day d = kWindow + 1; d < crash_day; ++d) {
      ASSERT_OK(maintenance.AdvanceDay(Batch(d, seed)));
    }
    CrashPoints::Arm(point);
    const Status crashed = maintenance.AdvanceDay(Batch(crash_day, seed));
    ASSERT_FALSE(crashed.ok()) << "crash point '" << point << "' never fired";
    ASSERT_TRUE(IsInjectedCrash(crashed)) << crashed;
    // Scope exit closes the device: only the three files survive.
  }

  CrashPoints::Reset();
  auto reopened = OpenBackend(backend, paths.device);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::unique_ptr<Device> device = std::move(reopened).ValueOrDie();
  MeteredDevice metered(device.get());
  ExtentAllocator allocator(kDeviceBytes);
  auto recovered = DurableMaintenance::Recover(
      paths.protocol, &metered, &allocator, ConstituentIndex::Options{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  DurableMaintenance::RecoveredState state = std::move(recovered).ValueOrDie();
  if (state.interrupted_day.has_value()) {
    EXPECT_EQ(*state.interrupted_day, crash_day);
    ASSERT_EQ(state.current_day, crash_day - 1);
  } else {
    ASSERT_TRUE(state.current_day == crash_day ||
                state.current_day == crash_day - 1)
        << state.current_day;
  }
  EXPECT_FALSE(FileExists(paths.protocol.journal));
  VerifyAgainstOracle(state.wave, state.current_day, seed);

  DayStore day_store;
  for (Day d = state.current_day - kWindow + 1; d <= state.current_day; ++d) {
    ASSERT_OK(day_store.Put(Batch(d, seed)));
  }
  auto made = MakeScheme(SchemeKind::kReindex,
                         SchemeEnv{&metered, &allocator, &day_store},
                         Config());
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ASSERT_OK(scheme->Adopt(std::move(state.wave), state.current_day));
  DurableMaintenance maintenance(scheme.get(), paths.protocol, device.get());
  while (scheme->current_day() < crash_day + 2) {
    ASSERT_OK(maintenance.AdvanceDay(Batch(scheme->current_day() + 1, seed)));
  }
  VerifyAgainstOracle(scheme->wave(), crash_day + 2, seed);
  CleanUp(paths);
}

class DurableBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DurableBackendTest, CrashPointsRecoverOnRealFiles) {
  // The protocol points plus the new pre-checkpoint data-sync point.
  const char* const kPoints[] = {
      "advance.after_intent",     "advance.after_transition",
      "checkpoint.after_data_sync", "checkpoint.before_rename",
      "checkpoint.after_rename",  "advance.after_checkpoint",
      "journal.commit",
  };
  for (const char* point : kPoints) {
    for (uint64_t i = 0; i < 3; ++i) {
      const uint64_t seed = testing::TestSeed(i);
      SCOPED_TRACE(std::string("backend ") + GetParam() + " point '" + point +
                   "' seed " + std::to_string(seed));
      RunBackendTorture(GetParam(), point, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FileAndUring, DurableBackendTest,
                         ::testing::Values("file", "uring"));

// --- Sync-failure propagation -----------------------------------------------

/// A device whose Sync() can be made to fail — the "disk that cannot flush".
class SyncFailDevice : public Device {
 public:
  explicit SyncFailDevice(uint64_t capacity) : inner_(capacity) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    return inner_.Read(offset, out);
  }
  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    return inner_.Write(offset, data);
  }
  uint64_t capacity() const override { return inner_.capacity(); }
  Status Sync() override {
    ++syncs_;
    if (fail_syncs_) return Status::IOError("simulated fsync failure");
    return Status::OK();
  }

  void set_fail_syncs(bool fail) { fail_syncs_ = fail; }
  int syncs() const { return syncs_; }

 private:
  MemoryDevice inner_;
  bool fail_syncs_ = false;
  int syncs_ = 0;
};

TEST(DurableSyncFailureTest, SyncFailureAbortsBeforeTheCheckpointCommit) {
  CrashPoints::Reset();
  const RunPaths paths = PathsFor("syncfail");
  const uint64_t seed = testing::TestSeed(0);
  SyncFailDevice device(kDeviceBytes);
  MeteredDevice metered(&device);
  ExtentAllocator allocator(kDeviceBytes);
  DayStore day_store;
  auto made = MakeScheme(SchemeKind::kReindex,
                         SchemeEnv{&metered, &allocator, &day_store},
                         Config());
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  DurableMaintenance maintenance(scheme.get(), paths.protocol, &device);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(Batch(d, seed));
  ASSERT_OK(maintenance.Start(std::move(first)));
  EXPECT_GE(device.syncs(), 1);  // Start's checkpoint synced the device

  device.set_fail_syncs(true);
  const Status failed = maintenance.AdvanceDay(Batch(kWindow + 1, seed));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIOError()) << failed;
  EXPECT_NE(failed.message().find("sync"), std::string::npos) << failed;
  // The transition never committed: the intent journal survives, and the
  // durable truth is still the pre-transition window.
  EXPECT_TRUE(FileExists(paths.protocol.journal));
  // "Restart": fresh allocator and meter over the surviving device bytes
  // (the old scheme's in-RAM state is abandoned, as after a real crash).
  MeteredDevice restarted(&device);
  ExtentAllocator fresh_allocator(kDeviceBytes);
  auto recovered =
      DurableMaintenance::Recover(paths.protocol, &restarted,
                                  &fresh_allocator, ConstituentIndex::Options{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  DurableMaintenance::RecoveredState state = std::move(recovered).ValueOrDie();
  EXPECT_EQ(state.current_day, kWindow);
  ASSERT_TRUE(state.interrupted_day.has_value());
  EXPECT_EQ(*state.interrupted_day, kWindow + 1);
  VerifyAgainstOracle(state.wave, kWindow, seed);
  CleanUp(paths);
}

}  // namespace
}  // namespace wavekit
