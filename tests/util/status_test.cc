#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/macros.h"
#include "util/result.h"

namespace wavekit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad n");
}

TEST(StatusTest, AllCodePredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Status::NotFound("other"));
  EXPECT_NE(a, Status::OK());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::IOError("device full").WithContext("writing bucket");
  EXPECT_EQ(s.message(), "writing bucket: device full");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal error: boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  WAVEKIT_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  WAVEKIT_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = HalfOf(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = HalfOf(3);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterOf(20);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_FALSE(QuarterOf(10).ok());  // 10/2 = 5, odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

}  // namespace
}  // namespace wavekit
