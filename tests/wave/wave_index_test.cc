#include "wave/wave_index.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class WaveIndexTest : public testing::StoreTest {
 protected:
  // Builds one packed constituent per cluster of `clusters`.
  void BuildWave(const std::vector<TimeSet>& clusters) {
    for (const TimeSet& cluster : clusters) {
      std::vector<DayBatch> batches;
      for (Day d : cluster) {
        batches.push_back(MakeMixedBatch(d));
        reference_.Add(batches.back());
      }
      std::vector<const DayBatch*> ptrs;
      for (const DayBatch& b : batches) ptrs.push_back(&b);
      auto built = IndexBuilder::BuildPacked(store_.device(),
                                             store_.allocator(), Options(),
                                             ptrs, "I");
      ASSERT_TRUE(built.ok()) << built.status();
      wave_.AddIndex(std::move(built).ValueOrDie());
    }
  }

  WaveIndex wave_;
  ReferenceIndex reference_;
};

TEST_F(WaveIndexTest, ProbeMergesAcrossConstituents) {
  BuildWave({{1, 2}, {3, 4}, {5}});
  std::vector<Entry> out;
  QueryStats stats;
  ASSERT_OK(wave_.IndexProbe("alpha", &out, &stats));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));
  EXPECT_EQ(stats.indexes_accessed, 3);
  EXPECT_EQ(stats.indexes_skipped, 0);
}

TEST_F(WaveIndexTest, TimedProbePrunesConstituents) {
  BuildWave({{1, 2}, {3, 4}, {5}});
  std::vector<Entry> out;
  QueryStats stats;
  ASSERT_OK(wave_.TimedIndexProbe(DayRange{3, 4}, "alpha", &out, &stats));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", 3, 4));
  EXPECT_EQ(stats.indexes_accessed, 1);
  EXPECT_EQ(stats.indexes_skipped, 2);
}

TEST_F(WaveIndexTest, TimedProbePartialClusterFiltersEntries) {
  BuildWave({{1, 2, 3}});
  std::vector<Entry> out;
  ASSERT_OK(wave_.TimedIndexProbe(DayRange{2, 2}, "alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", 2, 2));
}

TEST_F(WaveIndexTest, SegmentScanVisitsAllEntries) {
  BuildWave({{1, 2}, {3}});
  std::vector<Entry> scanned;
  QueryStats stats;
  ASSERT_OK(wave_.SegmentScan(
      [&](const Value&, const Entry& e) { scanned.push_back(e); }, &stats));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference_.ScanAll(kDayNegInf, kDayPosInf));
  EXPECT_EQ(stats.entries_returned, scanned.size());
}

TEST_F(WaveIndexTest, TimedSegmentScanPrunesAndFilters) {
  BuildWave({{1, 2}, {3, 4}, {5, 6}});
  std::vector<Entry> scanned;
  QueryStats stats;
  ASSERT_OK(wave_.TimedSegmentScan(
      DayRange{2, 3},
      [&](const Value&, const Entry& e) { scanned.push_back(e); }, &stats));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference_.ScanAll(2, 3));
  EXPECT_EQ(stats.indexes_accessed, 2);
  EXPECT_EQ(stats.indexes_skipped, 1);
}

TEST_F(WaveIndexTest, ProbeForMissingValueIsEmpty) {
  BuildWave({{1}});
  std::vector<Entry> out;
  ASSERT_OK(wave_.IndexProbe("no-such-word", &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(WaveIndexTest, AccountingHelpers) {
  BuildWave({{1, 2}, {3, 4, 5}});
  EXPECT_EQ(wave_.num_constituents(), 2u);
  EXPECT_EQ(wave_.TotalDays(), 5);
  EXPECT_EQ(wave_.CoveredDays(), (TimeSet{1, 2, 3, 4, 5}));
  EXPECT_GT(wave_.AllocatedBytes(), 0u);
  EXPECT_EQ(wave_.EntryCount(),
            reference_.ScanAll(kDayNegInf, kDayPosInf).size());
}

TEST_F(WaveIndexTest, RemoveAndDropIndex) {
  BuildWave({{1}, {2}});
  const auto first = wave_.constituents()[0];
  const auto second = wave_.constituents()[1];
  ASSERT_OK(wave_.RemoveIndex(first.get()));
  EXPECT_EQ(wave_.num_constituents(), 1u);
  EXPECT_GT(first->entry_count(), 0u);  // not destroyed
  ASSERT_OK(wave_.DropIndex(second.get()));
  EXPECT_EQ(wave_.num_constituents(), 0u);
  EXPECT_EQ(second->entry_count(), 0u);  // destroyed
  EXPECT_TRUE(wave_.RemoveIndex(first.get()).IsNotFound());
}

TEST_F(WaveIndexTest, ReplaceIndexSwapsInPlace) {
  BuildWave({{1}, {2}, {3}});
  auto built = IndexBuilder::BuildPacked(store_.device(), store_.allocator(),
                                         Options(), MakeMixedBatch(9), "new");
  ASSERT_TRUE(built.ok()) << built.status();
  std::shared_ptr<ConstituentIndex> fresh = std::move(built).ValueOrDie();
  const ConstituentIndex* second = wave_.constituents()[1].get();
  ASSERT_OK(wave_.ReplaceIndex(second, fresh));
  EXPECT_EQ(wave_.constituents()[1].get(), fresh.get());
  EXPECT_EQ(wave_.num_constituents(), 3u);
  EXPECT_TRUE(wave_.Contains(fresh.get()));
  EXPECT_FALSE(wave_.Contains(second));
}

}  // namespace
}  // namespace wavekit
