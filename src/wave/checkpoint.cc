#include "wave/checkpoint.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/crc32.h"
#include "util/crc32c.h"
#include "util/fs.h"
#include "util/macros.h"

namespace wavekit {
namespace {

// Line-oriented text format. Values are written length-prefixed so any byte
// except '\n' is safe (and wavekit values never contain newlines):
//
//   wavekit-checkpoint 4
//   constituents <n>
//   constituent <len>:<name> packed <0|1> days <d1,d2,...> buckets <m>
//   bucket <len>:<value> <offset> <count> <capacity> <crc32c> <codec> <stored>
//   ...
//   footer <body-length> <crc32-of-body>
//
// The footer covers every byte before it; it is validated (length first,
// then CRC) before the body is parsed at all. Version-4 bucket lines carry
// the codec id (index/codec.h) and the stored byte length (the live prefix
// for raw buckets, the exact encoded extent otherwise); version-3 files lack
// both columns and load every bucket as kRaw. Version-2 files additionally
// have no per-bucket <crc32c> column; loading one recomputes each checksum
// from the bucket bytes on the device.

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  *out += std::to_string(s.size());
  *out += ':';
  *out += s;
}

class Parser {
 public:
  explicit Parser(const std::string& contents)
      : in_(contents), size_(contents.size()) {}

  Result<std::string> Token() {
    std::string token;
    if (!(in_ >> token)) return Status::InvalidArgument("truncated checkpoint");
    return token;
  }

  Result<int64_t> Int() {
    int64_t value;
    if (!(in_ >> value)) {
      return Status::InvalidArgument("expected integer in checkpoint");
    }
    return value;
  }

  Result<std::string> LengthPrefixed() {
    size_t length;
    char colon;
    if (!(in_ >> length >> colon) || colon != ':') {
      return Status::InvalidArgument("malformed length-prefixed string");
    }
    // A string cannot be longer than the file holding it; checking before
    // allocating keeps a corrupt length field from requesting gigabytes.
    if (length > size_) {
      return Status::InvalidArgument("length-prefixed string longer than file");
    }
    std::string out(length, '\0');
    if (!in_.read(out.data(), static_cast<std::streamsize>(length))) {
      return Status::InvalidArgument("truncated length-prefixed string");
    }
    return out;
  }

  Status Expect(const std::string& expected) {
    WAVEKIT_ASSIGN_OR_RETURN(std::string token, Token());
    if (token != expected) {
      return Status::InvalidArgument("expected '" + expected + "', found '" +
                                     token + "'");
    }
    return Status::OK();
  }

 private:
  std::istringstream in_;
  size_t size_;
};

Result<TimeSet> ParseDays(const std::string& csv) {
  TimeSet days;
  std::istringstream in(csv);
  std::string piece;
  while (std::getline(in, piece, ',')) {
    if (piece.empty()) continue;
    // strtol instead of std::stol: a corrupt file must surface as a Status,
    // not an exception.
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(piece.c_str(), &end, 10);
    if (end == piece.c_str() || *end != '\0' || errno == ERANGE ||
        value < std::numeric_limits<Day>::min() ||
        value > std::numeric_limits<Day>::max()) {
      return Status::InvalidArgument("malformed day '" + piece +
                                     "' in checkpoint");
    }
    days.insert(static_cast<Day>(value));
  }
  return days;
}

// Validates the trailing "footer <body-length> <crc32>\n" line and returns
// the body (everything before the footer line). The length check catches
// truncation and appended garbage; the CRC catches bit flips.
Result<std::string> CheckFooter(const std::string& contents) {
  const size_t footer_at = contents.rfind("\nfooter ");
  // The footer must be the complete last line: a file that lost even its
  // final newline was not written out in full.
  if (footer_at == std::string::npos || contents.back() != '\n') {
    return Status::InvalidArgument(
        "checkpoint footer missing (file truncated or corrupt)");
  }
  const std::string footer_line = contents.substr(footer_at + 1);
  std::istringstream in(footer_line);
  std::string tag;
  uint64_t body_length = 0;
  uint64_t crc = 0;
  if (!(in >> tag >> body_length >> crc) || tag != "footer") {
    return Status::InvalidArgument("malformed checkpoint footer");
  }
  if (body_length != footer_at + 1) {
    return Status::InvalidArgument(
        "checkpoint length mismatch: footer says " +
        std::to_string(body_length) + " body bytes, file has " +
        std::to_string(footer_at + 1) + " (file truncated or corrupt)");
  }
  std::string body = contents.substr(0, body_length);
  if (Crc32(body) != crc) {
    return Status::InvalidArgument(
        "checkpoint CRC mismatch (file corrupt)");
  }
  return body;
}

}  // namespace

Result<std::string> SerializeCheckpoint(const WaveIndex& wave) {
  std::string out;
  out += "wavekit-checkpoint " + std::to_string(kCheckpointVersion) + "\n";
  out += "constituents " + std::to_string(wave.num_constituents()) + "\n";
  for (const auto& constituent : wave.constituents()) {
    out += "constituent ";
    AppendLengthPrefixed(&out, constituent->name());
    out += std::string(" packed ") + (constituent->packed() ? "1" : "0");
    out += " days ";
    bool first = true;
    for (Day d : constituent->time_set()) {
      if (!first) out += ",";
      out += std::to_string(d);
      first = false;
    }
    if (constituent->time_set().empty()) out += "-";
    out += " buckets " + std::to_string(constituent->distinct_values()) + "\n";
    Status status = constituent->ForEachBucket(
        [&out](const Value& value, const BucketInfo& info) {
          out += "bucket ";
          AppendLengthPrefixed(&out, value);
          out += " " + std::to_string(info.extent.offset) + " " +
                 std::to_string(info.count) + " " +
                 std::to_string(info.capacity) + " " +
                 std::to_string(info.crc) + " " +
                 std::to_string(static_cast<int>(info.codec)) + " " +
                 std::to_string(info.stored_length()) + "\n";
        });
    WAVEKIT_RETURN_NOT_OK(status);
  }
  out += "footer " + std::to_string(out.size()) + " " +
         std::to_string(Crc32(out)) + "\n";
  return out;
}

Status WriteCheckpoint(const WaveIndex& wave, const std::string& path) {
  WAVEKIT_ASSIGN_OR_RETURN(std::string contents, SerializeCheckpoint(wave));
  return AtomicWriteFile(path, contents, "checkpoint");
}

Result<WaveIndex> DeserializeCheckpoint(const std::string& contents,
                                        Device* device,
                                        ExtentAllocator* allocator,
                                        ConstituentIndex::Options options) {
  // Header first (so a checkpoint from another format version gets a clear
  // version error, not a footer complaint), then footer integrity, then body.
  int64_t version = 0;
  {
    Parser header(contents);
    WAVEKIT_RETURN_NOT_OK(header.Expect("wavekit-checkpoint"));
    WAVEKIT_ASSIGN_OR_RETURN(version, header.Int());
    if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
      return Status::InvalidArgument("unsupported checkpoint version " +
                                     std::to_string(version));
    }
  }
  WAVEKIT_ASSIGN_OR_RETURN(std::string body, CheckFooter(contents));
  Parser parser(body);
  WAVEKIT_RETURN_NOT_OK(parser.Expect("wavekit-checkpoint"));
  WAVEKIT_RETURN_NOT_OK(parser.Int().status());
  WAVEKIT_RETURN_NOT_OK(parser.Expect("constituents"));
  WAVEKIT_ASSIGN_OR_RETURN(int64_t num_constituents, parser.Int());
  if (num_constituents < 0) {
    return Status::InvalidArgument("negative constituent count");
  }

  WaveIndex wave;
  std::vector<std::byte> upgrade_buffer;  // v2 crc recomputation scratch
  for (int64_t i = 0; i < num_constituents; ++i) {
    WAVEKIT_RETURN_NOT_OK(parser.Expect("constituent"));
    WAVEKIT_ASSIGN_OR_RETURN(std::string name, parser.LengthPrefixed());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("packed"));
    WAVEKIT_ASSIGN_OR_RETURN(int64_t packed, parser.Int());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("days"));
    WAVEKIT_ASSIGN_OR_RETURN(std::string days_csv, parser.Token());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("buckets"));
    WAVEKIT_ASSIGN_OR_RETURN(int64_t num_buckets, parser.Int());

    auto index = std::make_shared<ConstituentIndex>(device, allocator, options,
                                                    name);
    for (int64_t b = 0; b < num_buckets; ++b) {
      WAVEKIT_RETURN_NOT_OK(parser.Expect("bucket"));
      WAVEKIT_ASSIGN_OR_RETURN(std::string value, parser.LengthPrefixed());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t offset, parser.Int());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t count, parser.Int());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t capacity, parser.Int());
      int64_t crc = 0;
      if (version >= 3) {
        WAVEKIT_ASSIGN_OR_RETURN(crc, parser.Int());
        if (crc < 0 || crc > std::numeric_limits<uint32_t>::max()) {
          return Status::InvalidArgument("corrupt bucket crc for '" + value +
                                         "'");
        }
      }
      Codec codec = Codec::kRaw;
      int64_t stored = -1;
      if (version >= 4) {
        WAVEKIT_ASSIGN_OR_RETURN(int64_t codec_id, parser.Int());
        if (codec_id < 0) {
          return Status::InvalidArgument("corrupt bucket codec for '" + value +
                                         "'");
        }
        WAVEKIT_ASSIGN_OR_RETURN(
            codec, CodecFromId(static_cast<uint64_t>(codec_id)));
        WAVEKIT_ASSIGN_OR_RETURN(stored, parser.Int());
      }
      // Bounds before any cast: a corrupt offset/capacity must not wrap into
      // a plausible-looking extent.
      if (count < 0 || capacity < count || offset < 0 ||
          capacity > static_cast<int64_t>(device->capacity() / kEntrySize)) {
        return Status::InvalidArgument("corrupt bucket bounds for '" + value +
                                       "'");
      }
      if (version >= 4) {
        // The stored length must agree with the codec's invariants: raw
        // buckets store exactly their live prefix inside a capacity-sized
        // extent; compressed buckets are exactly filled and strictly beat
        // the raw size.
        if (codec == Codec::kRaw) {
          if (stored != count * static_cast<int64_t>(kEntrySize)) {
            return Status::InvalidArgument(
                "corrupt stored length for raw bucket '" + value + "'");
          }
        } else {
          if (count != capacity || stored <= 0 ||
              stored >= count * static_cast<int64_t>(kEntrySize)) {
            return Status::InvalidArgument(
                "corrupt stored length for compressed bucket '" + value +
                "'");
          }
        }
      }
      const Extent extent{
          static_cast<uint64_t>(offset),
          codec == Codec::kRaw ? static_cast<uint64_t>(capacity) * kEntrySize
                               : static_cast<uint64_t>(stored)};
      WAVEKIT_RETURN_NOT_OK(
          allocator->Reserve(extent).WithContext("reserving bucket of '" +
                                                 value + "'"));
      if (version < 3) {
        // v2 -> v3 upgrade: the file carries no data checksum, so seed it
        // from the bytes currently on the device. This trusts the device
        // once (there is nothing else to trust) and protects every read
        // from here on.
        upgrade_buffer.resize(static_cast<size_t>(count) * kEntrySize);
        WAVEKIT_RETURN_NOT_OK(
            device->Read(extent.offset, upgrade_buffer)
                .WithContext("recomputing v2 bucket crc of '" + value + "'"));
        crc = Crc32c(upgrade_buffer.data(), upgrade_buffer.size());
      }
      WAVEKIT_RETURN_NOT_OK(index->InstallBucket(
          value,
          BucketInfo{extent, static_cast<uint32_t>(count),
                     static_cast<uint32_t>(capacity),
                     static_cast<uint32_t>(crc), codec}));
    }
    if (days_csv != "-") {
      WAVEKIT_ASSIGN_OR_RETURN(index->mutable_time_set(), ParseDays(days_csv));
    }
    index->set_packed(packed != 0);
    WAVEKIT_RETURN_NOT_OK(index->CheckConsistency());
    wave.AddIndex(std::move(index));
  }
  return wave;
}

Result<WaveIndex> LoadCheckpoint(const std::string& path, Device* device,
                                 ExtentAllocator* allocator,
                                 ConstituentIndex::Options options) {
  WAVEKIT_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return DeserializeCheckpoint(contents, device, allocator, options);
}

}  // namespace wavekit
