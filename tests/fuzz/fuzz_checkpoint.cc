// libFuzzer target for the checkpoint-v2 parser.
//
// DeserializeCheckpoint is the one place wavekit parses bytes it did not
// write in the same process: a checkpoint file that survived a crash, a torn
// write, or bit rot. The contract under fuzzing:
//
//   - arbitrary input never crashes, throws, or trips a sanitizer;
//   - input that parses OK re-serializes to a canonical form that parses
//     back to the same bytes (the round-trip identity the simulation
//     harness asserts on every healthy day, generalized to non-canonical
//     but accepted inputs).
//
// Build (Clang only):  cmake -B build-fuzz -S . -DWAVEKIT_FUZZ=ON \
//                          -DCMAKE_CXX_COMPILER=clang++
//                      cmake --build build-fuzz --target fuzz_checkpoint
// Run:                 build-fuzz/tests/fuzz/fuzz_checkpoint \
//                          tests/fuzz/corpus/checkpoint
//
// Without Clang, -DWAVEKIT_FUZZ_STANDALONE=ON builds the same harness with a
// plain main() that replays corpus files passed on the command line — a
// regression driver, not a fuzzer.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "wave/checkpoint.h"

namespace {

// Small on purpose: bucket extents beyond the device must be rejected by
// bounds checks, and a tiny device reaches that path with tiny inputs.
constexpr uint64_t kDeviceBytes = uint64_t{1} << 20;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string contents(reinterpret_cast<const char*>(data), size);
  wavekit::MemoryDevice device(kDeviceBytes);
  wavekit::ExtentAllocator allocator(device.capacity());
  wavekit::ConstituentIndex::Options options;
  auto parsed = wavekit::DeserializeCheckpoint(contents, &device, &allocator,
                                               options);
  if (!parsed.ok()) return 0;

  // Canonicalization fixpoint: anything accepted serializes to a form that
  // parses back and re-serializes identically. (Byte-identity with the raw
  // input is too strong — the token parser tolerates whitespace variants.)
  auto canonical = wavekit::SerializeCheckpoint(parsed.ValueOrDie());
  if (!canonical.ok()) {
    std::fprintf(stderr, "accepted checkpoint failed to re-serialize\n");
    __builtin_trap();
  }
  wavekit::MemoryDevice device2(kDeviceBytes);
  wavekit::ExtentAllocator allocator2(device2.capacity());
  auto reparsed = wavekit::DeserializeCheckpoint(
      canonical.ValueOrDie(), &device2, &allocator2, options);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "canonical checkpoint failed to re-parse\n");
    __builtin_trap();
  }
  auto fixpoint = wavekit::SerializeCheckpoint(reparsed.ValueOrDie());
  if (!fixpoint.ok() || fixpoint.ValueOrDie() != canonical.ValueOrDie()) {
    std::fprintf(stderr, "checkpoint canonical form is not a fixpoint\n");
    __builtin_trap();
  }
  return 0;
}

#ifdef WAVEKIT_FUZZ_STANDALONE
// Corpus replay driver for toolchains without libFuzzer.
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(contents.data()), contents.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], contents.size());
  }
  return 0;
}
#endif  // WAVEKIT_FUZZ_STANDALONE
