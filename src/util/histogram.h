// Histogram: log-bucketed latency/size histogram with percentile queries.
// Used by WaveService metrics; general-purpose otherwise.

#ifndef WAVEKIT_UTIL_HISTOGRAM_H_
#define WAVEKIT_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace wavekit {

/// \brief Fixed-footprint histogram over positive values with
/// half-decade-ish resolution: bucket k covers [2^k, 2^(k+1)).
///
/// Records are O(1); percentiles are approximate (upper bucket bound).
/// Not thread-safe; callers synchronize (see WaveService).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Approximate value at quantile q in [0, 1] (upper bound of the bucket
  /// containing the q-th sample). 0 when empty.
  uint64_t Percentile(double q) const;

  void Reset();

  /// "count=... mean=... p50=... p99=... max=..."
  std::string ToString() const;

 private:
  static int BucketFor(uint64_t value);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_HISTOGRAM_H_
