file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_window_scaling.dir/bench_fig9_window_scaling.cc.o"
  "CMakeFiles/bench_fig9_window_scaling.dir/bench_fig9_window_scaling.cc.o.d"
  "bench_fig9_window_scaling"
  "bench_fig9_window_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_window_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
