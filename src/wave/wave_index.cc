#include "wave/wave_index.h"

#include <algorithm>
#include <latch>

#include "util/macros.h"

namespace wavekit {
namespace {

template <typename Vector>
auto FindConstituent(Vector& constituents, const ConstituentIndex* index) {
  return std::find_if(
      constituents.begin(), constituents.end(),
      [index](const std::shared_ptr<ConstituentIndex>& c) {
        return c.get() == index;
      });
}

// OK for a complete answer, PartialResult when constituents were excluded
// (unhealthy) or dropped (unreadable) — see the degraded-serving contract in
// wave_index.h.
Status DegradedStatus(const QueryStats& stats) {
  if (stats.indexes_unhealthy == 0 && stats.indexes_failed == 0) {
    return Status::OK();
  }
  return Status::PartialResult(
      "degraded answer: " + std::to_string(stats.indexes_unhealthy) +
      " unhealthy constituent(s) excluded, " +
      std::to_string(stats.indexes_failed) + " unreadable and dropped");
}

// TimedProbe on one constituent with the degraded-serving fallback: an
// I/O-failing directory probe is retried as a value-filtered sequential
// scan. On a second I/O failure `out` is rolled back to its length at entry
// and the IOError is returned for the caller to count; other errors
// propagate unchanged. A DataLoss (checksum mismatch) gets NO fallback: the
// scan would reread the same corrupt bytes, and the constituent has already
// quarantined itself — roll back and report it for the caller to drop.
Status ProbeWithFallback(const ConstituentIndex& constituent,
                         const Value& value, const DayRange& range,
                         std::vector<Entry>* out, bool* used_fallback) {
  const size_t mark = out->size();
  Status status = constituent.TimedProbe(value, range, out);
  if (status.IsDataLoss()) {
    out->resize(mark);
    return status;
  }
  if (!status.IsIOError()) return status;
  out->resize(mark);
  *used_fallback = true;
  status = constituent.TimedScan(range, [&](const Value& v, const Entry& e) {
    if (v == value) out->push_back(e);
  });
  if (!status.ok()) out->resize(mark);
  return status;
}

// An unreadable constituent — transiently (IOError) or permanently
// (DataLoss, quarantined) — is dropped from the answer and counted in
// indexes_failed.
bool CountsAsFailed(const Status& status) {
  return status.IsIOError() || status.IsDataLoss();
}

}  // namespace

void WaveIndex::AddIndex(std::shared_ptr<ConstituentIndex> index) {
  constituents_.push_back(std::move(index));
}

Status WaveIndex::RemoveIndex(const ConstituentIndex* index) {
  auto it = FindConstituent(constituents_, index);
  if (it == constituents_.end()) {
    return Status::NotFound("index is not a constituent of this wave index");
  }
  constituents_.erase(it);
  return Status::OK();
}

Status WaveIndex::DropIndex(const ConstituentIndex* index) {
  auto it = FindConstituent(constituents_, index);
  if (it == constituents_.end()) {
    return Status::NotFound("index is not a constituent of this wave index");
  }
  std::shared_ptr<ConstituentIndex> held = *it;
  constituents_.erase(it);
  return held->Destroy();
}

Status WaveIndex::ReplaceIndex(const ConstituentIndex* old_index,
                               std::shared_ptr<ConstituentIndex> with) {
  auto it = FindConstituent(constituents_, old_index);
  if (it == constituents_.end()) {
    return Status::NotFound("index is not a constituent of this wave index");
  }
  *it = std::move(with);
  return Status::OK();
}

bool WaveIndex::Contains(const ConstituentIndex* index) const {
  return FindConstituent(constituents_, index) != constituents_.end();
}

Status WaveIndex::TimedIndexProbe(const DayRange& range, const Value& value,
                                  std::vector<Entry>* out,
                                  QueryStats* stats) const {
  QueryStats local;
  const size_t before = out->size();
  for (const auto& constituent : constituents_) {
    if (!range.Intersects(constituent->time_set())) {
      ++local.indexes_skipped;
      continue;
    }
    if (!constituent->healthy()) {
      ++local.indexes_unhealthy;
      continue;
    }
    ++local.indexes_accessed;
    bool used_fallback = false;
    const Status status =
        ProbeWithFallback(*constituent, value, range, out, &used_fallback);
    if (used_fallback) ++local.probe_fallbacks;
    if (CountsAsFailed(status)) {
      ++local.indexes_failed;
      continue;
    }
    WAVEKIT_RETURN_NOT_OK(status);
  }
  local.entries_returned = out->size() - before;
  if (stats != nullptr) *stats = local;
  return DegradedStatus(local);
}

Status WaveIndex::IndexProbe(const Value& value, std::vector<Entry>* out,
                             QueryStats* stats) const {
  return TimedIndexProbe(DayRange::All(), value, out, stats);
}

Status WaveIndex::TimedSegmentScan(const DayRange& range,
                                   const EntryCallback& callback,
                                   QueryStats* stats) const {
  QueryStats local;
  for (const auto& constituent : constituents_) {
    if (!range.Intersects(constituent->time_set())) {
      ++local.indexes_skipped;
      continue;
    }
    if (!constituent->healthy()) {
      ++local.indexes_unhealthy;
      continue;
    }
    ++local.indexes_accessed;
    const Status status = constituent->TimedScan(
        range, [&](const Value& v, const Entry& e) {
          ++local.entries_returned;
          callback(v, e);
        });
    if (CountsAsFailed(status)) {
      // Entries already delivered before the failure stand (scans stream,
      // and every delivered batch passed checksum verification); the rest
      // of this constituent is missing — flagged via PartialResult.
      ++local.indexes_failed;
      continue;
    }
    WAVEKIT_RETURN_NOT_OK(status);
  }
  if (stats != nullptr) *stats = local;
  return DegradedStatus(local);
}

Status WaveIndex::SegmentScan(const EntryCallback& callback,
                              QueryStats* stats) const {
  return TimedSegmentScan(DayRange::All(), callback, stats);
}

namespace {

struct ParallelSlot {
  bool accessed = false;
  bool used_fallback = false;
  Status status;
  std::vector<std::pair<Value, Entry>> results;
};

}  // namespace

Status WaveIndex::ParallelTimedIndexProbe(ThreadPool* pool,
                                          const DayRange& range,
                                          const Value& value,
                                          std::vector<Entry>* out,
                                          QueryStats* stats) const {
  QueryStats local;
  std::vector<ParallelSlot> slots(constituents_.size());
  std::latch remaining(static_cast<ptrdiff_t>(constituents_.size()));
  for (size_t i = 0; i < constituents_.size(); ++i) {
    const ConstituentIndex* constituent = constituents_[i].get();
    ParallelSlot* slot = &slots[i];
    if (!range.Intersects(constituent->time_set())) {
      ++local.indexes_skipped;
      remaining.count_down();
      continue;
    }
    if (!constituent->healthy()) {
      ++local.indexes_unhealthy;
      remaining.count_down();
      continue;
    }
    slot->accessed = true;
    ++local.indexes_accessed;
    pool->Submit([constituent, slot, &range, &value, &remaining]() {
      std::vector<Entry> entries;
      slot->status = ProbeWithFallback(*constituent, value, range, &entries,
                                       &slot->used_fallback);
      slot->results.reserve(entries.size());
      for (const Entry& e : entries) slot->results.emplace_back(Value{}, e);
      remaining.count_down();
    });
  }
  remaining.wait();
  for (const ParallelSlot& slot : slots) {
    if (slot.used_fallback) ++local.probe_fallbacks;
    if (CountsAsFailed(slot.status)) {
      ++local.indexes_failed;
      continue;
    }
    WAVEKIT_RETURN_NOT_OK(slot.status);
    for (const auto& [v, e] : slot.results) {
      out->push_back(e);
      ++local.entries_returned;
    }
  }
  if (stats != nullptr) *stats = local;
  return DegradedStatus(local);
}

Status WaveIndex::ParallelTimedSegmentScan(ThreadPool* pool,
                                           const DayRange& range,
                                           const EntryCallback& callback,
                                           QueryStats* stats) const {
  QueryStats local;
  std::vector<ParallelSlot> slots(constituents_.size());
  std::latch remaining(static_cast<ptrdiff_t>(constituents_.size()));
  for (size_t i = 0; i < constituents_.size(); ++i) {
    const ConstituentIndex* constituent = constituents_[i].get();
    ParallelSlot* slot = &slots[i];
    if (!range.Intersects(constituent->time_set())) {
      ++local.indexes_skipped;
      remaining.count_down();
      continue;
    }
    if (!constituent->healthy()) {
      ++local.indexes_unhealthy;
      remaining.count_down();
      continue;
    }
    slot->accessed = true;
    ++local.indexes_accessed;
    pool->Submit([constituent, slot, &range, &remaining]() {
      slot->status = constituent->TimedScan(
          range, [slot](const Value& v, const Entry& e) {
            slot->results.emplace_back(v, e);
          });
      remaining.count_down();
    });
  }
  remaining.wait();
  for (const ParallelSlot& slot : slots) {
    if (CountsAsFailed(slot.status)) {
      // Buffered delivery means a failed constituent contributes nothing at
      // all (unlike the serial scan, which streams) — drop it and report a
      // partial result.
      ++local.indexes_failed;
      continue;
    }
    WAVEKIT_RETURN_NOT_OK(slot.status);
    for (const auto& [v, e] : slot.results) {
      callback(v, e);
      ++local.entries_returned;
    }
  }
  if (stats != nullptr) *stats = local;
  return DegradedStatus(local);
}

int WaveIndex::TotalDays() const {
  int days = 0;
  for (const auto& constituent : constituents_) {
    days += static_cast<int>(constituent->time_set().size());
  }
  return days;
}

TimeSet WaveIndex::CoveredDays() const {
  TimeSet all;
  for (const auto& constituent : constituents_) {
    all.insert(constituent->time_set().begin(), constituent->time_set().end());
  }
  return all;
}

uint64_t WaveIndex::AllocatedBytes() const {
  uint64_t bytes = 0;
  for (const auto& constituent : constituents_) {
    bytes += constituent->allocated_bytes();
  }
  return bytes;
}

uint64_t WaveIndex::EntryCount() const {
  uint64_t entries = 0;
  for (const auto& constituent : constituents_) {
    entries += constituent->entry_count();
  }
  return entries;
}

}  // namespace wavekit
