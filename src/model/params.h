// Case-study parameters (paper Table 12) and derived operation costs.
//
// These are the "coarse" parameters of Section 5: hardware (seek, Trans),
// application (S, S', c, query volumes), and implementation (g, Build, Add,
// Del). The model layer prices scheme operation logs with them, reproducing
// the paper's analytic evaluation independently of the device simulation.

#ifndef WAVEKIT_MODEL_PARAMS_H_
#define WAVEKIT_MODEL_PARAMS_H_

#include <string>

#include "storage/cost_model.h"

namespace wavekit {
namespace model {

/// \brief All Section 5 parameters for one application scenario.
struct CaseParams {
  std::string name;

  // Hardware (Table 12: seek = 14 ms, Trans = 10 MB/s everywhere).
  CostModel hardware;

  // Application parameters, all for ONE day of data.
  double packed_day_bytes = 0;    ///< S: packed index of one day.
  double unpacked_day_bytes = 0;  ///< S': CONTIGUOUS-grown index of one day.
  double bucket_bytes_per_day = 100;  ///< c: avg probe bucket size per day.
  double probes_per_day = 0;          ///< Probe_num.
  double scans_per_day = 0;           ///< Scan_num.
  /// Probe_idx / Scan_idx: true => all n constituents, false => one.
  bool probes_touch_all_indexes = true;
  bool scans_touch_all_indexes = true;

  // Implementation parameters (CONTIGUOUS with growth factor g).
  double growth_factor = 2.0;  ///< g.
  double build_seconds = 0;    ///< Build: packed build of one day.
  double add_seconds = 0;      ///< Add: incremental insert of one day.
  double delete_seconds = 0;   ///< Del: incremental delete of one day.

  /// Default window of the case study.
  int window = 7;

  /// Main memory of the measurement machine (the paper's DEC 3000 had 96 MB
  /// of RAM). Batch updates "lead to better performance, mainly due to
  /// memory caching" (Section 2.1): once one day's working set outgrows RAM,
  /// CONTIGUOUS bucket relocations stop being cache-resident and Add/Del
  /// degrade superlinearly — the effect behind Figure 10's WATA*/REINDEX
  /// crossover near SF = 3.
  double memory_bytes = 96e6;

  /// CP: copy one day's worth of an unpacked index to a new location
  /// (read it all, flush it all). Derived: 2 * S' / Trans.
  double CpSeconds() const {
    return 2.0 * unpacked_day_bytes / hardware.transfer_bytes_per_second;
  }

  /// SMCP: smart-copy one day's worth — read the (possibly unpacked) index,
  /// drop expired entries, flush packed. Derived: (S' + S) / Trans.
  double SmcpSeconds() const {
    return (unpacked_day_bytes + packed_day_bytes) /
           hardware.transfer_bytes_per_second;
  }

  /// Scales data volume by `sf` (the SF axis of Figure 10): S, S', c, Build,
  /// Add and Del all grow linearly with the daily volume.
  CaseParams Scaled(double sf) const;

  /// SCAM (copy detection over ~70k Netnews articles/day, W = 7).
  static CaseParams Scam();
  /// Generic Web search engine (~100k articles/day, W = 35).
  static CaseParams Wse();
  /// TPC-D warehousing (LINEITEM on SUPPKEY, W = 100).
  static CaseParams Tpcd();
};

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_PARAMS_H_
