// SCAM: copy detection over a sliding week of Netnews articles — the
// application that motivated the paper.
//
// Authors register documents; each day's incoming articles are checked for
// suspicious word overlap with the registered documents (a scan of the
// newest day), and authors can retro-search the whole week for copies of a
// document (TimedIndexProbes). The wave index uses REINDEX with n = 4, the
// paper's recommendation for SCAM.

#include <algorithm>
#include <iostream>

#include "storage/store.h"
#include "util/format.h"
#include "wave/query_helpers.h"
#include "wave/scheme_factory.h"
#include "workload/netnews.h"

using namespace wavekit;

namespace {

// "Registers" a document as its bag of words (scaled-down fingerprint).
std::vector<Value> RegisterDocument(workload::NetnewsGenerator& gen,
                                    Rng& rng, int words) {
  std::vector<Value> fingerprint;
  for (int i = 0; i < words; ++i) fingerprint.push_back(gen.SampleWord(rng));
  std::sort(fingerprint.begin(), fingerprint.end());
  fingerprint.erase(std::unique(fingerprint.begin(), fingerprint.end()),
                    fingerprint.end());
  return fingerprint;
}

// Copy search = the library's OverlapProbe: rank articles in the window by
// how many distinct fingerprint words they share.
std::vector<MatchResult> FindCopies(const WaveIndex& wave,
                                    const std::vector<Value>& fingerprint,
                                    const DayRange& window, size_t top_k) {
  auto ranked = OverlapProbe(wave, fingerprint, window, top_k);
  ranked.status().Abort("OverlapProbe");
  return std::move(ranked).ValueOrDie();
}

}  // namespace

int main() {
  Store store;
  DayStore day_store;

  SchemeConfig config;
  config.window = 7;
  config.num_indexes = 4;  // the paper's SCAM recommendation
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto scheme = MakeScheme(SchemeKind::kReindex,
                           SchemeEnv{store.device(), store.allocator(),
                                     &day_store},
                           config);
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 1;
  }

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 300;  // the paper's 70k, scaled down
  netnews_config.words_per_article = 30;
  netnews_config.vocabulary_size = 8000;
  workload::NetnewsGenerator netnews(netnews_config);

  std::cout << "Indexing the first week of Netnews articles...\n";
  std::vector<DayBatch> week;
  for (Day d = 1; d <= 7; ++d) week.push_back(netnews.GenerateDay(d));
  (*scheme)->Start(std::move(week)).Abort("Start");

  // An author registers two documents for daily checking.
  Rng rng(42);
  std::vector<std::vector<Value>> registered;
  registered.push_back(RegisterDocument(netnews, rng, 40));
  registered.push_back(RegisterDocument(netnews, rng, 40));

  for (Day d = 8; d <= 14; ++d) {
    DayBatch batch = netnews.GenerateDay(d);
    const uint64_t articles = batch.records.size();
    (*scheme)->Transition(std::move(batch)).Abort("Transition");

    // Daily registration check: scan only the newest day's entries and
    // count fingerprint hits (Scan_idx = 1 in the paper's SCAM workload).
    const DayRange today{d, d};
    for (size_t doc = 0; doc < registered.size(); ++doc) {
      auto copies = FindCopies((*scheme)->wave(), registered[doc], today, 1);
      const uint32_t best = copies.empty() ? 0 : copies[0].matched_values;
      std::cout << "day " << d << ": checked " << articles
                << " new articles against document " << doc + 1
                << "; best overlap " << best << "/"
                << registered[doc].size() << " words\n";
    }
  }

  // Retro search: find the closest matches for document 1 anywhere in the
  // current week (100 TimedIndexProbes per query in the paper's model).
  std::cout << "\nRetro-searching the whole week for document 1...\n";
  const DayRange window = DayRange::Window((*scheme)->current_day(), 7);
  auto copies = FindCopies((*scheme)->wave(), registered[0], window, 3);
  for (const MatchResult& match : copies) {
    std::cout << "  article " << match.record_id << " shares "
              << match.matched_values << " fingerprint words (newest day "
              << match.newest_day << ")\n";
  }

  std::cout << "\nwave index: " << (*scheme)->wave().num_constituents()
            << " packed constituents, "
            << FormatCount((*scheme)->wave().EntryCount()) << " entries, "
            << FormatBytes((*scheme)->wave().AllocatedBytes()) << "\n";
  const IoCounters io = store.device()->total();
  std::cout << "device traffic: " << io.ToString() << " — modeled "
            << FormatSeconds(CostModel::Paper().Seconds(io)) << "\n";
  return 0;
}
