# Empty dependencies file for query_helpers_test.
# This may be replaced when dependencies are built.
