#include "wave/reindex_plus_plus_scheme.h"

#include <utility>

#include "index/index_builder.h"
#include "util/macros.h"

namespace wavekit {

Status ReindexPlusPlusScheme::BuildRungsParallel(std::vector<RungSpec> specs,
                                                 Phase phase) {
  obs::Span span = TraceOp("REINDEX++.parallel_ladder");
  const size_t rungs = specs.size();
  // Plan serially: DayStore lookups and entry counts happen on the
  // coordinator, so the pool tasks touch only thread-safe layers (device,
  // allocator, their own fresh index).
  std::vector<std::vector<const DayBatch*>> batches(rungs);
  std::vector<uint64_t> entries(rungs, 0);
  for (size_t i = 0; i < rungs; ++i) {
    WAVEKIT_ASSIGN_OR_RETURN(batches[i], GetBatches(specs[i].days));
    for (const DayBatch* batch : batches[i]) entries[i] += batch->EntryCount();
  }
  MultiPhaseScope scope(AllDevices(), phase);
  std::vector<std::shared_ptr<ConstituentIndex>> built(rungs);
  std::vector<Status> statuses(rungs, Status::OK());
  {
    ThreadPool::WaitGroup group(env_.maintenance.pool);
    for (size_t i = 0; i < rungs; ++i) {
      group.Submit([&, i]() {
        // Parallelism is ACROSS rungs here, so each build keeps the default
        // (serial) inner context instead of env_.maintenance.
        statuses[i] = RetryTransient("BuildIndex", [&] {
          Result<std::unique_ptr<ConstituentIndex>> rung =
              IndexBuilder::BuildPacked(IoDeviceFor(specs[i].disk),
                                        specs[i].disk.allocator, IndexOptions(),
                                        batches[i], specs[i].name);
          if (!rung.ok()) return rung.status();
          built[i] = std::move(rung).ValueOrDie();
          return Status::OK();
        });
      });
    }
    group.Wait();
  }
  for (Status& status : statuses) {
    // All-or-nothing: dropping `built` reclaims every rung that did complete
    // (~ConstituentIndex frees its extents), so retry/recovery starts clean.
    if (!status.ok()) return std::move(status);
  }
  // The op log and temps_ are not thread-safe; record in ladder order after
  // the join. Parallel mode prices each rung as an independent build (the
  // serial copy-chain costs belong to the paper's one-thread cost model).
  for (size_t i = 0; i < rungs; ++i) {
    op_log_.Record(OpRecord{OpKind::kBuildIndex, phase, current_day_,
                            static_cast<int>(specs[i].days.size()), 0,
                            entries[i]});
    temps_.push_back(std::move(built[i]));
  }
  return Status::OK();
}

Status ReindexPlusPlusScheme::InitializeLadder(const TimeSet& days,
                                               Phase phase) {
  // Discard any leftover temporaries from the previous cycle.
  for (auto& temp : temps_) {
    if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(DropIndex(temp));
  }
  temps_.clear();
  days_to_add_.clear();

  // T_0 <- phi (created empty; never built, so no logged cost).
  temps_.push_back(NewEmptyIndex("T0"));
  temp_used_ = 0;
  if (days.empty()) return Status::OK();

  // T_1 = BuildIndex({d_k}); T_i = copy(T_{i-1}) + d_{k-i+1}: T_i holds the
  // i most recent days of `days`.
  std::vector<Day> descending(days.rbegin(), days.rend());
  if (env_.maintenance.enabled() && descending.size() > 1) {
    // Parallel ladder: every rung's contents are known up front (T_i = the i
    // most recent days), so instead of the serial copy chain each rung is an
    // independent packed build and they all run concurrently. One NextDisk
    // call, matching the serial path (T_1 is placed round-robin and the
    // copies inherit its disk).
    const SchemeEnv::Disk disk = NextDisk();
    std::vector<RungSpec> specs;
    specs.reserve(descending.size());
    TimeSet rung_days;
    for (size_t i = 0; i < descending.size(); ++i) {
      rung_days.insert(descending[i]);
      specs.push_back(RungSpec{"T" + std::to_string(i + 1), rung_days, disk});
    }
    WAVEKIT_RETURN_NOT_OK(BuildRungsParallel(std::move(specs), phase));
    temp_used_ = static_cast<int>(descending.size());
    return Status::OK();
  }
  WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> rung,
                           BuildIndex({descending[0]}, "T1", phase));
  temps_.push_back(rung);
  for (size_t i = 1; i < descending.size(); ++i) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> next,
        CopyIndex(*temps_.back(), "T" + std::to_string(i + 1), phase));
    WAVEKIT_RETURN_NOT_OK(AddToIndex({descending[i]}, &next, phase));
    temps_.push_back(std::move(next));
  }
  temp_used_ = static_cast<int>(descending.size());
  return Status::OK();
}

Status ReindexPlusPlusScheme::PromoteTemp(
    size_t j, std::shared_ptr<ConstituentIndex> temp) {
  temp->set_name(slots_[j]->name());
  LogRename(*temp);
  if (config_.technique == UpdateTechniqueKind::kPackedShadow) {
    WAVEKIT_RETURN_NOT_OK(PackIndex(&temp, Phase::kTransition));
  }
  return ReplaceSlot(j, std::move(temp));
}

Status ReindexPlusPlusScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  // Prepare the ladder for the first cluster (its first day, day 1, expires
  // first and is never re-added).
  TimeSet init_days = slots_[0]->time_set();
  init_days.erase(init_days.begin());
  return InitializeLadder(init_days, Phase::kStart);
}

Status ReindexPlusPlusScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));

  if (temp_used_ == 0) {
    // Cluster rotation completes: T_0 (which accumulated DaysToAdd) gets the
    // new day and becomes I_j; then precompute the next cluster's ladder.
    obs::Span span = TraceOp("REINDEX++.finish_rotation");
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, &temps_[0], Phase::kTransition));
    std::shared_ptr<ConstituentIndex> promoted = std::move(temps_[0]);
    temps_[0] = nullptr;
    WAVEKIT_RETURN_NOT_OK(PromoteTemp(j, std::move(promoted)));
    // The next cluster to rotate is the one holding tomorrow's expiring day.
    WAVEKIT_ASSIGN_OR_RETURN(size_t j_next, FindSlotContaining(expired + 1));
    TimeSet init_days = slots_[j_next]->time_set();
    init_days.erase(expired + 1);
    WAVEKIT_RETURN_NOT_OK(InitializeLadder(init_days, Phase::kPrecompute));
  } else {
    // Mid-rotation: the highest unused rung + the new day becomes I_j; the
    // next rung is topped up with all accumulated new days for later.
    obs::Span span = TraceOp("REINDEX++.mid_rotation");
    days_to_add_.insert(new_day.day);
    WAVEKIT_RETURN_NOT_OK(AddToIndex(
        {new_day.day}, &temps_[static_cast<size_t>(temp_used_)],
        Phase::kTransition));
    std::shared_ptr<ConstituentIndex> promoted =
        std::move(temps_[static_cast<size_t>(temp_used_)]);
    temps_[static_cast<size_t>(temp_used_)] = nullptr;
    WAVEKIT_RETURN_NOT_OK(PromoteTemp(j, std::move(promoted)));
    --temp_used_;
    WAVEKIT_RETURN_NOT_OK(AddToIndex(days_to_add_,
                                     &temps_[static_cast<size_t>(temp_used_)],
                                     Phase::kPrecompute));
  }
  return Status::OK();
}

Status ReindexPlusPlusScheme::DoAdopt() {
  WAVEKIT_RETURN_NOT_OK(Scheme::DoAdopt());
  // Reconstruct the mid-rotation ladder. Split the expiring cluster into OLD
  // days (d < min + |cluster|, expiring during this rotation) and RECENT
  // days (accumulated since the rotation began). The uninterrupted ladder at
  // this point holds: T_i = the i most recent remaining old days for
  // i < TempUsed; the top rung additionally carries every recent day; and
  // once TempUsed reaches 0, T_0 carries exactly the recent days.
  const Day oldest = current_day_ - config_.window + 1;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(oldest));
  const TimeSet& cluster = slots_[j]->time_set();
  const Day old_limit = *cluster.begin() + static_cast<Day>(cluster.size());
  TimeSet recent;
  std::vector<Day> old_rest_descending;
  for (auto it = cluster.rbegin(); it != cluster.rend(); ++it) {
    if (*it >= old_limit) {
      recent.insert(*it);
    } else if (*it != oldest) {
      old_rest_descending.push_back(*it);
    }
  }

  for (auto& temp : temps_) {
    if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(DropIndex(temp));
  }
  temps_.clear();
  days_to_add_ = recent;
  temp_used_ = static_cast<int>(old_rest_descending.size());

  // T_0: empty mid-rotation; the accumulated recent days once the ladder is
  // spent.
  if (temp_used_ == 0) {
    if (recent.empty()) {
      temps_.push_back(NewEmptyIndex("T0"));
    } else {
      WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> t0,
                               BuildIndex(recent, "T0", Phase::kPrecompute));
      temps_.push_back(std::move(t0));
    }
    return Status::OK();
  }
  temps_.push_back(NewEmptyIndex("T0"));
  if (env_.maintenance.enabled() && temp_used_ > 1) {
    // Same rebuild, with the rungs built concurrently. NextDisk is called
    // per rung in ladder order, mirroring the serial loop's placement.
    std::vector<RungSpec> specs;
    specs.reserve(static_cast<size_t>(temp_used_));
    TimeSet prefix;
    for (int i = 1; i <= temp_used_; ++i) {
      prefix.insert(old_rest_descending[static_cast<size_t>(i - 1)]);
      TimeSet contents = prefix;
      if (i == temp_used_) {
        contents.insert(recent.begin(), recent.end());  // the topped-up rung
      }
      specs.push_back(RungSpec{"T" + std::to_string(i), std::move(contents),
                               NextDisk()});
    }
    return BuildRungsParallel(std::move(specs), Phase::kPrecompute);
  }
  TimeSet rung_days;
  for (int i = 1; i <= temp_used_; ++i) {
    rung_days.insert(old_rest_descending[static_cast<size_t>(i - 1)]);
    TimeSet contents = rung_days;
    if (i == temp_used_) {
      contents.insert(recent.begin(), recent.end());  // the topped-up rung
    }
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> rung,
        BuildIndex(contents, "T" + std::to_string(i), Phase::kPrecompute));
    temps_.push_back(std::move(rung));
  }
  return Status::OK();
}

std::vector<const ConstituentIndex*> ReindexPlusPlusScheme::TemporaryIndexes()
    const {
  std::vector<const ConstituentIndex*> out;
  for (const auto& temp : temps_) {
    if (temp != nullptr) out.push_back(temp.get());
  }
  return out;
}

}  // namespace wavekit
