// WaveService: a thread-safe serving wrapper around a wave index.
//
// This operationalizes the paper's shadow-updating story: "queries can be
// serviced using the old index, while the new index is being updated. Hence
// no concurrency control is required." A single maintenance thread calls
// AdvanceDay; any number of query threads probe and scan concurrently. Each
// query runs against an immutable snapshot of the constituent set — shadow
// updates only ever create new ConstituentIndex objects and retire old ones,
// so a snapshot stays valid (and internally consistent) for as long as a
// query holds it.
//
// The read path is concurrent end to end: device reads are lock-free
// (SynchronizedMeteredDevice locks writes only), the optional block cache is
// lock-striped (ShardedCachedDevice), and metrics are relaxed atomics plus a
// lock-free histogram — query threads never share a mutex.

#ifndef WAVEKIT_WAVE_WAVE_SERVICE_H_
#define WAVEKIT_WAVE_WAVE_SERVICE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.h"

#include "obs/event_journal.h"
#include "obs/latency_device.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/sharded_cached_device.h"
#include "storage/synchronized_device.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "wave/day_store.h"
#include "wave/scheme.h"
#include "wave/scrubber.h"
#include "wave/wave_index.h"

namespace wavekit {

/// \brief Operational metrics of a WaveService.
struct ServiceMetrics {
  uint64_t probes = 0;
  uint64_t scans = 0;
  uint64_t days_advanced = 0;
  /// AdvanceDayAsync submissions (each is later applied in order, or dropped
  /// if an earlier one failed).
  uint64_t async_advances = 0;
  /// Async advances queued or running at snapshot time.
  uint64_t pending_advances = 0;
  /// AdvanceDay calls that failed; the service keeps serving the last good
  /// snapshot (degraded: stale window, possibly unhealthy constituents).
  uint64_t degraded_advances = 0;
  /// Queries answered with Status::PartialResult (degraded-mode serving).
  uint64_t partial_results = 0;
  /// Retry/fault counters of the maintenance scheme.
  FaultStats faults;
  /// Wall-clock probe latency in microseconds (log-bucketed percentiles).
  Histogram probe_latency_us;
  /// Wall-clock scan latency in microseconds.
  Histogram scan_latency_us;
  /// Wall-clock AdvanceDay latency in microseconds.
  Histogram advance_latency_us;
  /// Buckets whose CRC-32C was verified (read path + scrub + recovery).
  uint64_t checksum_verified_buckets = 0;
  /// Buckets served from verified-resident cache blocks, so batch scans
  /// skipped re-verifying them (storage/device.h ReadBatchTracked).
  uint64_t checksum_trusted_buckets = 0;
  /// Checksum mismatches detected anywhere.
  uint64_t corruptions_detected = 0;
  /// Constituents quarantined after a mismatch.
  uint64_t quarantines = 0;
  /// Completed scrub passes / bucket extents verified / bytes re-read by the
  /// background scrubber.
  uint64_t scrub_passes = 0;
  uint64_t scrub_extents = 0;
  uint64_t scrub_bytes = 0;
  /// Constituents rebuilt from segment data by self-healing, and heals
  /// skipped because the day store no longer held the source days.
  uint64_t constituents_healed = 0;
  uint64_t heals_skipped = 0;
  /// Retry backoff sleeps in microseconds (exported as the
  /// wavekit_retry_backoff_seconds summary).
  Histogram retry_backoff_us;
};

/// \brief Concurrent wave-index server: one writer, many readers.
class WaveService {
 public:
  struct Options {
    SchemeKind scheme = SchemeKind::kWata;
    SchemeConfig config;
    uint64_t device_capacity = uint64_t{1} << 30;

    /// Storage backend, by BackendRegistry name: "memory" (default — the
    /// paper's modeled device, and what the deterministic sim harness
    /// requires), "file", "uring", or "mmap". Persistent backends put real
    /// bytes under the same decorator stack (meter, cache, fault seam).
    std::string storage_backend = "memory";

    /// Backing file for persistent backends; ignored by "memory".
    std::string storage_path;

    /// O_DIRECT for "file"/"uring": bypass the page cache so the device's
    /// seek/transfer behaviour is the real disk's. Raises the extent
    /// allocator's default alignment to kDirectIoAlignment.
    bool direct_io = false;

    /// io_uring submission-queue depth for the "uring" backend.
    int io_queue_depth = 64;

    /// Retry behaviour for transient I/O errors inside maintenance
    /// primitives (default: no retries).
    RetryPolicy retry;

    /// Test/chaos seam: when set, called once at construction with the raw
    /// base device (the storage backend); the returned decorator (e.g. a
    /// FaultInjectingDevice) becomes the device the whole stack runs on. The
    /// service owns the decorator; it must not be null.
    std::function<std::unique_ptr<Device>(Device* inner)> device_interposer;

    /// Determinism seam: when set, every internal pool (query fan-out,
    /// maintenance fan-out, async advance runner) is created through this
    /// factory instead of `new ThreadPool(threads)`. The simulation harness
    /// supplies testing::SimExecutor instances so task interleaving is a
    /// seeded, reproducible schedule. `role` is one of "query",
    /// "maintenance", "advance".
    std::function<std::unique_ptr<ThreadPool>(int threads,
                                              const std::string& role)>
        pool_factory;

    /// Time source for latency histograms and tracer timestamps. Defaults
    /// to the wall clock; the simulation harness injects a SimClock. Must
    /// outlive the service.
    Clock* clock = nullptr;

    /// When > 1, the service owns a ThreadPool of this many workers and
    /// TimedIndexProbe / IndexProbe fan the per-constituent probes out over
    /// it (paper Section 8: "the queries across indexes can be easily
    /// parallelized"). 0 or 1 keeps probes on the calling thread.
    int num_query_threads = 1;

    /// When > 1, the service owns a maintenance ThreadPool of this many
    /// workers and the scheme's Section 2.2 primitives fan their bulk work
    /// out on it: packed builds partition and write concurrently (with
    /// batched writes), CP clones copy bucket ranges in parallel, and
    /// REINDEX++ builds its ladder temporaries concurrently. 1 (the
    /// default) keeps maintenance fully serial — the exact op-for-op code
    /// paths the paper's cost model meters.
    int num_maintenance_threads = 1;

    /// When > 0, constituent I/O goes through a lock-striped block cache of
    /// this many blocks layered above the meter, so hot-bucket hits cost no
    /// modeled seeks and concurrent probes of distinct buckets do not
    /// contend. 0 disables caching.
    size_t cache_blocks = 0;
    uint64_t cache_block_size = 4096;
    size_t cache_shards = 16;

    /// When set, the service registers all of its observability — device
    /// phase counters, cache shard stats, pool depth, and the service
    /// probe/scan/advance counters and latency histograms — with this
    /// registry at construction and unregisters them in its destructor. The
    /// registry must outlive the service.
    obs::MetricsRegistry* metrics_registry = nullptr;

    /// Fraction of AdvanceDay calls traced (root span + child spans for each
    /// maintenance primitive the scheme ran). 0 disables tracing.
    double trace_sample_rate = 0.0;

    /// Completed spans kept in the tracer's in-memory ring.
    size_t trace_ring_capacity = 256;

    /// When > 0, any traced span at least this slow also emits one WARNING
    /// log line.
    uint64_t slow_op_threshold_us = 0;

    /// When true, a LatencyTrackingDevice is stacked under the meter and
    /// records measured wall-clock per-op latency histograms labeled by
    /// phase, plus observed-vs-modeled drift gauges (registered when
    /// metrics_registry is set). Most useful on real-disk backends.
    bool track_device_latency = false;

    /// When > 0 (and metrics_registry is set), the service owns a
    /// TimeSeriesCollector sampling the registry at most every this many
    /// microseconds. Samples are taken on the maintenance path (after each
    /// AdvanceDay) via the injected clock — fully deterministic under the
    /// sim harness. Serving deployments that want wall-clock cadence
    /// independent of maintenance set collector_background_thread.
    uint64_t collector_interval_us = 0;
    size_t collector_ring_capacity = 128;
    /// Starts the collector's background sampling thread (never under the
    /// sim harness: thread pacing is wall-clock).
    bool collector_background_thread = false;

    /// When > 0, a background-scrub pass (checksum verification of every
    /// live extent, wave/scrubber.h) runs on the maintenance path after any
    /// successful AdvanceDay once at least this many injected-clock
    /// microseconds have passed since the last pass. Corruption quarantines
    /// the constituent (degraded serving, queries keep answering) and — with
    /// auto_heal — is repaired online immediately. 0 disables periodic
    /// scrubbing; Scrub() always works.
    uint64_t scrub_interval_us = 0;

    /// Max bytes per scrub read batch (bounds the scrubber's I/O burst).
    uint64_t scrub_io_batch_bytes = uint64_t{1} << 20;

    /// Injected-clock sleep between scrub batches (rate limiting:
    /// scrub_io_batch_bytes per pause).
    uint64_t scrub_pause_us = 0;

    /// When true, any scrub (periodic or manual) that quarantined
    /// constituents immediately rebuilds them from segment data and
    /// republishes (Scheme::HealUnhealthy) on the same maintenance path.
    bool auto_heal = false;

    /// When > 0, the service owns an EventJournal recording maintenance
    /// lifecycle events (advance start/commit/rollback, retries,
    /// degraded-mode entry/exit) in a ring of this many events.
    size_t event_ring_capacity = 0;
    /// Optional JSONL sink for the event journal (requires
    /// event_ring_capacity > 0).
    std::string event_jsonl_path;
  };

  /// Creates the service. Rejects in-place updating: readers would observe
  /// buckets mutating underneath them (this is exactly the concurrency
  /// control the paper's shadow techniques exist to avoid).
  static Result<std::unique_ptr<WaveService>> Create(Options options);

  ~WaveService();

  // --- Maintenance (single client thread) -----------------------------------
  //
  // Start / AdvanceDay / AdvanceDayAsync / WaitForMaintenance are driven by
  // ONE maintenance client thread; any number of query threads run
  // concurrently with all of them. Transitions themselves may execute on a
  // background runner (AdvanceDayAsync) — an internal mutex serializes them
  // against synchronous AdvanceDay calls.

  /// Builds the initial wave index from days 1..W.
  Status Start(std::vector<DayBatch> first_window);

  /// Incorporates the next day. Readers keep getting answers throughout —
  /// from the pre-transition snapshot until the new one is published.
  Status AdvanceDay(DayBatch new_day);

  /// Queues the transition to run on a background maintenance thread and
  /// returns immediately; queries keep serving the current snapshot until
  /// the new one is atomically published (the same swap AdvanceDay does).
  /// Queued transitions apply strictly in submission order. Failures are
  /// sticky: once one fails, later queued advances are dropped and
  /// WaitForMaintenance reports the first failure.
  void AdvanceDayAsync(DayBatch new_day);

  /// Blocks until every queued async advance has been applied (or dropped
  /// after a failure) and returns the sticky first failure, if any.
  Status WaitForMaintenance();

  /// One manual scrub pass over the current constituent set (serialized with
  /// AdvanceDay). Corruption is reported in the ScrubReport and quarantines
  /// the constituent; with Options::auto_heal it is also healed and the new
  /// snapshot published before this returns. Only infrastructure failures
  /// fail the call.
  Result<ScrubReport> Scrub();

  /// Online self-healing: rebuilds every unhealthy (quarantined) constituent
  /// whose source days the day store still holds, publishes the healed
  /// snapshot, and clears the degraded flag when the wave is whole again.
  /// Serialized with AdvanceDay.
  Result<Scheme::HealReport> Heal();

  /// Async advances queued or running right now (gauge; any thread).
  int pending_advances() const {
    return pending_advances_.load(std::memory_order_relaxed);
  }

  // --- Queries (any thread, any time after Start) ---------------------------

  Status TimedIndexProbe(const DayRange& range, const Value& value,
                         std::vector<Entry>* out,
                         QueryStats* stats = nullptr) const;
  Status IndexProbe(const Value& value, std::vector<Entry>* out,
                    QueryStats* stats = nullptr) const;
  Status TimedSegmentScan(const DayRange& range, const EntryCallback& callback,
                          QueryStats* stats = nullptr) const;

  /// The newest day readers may see (monotonic; readers racing with
  /// AdvanceDay may still see the previous snapshot).
  Day current_day() const { return published_day_.load(); }

  int window() const { return options_.config.window; }

  /// The snapshot queries would use right now (for inspection/tests).
  std::shared_ptr<const WaveIndex> Snapshot() const;

  /// Per-codec bucket totals summed over the current snapshot's
  /// constituents (see ConstituentIndex::CodecStats). Zeroes before Start.
  ConstituentIndex::CodecBreakdown CodecTotals() const;

  /// A copy of the current operational metrics (thread-safe, lock-free).
  ServiceMetrics Metrics() const;

  /// Zeroes the metrics (thread-safe; not linearizable against in-flight
  /// queries).
  void ResetMetrics();

  /// The block cache, or nullptr when Options::cache_blocks == 0.
  const ShardedCachedDevice* cache() const { return cache_.get(); }

  /// The probe fan-out pool, or nullptr when num_query_threads <= 1.
  ThreadPool* query_pool() const { return query_pool_.get(); }

  /// The maintenance fan-out pool, or nullptr when
  /// num_maintenance_threads <= 1.
  ThreadPool* maintenance_pool() const { return maintenance_pool_.get(); }

  /// The maintenance tracer (always present; inert at sample rate 0).
  obs::Tracer* tracer() const { return tracer_.get(); }

  /// The event journal, or nullptr when event_ring_capacity == 0.
  obs::EventJournal* events() const { return events_.get(); }

  /// The time-series collector, or nullptr when collector_interval_us == 0
  /// or no metrics registry was configured.
  obs::TimeSeriesCollector* collector() const { return collector_.get(); }

  /// The measured-latency decorator, or nullptr when
  /// track_device_latency == false.
  const obs::LatencyTrackingDevice* latency_device() const {
    return latency_.get();
  }

  /// Shared integrity counters (read path + scrubber + recovery).
  const IntegrityStats& integrity() const { return integrity_; }

  /// True while the service is serving a stale snapshot because the last
  /// AdvanceDay failed, or while a corrupt constituent is quarantined
  /// awaiting heal (flips back on the next successful advance / completed
  /// heal). The /healthz endpoint keys off this.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Why the service is degraded (empty when healthy).
  std::string degraded_detail() const;

  /// Writer-side accessors (not thread-safe against maintenance; call
  /// WaitForMaintenance first when async advances may be in flight).
  const Scheme& scheme() const { return *scheme_; }
  MeteredDevice* device() { return &device_; }

  /// The raw storage backend under the decorator stack (for backend-aware
  /// tests and the bench suite; treat as read-only while serving).
  Device* base_device() { return base_device_.get(); }
  const std::string& storage_backend() const {
    return options_.storage_backend;
  }

 private:
  WaveService(Options options, std::unique_ptr<Device> base_device);

  /// The AdvanceDay body; caller holds advance_mutex_.
  Status AdvanceDayLocked(DayBatch new_day);

  /// One scrub pass (caller holds advance_mutex_); quarantines + optional
  /// auto-heal. Runs INLINE on the maintenance path — never submitted to a
  /// pool, which could deadlock against advance_mutex_.
  Result<ScrubReport> ScrubLocked();

  /// Heal + republish (caller holds advance_mutex_).
  Result<Scheme::HealReport> HealLocked();

  /// Runs ScrubLocked when scrub_interval_us has elapsed since the last
  /// pass (caller holds advance_mutex_).
  void MaybeScrubLocked();

  void Publish();
  void RegisterMetrics();

  /// Flips the degraded flag/detail and journals the mode change when the
  /// flag actually transitioned.
  void SetDegraded(bool degraded, const std::string& detail, Day day);

  /// A pool of `threads` workers for `role`, via Options::pool_factory when
  /// set (determinism seam) or a plain ThreadPool otherwise.
  std::unique_ptr<ThreadPool> MakePool(int threads, const std::string& role);

  /// Elapsed microseconds on the injected clock (clamped to >= 1).
  uint64_t MicrosSince(uint64_t start_us) const;

  Options options_;
  Clock* clock_;  // options_.clock or the wall clock
  std::unique_ptr<Device> base_device_;  // the selected storage backend
  std::unique_ptr<Device> interposed_;   // optional chaos layer over the base
  // Optional measured-latency layer between the chaos seam and the meter;
  // its phase labels come from device_ (set_phase_source after device_ is
  // built).
  std::unique_ptr<obs::LatencyTrackingDevice> latency_;
  SynchronizedMeteredDevice device_;
  std::unique_ptr<ShardedCachedDevice> cache_;  // above device_, optional
  ExtentAllocator allocator_;
  DayStore day_store_;
  std::unique_ptr<ThreadPool> query_pool_;  // optional probe fan-out
  // Before scheme_: the scheme's primitives fan out on this pool, so it must
  // be destroyed after the scheme.
  std::unique_ptr<ThreadPool> maintenance_pool_;
  std::unique_ptr<obs::Tracer> tracer_;     // before scheme_: schemes hold it
  // Before scheme_ and the advance runner: schemes journal retry events and
  // queued async transitions may still be draining at destruction.
  std::unique_ptr<obs::EventJournal> events_;
  std::unique_ptr<obs::TimeSeriesCollector> collector_;
  std::unique_ptr<Scheme> scheme_;
  // After scheme_: destroyed first, draining queued async transitions while
  // the scheme (and everything below it) is still alive. Created lazily by
  // the first AdvanceDayAsync (single maintenance client thread).
  std::unique_ptr<ThreadPool> advance_runner_;

  // Serializes transition application (sync AdvanceDay vs the async runner)
  // and guards async_error_.
  mutable std::mutex advance_mutex_;
  Status async_error_;
  std::atomic<int> pending_advances_{0};
  std::atomic<uint64_t> async_advances_{0};

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const WaveIndex> snapshot_;
  std::atomic<Day> published_day_{0};

  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_mutex_;
  std::string degraded_detail_;  // guarded by degraded_mutex_

  // Metrics: relaxed atomics + lock-free histograms — the only state query
  // threads write, and none of it is shared through a mutex.
  mutable std::atomic<uint64_t> probes_{0};
  mutable std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> days_advanced_{0};
  std::atomic<uint64_t> degraded_advances_{0};
  mutable std::atomic<uint64_t> partial_results_{0};
  mutable ConcurrentHistogram probe_latency_us_;
  mutable ConcurrentHistogram scan_latency_us_;
  ConcurrentHistogram advance_latency_us_;

  // Integrity: shared counters every constituent and the scrubber write
  // (atomics — query threads detect corruption too), the retry-backoff
  // histogram the scheme records sleeps into, and the scrub/heal tallies.
  IntegrityStats integrity_;
  ConcurrentHistogram retry_backoff_us_;
  uint64_t last_scrub_us_ = 0;  // guarded by advance_mutex_
  std::atomic<uint64_t> scrub_passes_{0};
  std::atomic<uint64_t> scrub_extents_{0};
  std::atomic<uint64_t> scrub_bytes_{0};
  std::atomic<uint64_t> constituents_healed_{0};
  std::atomic<uint64_t> heals_skipped_{0};
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_WAVE_SERVICE_H_
