# Empty compiler generated dependencies file for scam_copy_detection.
# This may be replaced when dependencies are built.
