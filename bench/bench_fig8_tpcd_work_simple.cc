// Figure 8: total daily work for TPC-D vs n under SIMPLE shadow updating
// (compare against Figure 7's packed shadowing).

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 8: TPC-D average total work per day vs n (W=100, simple "
         "shadowing)",
         "Same trends as Figure 7 but significantly MORE work than packed "
         "shadowing (deletes are paid separately; scans read unpacked S'). "
         "WATA does the least work and improves with n; it beats DEL and "
         "RATA by hours. If packed shadowing is unavailable, the paper "
         "recommends WATA (n = 10), or RATA (n = 10) if hard windows are "
         "required.");

  const model::CaseParams params = model::CaseParams::Tpcd();
  const int window = 100;
  const std::vector<int> ns = {1, 2, 4, 6, 8, 10, 14};

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled, simple shadow updating)");

  std::map<SchemeKind, std::map<int, double>> series;
  std::map<SchemeKind, std::map<int, double>> packed_series;
  for (int n : ns) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      series[kind][n] = TotalWorkOrDie(kind, UpdateTechniqueKind::kSimpleShadow,
                                       params, window, n)
                            .total();
      packed_series[kind][n] =
          TotalWorkOrDie(kind, UpdateTechniqueKind::kPackedShadow, params,
                         window, n)
              .total();
      row.push_back(Fmt(series[kind][n], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  bool packed_cheaper = true;
  for (int n : ns) {
    for (SchemeKind kind : {SchemeKind::kDel, SchemeKind::kWata}) {
      if (!SchemeValid(kind, n)) continue;
      packed_cheaper &= packed_series[kind][n] < series[kind][n];
    }
  }
  checks.Check(packed_cheaper,
               "packed shadowing does significantly less work than simple "
               "shadowing for DEL and WATA (Figures 7 vs 8)");
  // WATA minimal once n is large enough that its soft-window residual stops
  // hurting the scans (n >= 4; at n = 2 it still carries Y-1 ~ 33 extra
  // days through every scan).
  bool wata_min = true;
  for (int n : ns) {
    if (n < 4) continue;
    for (SchemeKind kind : PaperSchemes()) {
      if (kind == SchemeKind::kWata || !SchemeValid(kind, n)) continue;
      wata_min &= series[SchemeKind::kWata][n] <= series[kind][n] * 1.001;
    }
  }
  checks.Check(wata_min,
               "WATA performs the minimal work among the schemes (n >= 4)");
  checks.Check(series[SchemeKind::kWata][10] < series[SchemeKind::kWata][2],
               "WATA performs less work as n increases (smaller soft-window "
               "residual => cheaper scans)");
  checks.Check(series[SchemeKind::kDel][10] -
                       series[SchemeKind::kWata][10] >
                   5000,
               "WATA beats DEL by thousands of seconds (paper: ~hours/day)");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
