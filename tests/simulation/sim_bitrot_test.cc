// Bit-rot simulation, as a tier-1 test: seed-reproducible episodes per
// scheme where silent data-at-rest corruption is injected after committed
// days, and the harness asserts detection (scrub or query path), quarantine,
// subset-correct degraded serving, and online self-heal back to exact oracle
// answers — plus the byte-identical-trace determinism bar for the family.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "testing/sim_harness.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::EpisodeResult;
using testing::SimConfig;
using testing::Simulator;

SimConfig Config(uint64_t episodes) {
  SimConfig config;
  config.seed = testing::TestSeedBase();
  config.episodes = episodes;
  config.tmp_dir = ::testing::TempDir();
  return config;
}

class SimBitRotTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(SimBitRotTest, SmokeEpisodesDetectAndHeal) {
  const Simulator simulator(Config(8));
  const EpisodeResult result = simulator.RunManyBitRot(GetParam());
  EXPECT_TRUE(result.status.ok())
      << result.status << "\nrepro: " << result.repro << "\ntrace:\n"
      << result.trace;
}

TEST_P(SimBitRotTest, SameEpisodeProducesByteIdenticalTrace) {
  // Bit-rot episodes add corruption placement, scrub scheduling, and heal
  // decisions to the deterministic surface — all must replay byte-for-byte.
  const Simulator simulator(Config(1));
  for (uint64_t episode = 0; episode < 3; ++episode) {
    const EpisodeResult first = simulator.RunBitRotEpisode(GetParam(), episode);
    const EpisodeResult second =
        simulator.RunBitRotEpisode(GetParam(), episode);
    ASSERT_EQ(first.status.ToString(), second.status.ToString());
    EXPECT_EQ(first.trace, second.trace) << "episode " << episode;
  }
}

TEST_P(SimBitRotTest, EpisodesActuallyExerciseCorruption) {
  // Guard against a vacuous pass: the family's episodes must actually rot
  // something and heal it, visible in the trace.
  const Simulator simulator(Config(4));
  bool saw_rot = false;
  for (uint64_t episode = 0; episode < 4 && !saw_rot; ++episode) {
    const EpisodeResult result =
        simulator.RunBitRotEpisode(GetParam(), episode);
    ASSERT_TRUE(result.status.ok())
        << result.status << "\nrepro: " << result.repro;
    saw_rot = result.trace.find("quarantined=") != std::string::npos;
  }
  EXPECT_TRUE(saw_rot) << "no bit-rot quarantine across 4 episodes";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SimBitRotTest,
                         ::testing::ValuesIn(kAllSchemeKinds),
                         [](const auto& info) {
                           std::string name = SchemeKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wavekit
