file(REMOVE_RECURSE
  "CMakeFiles/maintenance_model_test.dir/model/maintenance_model_test.cc.o"
  "CMakeFiles/maintenance_model_test.dir/model/maintenance_model_test.cc.o.d"
  "maintenance_model_test"
  "maintenance_model_test.pdb"
  "maintenance_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
