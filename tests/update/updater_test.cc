// Contract tests run against all three update techniques of Section 2.1.

#include "update/update_technique.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class UpdaterTest : public ::testing::TestWithParam<UpdateTechniqueKind> {
 protected:
  UpdaterTest() : store_(uint64_t{1} << 28) {}

  // A packed starting index over days 1..3 plus the reference content.
  void BuildStartIndex() {
    for (Day d = 1; d <= 3; ++d) {
      batches_.push_back(MakeMixedBatch(d));
      reference_.Add(batches_.back());
    }
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches_) ptrs.push_back(&b);
    ConstituentIndex::Options options;
    auto built = IndexBuilder::BuildPacked(store_.device(), store_.allocator(),
                                           options, ptrs, "I1");
    ASSERT_TRUE(built.ok()) << built.status();
    index_ = std::move(built).ValueOrDie();
    updater_ = MakeUpdater(GetParam());
  }

  std::vector<Entry> WaveContent() {
    std::vector<Entry> out;
    Status s = index_->Scan(
        [&](const Value&, const Entry& e) { out.push_back(e); });
    EXPECT_TRUE(s.ok()) << s.ToString();
    ReferenceIndex::Sort(&out);
    return out;
  }

  Store store_;
  std::vector<DayBatch> batches_;  // stable addresses not guaranteed; copy!
  ReferenceIndex reference_;
  std::shared_ptr<ConstituentIndex> index_;
  std::unique_ptr<Updater> updater_;
};

TEST_P(UpdaterTest, AddDays) {
  BuildStartIndex();
  DayBatch day4 = MakeMixedBatch(4);
  reference_.Add(day4);
  const DayBatch* ptr = &day4;
  ASSERT_OK(updater_->AddDays(&index_, std::span<const DayBatch* const>(&ptr, 1)));
  EXPECT_EQ(WaveContent(), reference_.ScanAll(kDayNegInf, kDayPosInf));
  EXPECT_EQ(index_->time_set(), (TimeSet{1, 2, 3, 4}));
  ASSERT_OK(index_->CheckConsistency());
}

TEST_P(UpdaterTest, DeleteDays) {
  BuildStartIndex();
  ASSERT_OK(updater_->DeleteDays(&index_, TimeSet{1}));
  EXPECT_EQ(WaveContent(), reference_.ScanAll(2, kDayPosInf));
  EXPECT_EQ(index_->time_set(), (TimeSet{2, 3}));
  ASSERT_OK(index_->CheckConsistency());
}

TEST_P(UpdaterTest, CombinedAddAndDelete) {
  BuildStartIndex();
  DayBatch day4 = MakeMixedBatch(4);
  reference_.Add(day4);
  const DayBatch* ptr = &day4;
  ASSERT_OK(updater_->Apply(&index_, std::span<const DayBatch* const>(&ptr, 1),
                            TimeSet{1}));
  EXPECT_EQ(WaveContent(), reference_.ScanAll(2, kDayPosInf));
  EXPECT_EQ(index_->time_set(), (TimeSet{2, 3, 4}));
  ASSERT_OK(index_->CheckConsistency());
}

TEST_P(UpdaterTest, ShadowTechniquesReplaceTheObject) {
  BuildStartIndex();
  ConstituentIndex* before = index_.get();
  ASSERT_OK(updater_->DeleteDays(&index_, TimeSet{1}));
  if (GetParam() == UpdateTechniqueKind::kInPlace) {
    EXPECT_EQ(index_.get(), before);
  } else {
    EXPECT_NE(index_.get(), before);
  }
}

TEST_P(UpdaterTest, OldVersionServesQueriesUntilReleased) {
  BuildStartIndex();
  if (GetParam() == UpdateTechniqueKind::kInPlace) GTEST_SKIP();
  std::shared_ptr<ConstituentIndex> old_version = index_;
  ASSERT_OK(updater_->DeleteDays(&index_, TimeSet{1, 2, 3}));
  // The old version still answers with the full content (shadow semantics).
  std::vector<Entry> out;
  ASSERT_OK(old_version->Probe("alpha", &out));
  EXPECT_EQ(out.size(),
            reference_.Probe("alpha", kDayNegInf, kDayPosInf).size());
  EXPECT_EQ(index_->entry_count(), 0u);
}

TEST_P(UpdaterTest, PackednessAfterUpdate) {
  BuildStartIndex();
  DayBatch day4 = MakeMixedBatch(4);
  const DayBatch* ptr = &day4;
  ASSERT_OK(updater_->Apply(&index_, std::span<const DayBatch* const>(&ptr, 1),
                            TimeSet{1}));
  if (GetParam() == UpdateTechniqueKind::kPackedShadow) {
    EXPECT_TRUE(index_->packed());
    ASSERT_OK(index_->CheckPacked());
    EXPECT_EQ(index_->allocated_bytes(), index_->live_bytes());
  } else {
    EXPECT_FALSE(index_->packed());
  }
}

TEST_P(UpdaterTest, EmptyUpdateIsNoOp) {
  BuildStartIndex();
  const uint64_t entries = index_->entry_count();
  ASSERT_OK(updater_->Apply(&index_, {}, TimeSet{}));
  EXPECT_EQ(index_->entry_count(), entries);
}

TEST_P(UpdaterTest, SpaceIsReclaimedAfterShadowSwap) {
  BuildStartIndex();
  const uint64_t allocated_before = store_.allocator()->allocated_bytes();
  DayBatch day4 = MakeMixedBatch(4);
  const DayBatch* ptr = &day4;
  ASSERT_OK(updater_->Apply(&index_, std::span<const DayBatch* const>(&ptr, 1),
                            TimeSet{1}));
  // After the swap the old version (held only by us during the call) is
  // gone; allocation should be around one index worth, not two.
  EXPECT_LT(store_.allocator()->allocated_bytes(), 2 * allocated_before);
}

TEST_P(UpdaterTest, RepeatedDailyRotationStaysCorrect) {
  BuildStartIndex();
  for (Day d = 4; d <= 15; ++d) {
    DayBatch batch = MakeMixedBatch(d);
    reference_.Add(batch);
    const DayBatch* ptr = &batch;
    ASSERT_OK(updater_->Apply(
        &index_, std::span<const DayBatch* const>(&ptr, 1), TimeSet{d - 3}));
    ASSERT_OK(index_->CheckConsistency()) << "day " << d;
    EXPECT_EQ(WaveContent(), reference_.ScanAll(d - 2, kDayPosInf))
        << "day " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, UpdaterTest,
    ::testing::Values(UpdateTechniqueKind::kInPlace,
                      UpdateTechniqueKind::kSimpleShadow,
                      UpdateTechniqueKind::kPackedShadow),
    [](const auto& info) {
      std::string name = UpdateTechniqueKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wavekit
