#include "sim/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "testing/test_env.h"

namespace wavekit {
namespace sim {
namespace {

ExperimentResult FakeResult() {
  ExperimentResult result;
  DayStats day;
  day.day = 11;
  day.sim_transition_seconds = 1.5;
  day.sim_query_seconds = 0.25;
  day.model_transition_seconds = 3341;
  day.operation_bytes = 1024;
  day.constituent_bytes = 768;
  day.temporary_bytes = 256;
  day.wave_length_days = 7;
  day.wave_entries = 99;
  result.days.push_back(day);
  day.day = 12;
  result.days.push_back(day);
  return result;
}

TEST(CsvTest, HeaderAndRows) {
  const std::string csv = DayStatsToCsv(FakeResult());
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("day,sim_transition_s", 0), 0u);
  // 15 columns in the header.
  EXPECT_EQ(std::count(line.begin(), line.end(), ','), 14);
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 14);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_NE(csv.find("11,1.500000"), std::string::npos);
  EXPECT_NE(csv.find(",1024,768,256,"), std::string::npos);
}

TEST(CsvTest, WriteCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "wavekit_csv_test.csv";
  std::remove(path.c_str());
  ASSERT_OK(WriteCsv(FakeResult(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), DayStatsToCsv(FakeResult()));
  std::remove(path.c_str());
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_TRUE(WriteCsv(FakeResult(), "/no/such/dir/x.csv").IsIOError());
}

TEST(CsvTest, EmptyResultIsHeaderOnly) {
  ExperimentResult empty;
  const std::string csv = DayStatsToCsv(empty);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

}  // namespace
}  // namespace sim
}  // namespace wavekit
