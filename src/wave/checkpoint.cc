#include "wave/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/macros.h"

namespace wavekit {
namespace {

// Line-oriented text format. Values are written length-prefixed so any byte
// except '\n' is safe (and wavekit values never contain newlines):
//
//   wavekit-checkpoint 1
//   constituents <n>
//   constituent <len>:<name> packed <0|1> days <d1,d2,...> buckets <m>
//   bucket <len>:<value> <offset> <count> <capacity>
//   ...

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  *out += std::to_string(s.size());
  *out += ':';
  *out += s;
}

class Parser {
 public:
  explicit Parser(const std::string& contents) : in_(contents) {}

  Result<std::string> Token() {
    std::string token;
    if (!(in_ >> token)) return Status::InvalidArgument("truncated checkpoint");
    return token;
  }

  Result<int64_t> Int() {
    int64_t value;
    if (!(in_ >> value)) {
      return Status::InvalidArgument("expected integer in checkpoint");
    }
    return value;
  }

  Result<std::string> LengthPrefixed() {
    size_t length;
    char colon;
    if (!(in_ >> length >> colon) || colon != ':') {
      return Status::InvalidArgument("malformed length-prefixed string");
    }
    std::string out(length, '\0');
    if (!in_.read(out.data(), static_cast<std::streamsize>(length))) {
      return Status::InvalidArgument("truncated length-prefixed string");
    }
    return out;
  }

  Status Expect(const std::string& expected) {
    WAVEKIT_ASSIGN_OR_RETURN(std::string token, Token());
    if (token != expected) {
      return Status::InvalidArgument("expected '" + expected + "', found '" +
                                     token + "'");
    }
    return Status::OK();
  }

 private:
  std::istringstream in_;
};

Result<TimeSet> ParseDays(const std::string& csv) {
  TimeSet days;
  std::istringstream in(csv);
  std::string piece;
  while (std::getline(in, piece, ',')) {
    if (piece.empty()) continue;
    days.insert(static_cast<Day>(std::stol(piece)));
  }
  return days;
}

}  // namespace

Result<std::string> SerializeCheckpoint(const WaveIndex& wave) {
  std::string out;
  out += "wavekit-checkpoint " + std::to_string(kCheckpointVersion) + "\n";
  out += "constituents " + std::to_string(wave.num_constituents()) + "\n";
  for (const auto& constituent : wave.constituents()) {
    out += "constituent ";
    AppendLengthPrefixed(&out, constituent->name());
    out += std::string(" packed ") + (constituent->packed() ? "1" : "0");
    out += " days ";
    bool first = true;
    for (Day d : constituent->time_set()) {
      if (!first) out += ",";
      out += std::to_string(d);
      first = false;
    }
    if (constituent->time_set().empty()) out += "-";
    out += " buckets " + std::to_string(constituent->distinct_values()) + "\n";
    Status status = constituent->ForEachBucket(
        [&out](const Value& value, const BucketInfo& info) {
          out += "bucket ";
          AppendLengthPrefixed(&out, value);
          out += " " + std::to_string(info.extent.offset) + " " +
                 std::to_string(info.count) + " " +
                 std::to_string(info.capacity) + "\n";
        });
    WAVEKIT_RETURN_NOT_OK(status);
  }
  return out;
}

Status WriteCheckpoint(const WaveIndex& wave, const std::string& path) {
  WAVEKIT_ASSIGN_OR_RETURN(std::string contents, SerializeCheckpoint(wave));
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + temp_path + "'");
    out << contents;
    if (!out.flush()) return Status::IOError("write to '" + temp_path + "'");
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename '" + temp_path + "' -> '" + path + "'");
  }
  return Status::OK();
}

Result<WaveIndex> DeserializeCheckpoint(const std::string& contents,
                                        Device* device,
                                        ExtentAllocator* allocator,
                                        ConstituentIndex::Options options) {
  Parser parser(contents);
  WAVEKIT_RETURN_NOT_OK(parser.Expect("wavekit-checkpoint"));
  WAVEKIT_ASSIGN_OR_RETURN(int64_t version, parser.Int());
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  WAVEKIT_RETURN_NOT_OK(parser.Expect("constituents"));
  WAVEKIT_ASSIGN_OR_RETURN(int64_t num_constituents, parser.Int());
  if (num_constituents < 0) {
    return Status::InvalidArgument("negative constituent count");
  }

  WaveIndex wave;
  for (int64_t i = 0; i < num_constituents; ++i) {
    WAVEKIT_RETURN_NOT_OK(parser.Expect("constituent"));
    WAVEKIT_ASSIGN_OR_RETURN(std::string name, parser.LengthPrefixed());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("packed"));
    WAVEKIT_ASSIGN_OR_RETURN(int64_t packed, parser.Int());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("days"));
    WAVEKIT_ASSIGN_OR_RETURN(std::string days_csv, parser.Token());
    WAVEKIT_RETURN_NOT_OK(parser.Expect("buckets"));
    WAVEKIT_ASSIGN_OR_RETURN(int64_t num_buckets, parser.Int());

    auto index = std::make_shared<ConstituentIndex>(device, allocator, options,
                                                    name);
    for (int64_t b = 0; b < num_buckets; ++b) {
      WAVEKIT_RETURN_NOT_OK(parser.Expect("bucket"));
      WAVEKIT_ASSIGN_OR_RETURN(std::string value, parser.LengthPrefixed());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t offset, parser.Int());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t count, parser.Int());
      WAVEKIT_ASSIGN_OR_RETURN(int64_t capacity, parser.Int());
      if (count < 0 || capacity < count) {
        return Status::InvalidArgument("corrupt bucket bounds for '" + value +
                                       "'");
      }
      const Extent extent{static_cast<uint64_t>(offset),
                          static_cast<uint64_t>(capacity) * kEntrySize};
      WAVEKIT_RETURN_NOT_OK(
          allocator->Reserve(extent).WithContext("reserving bucket of '" +
                                                 value + "'"));
      WAVEKIT_RETURN_NOT_OK(index->InstallBucket(
          value, extent, static_cast<uint32_t>(count),
          static_cast<uint32_t>(capacity)));
    }
    if (days_csv != "-") {
      WAVEKIT_ASSIGN_OR_RETURN(index->mutable_time_set(), ParseDays(days_csv));
    }
    index->set_packed(packed != 0);
    WAVEKIT_RETURN_NOT_OK(index->CheckConsistency());
    wave.AddIndex(std::move(index));
  }
  return wave;
}

Result<WaveIndex> LoadCheckpoint(const std::string& path, Device* device,
                                 ExtentAllocator* allocator,
                                 ConstituentIndex::Options options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open checkpoint '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeCheckpoint(buffer.str(), device, allocator, options);
}

}  // namespace wavekit
