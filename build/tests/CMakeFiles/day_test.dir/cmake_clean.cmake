file(REMOVE_RECURSE
  "CMakeFiles/day_test.dir/util/day_test.cc.o"
  "CMakeFiles/day_test.dir/util/day_test.cc.o.d"
  "day_test"
  "day_test.pdb"
  "day_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
