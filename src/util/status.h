// Status: lightweight error propagation without exceptions.
//
// wavekit follows the Status/Result idiom used by Arrow and RocksDB: functions
// that can fail return a Status (or a Result<T> when they also produce a
// value), and callers propagate failures with the WAVEKIT_RETURN_NOT_OK /
// WAVEKIT_ASSIGN_OR_RETURN macros declared in util/macros.h.

#ifndef WAVEKIT_UTIL_STATUS_H_
#define WAVEKIT_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace wavekit {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIOError = 9,
  /// The operation produced usable but incomplete results (degraded-mode
  /// serving: some constituents were unhealthy or unreadable and skipped).
  kPartialResult = 10,
  /// Stored bytes failed checksum verification: the device returned data,
  /// but not the data that was written (bit rot, torn or misdirected I/O).
  /// Unlike kIOError this is not transient — retrying rereads the same
  /// corrupt bytes; the constituent must be quarantined and healed.
  kDataLoss = 11,
};

/// \brief Returns a stable human-readable name for a StatusCode
/// (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (a null pointer); error state is
/// heap-allocated and shared. A Status is contextually convertible to bool
/// (true == ok) via ok().
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// StatusCode::kOk; use the default constructor (or Status::OK()) for that.
  Status(StatusCode code, std::string msg);

  /// \brief The OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status PartialResult(std::string msg) {
    return Status(StatusCode::kPartialResult, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk for an OK status.
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty for an OK status.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsPartialResult() const { return code() == StatusCode::kPartialResult; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with `context` prefixed to the message, for adding
  /// call-site information while propagating an error. OK stays OK.
  Status WithContext(const std::string& context) const;

  /// Aborts the process if the status is not OK (used at places where an
  /// error indicates a library bug rather than a caller mistake).
  void Abort(const std::string& context = "") const;

  bool Equals(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  friend bool operator==(const Status& a, const Status& b) { return a.Equals(b); }
  friend bool operator!=(const Status& a, const Status& b) { return !a.Equals(b); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_STATUS_H_
