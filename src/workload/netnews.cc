#include "workload/netnews.h"

#include <algorithm>
#include <cstdio>

namespace wavekit {
namespace workload {

NetnewsGenerator::NetnewsGenerator(NetnewsConfig config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.vocabulary_size, config.zipf_theta) {}

Value NetnewsGenerator::WordForRank(uint64_t rank) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "w%08llu",
                static_cast<unsigned long long>(rank));
  return buf;
}

Value NetnewsGenerator::SampleWord(Rng& rng) const {
  return WordForRank(zipf_.Sample(rng));
}

DayBatch NetnewsGenerator::GenerateDay(Day day, uint64_t articles_override) {
  // Per-day fork keeps the stream deterministic regardless of whether other
  // days were generated in between.
  Rng day_rng = Rng(config_.seed).Fork(static_cast<uint64_t>(day));
  const uint64_t articles =
      articles_override != 0 ? articles_override : config_.articles_per_day;

  DayBatch batch;
  batch.day = day;
  batch.records.reserve(articles);
  for (uint64_t a = 0; a < articles; ++a) {
    Record record;
    record.record_id = next_record_id_++;
    record.day = day;
    // Article length: uniform in [mean/2, 3*mean/2] for a little variety.
    const uint32_t length = static_cast<uint32_t>(day_rng.UniformRange(
        config_.words_per_article / 2, (config_.words_per_article * 3) / 2));
    record.values.reserve(length);
    for (uint32_t w = 0; w < std::max<uint32_t>(length, 1); ++w) {
      record.values.push_back(WordForRank(zipf_.Sample(day_rng)));
    }
    batch.records.push_back(std::move(record));
  }
  return batch;
}

}  // namespace workload
}  // namespace wavekit
