# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scheme_property_test.
