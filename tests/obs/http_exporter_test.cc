#include "obs/http_exporter.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace wavekit {
namespace obs {
namespace {

/// Raw-socket HTTP client: sends `request` verbatim and returns everything
/// the server writes until it closes the connection.
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port,
                    "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

class HttpExporterTest : public ::testing::Test {
 protected:
  HttpExporterTest() {
    registry_.AddCounter("wavekit_test_total", "A counter.")->Increment(5);
  }

  HttpExporter::Options BaseOptions() {
    HttpExporter::Options options;
    options.registry = &registry_;
    return options;
  }

  MetricsRegistry registry_;
};

TEST_F(HttpExporterTest, HandleRoutesMetricsEndpoints) {
  HttpExporter exporter(BaseOptions());

  const auto metrics = exporter.Handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("wavekit_test_total 5"), std::string::npos)
      << metrics.body;

  const auto json = exporter.Handle("GET", "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(json.body.find("wavekit_test_total"), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_EQ(exporter.Handle("GET", "/metrics?refresh=1").status, 200);
}

TEST_F(HttpExporterTest, HandleRejectsUnknownPathAndMethod) {
  HttpExporter exporter(BaseOptions());
  EXPECT_EQ(exporter.Handle("GET", "/nope").status, 404);
  EXPECT_EQ(exporter.Handle("POST", "/metrics").status, 405);
  EXPECT_EQ(exporter.Handle("PUT", "/healthz").status, 405);
}

TEST_F(HttpExporterTest, UnconfiguredSourcesReturn404) {
  HttpExporter exporter(BaseOptions());  // no collector/events/tracer
  EXPECT_EQ(exporter.Handle("GET", "/timeseries.json").status, 404);
  EXPECT_EQ(exporter.Handle("GET", "/events.json").status, 404);
  EXPECT_EQ(exporter.Handle("GET", "/trace.json").status, 404);
}

TEST_F(HttpExporterTest, ConfiguredSourcesServeTheirJson) {
  TimeSeriesCollector::Options collector_options;
  collector_options.registry = &registry_;
  TimeSeriesCollector collector(collector_options);
  collector.SampleNow();
  EventJournal journal(EventJournal::Options{});
  journal.Append(EventType::kServiceStart, 7, "WATA*");
  Tracer::Options tracer_options;
  tracer_options.sample_rate = 1.0;
  Tracer tracer(tracer_options);
  { Span span = tracer.StartSpan("AdvanceDay"); }

  HttpExporter::Options options = BaseOptions();
  options.collector = &collector;
  options.events = &journal;
  options.tracer = &tracer;
  HttpExporter exporter(std::move(options));

  EXPECT_NE(exporter.Handle("GET", "/timeseries.json")
                .body.find("\"samples_taken\": 1"),
            std::string::npos);
  EXPECT_NE(exporter.Handle("GET", "/events.json").body.find("service_start"),
            std::string::npos);
  EXPECT_NE(exporter.Handle("GET", "/trace.json").body.find("AdvanceDay"),
            std::string::npos);
}

TEST_F(HttpExporterTest, HealthzReflectsHealthCallback) {
  std::atomic<bool> healthy{true};
  HttpExporter::Options options = BaseOptions();
  options.health = [&healthy](std::string* detail) {
    if (healthy.load()) return true;
    *detail = "advance to day 9 failed";
    return false;
  };
  HttpExporter exporter(std::move(options));

  const auto ok = exporter.Handle("GET", "/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");

  healthy = false;
  const auto degraded = exporter.Handle("GET", "/healthz");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("advance to day 9 failed"), std::string::npos);
}

TEST_F(HttpExporterTest, ServesOverRealSocket) {
  HttpExporter::Options options = BaseOptions();
  options.port = 0;  // ephemeral
  HttpExporter exporter(std::move(options));
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_TRUE(exporter.running());
  ASSERT_GT(exporter.port(), 0);

  const std::string response = Get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("wavekit_test_total 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);

  const std::string health = Get(exporter.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent
}

TEST_F(HttpExporterTest, ConcurrentScrapesAllSucceed) {
  HttpExporter exporter(BaseOptions());
  ASSERT_TRUE(exporter.Start().ok());
  const uint16_t port = exporter.port();

  constexpr int kThreads = 8;
  constexpr int kRequestsEach = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([port, &ok_count] {
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::string response = Get(port, "/metrics");
        if (response.find("200 OK") != std::string::npos &&
            response.find("wavekit_test_total") != std::string::npos) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kRequestsEach);
  EXPECT_EQ(exporter.requests_served(),
            static_cast<uint64_t>(kThreads * kRequestsEach));
  exporter.Stop();
}

TEST_F(HttpExporterTest, MalformedRequestsGet400AndDoNotWedgeTheServer) {
  HttpExporter exporter(BaseOptions());
  ASSERT_TRUE(exporter.Start().ok());
  const uint16_t port = exporter.port();

  EXPECT_NE(RawRequest(port, "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(RawRequest(port, "\r\n\r\n").find("400"), std::string::npos);
  // Method-only request line (no path): still a clean 400.
  EXPECT_NE(RawRequest(port, "GET\r\n\r\n").find("400"), std::string::npos);

  // The server survives the abuse and keeps serving real scrapes.
  EXPECT_NE(Get(port, "/metrics").find("200 OK"), std::string::npos);
  exporter.Stop();
}

TEST_F(HttpExporterTest, RestartRebindsSamePortImmediately) {
  // Regression for the util/net extraction: SO_REUSEADDR on the listener
  // means a restarted exporter can reclaim its port even though the previous
  // instance's connections are still draining through TIME_WAIT.
  auto options = BaseOptions();
  uint16_t port = 0;
  {
    HttpExporter exporter(options);
    ASSERT_TRUE(exporter.Start().ok());
    port = exporter.port();
    EXPECT_NE(Get(port, "/metrics").find("200 OK"), std::string::npos);
    exporter.Stop();
  }
  options.port = port;
  HttpExporter reborn(options);
  ASSERT_TRUE(reborn.Start().ok());
  EXPECT_EQ(reborn.port(), port);
  EXPECT_NE(Get(port, "/metrics").find("200 OK"), std::string::npos);
  reborn.Stop();
}

TEST_F(HttpExporterTest, IndexPageListsEndpoints) {
  HttpExporter exporter(BaseOptions());
  const auto index = exporter.Handle("GET", "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/healthz"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
