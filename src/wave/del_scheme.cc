#include "wave/del_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status DelScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  return Status::OK();
}

Status DelScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));
  switch (config_.technique) {
    case UpdateTechniqueKind::kInPlace: {
      // The delete does not need the new day's data: it runs as
      // pre-computation; the add is the transition critical path.
      obs::Span span = TraceOp("DEL.in_place");
      WAVEKIT_RETURN_NOT_OK(
          DeleteFromIndex({expired}, &slots_[j], Phase::kPrecompute));
      WAVEKIT_RETURN_NOT_OK(
          AddToIndex({new_day.day}, &slots_[j], Phase::kTransition));
      break;
    }
    case UpdateTechniqueKind::kSimpleShadow: {
      obs::Span span = TraceOp("DEL.simple_shadow");
      // Shadow copy + delete as pre-computation; when the new data arrives,
      // add it to the shadow and swap (Table 10: pre = X*CP + Del,
      // transition = Add).
      std::shared_ptr<ConstituentIndex> shadow;
      {
        WAVEKIT_ASSIGN_OR_RETURN(
            shadow,
            CopyIndex(*slots_[j], slots_[j]->name(), Phase::kPrecompute));
        WAVEKIT_RETURN_NOT_OK(
            DeleteFromIndex({expired}, &shadow, Phase::kPrecompute));
      }
      WAVEKIT_RETURN_NOT_OK(
          AddToIndex({new_day.day}, &shadow, Phase::kTransition));
      WAVEKIT_RETURN_NOT_OK(ReplaceSlot(j, std::move(shadow)));
      break;
    }
    case UpdateTechniqueKind::kPackedShadow: {
      // The smart copy merges the insert and drops the expired entries in a
      // single pass; it needs the new data, so everything is transition.
      obs::Span span = TraceOp("DEL.packed_shadow");
      WAVEKIT_RETURN_NOT_OK(UpdateIndex({new_day.day}, {expired}, &slots_[j],
                                        Phase::kTransition));
      break;
    }
  }
  return Status::OK();
}

}  // namespace wavekit
