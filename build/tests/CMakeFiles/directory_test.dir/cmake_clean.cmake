file(REMOVE_RECURSE
  "CMakeFiles/directory_test.dir/index/directory_test.cc.o"
  "CMakeFiles/directory_test.dir/index/directory_test.cc.o.d"
  "directory_test"
  "directory_test.pdb"
  "directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
