# Empty compiler generated dependencies file for scheme_factory_test.
# This may be replaced when dependencies are built.
