#include "util/fs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "testing/test_env.h"
#include "util/crash_point.h"

namespace wavekit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wavekit_fs_" + name;
}

TEST(FsTest, AtomicWriteThenReadRoundTrips) {
  const std::string path = TempPath("roundtrip");
  ASSERT_OK(AtomicWriteFile(path, "first"));
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  EXPECT_EQ(contents, "first");
  // Replacement is complete, never appended or mixed.
  ASSERT_OK(AtomicWriteFile(path, "the second version"));
  ASSERT_OK_AND_ASSIGN(contents, ReadFileToString(path));
  EXPECT_EQ(contents, "the second version");
  ASSERT_OK(RemoveFileDurable(path));
  EXPECT_FALSE(FileExists(path));
}

TEST(FsTest, ReadMissingFileIsNotFound) {
  const Status status = ReadFileToString(TempPath("never_written")).status();
  EXPECT_TRUE(status.IsNotFound()) << status;
}

TEST(FsTest, RemoveMissingFileIsOk) {
  EXPECT_OK(RemoveFileDurable(TempPath("never_written")));
}

TEST(FsTest, CrashBeforeRenameLeavesOldContents) {
  CrashPoints::Reset();
  const std::string path = TempPath("crash_before");
  ASSERT_OK(AtomicWriteFile(path, "durable", "scope"));
  CrashPoints::Arm("scope.before_rename");
  const Status crashed = AtomicWriteFile(path, "lost", "scope");
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed)) << crashed;
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  EXPECT_EQ(contents, "durable");  // the old complete file, untouched
  ASSERT_OK(RemoveFileDurable(path));
}

TEST(FsTest, CrashAfterRenameLeavesNewContents) {
  CrashPoints::Reset();
  const std::string path = TempPath("crash_after");
  ASSERT_OK(AtomicWriteFile(path, "old", "scope"));
  CrashPoints::Arm("scope.after_rename");
  const Status crashed = AtomicWriteFile(path, "new", "scope");
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed)) << crashed;
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  EXPECT_EQ(contents, "new");  // the rename is the commit point
  ASSERT_OK(RemoveFileDurable(path));
}

}  // namespace
}  // namespace wavekit
