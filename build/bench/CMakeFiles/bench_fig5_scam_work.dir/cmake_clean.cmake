file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scam_work.dir/bench_fig5_scam_work.cc.o"
  "CMakeFiles/bench_fig5_scam_work.dir/bench_fig5_scam_work.cc.o.d"
  "bench_fig5_scam_work"
  "bench_fig5_scam_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scam_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
