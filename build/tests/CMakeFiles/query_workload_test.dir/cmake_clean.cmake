file(REMOVE_RECURSE
  "CMakeFiles/query_workload_test.dir/workload/query_workload_test.cc.o"
  "CMakeFiles/query_workload_test.dir/workload/query_workload_test.cc.o.d"
  "query_workload_test"
  "query_workload_test.pdb"
  "query_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
