#include "index/index_builder.h"

#include <map>
#include <vector>

#include "util/macros.h"

namespace wavekit {

Result<std::unique_ptr<ConstituentIndex>> IndexBuilder::BuildPacked(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name) {
  auto index = std::make_unique<ConstituentIndex>(device, allocator, options,
                                                  std::move(name));
  // Pass 1: group entries per value. std::map keeps buckets in sorted value
  // order, which becomes the on-device layout order.
  std::map<Value, std::vector<Entry>> grouped;
  uint64_t total_entries = 0;
  for (const DayBatch* batch : batches) {
    for (const Record& record : batch->records) {
      for (size_t i = 0; i < record.values.size(); ++i) {
        grouped[record.values[i]].push_back(
            Entry{record.record_id, batch->day, record.AuxFor(i)});
        ++total_entries;
      }
    }
  }

  // Pass 2: one contiguous region; exactly-sized buckets written
  // back-to-back, so the write stream is fully sequential (one seek).
  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(total_entries * kEntrySize));
  uint64_t cursor = region.offset;
  for (const auto& [value, entries] : grouped) {
    const uint64_t length = entries.size() * kEntrySize;
    auto* bytes = reinterpret_cast<const std::byte*>(entries.data());
    WAVEKIT_RETURN_NOT_OK(
        device->Write(cursor, std::span<const std::byte>(bytes, length)));
    WAVEKIT_RETURN_NOT_OK(index->InstallBucket(
        value, Extent{cursor, length}, static_cast<uint32_t>(entries.size()),
        static_cast<uint32_t>(entries.size())));
    cursor += length;
  }

  for (const DayBatch* batch : batches) {
    index->mutable_time_set().insert(batch->day);
  }
  index->set_packed(true);
  return index;
}

Result<std::unique_ptr<ConstituentIndex>> IndexBuilder::BuildPacked(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options, const DayBatch& batch,
    std::string name) {
  const DayBatch* ptr = &batch;
  return BuildPacked(device, allocator, options,
                     std::span<const DayBatch* const>(&ptr, 1),
                     std::move(name));
}

}  // namespace wavekit
