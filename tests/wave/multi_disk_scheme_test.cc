// Multi-disk wave indexes (paper Section 8): constituents spread across a
// DiskArray, queries fan out over disks, correctness is unchanged.

#include <gtest/gtest.h>

#include <set>

#include "storage/disk_array.h"
#include "testing/test_env.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class MultiDiskSchemeTest : public ::testing::Test {
 protected:
  void StartScheme(SchemeKind kind, int window, int n, int num_disks) {
    disks_ = std::make_unique<DiskArray>(num_disks, uint64_t{1} << 26);
    SchemeEnv env;
    env.device = disks_->device(0);
    env.allocator = disks_->allocator(0);
    env.day_store = &day_store_;
    for (int i = 0; i < disks_->size(); ++i) {
      env.disks.push_back(
          SchemeEnv::Disk{disks_->device(i), disks_->allocator(i)});
    }
    SchemeConfig config;
    config.window = window;
    config.num_indexes = n;
    config.technique = UpdateTechniqueKind::kSimpleShadow;
    auto made = MakeScheme(kind, env, config);
    ASSERT_TRUE(made.ok()) << made.status();
    scheme_ = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) {
      DayBatch batch = MakeMixedBatch(d);
      reference_by_day_[d] = batch;
      first.push_back(std::move(batch));
    }
    ASSERT_OK(scheme_->Start(std::move(first)));
  }

  void Advance() {
    const Day d = scheme_->current_day() + 1;
    DayBatch batch = MakeMixedBatch(d);
    reference_by_day_[d] = batch;
    ASSERT_OK(scheme_->Transition(std::move(batch)));
  }

  // Devices hosting at least one constituent right now.
  std::set<const Device*> ConstituentDevices() const {
    std::set<const Device*> devices;
    for (const auto& c : scheme_->wave().constituents()) {
      devices.insert(c->device());
    }
    return devices;
  }

  std::unique_ptr<DiskArray> disks_;
  DayStore day_store_;
  std::map<Day, DayBatch> reference_by_day_;
  std::unique_ptr<Scheme> scheme_;
};

TEST_F(MultiDiskSchemeTest, ConstituentsSpreadAcrossDisks) {
  StartScheme(SchemeKind::kReindex, 8, 4, 4);
  EXPECT_EQ(ConstituentDevices().size(), 4u)
      << "Start should place each of the 4 constituents on its own disk";
  for (int i = 0; i < 16; ++i) Advance();
  EXPECT_GE(ConstituentDevices().size(), 2u);
}

TEST_F(MultiDiskSchemeTest, QueriesAreCorrectAcrossDisks) {
  StartScheme(SchemeKind::kReindex, 8, 4, 3);
  for (int i = 0; i < 12; ++i) {
    Advance();
    const Day d = scheme_->current_day();
    ReferenceIndex reference;
    for (const auto& [day, batch] : reference_by_day_) {
      if (day > d - 8 && day <= d) reference.Add(batch);
    }
    std::vector<Entry> got;
    ASSERT_OK(scheme_->wave().TimedIndexProbe(DayRange::Window(d, 8), "alpha",
                                              &got));
    ReferenceIndex::Sort(&got);
    ASSERT_EQ(got, reference.Probe("alpha", d - 7, d)) << "day " << d;
  }
}

TEST_F(MultiDiskSchemeTest, QueryTrafficTouchesMultipleDisks) {
  StartScheme(SchemeKind::kWata, 9, 3, 3);
  for (int i = 0; i < 6; ++i) Advance();
  disks_->ResetAll();
  disks_->SetPhaseAll(Phase::kQuery);
  std::vector<Entry> out;
  ASSERT_OK(scheme_->wave().IndexProbe("alpha", &out));
  int disks_with_reads = 0;
  for (int i = 0; i < disks_->size(); ++i) {
    if (disks_->device(i)->counters(Phase::kQuery).bytes_read > 0) {
      ++disks_with_reads;
    }
  }
  EXPECT_GE(disks_with_reads, 2)
      << "probing all constituents should fan out over the disk array";
  // Which is exactly why parallel elapsed < serial elapsed.
  const CostModel cost;
  EXPECT_LT(disks_->ParallelSeconds(cost, Phase::kQuery),
            disks_->SerialSeconds(cost, Phase::kQuery));
}

TEST_F(MultiDiskSchemeTest, SingleDiskConfigIsUnchanged) {
  // With no disk array every index lands on the primary device.
  Store store;
  DayStore day_store;
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 3;
  auto made = MakeScheme(SchemeKind::kDel,
                         SchemeEnv{store.device(), store.allocator(),
                                   &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));
  for (const auto& c : scheme->wave().constituents()) {
    EXPECT_EQ(c->device(), store.device());
  }
}

TEST_F(MultiDiskSchemeTest, AllSchemesRunOnDiskArrays) {
  for (SchemeKind kind : kAllSchemeKinds) {
    SCOPED_TRACE(SchemeKindName(kind));
    reference_by_day_.clear();
    day_store_.Prune(kDayPosInf);
    scheme_.reset();
    StartScheme(kind, 8, 4, 3);
    for (int i = 0; i < 10; ++i) Advance();
    for (const auto& c : scheme_->wave().constituents()) {
      ASSERT_OK(c->CheckConsistency());
    }
    if (scheme_->hard_window()) {
      ASSERT_EQ(scheme_->WaveLength(), 8);
    }
  }
}

}  // namespace
}  // namespace wavekit
