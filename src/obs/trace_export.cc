#include "obs/trace_export.h"

#include <cstdio>
#include <unordered_map>

namespace wavekit {
namespace obs {
namespace {

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderChromeTrace(const std::vector<SpanRecord>& spans) {
  // Trace ids are 64-bit span ids; Chrome's tid renders nicer as a small
  // dense integer, so number the traces in order of first appearance.
  std::unordered_map<uint64_t, uint64_t> track_of_trace;
  auto TrackFor = [&track_of_trace](uint64_t trace_id) {
    auto [it, inserted] =
        track_of_trace.emplace(trace_id, track_of_trace.size() + 1);
    return it->second;
  };

  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    out += "  {\"name\": \"" + EscapeJson(span.name) +
           "\", \"cat\": \"maintenance\", \"ph\": \"X\", \"ts\": " +
           std::to_string(span.start_us) +
           ", \"dur\": " + std::to_string(span.duration_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(TrackFor(span.trace_id)) +
           ", \"args\": {\"span_id\": " + std::to_string(span.span_id) +
           ", \"parent_span_id\": " + std::to_string(span.parent_span_id) +
           ", \"trace_id\": " + std::to_string(span.trace_id) +
           ", \"seeks\": " + std::to_string(span.seeks) +
           ", \"bytes_read\": " + std::to_string(span.bytes_read) +
           ", \"bytes_written\": " + std::to_string(span.bytes_written) +
           "}}";
    if (i + 1 < spans.size()) out += ",";
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

std::string RenderChromeTrace(const Tracer& tracer) {
  return RenderChromeTrace(tracer.CompletedSpans());
}

}  // namespace obs
}  // namespace wavekit
