#include "index/index_builder.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class IndexBuilderTest : public ::testing::TestWithParam<DirectoryKind> {
 protected:
  IndexBuilderTest() : store_(uint64_t{1} << 28) {}

  ConstituentIndex::Options Options() {
    ConstituentIndex::Options options;
    options.directory = GetParam();
    return options;
  }

  Store store_;
};

TEST_P(IndexBuilderTest, BuildsPackedIndex) {
  std::vector<DayBatch> batches;
  ReferenceIndex reference;
  for (Day d = 1; d <= 5; ++d) {
    batches.push_back(MakeMixedBatch(d));
    reference.Add(batches.back());
  }
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                ptrs, "I1"));
  EXPECT_TRUE(index->packed());
  ASSERT_OK(index->CheckPacked());
  ASSERT_OK(index->CheckConsistency());
  EXPECT_EQ(index->time_set(), (TimeSet{1, 2, 3, 4, 5}));
  // Packed: zero slack.
  EXPECT_EQ(index->allocated_bytes(), index->live_bytes());

  std::vector<Entry> scanned;
  ASSERT_OK(index->Scan(
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(kDayNegInf, kDayPosInf));
}

TEST_P(IndexBuilderTest, SingleDayOverload) {
  DayBatch batch = MakeMixedBatch(7);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                batch, "I"));
  EXPECT_EQ(index->time_set(), TimeSet{7});
  EXPECT_EQ(index->entry_count(), batch.EntryCount());
}

TEST_P(IndexBuilderTest, EmptyBatchYieldsEmptyPackedIndex) {
  DayBatch batch;
  batch.day = 1;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                batch, "I"));
  EXPECT_EQ(index->entry_count(), 0u);
  EXPECT_EQ(index->time_set(), TimeSet{1});
  ASSERT_OK(index->CheckPacked());
}

TEST_P(IndexBuilderTest, BucketsLaidOutInSortedValueOrder) {
  DayBatch batch = MakeMixedBatch(1);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                batch, "I"));
  const std::vector<Value>& order = index->layout_order();
  for (size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
}

TEST_P(IndexBuilderTest, BuildIsSequentialOnDevice) {
  // A packed build writes one contiguous region: exactly one data seek
  // (possibly a couple from allocator bookkeeping-free paths, so allow 2).
  DayBatch batch = MakeMixedBatch(1, /*num_records=*/50);
  store_.device()->Reset();
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                batch, "I"));
  (void)index;
  EXPECT_LE(store_.device()->total().seeks, 2u);
  EXPECT_EQ(store_.device()->total().bytes_written,
            batch.EntryCount() * kEntrySize);
}

TEST_P(IndexBuilderTest, PackedScanIsSequentialOnDevice) {
  DayBatch batch = MakeMixedBatch(1, /*num_records=*/60);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ConstituentIndex> index,
      IndexBuilder::BuildPacked(store_.device(), store_.allocator(), Options(),
                                batch, "I"));
  store_.device()->Reset();
  uint64_t visited = 0;
  ASSERT_OK(index->Scan([&](const Value&, const Entry&) { ++visited; }));
  EXPECT_EQ(visited, batch.EntryCount());
  EXPECT_LE(store_.device()->total().seeks, 2u)
      << "a packed SegmentScan should be one sequential sweep";
}

INSTANTIATE_TEST_SUITE_P(AllDirectories, IndexBuilderTest,
                         ::testing::Values(DirectoryKind::kHash,
                                           DirectoryKind::kBTree),
                         [](const auto& info) {
                           return DirectoryKindName(info.param);
                         });

}  // namespace
}  // namespace wavekit
