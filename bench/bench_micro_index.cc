// Micro-benchmarks of the index substrate: packed builds, CONTIGUOUS
// incremental adds/deletes under different growth factors, probes, scans,
// and whole-index copies. Real wall-clock throughput (google-benchmark).

#include <benchmark/benchmark.h>

#include "index/index_builder.h"
#include "storage/store.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

workload::NetnewsConfig SmallNetnews() {
  workload::NetnewsConfig config;
  config.articles_per_day = 200;
  config.words_per_article = 20;
  config.vocabulary_size = 5000;
  return config;
}

void BM_PackedBuild(benchmark::State& state) {
  workload::NetnewsGenerator gen(SmallNetnews());
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= state.range(0); ++d) batches.push_back(gen.GenerateDay(d));
  std::vector<const DayBatch*> ptrs;
  uint64_t entries = 0;
  for (const DayBatch& b : batches) {
    ptrs.push_back(&b);
    entries += b.EntryCount();
  }
  for (auto _ : state) {
    Store store;
    auto index = IndexBuilder::BuildPacked(store.device(), store.allocator(),
                                           {}, ptrs, "I");
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries) * state.iterations());
}
BENCHMARK(BM_PackedBuild)->Arg(1)->Arg(4)->Arg(8);

void BM_ContiguousAdd(benchmark::State& state) {
  const double g = static_cast<double>(state.range(0)) / 100.0;
  workload::NetnewsGenerator gen(SmallNetnews());
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= 8; ++d) batches.push_back(gen.GenerateDay(d));
  uint64_t entries = 0;
  for (const DayBatch& b : batches) entries += b.EntryCount();
  for (auto _ : state) {
    Store store;
    ConstituentIndex::Options options;
    options.growth.g = g;
    ConstituentIndex index(store.device(), store.allocator(), options, "I");
    for (const DayBatch& b : batches) {
      index.AddBatch(b).Abort("add");
    }
    benchmark::DoNotOptimize(index.entry_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries) * state.iterations());
}
BENCHMARK(BM_ContiguousAdd)->Arg(108)->Arg(150)->Arg(200)->Arg(400);

void BM_DeleteDay(benchmark::State& state) {
  workload::NetnewsGenerator gen(SmallNetnews());
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= 8; ++d) batches.push_back(gen.GenerateDay(d));
  for (auto _ : state) {
    state.PauseTiming();
    Store store;
    ConstituentIndex index(store.device(), store.allocator(), {}, "I");
    for (const DayBatch& b : batches) index.AddBatch(b).Abort("add");
    state.ResumeTiming();
    index.DeleteDays({1}).Abort("delete");
    benchmark::DoNotOptimize(index.entry_count());
  }
}
BENCHMARK(BM_DeleteDay);

void BM_Probe(benchmark::State& state) {
  workload::NetnewsGenerator gen(SmallNetnews());
  Store store;
  DayBatch batch = gen.GenerateDay(1);
  auto built =
      IndexBuilder::BuildPacked(store.device(), store.allocator(), {}, batch,
                                "I");
  if (!built.ok()) built.status().Abort("build");
  std::unique_ptr<ConstituentIndex> index = std::move(built).ValueOrDie();
  Rng rng(1);
  std::vector<Entry> out;
  for (auto _ : state) {
    out.clear();
    index->Probe(gen.SampleWord(rng), &out).Abort("probe");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Probe);

void BM_SegmentScan(benchmark::State& state) {
  const bool packed = state.range(0) != 0;
  workload::NetnewsGenerator gen(SmallNetnews());
  Store store;
  std::unique_ptr<ConstituentIndex> index;
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= 4; ++d) batches.push_back(gen.GenerateDay(d));
  if (packed) {
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    index = std::move(IndexBuilder::BuildPacked(store.device(),
                                                store.allocator(), {}, ptrs,
                                                "I"))
                .ValueOrDie();
  } else {
    index = std::make_unique<ConstituentIndex>(store.device(),
                                               store.allocator(),
                                               ConstituentIndex::Options{},
                                               "I");
    for (const DayBatch& b : batches) index->AddBatch(b).Abort("add");
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    index->Scan([&sum](const Value&, const Entry& e) { sum += e.aux; })
        .Abort("scan");
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(index->entry_count()) *
                          state.iterations());
  state.SetLabel(packed ? "packed" : "unpacked");
}
BENCHMARK(BM_SegmentScan)->Arg(1)->Arg(0);

void BM_CloneIndex(benchmark::State& state) {
  workload::NetnewsGenerator gen(SmallNetnews());
  Store store;
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= 4; ++d) batches.push_back(gen.GenerateDay(d));
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);
  auto index = std::move(IndexBuilder::BuildPacked(
                             store.device(), store.allocator(), {}, ptrs, "I"))
                   .ValueOrDie();
  for (auto _ : state) {
    auto clone = index->Clone("copy");
    if (!clone.ok()) clone.status().Abort("clone");
    benchmark::DoNotOptimize(clone);
  }
  state.SetItemsProcessed(static_cast<int64_t>(index->entry_count()) *
                          state.iterations());
}
BENCHMARK(BM_CloneIndex);

}  // namespace
}  // namespace wavekit

BENCHMARK_MAIN();
