#include "util/net.h"

#include "util/macros.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace wavekit {
namespace net {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

namespace {

Result<sockaddr_in> MakeAddr(const std::string& address, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (address.empty() || address == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const std::string& bind_address, uint16_t port,
                      int backlog) {
  WAVEKIT_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(bind_address, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    Status s = ErrnoStatus("setsockopt(SO_REUSEADDR)");
    ::close(fd);
    return s;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = ErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    Status s = ErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  WAVEKIT_ASSIGN_OR_RETURN(
      sockaddr_in addr, MakeAddr(host == "localhost" ? "127.0.0.1" : host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  return fd;
}

Status SendAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    // send() returning 0 on a stream socket would spin forever; treat it as
    // a peer failure the same way a short read treats EOF.
    if (n == 0) return Status::IOError("send: connection closed");
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, void* buf, size_t size) {
  while (true) {
    ssize_t n = ::recv(fd, buf, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("recv timeout");
    }
    return ErrnoStatus("recv");
  }
}

Status SetRecvTimeoutSec(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace wavekit
