// waved: the multi-tenant wave-index network daemon.
//
//   waved [--port=8787] [--bind=127.0.0.1] [--metrics-port=0]
//         [--tenants=4] [--scheme=wata] [--window=7] [--indexes=3]
//         [--technique=simple-shadow] [--codec=raw] [--records=200]
//         [--query-threads=4] [--cache-blocks=1024]
//         [--rate-limit=0] [--burst=0] [--max-sessions=0]
//         [--idle-timeout-ms=30000] [--async-advance] [--seed=42]
//
// Boots `--tenants` independent wave indexes (each bootstrapped with a
// synthetic Netnews first window seeded per tenant, so probes answer real
// data immediately), shares ONE query ThreadPool across all of them, and
// serves the binary protocol (serve/protocol.h) on --port. SIGTERM/SIGINT
// trigger a graceful drain: stop accepting, answer everything in flight,
// finish queued async advances, exit 0.
//
// With --metrics-port > 0 the obs registry — per-tenant WaveService metrics
// plus the wavekit_server_* serving counters — is re-exported over HTTP on
// that port (/metrics, /metrics.json, /healthz; obs/http_exporter.h).
// --metrics-port=0 picks an ephemeral port; --no-metrics disables the
// exporter entirely.
//
// Prints one line when ready:
//   waved ready port=<p> metrics_port=<mp> tenants=<n> pid=<pid>
// (waveload and the CI smoke test parse it.)

#include <algorithm>
#include <csignal>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "index/codec.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "serve/server_core.h"
#include "serve/server_loop.h"
#include "serve/shared_pool.h"
#include "util/macros.h"
#include "util/thread_pool.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        stray_.push_back(arg);
        continue;
      }
      const size_t eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      values_[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
      seen_.push_back(key);
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return Get(key, "false") == "true";
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::vector<std::string> Unknown(
      const std::vector<std::string>& allowed) const {
    std::vector<std::string> unknown;
    for (const std::string& key : seen_) {
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        unknown.push_back("--" + key);
      }
    }
    unknown.insert(unknown.end(), stray_.begin(), stray_.end());
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> seen_;
  std::vector<std::string> stray_;
};

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

/// Builds one tenant's WaveService sharing `query_pool`, bootstrapped with a
/// per-tenant Netnews first window so the daemon serves data from request 1.
Result<std::unique_ptr<WaveService>> MakeTenant(
    const Args& args, uint16_t tenant_id, ThreadPool* query_pool,
    obs::MetricsRegistry* registry) {
  WaveService::Options options;
  WAVEKIT_ASSIGN_OR_RETURN(options.scheme,
                           SchemeKindFromName(args.Get("scheme", "wata")));
  WAVEKIT_ASSIGN_OR_RETURN(
      options.config.technique,
      UpdateTechniqueFromName(args.Get("technique", "simple-shadow")));
  WAVEKIT_ASSIGN_OR_RETURN(options.config.codec,
                           CodecModeFromName(args.Get("codec", "raw")));
  options.config.window = args.GetInt("window", 7);
  options.config.num_indexes = args.GetInt("indexes", 3);
  const uint64_t records = static_cast<uint64_t>(args.GetInt("records", 200));
  if (options.scheme == SchemeKind::kKnownBoundWata) {
    options.config.size_bound_entries =
        records * 60 * static_cast<uint64_t>(options.config.window);
  }
  const int query_threads = args.GetInt("query-threads", 4);
  options.num_query_threads = query_threads;
  options.cache_blocks = static_cast<size_t>(args.GetInt("cache-blocks", 1024));
  options.metrics_registry = registry;
  options.event_ring_capacity = 256;
  if (query_threads > 1 && query_pool != nullptr) {
    options.pool_factory = [query_pool](int threads, const std::string& role)
        -> std::unique_ptr<ThreadPool> {
      if (role == "query") {
        return std::make_unique<serve::SharedPool>(query_pool);
      }
      // Maintenance and the async-advance runner stay per-tenant: the
      // runner must be a dedicated single worker for in-order publishes.
      return std::make_unique<ThreadPool>(threads);
    };
  }
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WaveService> service,
                           WaveService::Create(options));

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = records;
  netnews_config.seed =
      static_cast<uint64_t>(args.GetInt("seed", 42)) + tenant_id * 1000003u;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= options.config.window; ++d) {
    first_window.push_back(netnews.GenerateDay(d));
  }
  WAVEKIT_RETURN_NOT_OK(service->Start(std::move(first_window)));
  return service;
}

int Serve(const Args& args) {
  const std::vector<std::string> allowed = {
      "port",         "bind",          "metrics-port",   "no-metrics",
      "tenants",      "scheme",        "window",         "indexes",
      "technique",    "codec",         "records",        "query-threads",
      "cache-blocks", "rate-limit",    "burst",          "max-sessions",
      "idle-timeout-ms", "async-advance", "seed",        "scan-cap"};
  const std::vector<std::string> unknown = args.Unknown(allowed);
  if (!unknown.empty()) {
    std::cerr << "waved: unknown arguments:";
    for (const std::string& u : unknown) std::cerr << " " << u;
    std::cerr << "\n";
    return 2;
  }

  const int tenants = std::max(1, args.GetInt("tenants", 4));
  if (tenants > 65535) {
    std::cerr << "waved: --tenants must fit a uint16 tenant id\n";
    return 2;
  }

  obs::MetricsRegistry registry;

  // One pool for ALL tenants' query fan-out (ROADMAP item 1: "many
  // independent wave indexes over shared devices and one ThreadPool").
  const int query_threads = args.GetInt("query-threads", 4);
  std::unique_ptr<ThreadPool> shared_query_pool;
  if (query_threads > 1) {
    shared_query_pool = std::make_unique<ThreadPool>(query_threads);
  }

  serve::ServerCore::Options core_options;
  core_options.tenant_rate_limit_rps = args.GetDouble("rate-limit", 0);
  core_options.tenant_rate_limit_burst = args.GetDouble("burst", 0);
  core_options.max_sessions = static_cast<size_t>(args.GetInt("max-sessions", 0));
  core_options.scan_entry_cap =
      static_cast<uint32_t>(args.GetInt("scan-cap", 1 << 20));
  core_options.async_advance = args.GetBool("async-advance");
  core_options.metrics_registry = &registry;
  serve::ServerCore core(core_options);

  for (int t = 0; t < tenants; ++t) {
    auto service = MakeTenant(args, static_cast<uint16_t>(t),
                              shared_query_pool.get(), &registry);
    if (!service.ok()) {
      std::cerr << "waved: tenant " << t << ": " << service.status() << "\n";
      return 1;
    }
    const Status added =
        core.AddTenant(static_cast<uint16_t>(t), std::move(*service));
    if (!added.ok()) {
      std::cerr << "waved: " << added << "\n";
      return 1;
    }
  }

  serve::ServerLoop::Options loop_options;
  loop_options.bind_address = args.Get("bind", "127.0.0.1");
  loop_options.port = static_cast<uint16_t>(args.GetInt("port", 8787));
  loop_options.idle_timeout_ms = args.GetInt("idle-timeout-ms", 30'000);
  serve::ServerLoop loop(loop_options, &core);
  const Status started = loop.Start();
  if (!started.ok()) {
    std::cerr << "waved: " << started << "\n";
    return 1;
  }

  // Re-export the unified registry over HTTP unless --no-metrics.
  std::unique_ptr<obs::HttpExporter> exporter;
  uint16_t metrics_port = 0;
  if (!args.GetBool("no-metrics")) {
    obs::HttpExporter::Options http;
    http.bind_address = loop_options.bind_address;
    http.port = static_cast<uint16_t>(args.GetInt("metrics-port", 0));
    http.registry = &registry;
    http.health = [&core](std::string* detail) {
      for (size_t t = 0; t < core.tenant_count(); ++t) {
        WaveService* service = core.tenant(static_cast<uint16_t>(t));
        if (service != nullptr && service->degraded()) {
          *detail = "tenant " + std::to_string(t) + ": " +
                    service->degraded_detail();
          return false;
        }
      }
      return true;
    };
    exporter = std::make_unique<obs::HttpExporter>(http);
    const Status metrics_started = exporter->Start();
    if (!metrics_started.ok()) {
      std::cerr << "waved: metrics exporter: " << metrics_started << "\n";
      return 1;
    }
    metrics_port = exporter->port();
  }

  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  std::cout << "waved ready port=" << loop.port()
            << " metrics_port=" << metrics_port << " tenants=" << tenants
            << " pid=" << ::getpid() << std::endl;

  while (!g_shutdown_requested) {
    ::usleep(50 * 1000);
  }

  std::cout << "waved draining..." << std::endl;
  loop.Drain();
  const Status maintenance = core.WaitForMaintenance();
  if (exporter) exporter->Stop();
  if (!maintenance.ok()) {
    std::cerr << "waved: maintenance failure during drain: " << maintenance
              << "\n";
    return 1;
  }
  std::cout << "waved drained: served " << core.requests_served()
            << " requests on " << loop.connections_accepted()
            << " connections" << std::endl;
  return 0;
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  wavekit::Args args(argc, argv);
  return wavekit::Serve(args);
}
