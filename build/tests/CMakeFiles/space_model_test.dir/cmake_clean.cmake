file(REMOVE_RECURSE
  "CMakeFiles/space_model_test.dir/model/space_model_test.cc.o"
  "CMakeFiles/space_model_test.dir/model/space_model_test.cc.o.d"
  "space_model_test"
  "space_model_test.pdb"
  "space_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
