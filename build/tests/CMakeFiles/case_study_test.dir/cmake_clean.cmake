file(REMOVE_RECURSE
  "CMakeFiles/case_study_test.dir/integration/case_study_test.cc.o"
  "CMakeFiles/case_study_test.dir/integration/case_study_test.cc.o.d"
  "case_study_test"
  "case_study_test.pdb"
  "case_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
