// TPC-D warehousing: a wave index on LINEITEM.SUPPKEY for the last 100 days
// (scaled down), answering Q1-style "Pricing Summary Report" aggregates with
// TimedSegmentScans and supplier drill-downs with TimedIndexProbes.
//
// Uses RATA* — the paper's recommendation when hard windows are required
// and packed shadowing cannot be implemented — so aggregates never include
// expired rows, yet each day's data is queryable after a single AddToIndex.

#include <iostream>
#include <map>

#include "storage/store.h"
#include "util/format.h"
#include "wave/scheme_factory.h"
#include "workload/tpcd.h"

using namespace wavekit;

namespace {

struct PricingSummary {
  uint64_t rows = 0;
  uint64_t total_quantity = 0;  // sum of L_QUANTITY (carried in Entry::aux)
};

// Q1-ish: aggregate quantity over the whole window (one segment scan per
// constituent index).
PricingSummary PricingSummaryReport(const WaveIndex& wave,
                                    const DayRange& window) {
  PricingSummary summary;
  wave.TimedSegmentScan(window, [&summary](const Value&, const Entry& e) {
        ++summary.rows;
        summary.total_quantity += e.aux;
      })
      .Abort("scan");
  return summary;
}

}  // namespace

int main() {
  Store store;
  DayStore day_store;

  const int window = 100;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = 10;  // the paper's RATA (n = 10) recommendation
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  config.growth.g = 1.08;  // uniform SUPPKEYs need little CONTIGUOUS slack
  auto scheme = MakeScheme(SchemeKind::kRata,
                           SchemeEnv{store.device(), store.allocator(),
                                     &day_store},
                           config);
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 1;
  }

  workload::TpcdConfig tpcd_config;
  tpcd_config.rows_per_day = 500;
  tpcd_config.num_suppliers = 200;
  workload::TpcdGenerator lineitem(tpcd_config);

  std::cout << "Loading 100 days of LINEITEM history...\n";
  std::vector<DayBatch> history;
  for (Day d = 1; d <= window; ++d) history.push_back(lineitem.GenerateDay(d));
  (*scheme)->Start(std::move(history)).Abort("Start");

  for (Day d = window + 1; d <= window + 5; ++d) {
    (*scheme)->Transition(lineitem.GenerateDay(d)).Abort("Transition");
    const DayRange full_window = DayRange::Window(d, window);

    store.device()->Reset();
    const PricingSummary summary =
        PricingSummaryReport((*scheme)->wave(), full_window);
    const double scan_seconds =
        CostModel::Paper().Seconds(store.device()->total());
    std::cout << "day " << d << ": Q1 over " << window
              << " days -> rows=" << FormatCount(summary.rows)
              << " sum(quantity)=" << FormatCount(summary.total_quantity)
              << " avg=" << FormatDouble(static_cast<double>(summary.total_quantity) /
                                             summary.rows,
                                         2)
              << " (modeled " << FormatSeconds(scan_seconds) << ")\n";
  }

  // Drill-down: one supplier's recent activity (timed probe narrower than
  // the cluster boundaries — per-entry timestamps do the filtering).
  const Value supplier = lineitem.SuppkeyFor(7);
  const Day today = (*scheme)->current_day();
  std::vector<Entry> recent;
  (*scheme)
      ->wave()
      .TimedIndexProbe(DayRange::Window(today, 14), supplier, &recent)
      .Abort("probe");
  uint64_t qty = 0;
  for (const Entry& e : recent) qty += e.aux;
  std::cout << "\n" << supplier << " in the last 14 days: " << recent.size()
            << " lineitems, total quantity " << qty << "\n";

  // The hard window means the aggregate covers exactly W days.
  std::cout << "window covered: "
            << TimeSetToString(
                   TimeSet{*(*scheme)->wave().CoveredDays().begin(),
                           *(*scheme)->wave().CoveredDays().rbegin()})
            << " (exactly " << (*scheme)->WaveLength() << " days, hard)\n"
            << "wave index: " << (*scheme)->wave().num_constituents()
            << " constituents + " << (*scheme)->TemporaryIndexes().size()
            << " precomputed ladder rungs, "
            << FormatBytes((*scheme)->ConstituentBytes() +
                           (*scheme)->TemporaryBytes())
            << "\n";
  return 0;
}
