// Parallel maintenance primitives (parallel packed build, parallel CP clone,
// parallel shadow updates) must produce results identical to the serial
// paths — same layout order, same bucket geometry, same scan sequence — and
// must fail all-or-nothing at the crash points inside their stages.

#include "index/index_builder.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/constituent_index.h"
#include "storage/store.h"
#include "testing/test_env.h"
#include "update/update_technique.h"
#include "util/crash_point.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace {

using testing::MakeBatch;
using testing::MakeMixedBatch;

/// (value, entry) pairs in SCAN ORDER — unsorted on purpose, so equality
/// also asserts identical bucket layout, not just identical contents.
std::vector<std::pair<Value, Entry>> ScanPairs(const ConstituentIndex& index) {
  std::vector<std::pair<Value, Entry>> out;
  Status s = index.Scan([&out](const Value& value, const Entry& entry) {
    out.emplace_back(value, entry);
  });
  if (!s.ok()) s.Abort("scan");
  return out;
}

/// Bucket geometry in layout order: (value, offset, count, capacity).
std::vector<std::tuple<Value, uint64_t, uint32_t, uint32_t>> BucketTable(
    const ConstituentIndex& index) {
  std::vector<std::tuple<Value, uint64_t, uint32_t, uint32_t>> out;
  Status s = index.ForEachBucket(
      [&out](const Value& value, const BucketInfo& info) {
        out.emplace_back(value, info.extent.offset, info.count, info.capacity);
      });
  if (!s.ok()) s.Abort("buckets");
  return out;
}

/// A workload wide enough to exercise several partitions: `values` distinct
/// values with varying bucket sizes, across `days` days.
std::vector<DayBatch> WideWorkload(int days, int values) {
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= days; ++d) {
    DayBatch batch;
    batch.day = d;
    uint64_t rid = static_cast<uint64_t>(d) * 1000000;
    for (int v = 0; v < values; ++v) {
      // Value v gets (v % 5) + 1 records per day: uneven bucket sizes.
      for (int i = 0; i <= v % 5; ++i) {
        Record record;
        record.record_id = rid++;
        record.day = d;
        record.values = {"v" + std::to_string(v)};
        batch.records.push_back(std::move(record));
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<const DayBatch*> Pointers(const std::vector<DayBatch>& batches) {
  std::vector<const DayBatch*> out;
  for (const DayBatch& batch : batches) out.push_back(&batch);
  return out;
}

class ParallelBuildTest : public ::testing::Test {
 protected:
  ParallelBuildTest()
      : serial_store_(uint64_t{1} << 28),
        parallel_store_(uint64_t{1} << 28),
        pool_(4),
        parallel_{&pool_, 4} {}

  void TearDown() override { CrashPoints::Reset(); }

  /// Builds the same workload serially (fresh store) and in parallel (fresh
  /// store): identical allocator histories, so even absolute offsets match.
  void BuildBoth(const std::vector<DayBatch>& batches,
                 std::unique_ptr<ConstituentIndex>* serial,
                 std::unique_ptr<ConstituentIndex>* parallel) {
    const std::vector<const DayBatch*> ptrs = Pointers(batches);
    ASSERT_OK_AND_ASSIGN(
        *serial, IndexBuilder::BuildPacked(serial_store_.device(),
                                           serial_store_.allocator(), {}, ptrs,
                                           "serial"));
    ASSERT_OK_AND_ASSIGN(
        *parallel, IndexBuilder::BuildPacked(parallel_store_.device(),
                                             parallel_store_.allocator(), {},
                                             ptrs, "parallel", parallel_));
  }

  void ExpectIdentical(const ConstituentIndex& serial,
                       const ConstituentIndex& parallel) {
    EXPECT_OK(serial.CheckPacked());
    EXPECT_OK(parallel.CheckPacked());
    EXPECT_OK(parallel.CheckConsistency());
    EXPECT_EQ(serial.entry_count(), parallel.entry_count());
    EXPECT_EQ(serial.allocated_bytes(), parallel.allocated_bytes());
    EXPECT_EQ(serial.layout_order(), parallel.layout_order());
    EXPECT_EQ(BucketTable(serial), BucketTable(parallel));
    EXPECT_EQ(ScanPairs(serial), ScanPairs(parallel));
  }

  Store serial_store_;
  Store parallel_store_;
  ThreadPool pool_;
  ParallelContext parallel_;
};

TEST_F(ParallelBuildTest, BuildMatchesSerialOnWideWorkload) {
  std::unique_ptr<ConstituentIndex> serial, parallel;
  BuildBoth(WideWorkload(/*days=*/4, /*values=*/97), &serial, &parallel);
  ExpectIdentical(*serial, *parallel);
}

TEST_F(ParallelBuildTest, BuildMatchesSerialWithFewerValuesThanThreads) {
  // 2 values on 4 threads: partition count clamps to the item count.
  std::vector<DayBatch> batches = {MakeBatch(1, {"a", "b"}, 3),
                                   MakeBatch(2, {"a"}, 2)};
  std::unique_ptr<ConstituentIndex> serial, parallel;
  BuildBoth(batches, &serial, &parallel);
  ExpectIdentical(*serial, *parallel);
}

TEST_F(ParallelBuildTest, BuildMatchesSerialOnEmptyBatch) {
  DayBatch empty;
  empty.day = 1;
  std::unique_ptr<ConstituentIndex> serial, parallel;
  BuildBoth({empty}, &serial, &parallel);
  EXPECT_EQ(parallel->entry_count(), 0u);
  ExpectIdentical(*serial, *parallel);
}

TEST_F(ParallelBuildTest, CloneMatchesSerial) {
  std::vector<DayBatch> batches = WideWorkload(/*days=*/3, /*values=*/61);
  std::unique_ptr<ConstituentIndex> serial, parallel;
  BuildBoth(batches, &serial, &parallel);
  ASSERT_OK_AND_ASSIGN(auto serial_clone, serial->Clone("serial_cp"));
  ASSERT_OK_AND_ASSIGN(auto parallel_clone,
                       parallel->Clone("parallel_cp", parallel_));
  EXPECT_OK(parallel_clone->CheckConsistency());
  EXPECT_EQ(serial_clone->allocated_bytes(), parallel_clone->allocated_bytes());
  EXPECT_EQ(serial_clone->layout_order(), parallel_clone->layout_order());
  EXPECT_EQ(BucketTable(*serial_clone), BucketTable(*parallel_clone));
  EXPECT_EQ(ScanPairs(*serial_clone), ScanPairs(*parallel_clone));
}

/// Applies the same shadow update on both sides and compares the results.
void RunUpdaterParity(Store& serial_store, Store& parallel_store,
                      UpdateTechniqueKind kind,
                      const ParallelContext& parallel_ctx) {
  std::vector<DayBatch> window = WideWorkload(/*days=*/3, /*values=*/53);
  DayBatch next = MakeMixedBatch(4, /*num_records=*/40);
  const std::vector<const DayBatch*> ptrs = Pointers(window);
  std::shared_ptr<ConstituentIndex> serial, parallel;
  {
    auto built = IndexBuilder::BuildPacked(
        serial_store.device(), serial_store.allocator(), {}, ptrs, "I");
    ASSERT_OK(built.status());
    serial = std::move(built).ValueOrDie();
  }
  {
    auto built = IndexBuilder::BuildPacked(parallel_store.device(),
                                           parallel_store.allocator(), {},
                                           ptrs, "I", parallel_ctx);
    ASSERT_OK(built.status());
    parallel = std::move(built).ValueOrDie();
  }

  std::unique_ptr<Updater> serial_updater = MakeUpdater(kind);
  std::unique_ptr<Updater> parallel_updater = MakeUpdater(kind);
  parallel_updater->set_parallel(parallel_ctx);

  // Add day 4, expire day 1 — the standard wave step.
  const DayBatch* add = &next;
  TimeSet expire;
  expire.insert(1);
  ASSERT_OK(serial_updater->Apply(&serial, {&add, 1}, expire));
  ASSERT_OK(parallel_updater->Apply(&parallel, {&add, 1}, expire));

  EXPECT_OK(parallel->CheckConsistency());
  EXPECT_EQ(serial->time_set(), parallel->time_set());
  EXPECT_EQ(serial->entry_count(), parallel->entry_count());
  EXPECT_EQ(serial->layout_order(), parallel->layout_order());
  EXPECT_EQ(ScanPairs(*serial), ScanPairs(*parallel));
  if (kind == UpdateTechniqueKind::kPackedShadow) {
    EXPECT_OK(parallel->CheckPacked());
    EXPECT_EQ(BucketTable(*serial), BucketTable(*parallel));
  }
}

TEST_F(ParallelBuildTest, PackedShadowUpdateMatchesSerial) {
  RunUpdaterParity(serial_store_, parallel_store_,
                   UpdateTechniqueKind::kPackedShadow, parallel_);
}

TEST_F(ParallelBuildTest, SimpleShadowUpdateMatchesSerial) {
  RunUpdaterParity(serial_store_, parallel_store_,
                   UpdateTechniqueKind::kSimpleShadow, parallel_);
}

// --- Crash points inside the parallel stages --------------------------------

TEST_F(ParallelBuildTest, CrashInGroupStageIsAllOrNothing) {
  std::vector<DayBatch> batches = WideWorkload(/*days=*/3, /*values=*/40);
  const std::vector<const DayBatch*> ptrs = Pointers(batches);
  const uint64_t before = parallel_store_.allocator()->allocated_bytes();

  CrashPoints::Arm("builder.parallel.group");
  auto crashed = IndexBuilder::BuildPacked(parallel_store_.device(),
                                           parallel_store_.allocator(), {},
                                           ptrs, "T", parallel_);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed.status()));
  // Nothing leaked: the failed build returned every extent it took.
  EXPECT_EQ(parallel_store_.allocator()->allocated_bytes(), before);

  // A retry after "restart" succeeds and matches the serial result.
  CrashPoints::Reset();
  std::unique_ptr<ConstituentIndex> serial, parallel;
  ASSERT_OK_AND_ASSIGN(
      serial, IndexBuilder::BuildPacked(serial_store_.device(),
                                        serial_store_.allocator(), {}, ptrs,
                                        "T"));
  ASSERT_OK_AND_ASSIGN(
      parallel, IndexBuilder::BuildPacked(parallel_store_.device(),
                                          parallel_store_.allocator(), {},
                                          ptrs, "T", parallel_));
  ExpectIdentical(*serial, *parallel);
}

TEST_F(ParallelBuildTest, CrashInWriteStageIsAllOrNothing) {
  std::vector<DayBatch> batches = WideWorkload(/*days=*/3, /*values=*/40);
  const std::vector<const DayBatch*> ptrs = Pointers(batches);
  const uint64_t before = parallel_store_.allocator()->allocated_bytes();

  CrashPoints::Arm("builder.parallel.write");
  auto crashed = IndexBuilder::BuildPacked(parallel_store_.device(),
                                           parallel_store_.allocator(), {},
                                           ptrs, "T", parallel_);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed.status()));
  EXPECT_EQ(parallel_store_.allocator()->allocated_bytes(), before);

  CrashPoints::Reset();
  EXPECT_OK(IndexBuilder::BuildPacked(parallel_store_.device(),
                                      parallel_store_.allocator(), {}, ptrs,
                                      "T", parallel_)
                .status());
}

TEST_F(ParallelBuildTest, CrashInCloneCopyLeavesSourceIntactAndLeaksNothing) {
  std::vector<DayBatch> batches = WideWorkload(/*days=*/2, /*values=*/30);
  const std::vector<const DayBatch*> ptrs = Pointers(batches);
  std::unique_ptr<ConstituentIndex> source;
  ASSERT_OK_AND_ASSIGN(
      source, IndexBuilder::BuildPacked(parallel_store_.device(),
                                        parallel_store_.allocator(), {}, ptrs,
                                        "S", parallel_));
  const auto source_pairs = ScanPairs(*source);
  const uint64_t before = parallel_store_.allocator()->allocated_bytes();

  CrashPoints::Arm("clone.parallel.copy");
  auto crashed = source->Clone("CP", parallel_);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed.status()));
  EXPECT_EQ(parallel_store_.allocator()->allocated_bytes(), before);
  EXPECT_EQ(ScanPairs(*source), source_pairs);

  CrashPoints::Reset();
  ASSERT_OK_AND_ASSIGN(auto clone, source->Clone("CP", parallel_));
  EXPECT_EQ(ScanPairs(*clone), source_pairs);
}

TEST_F(ParallelBuildTest, CrashInPackedFlushLeavesOldIndexServing) {
  std::vector<DayBatch> window = WideWorkload(/*days=*/3, /*values=*/30);
  const std::vector<const DayBatch*> ptrs = Pointers(window);
  std::shared_ptr<ConstituentIndex> index;
  {
    auto built = IndexBuilder::BuildPacked(parallel_store_.device(),
                                           parallel_store_.allocator(), {},
                                           ptrs, "I", parallel_);
    ASSERT_OK(built.status());
    index = std::move(built).ValueOrDie();
  }
  const auto before_pairs = ScanPairs(*index);
  const uint64_t before_bytes = parallel_store_.allocator()->allocated_bytes();

  std::unique_ptr<Updater> updater =
      MakeUpdater(UpdateTechniqueKind::kPackedShadow);
  updater->set_parallel(parallel_);
  DayBatch next = MakeMixedBatch(4, /*num_records=*/24);
  const DayBatch* add = &next;
  TimeSet expire;
  expire.insert(1);

  CrashPoints::Arm("updater.packed.parallel_flush");
  Status crashed = updater->Apply(&index, {&add, 1}, expire);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed));
  // Shadow semantics: the failed update changed nothing the reader can see,
  // and the aborted shadow freed all of its space.
  EXPECT_EQ(ScanPairs(*index), before_pairs);
  EXPECT_EQ(parallel_store_.allocator()->allocated_bytes(), before_bytes);

  CrashPoints::Reset();
  ASSERT_OK(updater->Apply(&index, {&add, 1}, expire));
  EXPECT_OK(index->CheckPacked());
  EXPECT_FALSE(index->time_set().contains(1));
  EXPECT_TRUE(index->time_set().contains(4));
}

}  // namespace
}  // namespace wavekit
