# Empty compiler generated dependencies file for op_evaluator_test.
# This may be replaced when dependencies are built.
