#include "wave/op_log.h"

namespace wavekit {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kBuildIndex:
      return "BuildIndex";
    case OpKind::kAddToIndex:
      return "AddToIndex";
    case OpKind::kDeleteFromIndex:
      return "DeleteFromIndex";
    case OpKind::kCopyIndex:
      return "CopyIndex";
    case OpKind::kSmartCopyIndex:
      return "SmartCopyIndex";
    case OpKind::kDropIndex:
      return "DropIndex";
    case OpKind::kRename:
      return "Rename";
  }
  return "?";
}

const char* ApplyModeName(ApplyMode mode) {
  switch (mode) {
    case ApplyMode::kIncremental:
      return "incremental";
    case ApplyMode::kRebuild:
      return "rebuild";
    case ApplyMode::kMerged:
      return "merged";
  }
  return "?";
}

std::vector<OpRecord> OpLog::RecordsAtDay(Day day) const {
  std::vector<OpRecord> out;
  for (const OpRecord& r : records_) {
    if (r.at_day == day) out.push_back(r);
  }
  return out;
}

int OpLog::TotalOpDays(OpKind kind) const {
  int total = 0;
  for (const OpRecord& r : records_) {
    if (r.kind == kind) total += r.op_days;
  }
  return total;
}

std::string OpLog::ToString() const {
  std::string out;
  for (const OpRecord& r : records_) {
    out += "day " + std::to_string(r.at_day) + ": " + OpKindName(r.kind) +
           " days=" + std::to_string(r.op_days) +
           " target=" + std::to_string(r.target_days) + " phase=" +
           PhaseName(r.phase) + "\n";
  }
  return out;
}

}  // namespace wavekit
