// Scheme: the wave-index maintenance algorithm interface.
//
// A scheme is driven with one Start call (data of the first W days) followed
// by one Transition call per subsequent day, exactly like the Start /
// Transition states of the paper's Appendix A pseudocode. Concrete schemes
// (DEL, REINDEX, REINDEX+, REINDEX++, WATA*, RATA*) express their logic in
// terms of the Section 2.2 primitives exposed by this base class, which are
// metered (device phase attribution) and logged (OpLog) so the benches can
// price each scheme both by simulation and by the paper's analytic model.

#ifndef WAVEKIT_WAVE_SCHEME_H_
#define WAVEKIT_WAVE_SCHEME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/constituent_index.h"
#include "obs/event_journal.h"
#include "obs/trace.h"
#include "storage/metered_device.h"
#include "util/clock.h"
#include "util/random.h"
#include "update/update_technique.h"
#include "wave/day_store.h"
#include "wave/op_log.h"
#include "wave/wave_index.h"

namespace wavekit {

/// \brief Which maintenance algorithm to use.
enum class SchemeKind {
  kDel,
  kReindex,
  kReindexPlus,
  kReindexPlusPlus,
  kWata,
  kRata,
  kKnownBoundWata,
};

inline constexpr SchemeKind kAllSchemeKinds[] = {
    SchemeKind::kDel,          SchemeKind::kReindex,
    SchemeKind::kReindexPlus,  SchemeKind::kReindexPlusPlus,
    SchemeKind::kWata,         SchemeKind::kRata,
};

const char* SchemeKindName(SchemeKind kind);

/// \brief Static configuration of a wave index.
struct SchemeConfig {
  /// Window size in days (W >= 1).
  int window = 7;
  /// Number of constituent indexes (1 <= n <= W; WATA-family needs n >= 2).
  int num_indexes = 1;
  /// How constituent indexes are updated incrementally (Section 2.1).
  UpdateTechniqueKind technique = UpdateTechniqueKind::kSimpleShadow;
  /// Directory implementation for every index.
  DirectoryKind directory = DirectoryKind::kHash;
  /// CONTIGUOUS growth parameters [FJ92].
  GrowthPolicy growth;
  /// KB-WATA only: known upper bound on the total entries of any W-day
  /// window (the future knowledge Kleinberg et al. [KMRV97] assume). Must be
  /// > 0 for SchemeKind::kKnownBoundWata; ignored by every other scheme.
  uint64_t size_bound_entries = 0;
  /// Verify each bucket's CRC-32C on every read path (see
  /// ConstituentIndex::Options::verify_checksums). Checksums are maintained
  /// either way; disabling only skips read-path verification.
  bool verify_checksums = true;
  /// Bucket codec policy for packed builds (index/codec.h). kRaw (the
  /// default) keeps every on-device layout byte-identical to pre-codec
  /// builds; kAuto picks the smaller of delta and bit-packed per bucket when
  /// it beats raw. Applies to every scheme's packed builds, shadow applies,
  /// clones, and HealUnhealthy rebuilds via Scheme::IndexOptions().
  CodecMode codec = CodecMode::kRaw;
};

/// \brief Bounded exponential backoff for transient I/O errors inside the
/// Section 2.2 maintenance primitives. The default (one attempt) disables
/// retrying. Only all-or-nothing primitives are retried (packed builds,
/// clones, shadow updates): their failure paths free every extent they
/// touched, so a second attempt starts clean. Injected crashes
/// (util/crash_point.h) are never retried — a crashed process does not get
/// another attempt.
struct RetryPolicy {
  /// Total attempts per primitive (1 = no retry).
  int max_attempts = 1;
  /// Sleep before the first retry; doubles (capped) for each further one.
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 10'000;
  /// Opt-in decorrelated jitter: each sleep is drawn from
  /// [initial_backoff_us, 3 * previous_sleep] (capped at max_backoff_us),
  /// desynchronizing retry storms across concurrent maintenance streams.
  /// Off by default so existing deterministic timing (plain doubling, exact
  /// under SimClock) is preserved byte-for-byte.
  bool decorrelated_jitter = false;
  /// Seed for the jitter stream (only used when decorrelated_jitter): same
  /// policy + same failure sequence = same sleeps, keeping even jittered
  /// runs replayable.
  uint64_t jitter_seed = 0x7E77;
};

/// \brief Counters of the retry/degradation machinery (relaxed-atomic
/// snapshots; see Scheme::fault_stats).
struct FaultStats {
  /// Transient I/O errors observed inside retryable primitives.
  uint64_t transient_io_errors = 0;
  /// Retry attempts performed after such errors.
  uint64_t retries = 0;
  /// Primitives that still failed after the final attempt.
  uint64_t retries_exhausted = 0;
  /// Constituents marked unhealthy after a failed update or transition.
  uint64_t constituents_marked_unhealthy = 0;
};

/// \brief Everything a scheme operates on. All pointers must outlive the
/// scheme.
struct SchemeEnv {
  SchemeEnv() = default;
  SchemeEnv(MeteredDevice* device_in, ExtentAllocator* allocator_in,
            DayStore* day_store_in)
      : device(device_in), allocator(allocator_in), day_store(day_store_in) {}

  MeteredDevice* device = nullptr;
  ExtentAllocator* allocator = nullptr;
  DayStore* day_store = nullptr;

  /// Optional: when set, constituent indexes perform their I/O through this
  /// device instead of `device` — e.g. a ShardedCachedDevice layered ABOVE
  /// the meter, so cached probe hits are not charged seek/transfer costs.
  /// Phase attribution (PhaseScope) still targets `device`; `io_device` must
  /// wrap it (or its inner device) and outlive the scheme. Applies to the
  /// default disk only; ignored for indexes placed on `disks`.
  Device* io_device = nullptr;

  /// Optional: when set, every Section 2.2 primitive (BuildIndex,
  /// AddToIndex, DropIndex, ...) and each scheme's transition branch emits a
  /// span here, nested under whatever span the caller (e.g.
  /// WaveService::AdvanceDay) has open. Must outlive the scheme.
  obs::Tracer* tracer = nullptr;

  /// Optional: when set, retry attempts inside maintenance primitives are
  /// journaled as obs::EventType::kRetry events (op name, attempt number,
  /// error text). Must outlive the scheme.
  obs::EventJournal* events = nullptr;

  /// Retry behaviour for transient I/O errors inside maintenance primitives.
  RetryPolicy retry;

  /// Optional: shared integrity counters threaded into every constituent
  /// this scheme creates (checksum verifications, corruption detections,
  /// quarantines). Must outlive the scheme.
  IntegrityStats* integrity = nullptr;

  /// Optional: when set, every retry backoff sleep is recorded here (in
  /// microseconds) — exported as the wavekit_retry_backoff_seconds
  /// histogram. Must outlive the scheme.
  class ConcurrentHistogram* retry_backoff_us = nullptr;

  /// Time source for retry backoff sleeps. Defaults to the wall clock; the
  /// deterministic simulation harness injects a SimClock so backoff advances
  /// virtual time instead of stalling the run. Must outlive the scheme.
  Clock* clock = nullptr;

  /// Maintenance parallelism. When `maintenance.enabled()`, the Section 2.2
  /// primitives fan their bulk work out on this pool: packed builds group
  /// and write concurrently with batched writes, CP clones copy bucket
  /// ranges in parallel, shadow flushes batch their output, and REINDEX++
  /// builds its ladder temporaries concurrently. The default (no pool) runs
  /// the exact serial code paths, reproducing the paper's cost model
  /// byte-for-byte. The pool must outlive the scheme, and the thread calling
  /// Start/Transition must not be one of its workers (WaitGroup contract).
  ParallelContext maintenance;

  /// \brief One disk of a multi-disk deployment.
  struct Disk {
    MeteredDevice* device = nullptr;
    ExtentAllocator* allocator = nullptr;
  };
  /// When non-empty, newly built indexes are placed round-robin across these
  /// disks (paper Section 8: parallel indexing and querying, no contention
  /// between building and serving). When empty, everything lives on
  /// `device`/`allocator`.
  std::vector<Disk> disks;
};

/// \brief Base class of all wave-index maintenance schemes.
class Scheme {
 public:
  Scheme(SchemeEnv env, SchemeConfig config);
  virtual ~Scheme() = default;

  Scheme(const Scheme&) = delete;
  Scheme& operator=(const Scheme&) = delete;

  virtual SchemeKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// True for schemes that index exactly the last W days after every
  /// transition; false for soft-window (WATA-family) schemes.
  virtual bool hard_window() const = 0;

  /// Scheme-specific configuration validation (e.g. WATA needs n >= 2).
  virtual Status ValidateConfig() const;

  /// Builds the initial wave index from the batches of days 1..W (must be
  /// exactly W batches with days 1..W in order). Call once.
  Status Start(std::vector<DayBatch> first_window);

  /// Incorporates a new day (must be current_day() + 1) and expires data per
  /// the scheme's policy.
  Status Transition(DayBatch new_day);

  /// Resumes maintenance over an EXISTING wave index (e.g. one reloaded via
  /// wave/checkpoint.h) instead of building from scratch. `wave` must cover
  /// the window ending at `current_day` (exactly, for hard-window schemes;
  /// at least, for the WATA family). Call instead of Start.
  ///
  /// Schemes that re-index (REINDEX family, RATA) additionally need the day
  /// batches of the current window Put into the DayStore beforehand; they
  /// rebuild their temporary-index state from them. Mid-rotation adoption is
  /// supported: auxiliary state is reconstructed conservatively, so the few
  /// transitions after adoption may do slightly more work than an
  /// uninterrupted run, but serve exactly the same window.
  Status Adopt(WaveIndex wave, Day current_day);

  /// The queryable wave index.
  const WaveIndex& wave() const { return wave_; }
  WaveIndex& wave() { return wave_; }

  /// Most recent day incorporated (W after Start).
  Day current_day() const { return current_day_; }

  /// True after a Transition failed partway: slot state may mix old and new
  /// clusters, so further Transitions are refused until the index is
  /// reloaded from its last checkpoint and re-adopted (wave/recovery.h). The
  /// wave itself stays queryable — failed updates never mutate registered
  /// constituents in place.
  bool needs_recovery() const { return needs_recovery_; }

  /// Snapshot of the retry/degradation counters (thread-safe).
  FaultStats fault_stats() const;

  /// \brief Outcome of one HealUnhealthy pass.
  struct HealReport {
    /// Constituents rebuilt from segment data and swapped back in healthy.
    int healed = 0;
    /// Unhealthy constituents left alone because the day store no longer
    /// holds all their source days (production prunes aggressively; the
    /// operator must restore from a replica or accept degraded serving).
    int skipped = 0;
    std::vector<std::string> healed_names;
  };

  /// Online self-healing: rebuilds every unhealthy (typically quarantined-
  /// corrupt) constituent from the surviving segment data in the day store
  /// — the paper's BuildIndex over the slot's cluster — and swaps it into
  /// the slot. The old object is destroyed when the last query snapshot
  /// releases it; queries keep serving throughout (degraded until the
  /// caller republishes). Slot-stable placement: constituent j is rebuilt
  /// on disk j. Journals heal_start/heal_complete per constituent. Refused
  /// while needs_recovery() — run recovery first.
  Result<HealReport> HealUnhealthy();

  const SchemeConfig& config() const { return config_; }
  const OpLog& op_log() const { return op_log_; }
  OpLog& op_log() { return op_log_; }

  /// Temporary indexes currently held (for space accounting); not queryable.
  virtual std::vector<const ConstituentIndex*> TemporaryIndexes() const {
    return {};
  }

  /// Total days across constituents: the wave-index "length" of Appendix B.
  int WaveLength() const { return wave_.TotalDays(); }

  /// Device bytes used by constituents / temporaries right now.
  uint64_t ConstituentBytes() const { return wave_.AllocatedBytes(); }
  uint64_t TemporaryBytes() const;

  /// Oldest day any future operation of this scheme may need from the
  /// DayStore (the driver may Prune everything older).
  virtual Day OldestDayNeeded() const;

 protected:
  virtual Status DoStart() = 0;
  virtual Status DoTransition(const DayBatch& new_day) = 0;

  /// Rebuilds scheme-specific auxiliary state after Adopt populated slots_
  /// and wave_. The default accepts any adopted wave whose slot count equals
  /// config_.num_indexes; schemes with temporaries or cursors override.
  virtual Status DoAdopt();

  // --- Logged & metered Section 2.2 primitives -------------------------------

  /// BuildIndex(Days): packed build over the stored batches of `days`.
  /// `placement_hint` >= 0 pins the index to disk (hint % #disks) in
  /// multi-disk deployments (slot-stable placement keeps constituent j on
  /// disk j across rebuilds); -1 places round-robin.
  Result<std::shared_ptr<ConstituentIndex>> BuildIndex(const TimeSet& days,
                                                       std::string name,
                                                       Phase phase,
                                                       int placement_hint = -1);

  /// AddToIndex(Days, I): incremental add via the configured technique.
  /// `*index` may be replaced (shadow techniques).
  Status AddToIndex(const TimeSet& days,
                    std::shared_ptr<ConstituentIndex>* index, Phase phase);

  /// DeleteFromIndex(Days, I): incremental delete via the configured
  /// technique. `*index` may be replaced.
  Status DeleteFromIndex(const TimeSet& days,
                         std::shared_ptr<ConstituentIndex>* index, Phase phase);

  /// Combined add + delete in one pass of the configured technique (one
  /// shadow copy / one smart copy instead of two).
  Status UpdateIndex(const TimeSet& add_days, const TimeSet& delete_days,
                     std::shared_ptr<ConstituentIndex>* index, Phase phase);

  /// Repacks `*index` via a smart copy (packed shadow with no adds or
  /// deletes). Schemes call this before promoting an incrementally built
  /// index when the configured technique is packed shadow.
  Status PackIndex(std::shared_ptr<ConstituentIndex>* index, Phase phase);

  /// Whole-index copy (the "I_j <- Temp" of REINDEX+/REINDEX++): clones
  /// `source` under `name`.
  Result<std::shared_ptr<ConstituentIndex>> CopyIndex(
      const ConstituentIndex& source, std::string name, Phase phase);

  /// Destroys `index`, reclaiming its space; removes it from the wave index
  /// first if it is a constituent. Logged as a (cheap) DropIndex.
  Status DropIndex(const std::shared_ptr<ConstituentIndex>& index);

  /// Logs a free rename (temporary promoted to constituent).
  void LogRename(const ConstituentIndex& index);

  /// Runs `body` under env_.retry: transient IOErrors are retried with
  /// bounded exponential backoff; injected crashes and non-I/O errors return
  /// immediately. Callers must pass an all-or-nothing `body` (safe to
  /// re-run after failure).
  Status RetryTransient(std::string_view op, const std::function<Status()>& body);

  /// Marks `index` unhealthy (degraded-mode serving) and counts it. Safe to
  /// call with an index shared with published snapshots.
  void MarkUnhealthy(ConstituentIndex* index);

  /// A span on env_.tracer (inert when no tracer is configured). The Section
  /// 2.2 primitives above call this with their operation name; schemes use it
  /// to mark which transition branch ran (e.g. "WATA.throw_away").
  obs::Span TraceOp(std::string_view name) const;

  /// Collects the DayBatch pointers for `days` from the day store.
  Result<std::vector<const DayBatch*>> GetBatches(const TimeSet& days) const;

  /// Splits days 1..W into n clusters; the first W mod n clusters get
  /// ceil(W/n) days, the rest floor(W/n) (DEL/REINDEX Start, Appendix A).
  static std::vector<TimeSet> SplitWindow(int window, int num_indexes);

  /// WATA* Start split: days 1..W-1 over the first n-1 clusters (ceil/floor
  /// as above), day W alone in the last cluster (Appendix A, Figure 16).
  static std::vector<TimeSet> SplitWataWindow(int window, int num_indexes);

  ConstituentIndex::Options IndexOptions() const;

  /// The disk the next new index goes to (round-robin over env_.disks, or
  /// the primary device when no disk array is configured). A non-negative
  /// `placement_hint` selects disk (hint % #disks) deterministically.
  SchemeEnv::Disk NextDisk(int placement_hint = -1);

  /// The device a constituent placed on `disk` should do its I/O through:
  /// env_.io_device for the primary disk when configured, the disk's own
  /// metered device otherwise.
  Device* IoDeviceFor(const SchemeEnv::Disk& disk) const;

  /// A fresh, empty index on the next disk.
  std::shared_ptr<ConstituentIndex> NewEmptyIndex(std::string name);

  /// Every metered device the scheme touches (primary + disk array), for
  /// phase attribution.
  std::vector<MeteredDevice*> AllDevices() const;

  /// Index of the slot whose time-set contains `day`.
  Result<size_t> FindSlotContaining(Day day) const;

  /// Replaces slot `j` (and its wave-index registration) with `with`. The
  /// previous index is destroyed when its last reference drops.
  Status ReplaceSlot(size_t j, std::shared_ptr<ConstituentIndex> with);

  /// Registers every current slot as a wave-index constituent (end of Start).
  void RegisterSlots();

  /// The constituent slots I_1..I_n (index 0-based).
  std::vector<std::shared_ptr<ConstituentIndex>> slots_;

  SchemeEnv env_;
  SchemeConfig config_;
  WaveIndex wave_;
  OpLog op_log_;
  Day current_day_ = 0;
  size_t next_disk_ = 0;
  std::unique_ptr<Updater> updater_;
  bool started_ = false;
  bool needs_recovery_ = false;
  /// Jitter stream for decorrelated retry backoff (seeded from
  /// env_.retry.jitter_seed in the constructor; untouched unless
  /// RetryPolicy::decorrelated_jitter is on).
  Rng jitter_rng_{0};

  // Fault/retry counters (atomic: metrics callbacks read them from exporter
  // threads while the maintenance thread writes).
  std::atomic<uint64_t> transient_io_errors_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retries_exhausted_{0};
  std::atomic<uint64_t> marked_unhealthy_{0};
};

namespace internal {

/// Mutation-test hook for the deterministic simulation harness: when
/// enabled, Scheme::Transition silently SKIPS the scheme's DoTransition on
/// every third day while still claiming success — a deliberate
/// sliding-window-invariant bug. The harness's acceptance test flips this on
/// and asserts the oracle cross-checks catch it within a bounded number of
/// episodes for every scheme. Never enabled in production code paths.
void SetWindowInvariantMutationForTesting(bool enabled);
bool WindowInvariantMutationForTesting();

}  // namespace internal

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_SCHEME_H_
