# Empty compiler generated dependencies file for bench_micro_schemes.
# This may be replaced when dependencies are built.
