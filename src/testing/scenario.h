// ScenarioGenerator: one seed -> one fully specified torture scenario.
//
// Everything an episode does — window geometry, day sizes, the skewed value
// distribution, the probe/scan mix, transient-error rates, and the schedule
// of protocol crash points and device crashes — is derived from a single
// uint64 seed via forked Rng streams. Day contents are a pure function of
// (workload_seed, day), so shrinking a scenario (dropping faults, truncating
// days) never perturbs the days that remain: the repro stays a repro.

#ifndef WAVEKIT_TESTING_SCENARIO_H_
#define WAVEKIT_TESTING_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/codec.h"
#include "update/update_technique.h"
#include "util/day.h"
#include "util/random.h"
#include "wave/day_store.h"

namespace wavekit {
namespace testing {

/// \brief One scheduled fault in an episode.
struct FaultEvent {
  enum class Kind {
    /// Arm a named protocol crash point before the day's AdvanceDay.
    kCrashPoint,
    /// Arm FaultInjectingDevice::ArmCrashAfterWrites before the AdvanceDay.
    kDeviceCrash,
    /// After the day's AdvanceDay commits, flip bits in one live bucket
    /// extent (silent corruption: the write succeeded long ago, the medium
    /// rotted). The harness then proves detection (scrub or read path),
    /// quarantine, and online heal, all inside the episode.
    kBitRot,
  };

  Day day = 0;
  Kind kind = Kind::kCrashPoint;
  std::string crash_point;  ///< kCrashPoint: which named point to arm.
  uint64_t countdown = 1;   ///< kDeviceCrash: writes until the crash fires.
  uint64_t target = 0;      ///< kBitRot: constituent/bucket selector + salt.
  int bits = 1;             ///< kBitRot: distinct bit positions to flip.
  bool detect_via_scrub = true;  ///< kBitRot: scrub pass vs. query path.

  std::string ToString() const;
};

/// \brief A complete, explicit episode description. Mutable by the shrinker.
struct Scenario {
  /// Seed of the deterministic workload streams (day contents, queries).
  uint64_t workload_seed = 1;

  // Window geometry (varies across episodes: the "window resize" axis).
  int window = 6;
  int num_indexes = 3;
  UpdateTechniqueKind technique = UpdateTechniqueKind::kSimpleShadow;

  /// Simulated days after Start (the episode runs days W+1 .. W+days).
  int days = 10;

  // Day-batch shape: per-day record count drawn uniformly from
  // [min_day_records, max_day_records]; each record carries
  // 1..values_per_record values drawn from a Zipf(value_universe, zipf_theta)
  // skewed distribution.
  int min_day_records = 2;
  int max_day_records = 8;
  int values_per_record = 2;
  uint64_t value_universe = 50;
  double zipf_theta = 0.9;

  // Query mix cross-checked against the oracle after every day.
  int probes_per_day = 6;
  bool scan_each_day = true;

  /// Bucket codec policy for every index the episode builds. kRaw keeps the
  /// classic byte layout; the codec episode family draws kAuto or a forced
  /// codec, so probes/scans/heals run against compressed extents too.
  CodecMode codec = CodecMode::kRaw;

  // Fault plan.
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  int retry_attempts = 1;
  std::vector<FaultEvent> faults;

  /// Human-readable one-liner per field group (multi-line); used in shrink
  /// reports and --print_scenario.
  std::string ToString() const;
};

/// \brief Derives scenarios from a base seed; episode e of seed s is the
/// same scenario on every machine, forever.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(uint64_t seed) : seed_(seed) {}

  /// The scenario of episode `episode`.
  Scenario Generate(uint64_t episode) const;

  /// The bit-rot variant of episode `episode`: the same base scenario (same
  /// workload, geometry and query mix — drawn from the identical stream, so
  /// Generate(e) stays byte-for-byte what it always was) with crash faults
  /// and transient-error rates cleared, and 1..3 kBitRot events appended
  /// from an independently forked stream. Pure corruption episodes: every
  /// day commits, then rot strikes and must be detected + healed.
  Scenario GenerateBitRot(uint64_t episode) const;

  /// The codec variant of episode `episode`: the same base scenario with a
  /// per-episode codec mode (kAuto or one forced codec) drawn from an
  /// independently forked stream. The oracle cross-check is exact, so these
  /// episodes prove compressed probes/scans return byte-identical answers.
  Scenario GenerateCodec(uint64_t episode) const;

  /// GenerateBitRot with the codec dimension layered on: rot strikes land on
  /// compressed extents too, and must still be detected (CRC over the stored
  /// bytes, or a decode failure behind it) and healed within the episode.
  Scenario GenerateCodecBitRot(uint64_t episode) const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// \brief The day-`day` batch of `scenario` — a pure function of
/// (workload_seed, day), independent of every other day.
DayBatch MakeScenarioDay(const Scenario& scenario, Day day);

/// \brief One probe the harness should issue after day `day`: a value (often
/// live, sometimes absent) and a day range inside the live window.
struct ProbePlan {
  Value value;
  DayRange range;
};

/// \brief The deterministic probe list for day `day` of `scenario`.
std::vector<ProbePlan> MakeScenarioProbes(const Scenario& scenario, Day day);

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTING_SCENARIO_H_
