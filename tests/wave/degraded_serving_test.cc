// Degraded-mode serving: unhealthy constituents are excluded (partial
// results, not errors), probes fall back to scans on transient read
// failures, transient write errors are retried inside the maintenance
// primitives, and a WaveService keeps answering through a failed AdvanceDay.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "storage/fault_injecting_device.h"
#include "testing/test_env.h"
#include "util/thread_pool.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class DegradedServingTest : public ::testing::Test {
 protected:
  DegradedServingTest()
      : memory_(uint64_t{1} << 24),
        faulty_(&memory_),
        metered_(&faulty_),
        allocator_(memory_.capacity()) {}

  // A wave of two constituents: days 1-3 and days 4-6.
  void BuildWave() {
    for (int part = 0; part < 2; ++part) {
      std::vector<DayBatch> batches;
      for (Day d = 1 + 3 * part; d <= 3 + 3 * part; ++d) {
        batches.push_back(MakeMixedBatch(d));
        reference_.Add(batches.back());
        if (part == 1) late_reference_.Add(batches.back());
      }
      std::vector<const DayBatch*> ptrs;
      for (const DayBatch& b : batches) ptrs.push_back(&b);
      auto built = IndexBuilder::BuildPacked(&metered_, &allocator_, {}, ptrs,
                                             "part" + std::to_string(part));
      ASSERT_TRUE(built.ok()) << built.status();
      wave_.AddIndex(std::move(built).ValueOrDie());
    }
  }

  MemoryDevice memory_;
  FaultInjectingDevice faulty_;
  MeteredDevice metered_;
  ExtentAllocator allocator_;
  WaveIndex wave_;
  ReferenceIndex reference_;       // all six days
  ReferenceIndex late_reference_;  // days 4-6 only
};

TEST_F(DegradedServingTest, UnhealthyConstituentIsExcludedWithPartialResult) {
  BuildWave();
  wave_.constituents()[0]->set_healthy(false);

  std::vector<Entry> out;
  QueryStats stats;
  Status status = wave_.TimedIndexProbe(DayRange::All(), "alpha", &out, &stats);
  ASSERT_TRUE(status.IsPartialResult()) << status;
  EXPECT_EQ(stats.indexes_unhealthy, 1);
  EXPECT_EQ(stats.indexes_failed, 0);
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, late_reference_.Probe("alpha", kDayNegInf, kDayPosInf));

  std::vector<Entry> scanned;
  QueryStats scan_stats;
  status = wave_.TimedSegmentScan(
      DayRange::All(), [&](const Value&, const Entry& e) { scanned.push_back(e); },
      &scan_stats);
  ASSERT_TRUE(status.IsPartialResult()) << status;
  EXPECT_EQ(scan_stats.indexes_unhealthy, 1);
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, late_reference_.ScanAll(kDayNegInf, kDayPosInf));

  // Healing the constituent restores exact answers.
  wave_.constituents()[0]->set_healthy(true);
  out.clear();
  ASSERT_OK(wave_.TimedIndexProbe(DayRange::All(), "alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));
}

TEST_F(DegradedServingTest, ParallelQueriesAlsoExcludeUnhealthy) {
  BuildWave();
  wave_.constituents()[0]->set_healthy(false);
  ThreadPool pool(4);

  std::vector<Entry> out;
  QueryStats stats;
  Status status = wave_.ParallelTimedIndexProbe(&pool, DayRange::All(),
                                                "beta", &out, &stats);
  ASSERT_TRUE(status.IsPartialResult()) << status;
  EXPECT_EQ(stats.indexes_unhealthy, 1);
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, late_reference_.Probe("beta", kDayNegInf, kDayPosInf));

  std::vector<Entry> scanned;
  QueryStats scan_stats;
  status = wave_.ParallelTimedSegmentScan(
      &pool, DayRange::All(),
      [&](const Value&, const Entry& e) { scanned.push_back(e); },
      &scan_stats);
  ASSERT_TRUE(status.IsPartialResult()) << status;
  EXPECT_EQ(scan_stats.indexes_unhealthy, 1);
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, late_reference_.ScanAll(kDayNegInf, kDayPosInf));
}

TEST_F(DegradedServingTest, ProbeFallsBackToScanUnderFlakyReads) {
  BuildWave();
  faulty_.set_read_error_rate(0.25);
  const std::vector<Entry> expected =
      reference_.Probe("gamma", kDayNegInf, kDayPosInf);
  int fallbacks = 0, fallback_successes = 0, partials = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<Entry> out;
    QueryStats stats;
    const Status status =
        wave_.TimedIndexProbe(DayRange::All(), "gamma", &out, &stats);
    fallbacks += stats.probe_fallbacks;
    if (status.ok()) {
      // A fully-served answer — through the directory or the scan fallback —
      // must be exact.
      ReferenceIndex::Sort(&out);
      ASSERT_EQ(out, expected) << "iteration " << i;
      if (stats.probe_fallbacks > 0) ++fallback_successes;
    } else {
      ASSERT_TRUE(status.IsPartialResult()) << status;
      EXPECT_GT(stats.indexes_failed, 0);
      ++partials;
    }
  }
  // At a 25% read-error rate over 300 probes all three regimes occur.
  EXPECT_GT(fallbacks, 0);
  EXPECT_GT(fallback_successes, 0);
  EXPECT_GT(partials, 0);
}

TEST_F(DegradedServingTest, TransientWriteErrorsAreRetriedToSuccess) {
  DayStore day_store;
  SchemeEnv env{&metered_, &allocator_, &day_store};
  env.retry.max_attempts = 5;
  env.retry.initial_backoff_us = 1;
  env.retry.max_backoff_us = 4;
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(SchemeKind::kWata, env, config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ReferenceIndex reference;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));

  faulty_.set_write_error_rate(0.05);
  for (Day d = 7; d <= 24; ++d) {
    ASSERT_OK(scheme->Transition(MakeMixedBatch(d))) << "day " << d;
  }
  faulty_.set_write_error_rate(0.0);
  const FaultStats faults = scheme->fault_stats();
  EXPECT_GT(faults.transient_io_errors, 0u);
  EXPECT_GT(faults.retries, 0u);
  EXPECT_EQ(faults.retries_exhausted, 0u);
  EXPECT_FALSE(scheme->needs_recovery());

  // The surviving index answers exactly.
  for (Day d = 19; d <= 24; ++d) reference.Add(MakeMixedBatch(d));
  std::vector<Entry> out;
  ASSERT_OK(scheme->wave().TimedIndexProbe(DayRange::Window(24, 6), "alpha",
                                           &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference.Probe("alpha", 19, 24));
}

TEST_F(DegradedServingTest, PermanentFailureEntersRecoveryModeButKeepsServing) {
  DayStore day_store;
  SchemeEnv env{&metered_, &allocator_, &day_store};
  env.retry.max_attempts = 2;
  env.retry.initial_backoff_us = 1;
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(SchemeKind::kWata, env, config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));
  ASSERT_OK(scheme->Transition(MakeMixedBatch(7)));

  faulty_.set_write_error_rate(1.0);
  const Status failed = scheme->Transition(MakeMixedBatch(8));
  ASSERT_TRUE(failed.IsIOError()) << failed;
  faulty_.set_write_error_rate(0.0);

  EXPECT_TRUE(scheme->needs_recovery());
  EXPECT_EQ(scheme->current_day(), 7);
  const FaultStats faults = scheme->fault_stats();
  EXPECT_GT(faults.retries_exhausted, 0u);
  EXPECT_GT(faults.constituents_marked_unhealthy, 0u);

  // Refuses to dig the hole deeper.
  const Status again = scheme->Transition(MakeMixedBatch(8));
  ASSERT_TRUE(again.IsFailedPrecondition()) << again;

  // The wave still answers over the healthy remainder.
  std::vector<Entry> out;
  QueryStats stats;
  Status degraded = scheme->wave().TimedIndexProbe(DayRange::Window(7, 6),
                                                   "alpha", &out, &stats);
  ASSERT_TRUE(degraded.ok() || degraded.IsPartialResult()) << degraded;
  if (degraded.IsPartialResult()) EXPECT_GT(stats.indexes_unhealthy, 0);
}

TEST(WaveServiceDegradedTest, KeepsServingThroughFailedAdvance) {
  FaultInjectingDevice* faulty = nullptr;
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = 6;
  options.config.num_indexes = 3;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  options.device_capacity = uint64_t{1} << 24;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_us = 1;
  options.device_interposer = [&faulty](Device* inner) {
    auto device = std::make_unique<FaultInjectingDevice>(inner);
    faulty = device.get();
    return device;
  };
  auto made = WaveService::Create(options);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<WaveService> service = std::move(made).ValueOrDie();
  ASSERT_NE(faulty, nullptr);

  ReferenceIndex reference;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) {
    first.push_back(MakeMixedBatch(d));
    if (d >= 2) reference.Add(first.back());
  }
  ASSERT_OK(service->Start(std::move(first)));
  DayBatch day7 = MakeMixedBatch(7);
  reference.Add(day7);
  ASSERT_OK(service->AdvanceDay(std::move(day7)));
  ASSERT_EQ(service->current_day(), 7);

  faulty->set_write_error_rate(1.0);
  const Status failed = service->AdvanceDay(MakeMixedBatch(8));
  ASSERT_TRUE(failed.IsIOError()) << failed;
  faulty->set_write_error_rate(0.0);

  // The failed advance degraded the service but did not take it down: the
  // published snapshot is still the complete day-7 window.
  EXPECT_EQ(service->current_day(), 7);
  EXPECT_EQ(service->Metrics().degraded_advances, 1u);
  EXPECT_GT(service->Metrics().faults.retries_exhausted, 0u);

  std::vector<Entry> out;
  QueryStats stats;
  const Status query = service->TimedIndexProbe(DayRange::Window(7, 6),
                                                "alpha", &out, &stats);
  ASSERT_TRUE(query.ok() || query.IsPartialResult()) << query;
  if (query.IsPartialResult()) {
    EXPECT_GT(stats.indexes_unhealthy, 0);
    EXPECT_GE(service->Metrics().partial_results, 1u);
  } else {
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe("alpha", 2, 7));
  }

  // The scheme demands recovery before further transitions.
  const Status again = service->AdvanceDay(MakeMixedBatch(8));
  ASSERT_TRUE(again.IsFailedPrecondition()) << again;
  EXPECT_EQ(service->Metrics().degraded_advances, 2u);
}

}  // namespace
}  // namespace wavekit
