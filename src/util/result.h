// Result<T>: a Status or a value of type T.

#ifndef WAVEKIT_UTIL_RESULT_H_
#define WAVEKIT_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/status.h"

namespace wavekit {

/// \brief Holds either a value of type T or a non-OK Status explaining why no
/// value was produced.
///
/// Typical usage:
/// \code
///   Result<Extent> r = allocator.Allocate(1024);
///   if (!r.ok()) return r.status();
///   Extent e = std::move(r).ValueOrDie();
/// \endcode
/// or, with the macro from util/macros.h:
/// \code
///   WAVEKIT_ASSIGN_OR_RETURN(Extent e, allocator.Allocate(1024));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return std::move(*value_);
  }

  /// Alias for ValueOrDie, matching the Arrow spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` if this holds an error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_RESULT_H_
