// CRC-32 (IEEE 802.3) checksums, used to detect corrupt or truncated
// metadata files (wave/checkpoint.h, wave/journal.h).

#ifndef WAVEKIT_UTIL_CRC32_H_
#define WAVEKIT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wavekit {

/// \brief CRC-32 of `length` bytes at `data` (IEEE polynomial, reflected,
/// initial and final XOR 0xFFFFFFFF — the zlib/PNG convention).
uint32_t Crc32(const void* data, size_t length);

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_CRC32_H_
