#include "wave/reindex_plus_plus_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status ReindexPlusPlusScheme::InitializeLadder(const TimeSet& days,
                                               Phase phase) {
  // Discard any leftover temporaries from the previous cycle.
  for (auto& temp : temps_) {
    if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(DropIndex(temp));
  }
  temps_.clear();
  days_to_add_.clear();

  // T_0 <- phi (created empty; never built, so no logged cost).
  temps_.push_back(NewEmptyIndex("T0"));
  temp_used_ = 0;
  if (days.empty()) return Status::OK();

  // T_1 = BuildIndex({d_k}); T_i = copy(T_{i-1}) + d_{k-i+1}: T_i holds the
  // i most recent days of `days`.
  std::vector<Day> descending(days.rbegin(), days.rend());
  WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> rung,
                           BuildIndex({descending[0]}, "T1", phase));
  temps_.push_back(rung);
  for (size_t i = 1; i < descending.size(); ++i) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> next,
        CopyIndex(*temps_.back(), "T" + std::to_string(i + 1), phase));
    WAVEKIT_RETURN_NOT_OK(AddToIndex({descending[i]}, &next, phase));
    temps_.push_back(std::move(next));
  }
  temp_used_ = static_cast<int>(descending.size());
  return Status::OK();
}

Status ReindexPlusPlusScheme::PromoteTemp(
    size_t j, std::shared_ptr<ConstituentIndex> temp) {
  temp->set_name(slots_[j]->name());
  LogRename(*temp);
  if (config_.technique == UpdateTechniqueKind::kPackedShadow) {
    WAVEKIT_RETURN_NOT_OK(PackIndex(&temp, Phase::kTransition));
  }
  return ReplaceSlot(j, std::move(temp));
}

Status ReindexPlusPlusScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  // Prepare the ladder for the first cluster (its first day, day 1, expires
  // first and is never re-added).
  TimeSet init_days = slots_[0]->time_set();
  init_days.erase(init_days.begin());
  return InitializeLadder(init_days, Phase::kStart);
}

Status ReindexPlusPlusScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));

  if (temp_used_ == 0) {
    // Cluster rotation completes: T_0 (which accumulated DaysToAdd) gets the
    // new day and becomes I_j; then precompute the next cluster's ladder.
    obs::Span span = TraceOp("REINDEX++.finish_rotation");
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, &temps_[0], Phase::kTransition));
    std::shared_ptr<ConstituentIndex> promoted = std::move(temps_[0]);
    temps_[0] = nullptr;
    WAVEKIT_RETURN_NOT_OK(PromoteTemp(j, std::move(promoted)));
    // The next cluster to rotate is the one holding tomorrow's expiring day.
    WAVEKIT_ASSIGN_OR_RETURN(size_t j_next, FindSlotContaining(expired + 1));
    TimeSet init_days = slots_[j_next]->time_set();
    init_days.erase(expired + 1);
    WAVEKIT_RETURN_NOT_OK(InitializeLadder(init_days, Phase::kPrecompute));
  } else {
    // Mid-rotation: the highest unused rung + the new day becomes I_j; the
    // next rung is topped up with all accumulated new days for later.
    obs::Span span = TraceOp("REINDEX++.mid_rotation");
    days_to_add_.insert(new_day.day);
    WAVEKIT_RETURN_NOT_OK(AddToIndex(
        {new_day.day}, &temps_[static_cast<size_t>(temp_used_)],
        Phase::kTransition));
    std::shared_ptr<ConstituentIndex> promoted =
        std::move(temps_[static_cast<size_t>(temp_used_)]);
    temps_[static_cast<size_t>(temp_used_)] = nullptr;
    WAVEKIT_RETURN_NOT_OK(PromoteTemp(j, std::move(promoted)));
    --temp_used_;
    WAVEKIT_RETURN_NOT_OK(AddToIndex(days_to_add_,
                                     &temps_[static_cast<size_t>(temp_used_)],
                                     Phase::kPrecompute));
  }
  return Status::OK();
}

Status ReindexPlusPlusScheme::DoAdopt() {
  WAVEKIT_RETURN_NOT_OK(Scheme::DoAdopt());
  // Reconstruct the mid-rotation ladder. Split the expiring cluster into OLD
  // days (d < min + |cluster|, expiring during this rotation) and RECENT
  // days (accumulated since the rotation began). The uninterrupted ladder at
  // this point holds: T_i = the i most recent remaining old days for
  // i < TempUsed; the top rung additionally carries every recent day; and
  // once TempUsed reaches 0, T_0 carries exactly the recent days.
  const Day oldest = current_day_ - config_.window + 1;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(oldest));
  const TimeSet& cluster = slots_[j]->time_set();
  const Day old_limit = *cluster.begin() + static_cast<Day>(cluster.size());
  TimeSet recent;
  std::vector<Day> old_rest_descending;
  for (auto it = cluster.rbegin(); it != cluster.rend(); ++it) {
    if (*it >= old_limit) {
      recent.insert(*it);
    } else if (*it != oldest) {
      old_rest_descending.push_back(*it);
    }
  }

  for (auto& temp : temps_) {
    if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(DropIndex(temp));
  }
  temps_.clear();
  days_to_add_ = recent;
  temp_used_ = static_cast<int>(old_rest_descending.size());

  // T_0: empty mid-rotation; the accumulated recent days once the ladder is
  // spent.
  if (temp_used_ == 0) {
    if (recent.empty()) {
      temps_.push_back(NewEmptyIndex("T0"));
    } else {
      WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> t0,
                               BuildIndex(recent, "T0", Phase::kPrecompute));
      temps_.push_back(std::move(t0));
    }
    return Status::OK();
  }
  temps_.push_back(NewEmptyIndex("T0"));
  TimeSet rung_days;
  for (int i = 1; i <= temp_used_; ++i) {
    rung_days.insert(old_rest_descending[static_cast<size_t>(i - 1)]);
    TimeSet contents = rung_days;
    if (i == temp_used_) {
      contents.insert(recent.begin(), recent.end());  // the topped-up rung
    }
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> rung,
        BuildIndex(contents, "T" + std::to_string(i), Phase::kPrecompute));
    temps_.push_back(std::move(rung));
  }
  return Status::OK();
}

std::vector<const ConstituentIndex*> ReindexPlusPlusScheme::TemporaryIndexes()
    const {
  std::vector<const ConstituentIndex*> out;
  for (const auto& temp : temps_) {
    if (temp != nullptr) out.push_back(temp.get());
  }
  return out;
}

}  // namespace wavekit
