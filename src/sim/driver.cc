#include "sim/driver.h"

#include <algorithm>
#include <memory>

#include "model/op_evaluator.h"
#include "model/query_model.h"
#include "storage/disk_array.h"
#include "util/macros.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace sim {
namespace {

Aggregates Aggregate(const std::vector<DayStats>& days, int warmup_days) {
  Aggregates agg;
  int counted = 0;
  for (size_t i = 0; i < days.size(); ++i) {
    const DayStats& d = days[i];
    agg.max_operation_bytes =
        std::max(agg.max_operation_bytes, d.operation_bytes);
    agg.max_transition_extra_bytes =
        std::max(agg.max_transition_extra_bytes, d.transition_extra_bytes);
    agg.max_wave_length_days =
        std::max(agg.max_wave_length_days, d.wave_length_days);
    agg.max_wave_entries = std::max(agg.max_wave_entries, d.wave_entries);
    if (i < static_cast<size_t>(warmup_days)) continue;
    ++counted;
    agg.avg_sim_transition_seconds += d.sim_transition_seconds;
    agg.avg_sim_precompute_seconds += d.sim_precompute_seconds;
    agg.avg_sim_query_seconds += d.sim_query_seconds;
    agg.avg_sim_total_work += d.sim_total_work();
    agg.avg_sim_maintenance_parallel_seconds +=
        d.sim_maintenance_parallel_seconds;
    agg.avg_sim_query_parallel_seconds += d.sim_query_parallel_seconds;
    agg.avg_model_transition_seconds += d.model_transition_seconds;
    agg.avg_model_precompute_seconds += d.model_precompute_seconds;
    agg.avg_model_query_seconds += d.model_query_seconds;
    agg.avg_model_total_work += d.model_total_work();
    agg.avg_operation_bytes += static_cast<double>(d.operation_bytes);
    agg.avg_transition_extra_bytes +=
        static_cast<double>(d.transition_extra_bytes);
    agg.avg_wave_length_days += d.wave_length_days;
  }
  if (counted > 0) {
    const double n = counted;
    agg.avg_sim_transition_seconds /= n;
    agg.avg_sim_precompute_seconds /= n;
    agg.avg_sim_query_seconds /= n;
    agg.avg_sim_total_work /= n;
    agg.avg_sim_maintenance_parallel_seconds /= n;
    agg.avg_sim_query_parallel_seconds /= n;
    agg.avg_model_transition_seconds /= n;
    agg.avg_model_precompute_seconds /= n;
    agg.avg_model_query_seconds /= n;
    agg.avg_model_total_work /= n;
    agg.avg_operation_bytes /= n;
    agg.avg_transition_extra_bytes /= n;
    agg.avg_wave_length_days /= n;
  }
  return agg;
}

// Per-disk counters for one phase, for delta-based per-day accounting.
std::vector<IoCounters> SnapshotPhase(DiskArray& disks, Phase phase) {
  std::vector<IoCounters> out;
  out.reserve(static_cast<size_t>(disks.size()));
  for (int i = 0; i < disks.size(); ++i) {
    out.push_back(disks.device(i)->counters(phase));
  }
  return out;
}

// Serial seconds of the deltas (sum over disks).
double SerialDelta(DiskArray& disks, Phase phase,
                   const std::vector<IoCounters>& before,
                   const CostModel& cost) {
  IoCounters total;
  for (int i = 0; i < disks.size(); ++i) {
    total += disks.device(i)->counters(phase) - before[static_cast<size_t>(i)];
  }
  return cost.Seconds(total);
}

// Parallel seconds of the deltas (slowest disk).
double ParallelDelta(DiskArray& disks, Phase phase,
                     const std::vector<IoCounters>& before,
                     const CostModel& cost) {
  double slowest = 0;
  for (int i = 0; i < disks.size(); ++i) {
    slowest = std::max(
        slowest, cost.Seconds(disks.device(i)->counters(phase) -
                              before[static_cast<size_t>(i)]));
  }
  return slowest;
}

}  // namespace

Result<ExperimentResult> ExperimentDriver::Run(const ExperimentConfig& config) {
  DiskArray disks(std::max(config.num_disks, 1), config.device_capacity);
  DayStore day_store;
  SchemeEnv env{disks.device(0), disks.allocator(0), &day_store};
  if (disks.size() > 1) {
    for (int i = 0; i < disks.size(); ++i) {
      env.disks.push_back(
          SchemeEnv::Disk{disks.device(i), disks.allocator(i)});
    }
  }
  WAVEKIT_ASSIGN_OR_RETURN(
      std::unique_ptr<Scheme> scheme,
      MakeScheme(config.scheme, env, config.scheme_config));

  workload::NetnewsGenerator netnews(config.netnews);
  workload::TpcdGenerator tpcd(config.tpcd);
  auto generate_day = [&](Day day) -> DayBatch {
    uint64_t override_count = 0;
    const size_t trace_slot = static_cast<size_t>(day - 1);
    if (trace_slot < config.volume_trace.size()) {
      override_count = config.volume_trace[trace_slot];
    }
    switch (config.workload) {
      case WorkloadKind::kNetnews:
        return netnews.GenerateDay(day, override_count);
      case WorkloadKind::kTpcd:
        return tpcd.GenerateDay(day, override_count);
    }
    return DayBatch{day, {}};
  };
  std::function<Value(Rng&)> value_sampler;
  switch (config.workload) {
    case WorkloadKind::kNetnews:
      value_sampler = [&netnews](Rng& rng) { return netnews.SampleWord(rng); };
      break;
    case WorkloadKind::kTpcd:
      value_sampler = [&tpcd](Rng& rng) { return tpcd.SampleSuppkey(rng); };
      break;
  }

  const int window = config.scheme_config.window;
  std::vector<DayBatch> first;
  first.reserve(static_cast<size_t>(window));
  for (Day d = 1; d <= window; ++d) first.push_back(generate_day(d));
  WAVEKIT_RETURN_NOT_OK(scheme->Start(std::move(first)));

  model::OpEvaluator evaluator(config.paper);
  ExperimentResult result;
  result.days.reserve(static_cast<size_t>(config.days_to_run));

  for (int i = 1; i <= config.days_to_run; ++i) {
    const Day day = window + i;
    DayStats stats;
    stats.day = day;

    const auto transition_before = SnapshotPhase(disks, Phase::kTransition);
    const auto precompute_before = SnapshotPhase(disks, Phase::kPrecompute);
    for (int disk = 0; disk < disks.size(); ++disk) {
      disks.allocator(disk)->ResetPeak();
    }

    WAVEKIT_RETURN_NOT_OK(scheme->Transition(generate_day(day)));

    stats.sim_transition_seconds =
        SerialDelta(disks, Phase::kTransition, transition_before, config.cost);
    stats.sim_precompute_seconds =
        SerialDelta(disks, Phase::kPrecompute, precompute_before, config.cost);
    stats.sim_maintenance_parallel_seconds =
        ParallelDelta(disks, Phase::kTransition, transition_before,
                      config.cost) +
        ParallelDelta(disks, Phase::kPrecompute, precompute_before,
                      config.cost);

    const model::MaintenanceCost model_cost =
        evaluator.PriceDay(scheme->op_log(), day);
    stats.model_transition_seconds = model_cost.transition_seconds;
    stats.model_precompute_seconds = model_cost.precompute_seconds;

    stats.constituent_bytes = scheme->ConstituentBytes();
    stats.temporary_bytes = scheme->TemporaryBytes();
    stats.operation_bytes = stats.constituent_bytes + stats.temporary_bytes;
    uint64_t transition_extra = 0;
    for (int disk = 0; disk < disks.size(); ++disk) {
      const uint64_t peak = disks.allocator(disk)->peak_allocated_bytes();
      const uint64_t steady = disks.allocator(disk)->allocated_bytes();
      transition_extra += peak > steady ? peak - steady : 0;
    }
    stats.transition_extra_bytes = transition_extra;

    stats.wave_length_days = scheme->WaveLength();
    stats.wave_entries = scheme->wave().EntryCount();

    // The day's query stream: sampled on the device, full volume via model.
    const DayRange query_window = DayRange::Window(day, window);
    const auto query_before = SnapshotPhase(disks, Phase::kQuery);
    WAVEKIT_ASSIGN_OR_RETURN(
        workload::QueryCosts query_costs,
        workload::RunDailyQueries(scheme->wave(), disks.devices(), config.cost,
                                  config.query_mix, query_window,
                                  value_sampler));
    stats.sim_query_seconds = query_costs.seconds;
    // Scale the sampled parallel elapsed by the same factor serial was
    // scaled: full_volume_serial / sampled_serial.
    const double sampled_serial =
        SerialDelta(disks, Phase::kQuery, query_before, config.cost);
    const double sampled_parallel =
        ParallelDelta(disks, Phase::kQuery, query_before, config.cost);
    stats.sim_query_parallel_seconds =
        sampled_serial > 0
            ? query_costs.seconds * (sampled_parallel / sampled_serial)
            : 0;
    stats.model_query_seconds = model::DailyQuerySeconds(
        config.paper, config.scheme, config.scheme_config.technique, window,
        config.scheme_config.num_indexes);

    result.days.push_back(stats);
  }
  result.aggregates = Aggregate(result.days, config.warmup_days);
  return result;
}

}  // namespace sim
}  // namespace wavekit
