# Empty compiler generated dependencies file for wave_service_test.
# This may be replaced when dependencies are built.
