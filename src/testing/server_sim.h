// Deterministic server simulation: the serving stack minus the sockets.
//
// ServerCore was split from the epoll loop precisely so that the request
// brain — framing, dispatch, per-tenant rate limits, async-advance
// acknowledgement, drain — can be driven byte-for-byte in process. An
// episode here wires N tenants' WaveServices onto simulation seams
// (SimExecutor pools, a SimClock) behind one ServerCore, opens one Session
// per tenant as an in-memory loopback connection, and then interleaves:
//
//   - ADVANCE requests that queue through AdvanceDayAsync (the reply
//     acknowledges the still-current day),
//   - single-stepped advance executors (RunOne publishes exactly the next
//     queued day), and
//   - PROBE / SCAN / STATS requests issued *between* those steps, each
//     decoded from the actual reply bytes and cross-checked against a
//     brute-force OracleDB that is advanced in lockstep with the published
//     (not the queued) days.
//
// Every episode ends with a drain rehearsal: BeginDrain must refuse new
// sessions while buffered requests on open sessions keep being answered,
// and WaitForMaintenance must land every queued advance.
//
// Determinism is the contract, not a best effort: an episode's entire
// reply byte stream and trace are folded into a CRC-32 digest, and
// RunEpisode(e) twice must produce the identical digest (RunMany asserts
// this for every episode). Everything follows from (seed, episode): the
// scheme, the workload, the interleaving, the probe values.

#ifndef WAVEKIT_TESTING_SERVER_SIM_H_
#define WAVEKIT_TESTING_SERVER_SIM_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace wavekit {
namespace testing {

/// \brief Server-simulation configuration. Behaviour follows entirely from
/// `seed` and the episode number; the rest shapes the episode's size.
struct ServerSimConfig {
  /// Base seed: episode e of seed s replays the same scenario forever.
  uint64_t seed = 1;
  /// Episodes for RunMany (each runs twice: once to serve, once to confirm
  /// the byte-identical digest).
  uint64_t episodes = 8;
  /// Tenants behind the simulated server (one loopback session each).
  int tenants = 3;
  /// Daily transitions per tenant per episode.
  int days = 5;
  /// Sliding-window width (and first-window bootstrap size).
  int window = 4;
  /// Synthetic Netnews articles per day per tenant.
  uint64_t articles_per_day = 12;
  /// Cross-checked probes issued at each interleave point.
  int probes_per_step = 3;
};

/// \brief Outcome of one simulated serving episode.
struct ServerEpisodeResult {
  uint64_t episode = 0;
  /// OK when every reply decoded, every cross-check matched, and the drain
  /// rehearsal behaved.
  Status status = Status::OK();
  /// Deterministic episode trace: one line per request batch / publish /
  /// drain step. Byte-identical across runs of the same (seed, episode).
  std::string trace;
  /// CRC-32 over the episode's full reply byte stream plus the trace.
  uint32_t digest = 0;
  /// Total requests the simulated server answered.
  uint64_t requests = 0;
  /// Non-empty on failure: the command that replays this exact episode.
  std::string repro;
};

/// \brief Seed-reproducible in-process server simulator.
class ServerSimulator {
 public:
  explicit ServerSimulator(ServerSimConfig config) : config_(config) {}

  /// Runs episode `episode` of the configured seed.
  ServerEpisodeResult RunEpisode(uint64_t episode) const;

  /// Runs episodes 0..episodes-1, re-running each to assert the digest is
  /// byte-identical; stops at and returns the first failure, or the last
  /// (successful) result.
  ServerEpisodeResult RunMany() const;

  const ServerSimConfig& config() const { return config_; }

 private:
  ServerSimConfig config_;
};

/// \brief The repro command line for (seed, episode).
std::string ServerReproCommand(uint64_t seed, uint64_t episode);

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTING_SERVER_SIM_H_
