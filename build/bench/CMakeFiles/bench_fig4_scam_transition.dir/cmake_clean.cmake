file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scam_transition.dir/bench_fig4_scam_transition.cc.o"
  "CMakeFiles/bench_fig4_scam_transition.dir/bench_fig4_scam_transition.cc.o.d"
  "bench_fig4_scam_transition"
  "bench_fig4_scam_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scam_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
