// Figure 6: total daily work for a Web search engine (W = 35, 340k probes
// per day, packed shadow updating) vs n.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 6: WSE average total work per day vs n (W=35, packed "
         "shadowing)",
         "With heavy query volume and a large window, REINDEX — best for "
         "SCAM — now performs the WORST; DEL/WATA/RATA do minimal work at "
         "small n. The paper recommends DEL with n = 1.");

  const model::CaseParams params = model::CaseParams::Wse();
  const int window = 35;
  const std::vector<int> ns = {1, 2, 3, 4, 5, 7, 10};

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled, packed shadow updating)");

  std::map<SchemeKind, std::map<int, double>> series;
  for (int n : ns) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      const model::TotalWork work = TotalWorkOrDie(
          kind, UpdateTechniqueKind::kPackedShadow, params, window, n);
      series[kind][n] = work.total();
      row.push_back(Fmt(series[kind][n], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  // REINDEX worst among the paper's headline comparison set at every n (its
  // + / ++ variants inherit the same O(W/n) re-indexing and fare no better).
  bool reindex_worst = true;
  for (int n : ns) {
    for (SchemeKind kind :
         {SchemeKind::kDel, SchemeKind::kWata, SchemeKind::kRata}) {
      if (!SchemeValid(kind, n)) continue;
      reindex_worst &= series[SchemeKind::kReindex][n] > series[kind][n];
    }
  }
  checks.Check(reindex_worst,
               "REINDEX now performs the worst (vs DEL/WATA/RATA at every n)");
  bool family_bad = true;
  for (int n : ns) {
    family_bad &= series[SchemeKind::kReindexPlus][n] >
                  1.1 * series[SchemeKind::kDel][n];
  }
  checks.Check(family_bad,
               "the whole re-indexing family is uncompetitive under WSE's "
               "query volume");
  // DEL at n = 1 is the global minimum (the paper's recommendation).
  double del1 = series[SchemeKind::kDel][1];
  bool del1_best = true;
  for (int n : ns) {
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) continue;
      if (kind == SchemeKind::kDel && n == 1) continue;
      del1_best &= del1 <= series[kind][n] * 1.001;
    }
  }
  checks.Check(del1_best, "DEL (n = 1) does the minimal total work: the "
                          "paper's WSE recommendation");
  checks.Check(series[SchemeKind::kDel][10] > 1.5 * del1,
               "work grows with n under WSE's query volume (each probe "
               "touches every constituent)");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
