// ServerCore conformance: dispatch, admission control, rate limiting on an
// injected clock, the scan transport cap, framing-violation teardown, and
// drain semantics — all through Ingest(), no sockets anywhere.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server_core.h"
#include "testing/test_env.h"
#include "util/clock.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace serve {
namespace {

using wavekit::testing::MakeMixedBatch;

constexpr int kWindow = 3;

std::unique_ptr<WaveService> MakeService() {
  WaveService::Options options;
  options.scheme = SchemeKind::kDel;
  options.config.window = kWindow;
  options.config.num_indexes = 2;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto service = WaveService::Create(std::move(options));
  EXPECT_OK(service.status());
  std::unique_ptr<WaveService> out = std::move(service).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  EXPECT_OK(out->Start(std::move(first)));
  return out;
}

/// Core + one tenant + one session, ready to serve.
struct TestServer {
  explicit TestServer(ServerCore::Options options = {})
      : core(std::move(options)) {
    EXPECT_OK(core.AddTenant(0, MakeService()));
    auto opened = core.OpenSession();
    EXPECT_OK(opened.status());
    session = *opened;
  }
  ServerCore core;
  ServerCore::Session* session = nullptr;
};

/// Ingests `request`, expecting healthy traffic, and returns the one reply.
Frame Serve(TestServer* server, const std::string& request) {
  std::string out;
  EXPECT_OK(server->core.Ingest(server->session, request.data(),
                                request.size(), &out));
  FrameReader reader;
  EXPECT_OK(reader.Feed(out.data(), out.size()));
  Frame frame;
  EXPECT_TRUE(reader.Next(&frame));
  return frame;
}

TEST(ServerCoreTest, ProbeRoundTrip) {
  TestServer server;
  ProbeRequest request;
  request.range = DayRange::Window(kWindow, kWindow);
  request.value = "alpha";  // MakeMixedBatch plants "alpha" every day
  const Frame reply = Serve(&server, EncodeProbeRequest(0, 7, request));
  EXPECT_EQ(reply.header.type, static_cast<uint8_t>(FrameType::kProbeReply));
  EXPECT_EQ(reply.header.request_id, 7u);
  QueryReply decoded;
  ASSERT_OK(DecodeQueryReply(reply.payload, &decoded));
  EXPECT_TRUE(decoded.result.ok()) << decoded.result.detail;
  EXPECT_GT(decoded.entries.size(), 0u);
  EXPECT_EQ(server.core.requests_served(), 1u);
}

TEST(ServerCoreTest, UnknownTenantIsNotFound) {
  TestServer server;
  const Frame reply = Serve(&server, EncodeStatsRequest(42, 1));
  EXPECT_EQ(reply.header.type, static_cast<uint8_t>(FrameType::kStatsReply));
  WireResult result;
  ASSERT_OK(DecodeResultPrefix(reply.payload, &result));
  EXPECT_EQ(result.code, StatusCode::kNotFound);
  EXPECT_EQ(server.core.errors_returned(), 1u);
}

TEST(ServerCoreTest, UnknownFrameTypeGetsErrorReply) {
  TestServer server;
  const Frame reply =
      Serve(&server, EncodeRawFrame(kProtocolVersion, 0x6E, 0, 9, ""));
  EXPECT_EQ(reply.header.type, static_cast<uint8_t>(FrameType::kErrorReply));
  EXPECT_EQ(reply.header.request_id, 9u);
  WireResult result;
  ASSERT_OK(DecodeResultPrefix(reply.payload, &result));
  EXPECT_EQ(result.code, StatusCode::kInvalidArgument);
}

TEST(ServerCoreTest, MalformedBodyIsHealthyTraffic) {
  TestServer server;
  // A syntactically valid frame whose PROBE body is truncated: the session
  // survives and the next request is served normally.
  const Frame bad = Serve(&server, EncodeRawFrame(
      kProtocolVersion, static_cast<uint8_t>(FrameType::kProbe), 0, 1, "xx"));
  WireResult result;
  ASSERT_OK(DecodeResultPrefix(bad.payload, &result));
  EXPECT_EQ(result.code, StatusCode::kInvalidArgument);

  const Frame good = Serve(&server, EncodeStatsRequest(0, 2));
  StatsReply stats;
  ASSERT_OK(DecodeStatsReply(good.payload, &stats));
  EXPECT_TRUE(stats.result.ok());
  EXPECT_EQ(stats.current_day, kWindow);
}

TEST(ServerCoreTest, FramingViolationTearsDownWithFinalError) {
  TestServer server;
  const std::string bad =
      EncodeRawFrame(9, static_cast<uint8_t>(FrameType::kStats), 5, 11, "");
  std::string out;
  const Status status =
      server.core.Ingest(server.session, bad.data(), bad.size(), &out);
  EXPECT_FALSE(status.ok());
  // One final, addressable error reply was emitted for the caller to flush.
  FrameReader reader;
  ASSERT_OK(reader.Feed(out.data(), out.size()));
  Frame frame;
  ASSERT_TRUE(reader.Next(&frame));
  EXPECT_EQ(frame.header.type, static_cast<uint8_t>(FrameType::kErrorReply));
  EXPECT_EQ(frame.header.tenant_id, 5);
  EXPECT_EQ(frame.header.request_id, 11u);
}

TEST(ServerCoreTest, PipelinedRequestsYieldOrderedReplies) {
  TestServer server;
  std::string stream;
  for (uint32_t id = 1; id <= 4; ++id) stream += EncodeStatsRequest(0, id);
  std::string out;
  ASSERT_OK(server.core.Ingest(server.session, stream.data(), stream.size(),
                               &out));
  FrameReader reader;
  ASSERT_OK(reader.Feed(out.data(), out.size()));
  Frame frame;
  for (uint32_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(reader.Next(&frame));
    EXPECT_EQ(frame.header.request_id, id);
  }
  EXPECT_FALSE(reader.Next(&frame));
  EXPECT_EQ(server.core.requests_served(), 4u);
}

TEST(ServerCoreTest, ScanCapTruncatesWithPartialResult) {
  ServerCore::Options options;
  options.scan_entry_cap = 5;
  TestServer server(options);
  ScanRequest request;
  request.range = DayRange::All();
  request.max_entries = 0;  // asks for everything; the cap must win
  const Frame reply = Serve(&server, EncodeScanRequest(0, 1, request));
  QueryReply decoded;
  ASSERT_OK(DecodeQueryReply(reply.payload, &decoded));
  EXPECT_EQ(decoded.result.code, StatusCode::kPartialResult);
  EXPECT_EQ(decoded.entries.size(), 5u);
}

TEST(ServerCoreTest, RateLimitIsEnforcedOnInjectedClock) {
  SimClock clock;
  ServerCore::Options options;
  options.tenant_rate_limit_rps = 10;
  options.tenant_rate_limit_burst = 2;
  options.clock = &clock;
  TestServer server(options);

  ProbeRequest probe;
  probe.range = DayRange::Window(kWindow, kWindow);
  probe.value = "alpha";
  const std::string request = EncodeProbeRequest(0, 1, probe);

  // Burst of 2 admitted, the third refused.
  for (int i = 0; i < 2; ++i) {
    const Frame reply = Serve(&server, request);
    WireResult result;
    ASSERT_OK(DecodeResultPrefix(reply.payload, &result));
    EXPECT_TRUE(result.ok()) << "request " << i << ": " << result.detail;
  }
  const Frame limited = Serve(&server, request);
  WireResult result;
  ASSERT_OK(DecodeResultPrefix(limited.payload, &result));
  EXPECT_EQ(result.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(server.core.rate_limited(), 1u);

  // STATS and HEALTH stay observable while throttled.
  StatsReply stats;
  ASSERT_OK(DecodeStatsReply(
      Serve(&server, EncodeStatsRequest(0, 5)).payload, &stats));
  EXPECT_TRUE(stats.result.ok());
  HealthReply health;
  ASSERT_OK(DecodeHealthReply(
      Serve(&server, EncodeHealthRequest(0, 6)).payload, &health));
  EXPECT_TRUE(health.result.ok());

  // 100ms at 10 rps refills one token.
  clock.Advance(100'000);
  const Frame refilled = Serve(&server, request);
  ASSERT_OK(DecodeResultPrefix(refilled.payload, &result));
  EXPECT_TRUE(result.ok()) << result.detail;
}

TEST(ServerCoreTest, MaxSessionsIsEnforced) {
  ServerCore::Options options;
  options.max_sessions = 2;
  TestServer server(options);  // opens session 1
  auto second = server.core.OpenSession();
  ASSERT_OK(second.status());
  auto third = server.core.OpenSession();
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  server.core.CloseSession(*second);
  auto fourth = server.core.OpenSession();
  EXPECT_OK(fourth.status());
}

TEST(ServerCoreTest, DrainRefusesNewSessionsButServesOpenOnes) {
  TestServer server;
  server.core.BeginDrain();
  EXPECT_TRUE(server.core.draining());
  auto refused = server.core.OpenSession();
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // The open session keeps being answered mid-drain.
  StatsReply stats;
  ASSERT_OK(DecodeStatsReply(
      Serve(&server, EncodeStatsRequest(0, 1)).payload, &stats));
  EXPECT_TRUE(stats.result.ok());
  ASSERT_OK(server.core.WaitForMaintenance());
}

TEST(ServerCoreTest, SyncAdvancePublishesBeforeReply) {
  TestServer server;
  AdvanceRequest advance;
  advance.batch = MakeMixedBatch(kWindow + 1);
  const Frame reply = Serve(&server, EncodeAdvanceRequest(0, 1, advance));
  AdvanceReply decoded;
  ASSERT_OK(DecodeAdvanceReply(reply.payload, &decoded));
  EXPECT_TRUE(decoded.result.ok()) << decoded.result.detail;
  EXPECT_EQ(decoded.current_day, kWindow + 1);
  EXPECT_EQ(server.core.tenant(0)->current_day(), kWindow + 1);
}

}  // namespace
}  // namespace serve
}  // namespace wavekit
