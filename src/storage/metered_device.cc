#include "storage/metered_device.h"

#include "util/macros.h"

namespace wavekit {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kStart:
      return "start";
    case Phase::kTransition:
      return "transition";
    case Phase::kPrecompute:
      return "precompute";
    case Phase::kQuery:
      return "query";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

MeteredDevice::MeteredDevice(Device* inner) : inner_(inner) {}

void MeteredDevice::Account(uint64_t offset, uint64_t length, bool is_write) {
  IoCounters& io = counters_[static_cast<int>(phase_)];
  if (!head_valid_ || offset != head_position_) {
    ++io.seeks;
  }
  head_position_ = offset + length;
  head_valid_ = true;
  if (is_write) {
    io.bytes_written += length;
    ++io.write_ops;
  } else {
    io.bytes_read += length;
    ++io.read_ops;
  }
}

Status MeteredDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(inner_->Read(offset, out));
  Account(offset, out.size(), /*is_write=*/false);
  return Status::OK();
}

Status MeteredDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(inner_->Write(offset, data));
  Account(offset, data.size(), /*is_write=*/true);
  return Status::OK();
}

IoCounters MeteredDevice::total() const {
  IoCounters out;
  for (const IoCounters& c : counters_) out += c;
  return out;
}

void MeteredDevice::Reset() {
  for (IoCounters& c : counters_) c = IoCounters{};
}

}  // namespace wavekit
