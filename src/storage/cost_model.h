// CostModel: converts metered I/O counters into modeled seconds.
//
// Matches the disk parameters of the paper's Section 5: `seek` (time for one
// seek) and `Trans` (transfer rate). Table 12 instantiates seek = 14 ms and
// Trans = 10 MB/s for all three case studies.

#ifndef WAVEKIT_STORAGE_COST_MODEL_H_
#define WAVEKIT_STORAGE_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace wavekit {

/// \brief I/O activity counters accumulated by a MeteredDevice.
struct IoCounters {
  uint64_t seeks = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  /// Device::Sync calls. Counted for observability (durability traffic per
  /// phase); NOT part of the paper's seek/transfer cost model, so
  /// CostModel::Seconds ignores it.
  uint64_t sync_ops = 0;

  uint64_t bytes_transferred() const { return bytes_read + bytes_written; }

  IoCounters& operator+=(const IoCounters& other);
  friend IoCounters operator+(IoCounters a, const IoCounters& b) {
    a += b;
    return a;
  }
  friend IoCounters operator-(const IoCounters& a, const IoCounters& b);
  bool operator==(const IoCounters& other) const = default;

  std::string ToString() const;
};

/// \brief Hardware cost parameters (paper Section 5, "Disk Parameters").
struct CostModel {
  /// Time for one disk seek, seconds. Table 12: 14 ms.
  double seek_seconds = 0.014;
  /// Sustained transfer rate, bytes per second. Table 12: 10 MB/s.
  double transfer_bytes_per_second = 10.0e6;

  /// Modeled wall-clock seconds for the given activity:
  /// seeks * seek + bytes / Trans.
  double Seconds(const IoCounters& io) const {
    return static_cast<double>(io.seeks) * seek_seconds +
           static_cast<double>(io.bytes_transferred()) /
               transfer_bytes_per_second;
  }

  /// The Table 12 hardware configuration.
  static CostModel Paper() { return CostModel{}; }
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_COST_MODEL_H_
