# Empty compiler generated dependencies file for tpcd_warehouse.
# This may be replaced when dependencies are built.
