// Error-propagation macros for Status / Result<T>.

#ifndef WAVEKIT_UTIL_MACROS_H_
#define WAVEKIT_UTIL_MACROS_H_

#include "util/result.h"
#include "util/status.h"

#define WAVEKIT_CONCAT_IMPL(x, y) x##y
#define WAVEKIT_CONCAT(x, y) WAVEKIT_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define WAVEKIT_RETURN_NOT_OK(expr)                           \
  do {                                                        \
    ::wavekit::Status _wavekit_status = (expr);               \
    if (!_wavekit_status.ok()) return _wavekit_status;        \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); if it holds an error, returns
/// the error Status; otherwise declares `lhs` initialized from the value.
#define WAVEKIT_ASSIGN_OR_RETURN(lhs, rexpr) \
  WAVEKIT_ASSIGN_OR_RETURN_IMPL(             \
      WAVEKIT_CONCAT(_wavekit_result_, __LINE__), lhs, rexpr)

#define WAVEKIT_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).ValueOrDie()

/// Aborts the process when `expr` is not OK. For invariants, not user errors.
#define WAVEKIT_CHECK_OK(expr)                   \
  do {                                           \
    ::wavekit::Status _wavekit_status = (expr);  \
    _wavekit_status.Abort(#expr);                \
  } while (false)

#endif  // WAVEKIT_UTIL_MACROS_H_
