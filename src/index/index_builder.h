// IndexBuilder: the paper's BuildIndex operation.
//
// "We assume here that a packed index is achieved by scanning the Days
// records and counting the number of entries needed in each bucket. Then
// contiguous buckets of the appropriate size are allocated on disk."
// (Section 2.2.) The builder performs exactly that two-pass construction.

#ifndef WAVEKIT_INDEX_INDEX_BUILDER_H_
#define WAVEKIT_INDEX_INDEX_BUILDER_H_

#include <memory>
#include <span>
#include <string>

#include "index/constituent_index.h"
#include "util/thread_pool.h"

namespace wavekit {

/// \brief Builds packed constituent indexes from day batches.
class IndexBuilder {
 public:
  /// Builds a packed index over `batches`. Pass 1 groups and counts entries
  /// per value (in memory); pass 2 allocates one contiguous region and
  /// writes buckets back-to-back in sorted value order. The result's
  /// time-set is the set of batch days; its packed invariant holds.
  ///
  /// With `parallel.enabled()`, the build pipelines on the pool: day batches
  /// are grouped concurrently, the value space is range-partitioned and each
  /// partition's buckets are merged and serialized by its own task, and the
  /// region is written with large WriteBatch calls instead of one Write per
  /// bucket. The resulting index is identical (same layout order, same
  /// bucket bytes at the same offsets) to the serial build; only the I/O
  /// schedule differs. With a default ParallelContext the exact serial code
  /// path runs, preserving the cost model's metered op sequence.
  static Result<std::unique_ptr<ConstituentIndex>> BuildPacked(
      Device* device, ExtentAllocator* allocator,
      ConstituentIndex::Options options,
      std::span<const DayBatch* const> batches, std::string name,
      const ParallelContext& parallel = {});

  /// Convenience overload for a single day.
  static Result<std::unique_ptr<ConstituentIndex>> BuildPacked(
      Device* device, ExtentAllocator* allocator,
      ConstituentIndex::Options options, const DayBatch& batch,
      std::string name, const ParallelContext& parallel = {});

  /// Bytes per WriteBatch extent in the parallel write stage (also the batch
  /// granularity of the parallel clone/shadow-copy paths): large enough to
  /// amortize per-op cost, small enough to overlap serialization with I/O.
  static constexpr uint64_t kWriteChunkBytes = uint64_t{1} << 20;  // 1 MiB
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_INDEX_BUILDER_H_
