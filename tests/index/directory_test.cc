// Contract tests run against BOTH directory implementations.

#include "index/directory.h"

#include <gtest/gtest.h>

#include <set>

#include "index/btree_directory.h"
#include "index/hash_directory.h"
#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

BucketInfo Info(uint64_t offset, uint32_t count) {
  return BucketInfo{Extent{offset, count * kEntrySize}, count, count};
}

class DirectoryTest : public ::testing::TestWithParam<DirectoryKind> {
 protected:
  void SetUp() override { dir_ = MakeDirectory(GetParam()); }
  std::unique_ptr<Directory> dir_;
};

TEST_P(DirectoryTest, KindMatches) { EXPECT_EQ(dir_->kind(), GetParam()); }

TEST_P(DirectoryTest, InsertFindRemove) {
  ASSERT_OK(dir_->Insert("apple", Info(0, 3)));
  ASSERT_OK(dir_->Insert("banana", Info(48, 5)));
  EXPECT_EQ(dir_->size(), 2u);

  BucketInfo* found = dir_->Find("apple");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 3u);
  EXPECT_EQ(dir_->Find("cherry"), nullptr);

  ASSERT_OK(dir_->Remove("apple"));
  EXPECT_EQ(dir_->Find("apple"), nullptr);
  EXPECT_EQ(dir_->size(), 1u);
}

TEST_P(DirectoryTest, DuplicateInsertFails) {
  ASSERT_OK(dir_->Insert("x", Info(0, 1)));
  EXPECT_TRUE(dir_->Insert("x", Info(16, 2)).IsAlreadyExists());
  EXPECT_EQ(dir_->Find("x")->count, 1u);  // original untouched
}

TEST_P(DirectoryTest, RemoveMissingFails) {
  EXPECT_TRUE(dir_->Remove("nope").IsNotFound());
}

TEST_P(DirectoryTest, FindReturnsMutableInfo) {
  ASSERT_OK(dir_->Insert("x", Info(0, 1)));
  dir_->Find("x")->count = 9;
  EXPECT_EQ(dir_->Find("x")->count, 9u);
}

TEST_P(DirectoryTest, ForEachVisitsAllExactlyOnce) {
  std::set<Value> inserted;
  for (int i = 0; i < 100; ++i) {
    Value v = "val" + std::to_string(i);
    ASSERT_OK(dir_->Insert(v, Info(i * 16, 1)));
    inserted.insert(v);
  }
  std::set<Value> visited;
  dir_->ForEach([&](const Value& v, const BucketInfo&) {
    EXPECT_TRUE(visited.insert(v).second) << "visited twice: " << v;
  });
  EXPECT_EQ(visited, inserted);
}

TEST_P(DirectoryTest, CloneEmptyIsSameKindAndEmpty) {
  ASSERT_OK(dir_->Insert("x", Info(0, 1)));
  std::unique_ptr<Directory> clone = dir_->CloneEmpty();
  EXPECT_EQ(clone->kind(), dir_->kind());
  EXPECT_EQ(clone->size(), 0u);
  EXPECT_EQ(clone->Find("x"), nullptr);
}

TEST_P(DirectoryTest, OrderedFlagMatchesBehaviour) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(dir_->Insert("k" + std::to_string(100 - i), Info(0, 1)));
  }
  if (dir_->ordered()) {
    Value prev;
    bool first = true;
    dir_->ForEach([&](const Value& v, const BucketInfo&) {
      if (!first) {
        EXPECT_LT(prev, v);
      }
      prev = v;
      first = false;
    });
  }
}

TEST_P(DirectoryTest, RandomizedAgainstStdMap) {
  Rng rng(7);
  std::map<Value, uint32_t> reference;
  for (int i = 0; i < 3000; ++i) {
    Value v = "v" + std::to_string(rng.Uniform(200));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0) {
      Status s = dir_->Insert(v, Info(0, static_cast<uint32_t>(i + 1)));
      if (reference.contains(v)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        EXPECT_OK(s);
        reference[v] = static_cast<uint32_t>(i + 1);
      }
    } else if (action == 1) {
      Status s = dir_->Remove(v);
      if (reference.contains(v)) {
        EXPECT_OK(s);
        reference.erase(v);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      const BucketInfo* info = dir_->Find(v);
      if (reference.contains(v)) {
        ASSERT_NE(info, nullptr);
        EXPECT_EQ(info->count, reference[v]);
      } else {
        EXPECT_EQ(info, nullptr);
      }
    }
    EXPECT_EQ(dir_->size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DirectoryTest,
                         ::testing::Values(DirectoryKind::kHash,
                                           DirectoryKind::kBTree),
                         [](const auto& info) {
                           return DirectoryKindName(info.param);
                         });

}  // namespace
}  // namespace wavekit
