// Figure 2: Usenet postings per day (September 1997) — the non-uniform
// daily volumes motivating the index-length vs index-size distinction.
// Prints the synthetic trace with an ASCII profile.

#include "bench/common.h"

#include "workload/usenet_trace.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 2: Usenet postings per day (September 1997 pattern)",
         "~110,000 postings on the second Wednesday; ~30,000 on Sundays; a "
         "pronounced weekly rhythm.");

  workload::UsenetVolumeTrace trace;
  const std::vector<uint64_t> series = trace.Series(30);
  static const char* kWeekdays[] = {"Mon", "Tue", "Wed", "Thu",
                                    "Fri", "Sat", "Sun"};
  sim::TablePrinter table({"day", "weekday", "postings", "profile"});
  uint64_t max_volume = 0;
  for (uint64_t v : series) max_volume = std::max(max_volume, v);
  for (int d = 1; d <= 30; ++d) {
    const uint64_t v = series[static_cast<size_t>(d - 1)];
    const int bar = static_cast<int>(50 * v / max_volume);
    table.AddRow({std::to_string(d), kWeekdays[(d - 1) % 7], FormatCount(v),
                  std::string(static_cast<size_t>(bar), '#')});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  uint64_t min_volume = series[0];
  for (uint64_t v : series) min_volume = std::min(min_volume, v);
  checks.Check(min_volume >= 25000 && min_volume <= 40000,
               "Sunday troughs near 30k postings");
  checks.Check(max_volume >= 100000 && max_volume <= 125000,
               "mid-week peaks near 110k postings");
  // Every Sunday is below every Wednesday.
  bool weekly = true;
  for (int week = 0; week < 4; ++week) {
    weekly &= series[static_cast<size_t>(week * 7 + 6)] <
              series[static_cast<size_t>(week * 7 + 2)];
  }
  checks.Check(weekly, "consistent weekly rhythm (Sun << Wed)");
  checks.Check(max_volume > 3 * min_volume,
               "volumes vary by more than 3x across the week — the reason "
               "index size != index length");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
