// Advisor: the paper's Section 6 selection process as code.
//
// "Our results ... can help an application designer in selecting a wave
// index." Given a scenario's parameters (Table 12 style) and the designer's
// constraints — does the application need hard windows? can packed shadowing
// / deletion code be implemented (legacy packages like WAIS and SMART cannot
// delete)? how slow may a probe get? — the advisor evaluates every
// (scheme, n, technique) candidate with the analytic model and ranks them by
// daily total work, using space as the tiebreaker.

#ifndef WAVEKIT_WAVE_ADVISOR_H_
#define WAVEKIT_WAVE_ADVISOR_H_

#include <limits>
#include <string>
#include <vector>

#include "model/params.h"
#include "model/space_model.h"
#include "model/total_work.h"
#include "update/update_technique.h"
#include "util/result.h"
#include "wave/scheme.h"

namespace wavekit {

/// \brief What the application designer can and cannot live with.
struct AdvisorConstraints {
  /// Application semantics require exactly the last W days (Section 1's
  /// credit-card example); soft-window WATA-family schemes are excluded.
  bool require_hard_window = false;

  /// Packed shadow updating is implementable (it needs control over bucket
  /// layout; rule it out when running atop a closed index package).
  bool can_implement_packed_shadow = true;

  /// Incremental deletion is available. "Some information retrieval indexing
  /// packages such as WAIS and SMART do not implement deletes at all" —
  /// without it, DEL is off the table (and so is packed shadowing's
  /// delete-merging smart copy when the package owns the buckets).
  bool can_implement_delete = true;

  /// Upper bound on one TimedIndexProbe across the whole window (user-facing
  /// latency). Unlimited by default.
  double max_probe_seconds = std::numeric_limits<double>::infinity();

  /// Upper bound on average total space (operation + transition).
  double max_space_bytes = std::numeric_limits<double>::infinity();

  /// Largest n to consider.
  int max_indexes = 10;

  /// Weight of space (bytes, in units of one packed day S) added to the
  /// work objective; 0 ranks purely by daily work.
  double space_weight = 0.0;
};

/// \brief One evaluated candidate configuration.
struct Recommendation {
  SchemeKind scheme = SchemeKind::kDel;
  int num_indexes = 1;
  UpdateTechniqueKind technique = UpdateTechniqueKind::kSimpleShadow;

  model::TotalWork work;
  model::SpaceEstimate space;
  double probe_seconds = 0;  ///< One whole-window TimedIndexProbe.
  double objective = 0;      ///< What the ranking minimizes.

  std::string rationale;  ///< One-line human-readable justification.
};

/// Evaluates and ranks every admissible candidate, best first. Empty only if
/// the constraints exclude everything.
Result<std::vector<Recommendation>> RankWaveIndexOptions(
    const model::CaseParams& params, int window,
    const AdvisorConstraints& constraints);

/// The top-ranked candidate; InvalidArgument if nothing is admissible.
Result<Recommendation> AdviseWaveIndex(const model::CaseParams& params,
                                       int window,
                                       const AdvisorConstraints& constraints);

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_ADVISOR_H_
