#include "obs/http_exporter.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/trace_export.h"
#include "util/macros.h"
#include "util/net.h"

namespace wavekit {
namespace obs {
namespace {

// Request lines longer than this are rejected with 400 rather than buffered
// indefinitely; generous for "GET /trace.json HTTP/1.1" plus headers.
constexpr size_t kMaxRequestBytes = 8192;

// Per-client receive budget so a half-open client cannot wedge the accept
// loop for longer than this.
constexpr int kRecvTimeoutSec = 5;

std::string StatusLine(int status, const std::string& reason) {
  return "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
}

}  // namespace

HttpExporter::HttpExporter(Options options) : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  if (running()) return Status::OK();

  WAVEKIT_ASSIGN_OR_RETURN(
      const int fd, net::ListenTcp(options_.bind_address, options_.port));
  auto port = net::LocalPort(fd);
  if (!port.ok()) {
    ::close(fd);
    return port.status();
  }

  listen_fd_ = fd;
  port_.store(*port, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocking accept(); close() alone is not guaranteed
  // to on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the socket down (or something is badly wrong): exit.
      return;
    }
    ServeClient(client);
    ::close(client);
  }
}

void HttpExporter::ServeClient(int client_fd) {
  (void)net::SetRecvTimeoutSec(client_fd, kRecvTimeoutSec);

  // Read until the end of the request line; we never need the headers or a
  // body, so the first CRLF is enough.
  std::string request;
  char buf[1024];
  while (request.find("\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    if (request.size() > kMaxRequestBytes) break;
    auto n = net::RecvSome(client_fd, buf, sizeof buf);
    if (!n.ok() || *n == 0) break;
    request.append(buf, *n);
  }

  // Parse "METHOD SP PATH SP VERSION" from the first line.
  std::string method, path;
  {
    size_t line_end = request.find('\n');
    if (line_end == std::string::npos) line_end = request.size();
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos && sp1 > 0 &&
        sp2 > sp1 + 1) {
      method = line.substr(0, sp1);
      path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  Response response;
  if (method.empty() || path.empty() || path[0] != '/') {
    response.status = 400;
    response.reason = "Bad Request";
    response.body = "malformed request\n";
  } else {
    response = Handle(method, path);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  std::string out = StatusLine(response.status, response.reason);
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  // Best-effort: the client may already be gone, but SendAll survives EINTR
  // and short writes so a signal cannot truncate a response mid-flush.
  (void)net::SendAll(client_fd, out);
}

HttpExporter::Response HttpExporter::Handle(const std::string& method,
                                            const std::string& path) const {
  Response response;
  if (method != "GET") {
    response.status = 405;
    response.reason = "Method Not Allowed";
    response.body = "only GET is served\n";
    return response;
  }

  // Ignore any query string: Prometheus appends none, but humans do.
  const std::string clean = path.substr(0, path.find('?'));

  if (clean == "/healthz") {
    std::string detail;
    const bool healthy = options_.health ? options_.health(&detail) : true;
    if (healthy) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.reason = "Service Unavailable";
      response.body = "degraded";
      if (!detail.empty()) response.body += ": " + detail;
      response.body += "\n";
    }
    return response;
  }
  if (clean == "/" || clean == "/index.html") {
    response.body =
        "wavekit telemetry\n"
        "  /metrics          Prometheus text\n"
        "  /metrics.json     registry snapshot as JSON\n"
        "  /timeseries.json  sampled history + rates\n"
        "  /events.json      maintenance event journal\n"
        "  /trace.json       Chrome trace-event spans\n"
        "  /healthz          liveness (503 when degraded)\n";
    return response;
  }
  if (clean == "/metrics" && options_.registry != nullptr) {
    // Prometheus' registered exposition content type.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = options_.registry->RenderPrometheus();
    return response;
  }
  if (clean == "/metrics.json" && options_.registry != nullptr) {
    response.content_type = "application/json";
    response.body = options_.registry->RenderJson();
    return response;
  }
  if (clean == "/timeseries.json" && options_.collector != nullptr) {
    response.content_type = "application/json";
    response.body = options_.collector->RenderJson();
    return response;
  }
  if (clean == "/events.json" && options_.events != nullptr) {
    response.content_type = "application/json";
    response.body = options_.events->RenderJson();
    return response;
  }
  if (clean == "/trace.json" && options_.tracer != nullptr) {
    response.content_type = "application/json";
    response.body = RenderChromeTrace(*options_.tracer);
    return response;
  }

  response.status = 404;
  response.reason = "Not Found";
  response.body = "unknown path: " + clean + "\n";
  return response;
}

}  // namespace obs
}  // namespace wavekit
