# Empty compiler generated dependencies file for metered_device_test.
# This may be replaced when dependencies are built.
