// Concurrent query throughput: sharded block cache vs. a single global mutex.
//
// The paper's motivation for shadow updates (Section 2.1) is that immutable
// constituents need "no concurrency control" on the read path. This bench
// quantifies the payoff at the storage layer: N reader threads issue Zipfian
// TimedIndexProbes (and TimedSegmentScans) against the same wave index, once
// with every block-cache access serialized behind one global mutex (the
// pre-sharding design) and once through the lock-striped ShardedCachedDevice.
//
// The backing store models disk read latency with a real sleep below the
// cache, so a cache miss parks its reader the way a disk read would. Under
// the global mutex that sleep happens INSIDE the one lock — every other
// reader (even cache hits) stalls behind it. Under the sharded cache a miss
// holds only its shard, so misses on different shards overlap and hits on
// other shards proceed. That is the actual production difference, and it is
// what this bench measures — wall-clock CPU parallelism is deliberately not
// required, so the result is meaningful even on a single-core host.
//
// Emits BENCH_concurrent.json with every (variant, threads) cell plus the
// headline 4-thread probe speedup.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/attach.h"
#include "storage/cached_device.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/metered_device.h"
#include "storage/sharded_cached_device.h"
#include "util/random.h"
#include "wave/day_store.h"
#include "wave/scheme_factory.h"
#include "wave/wave_index.h"

namespace wavekit {
namespace {

constexpr uint64_t kCapacity = uint64_t{1} << 26;  // 64 MiB backing device
constexpr uint64_t kBlockSize = 4096;
constexpr size_t kCacheBlocks = 64;  // 256 KiB: hot set cached, tail misses
constexpr size_t kNumShards = 16;
constexpr int kWindow = 8;
constexpr int kNumIndexes = 4;
constexpr int kSteadyStateDays = 16;
constexpr int kRecordsPerDay = 4000;
constexpr uint64_t kNumValues = 4096;
constexpr double kZipfTheta = 0.99;
constexpr auto kReadLatency = std::chrono::microseconds(25);
constexpr auto kWarmup = std::chrono::milliseconds(200);
constexpr auto kMeasure = std::chrono::milliseconds(400);

/// Models a disk: each read parks the calling thread for a fixed service
/// time before the memory copy. Sits BELOW the meter and the cache, so only
/// cache misses pay it — exactly like a real device. Writes are not modeled
/// (this bench measures the read path; the writer is idle while readers run).
class SimulatedLatencyDevice : public Device {
 public:
  explicit SimulatedLatencyDevice(Device* inner) : inner_(inner) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    std::this_thread::sleep_for(kReadLatency);
    return inner_->Read(offset, out);
  }
  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    return inner_->Write(offset, data);
  }
  uint64_t capacity() const override { return inner_->capacity(); }

 private:
  Device* inner_;
};

/// The pre-sharding baseline: one LRU cache, one mutex, every reader
/// serialized — including cache hits, and including the simulated disk wait
/// of whoever is missing.
class GlobalMutexCachedDevice : public Device {
 public:
  GlobalMutexCachedDevice(Device* inner, size_t capacity_blocks,
                          uint64_t block_size)
      : cache_(inner, capacity_blocks, block_size) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.Read(offset, out);
  }
  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.Write(offset, data);
  }
  uint64_t capacity() const override { return cache_.capacity(); }

 private:
  std::mutex mutex_;
  CachedDevice cache_;
};

DayBatch MakeZipfBatch(Day day) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < kRecordsPerDay; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" + std::to_string(record.record_id % kNumValues)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

/// One fully built steady-state wave index doing its I/O through `io_device`.
struct Fixture {
  Fixture(Device* io_device_in, MeteredDevice* device_in,
          ExtentAllocator* allocator_in, DayStore* day_store_in) {
    SchemeEnv env{device_in, allocator_in, day_store_in};
    env.io_device = io_device_in;
    SchemeConfig config;
    config.window = kWindow;
    config.num_indexes = kNumIndexes;
    config.technique = UpdateTechniqueKind::kSimpleShadow;
    auto made = MakeScheme(SchemeKind::kWata, env, config);
    if (!made.ok()) made.status().Abort("MakeScheme");
    scheme = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeZipfBatch(d));
    Status s = scheme->Start(std::move(first));
    if (!s.ok()) s.Abort("Start");
    for (Day d = kWindow + 1; d <= kWindow + kSteadyStateDays; ++d) {
      s = scheme->Transition(MakeZipfBatch(d));
      if (!s.ok()) s.Abort("Transition");
    }
  }

  std::unique_ptr<Scheme> scheme;
};

struct Cell {
  std::string variant;
  std::string op;
  int threads = 0;
  uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

/// Runs `threads` readers against `wave` for a warmup + measure interval;
/// each reader executes `one_op(rng)` in a loop and the measured iterations
/// are aggregated.
template <typename OneOp>
Cell RunReaders(const std::string& variant, const std::string& op,
                int threads, const OneOp& one_op) {
  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(0xC0FFEE + 7919 * t);
      uint64_t local = 0;
      bool counted = false;
      while (!stop.load(std::memory_order_relaxed)) {
        one_op(rng);
        if (measuring.load(std::memory_order_relaxed)) {
          ++local;
          counted = true;
        } else if (counted) {
          // Measurement window closed: publish and park until stop.
          ops.fetch_add(local, std::memory_order_relaxed);
          local = 0;
          counted = false;
        }
      }
      if (counted) ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(kWarmup);
  const auto start = std::chrono::steady_clock::now();
  measuring.store(true, std::memory_order_relaxed);
  std::this_thread::sleep_for(kMeasure);
  measuring.store(false, std::memory_order_relaxed);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  Cell cell;
  cell.variant = variant;
  cell.op = op;
  cell.threads = threads;
  cell.ops = ops.load();
  cell.seconds = elapsed.count();
  cell.ops_per_sec = cell.seconds > 0 ? cell.ops / cell.seconds : 0.0;
  return cell;
}

std::vector<Cell> BenchVariant(const std::string& variant, Device* io_device,
                               MeteredDevice* device,
                               ExtentAllocator* allocator,
                               DayStore* day_store) {
  Fixture fixture(io_device, device, allocator, day_store);
  // Readers query an immutable snapshot, exactly like WaveService readers.
  const WaveIndex snapshot = fixture.scheme->wave();
  const ZipfDistribution zipf(kNumValues, kZipfTheta);

  std::vector<Cell> cells;
  for (int threads : {1, 2, 4, 8}) {
    cells.push_back(RunReaders(variant, "probe", threads, [&](Rng& rng) {
      std::vector<Entry> out;
      const Value value = "v" + std::to_string(zipf.Sample(rng));
      Status s = snapshot.TimedIndexProbe(DayRange::All(), value, &out);
      if (!s.ok()) s.Abort("probe");
    }));
  }
  for (int threads : {1, 2, 4, 8}) {
    cells.push_back(RunReaders(variant, "scan", threads, [&](Rng& rng) {
      // Scan a random 3-day slice so one iteration stays short enough for
      // the fixed measurement window.
      const Day lo = kWindow + 1 + static_cast<Day>(rng.Uniform(kWindow));
      uint64_t sink = 0;
      Status s = snapshot.TimedSegmentScan(
          DayRange{lo, lo + 2},
          [&sink](const Value&, const Entry& e) { sink += e.record_id; });
      if (!s.ok()) s.Abort("scan");
    }));
  }
  return cells;
}

double OpsPerSec(const std::vector<Cell>& cells, const std::string& op,
                 int threads) {
  for (const Cell& c : cells) {
    if (c.op == op && c.threads == threads) return c.ops_per_sec;
  }
  return 0.0;
}

void WriteJson(const std::vector<Cell>& cells, double probe_speedup_4t,
               double scan_speedup_4t) {
  std::ofstream out("BENCH_concurrent.json");
  out << "{\n"
      << "  \"bench\": \"concurrent_throughput\",\n"
      << "  \"block_size\": " << kBlockSize << ",\n"
      << "  \"cache_blocks\": " << kCacheBlocks << ",\n"
      << "  \"num_shards\": " << kNumShards << ",\n"
      << "  \"simulated_read_latency_us\": "
      << std::chrono::duration_cast<std::chrono::microseconds>(kReadLatency)
             .count()
      << ",\n"
      << "  \"zipf_theta\": " << kZipfTheta << ",\n"
      << "  \"num_values\": " << kNumValues << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"variant\": \"" << c.variant << "\", \"op\": \"" << c.op
        << "\", \"threads\": " << c.threads << ", \"ops\": " << c.ops
        << ", \"seconds\": " << c.seconds
        << ", \"ops_per_sec\": " << c.ops_per_sec << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"probe_speedup_sharded_vs_global_mutex_4_threads\": "
      << probe_speedup_4t << ",\n"
      << "  \"scan_speedup_sharded_vs_global_mutex_4_threads\": "
      << scan_speedup_4t << "\n"
      << "}\n";
}

}  // namespace
}  // namespace wavekit

int main() {
  using namespace wavekit;
  bench::Banner(
      "Concurrent query throughput: sharded cache vs. global mutex",
      "shadow updates mean \"no concurrency control is required\" on reads; "
      "the storage layer must not reintroduce a serial bottleneck");

  // Independent device stacks so each variant builds and caches its own data.
  MemoryDevice memory_a(kCapacity), memory_b(kCapacity);
  SimulatedLatencyDevice slow_a(&memory_a), slow_b(&memory_b);
  MeteredDevice device_a(&slow_a), device_b(&slow_b);
  ExtentAllocator allocator_a(kCapacity), allocator_b(kCapacity);
  DayStore day_store_a, day_store_b;
  GlobalMutexCachedDevice global_cache(&device_a, kCacheBlocks, kBlockSize);
  ShardedCachedDevice sharded_cache(&device_b, kCacheBlocks, kBlockSize,
                                    kNumShards);

  // Observability rides along at zero hot-path cost: callback metrics are
  // polled only when the registry is snapshotted, after the timed runs.
  obs::MetricsRegistry registry;
  obs::AttachMeteredDevice(&registry, &device_a, "global_mutex");
  obs::AttachMeteredDevice(&registry, &device_b, "sharded");
  obs::AttachShardedCache(&registry, &sharded_cache, "sharded");

  const std::vector<Cell> baseline = BenchVariant(
      "global_mutex", &global_cache, &device_a, &allocator_a, &day_store_a);
  const std::vector<Cell> sharded = BenchVariant(
      "sharded", &sharded_cache, &device_b, &allocator_b, &day_store_b);
  std::vector<Cell> cells = baseline;
  cells.insert(cells.end(), sharded.begin(), sharded.end());

  std::printf("\n%-14s %-6s %8s %12s %14s\n", "variant", "op", "threads",
              "ops", "ops/sec");
  for (const Cell& c : cells) {
    std::printf("%-14s %-6s %8d %12llu %14.0f\n", c.variant.c_str(),
                c.op.c_str(), c.threads,
                static_cast<unsigned long long>(c.ops), c.ops_per_sec);
  }

  const double probe_speedup =
      OpsPerSec(sharded, "probe", 4) / OpsPerSec(baseline, "probe", 4);
  const double scan_speedup =
      OpsPerSec(sharded, "scan", 4) / OpsPerSec(baseline, "scan", 4);
  std::printf("\n4-thread probe speedup (sharded / global mutex): %.2fx\n",
              probe_speedup);
  std::printf("4-thread scan speedup  (sharded / global mutex): %.2fx\n",
              scan_speedup);

  WriteJson(cells, probe_speedup, scan_speedup);
  std::printf("Wrote BENCH_concurrent.json\n");
  bench::WriteMetricsJson(registry, "BENCH_concurrent_metrics.json");

  bench::ShapeChecks checks;
  checks.Check(probe_speedup >= 2.0,
               "sharded cache >= 2x aggregate probe throughput at 4 reader "
               "threads vs. single global mutex");
  checks.Check(OpsPerSec(sharded, "probe", 4) >
                   OpsPerSec(sharded, "probe", 1),
               "sharded probe throughput scales with reader threads");
  return checks.Finish();
}
