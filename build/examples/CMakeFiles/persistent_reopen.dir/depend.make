# Empty dependencies file for persistent_reopen.
# This may be replaced when dependencies are built.
