#include "storage/disk_array.h"

#include <algorithm>

namespace wavekit {

DiskArray::DiskArray(int num_disks, uint64_t capacity_per_disk) {
  disks_.reserve(static_cast<size_t>(std::max(num_disks, 1)));
  for (int i = 0; i < std::max(num_disks, 1); ++i) {
    disks_.push_back(std::make_unique<Store>(capacity_per_disk));
  }
}

Result<std::unique_ptr<DiskArray>> DiskArray::Open(int num_disks,
                                                   uint64_t capacity_per_disk,
                                                   std::string_view backend,
                                                   const std::string& dir,
                                                   bool direct_io) {
  std::unique_ptr<DiskArray> array(new DiskArray());
  const int count = std::max(num_disks, 1);
  array->disks_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    BackendConfig config;
    config.capacity = capacity_per_disk;
    config.direct_io = direct_io;
    config.path = dir + "/disk-" + std::to_string(i) + ".wavedev";
    WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<Store> store,
                             Store::Open(backend, config));
    array->disks_.push_back(std::move(store));
  }
  return array;
}

std::vector<MeteredDevice*> DiskArray::devices() {
  std::vector<MeteredDevice*> out;
  out.reserve(disks_.size());
  for (auto& disk : disks_) out.push_back(disk->device());
  return out;
}

void DiskArray::SetPhaseAll(Phase phase) {
  for (auto& disk : disks_) disk->device()->set_phase(phase);
}

void DiskArray::ResetAll() {
  for (auto& disk : disks_) disk->device()->Reset();
}

IoCounters DiskArray::TotalCounters(Phase phase) const {
  IoCounters total;
  for (const auto& disk : disks_) total += disk->device()->counters(phase);
  return total;
}

double DiskArray::ParallelSeconds(const CostModel& cost, Phase phase) const {
  double slowest = 0;
  for (const auto& disk : disks_) {
    slowest = std::max(slowest, cost.Seconds(disk->device()->counters(phase)));
  }
  return slowest;
}

double DiskArray::SerialSeconds(const CostModel& cost, Phase phase) const {
  return cost.Seconds(TotalCounters(phase));
}

uint64_t DiskArray::AllocatedBytes() const {
  uint64_t total = 0;
  for (const auto& disk : disks_) total += disk->allocator()->allocated_bytes();
  return total;
}

}  // namespace wavekit
