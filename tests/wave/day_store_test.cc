#include "wave/day_store.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

TEST(DayStoreTest, PutGet) {
  DayStore store;
  ASSERT_OK(store.Put(MakeMixedBatch(3)));
  ASSERT_OK_AND_ASSIGN(const DayBatch* batch, store.Get(3));
  EXPECT_EQ(batch->day, 3);
  EXPECT_TRUE(store.Has(3));
  EXPECT_FALSE(store.Has(4));
}

TEST(DayStoreTest, DuplicatePutFails) {
  DayStore store;
  ASSERT_OK(store.Put(MakeMixedBatch(1)));
  EXPECT_TRUE(store.Put(MakeMixedBatch(1)).IsAlreadyExists());
}

TEST(DayStoreTest, GetMissingFails) {
  DayStore store;
  EXPECT_TRUE(store.Get(9).status().IsNotFound());
}

TEST(DayStoreTest, PruneDropsOlderDays) {
  DayStore store;
  for (Day d = 1; d <= 10; ++d) ASSERT_OK(store.Put(MakeMixedBatch(d)));
  EXPECT_EQ(store.size(), 10u);
  store.Prune(/*oldest_needed=*/7);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_FALSE(store.Has(6));
  EXPECT_TRUE(store.Has(7));
  // Re-inserting a pruned day is allowed (it is simply absent).
  ASSERT_OK(store.Put(MakeMixedBatch(2)));
}

}  // namespace
}  // namespace wavekit
