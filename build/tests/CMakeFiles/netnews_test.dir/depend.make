# Empty dependencies file for netnews_test.
# This may be replaced when dependencies are built.
