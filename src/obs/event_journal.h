// EventJournal: a structured log of maintenance lifecycle events.
//
// Metrics say how much; the journal says what happened and in what order:
// every AdvanceDay start/commit/rollback, retry attempt, degraded-mode
// entry/exit, and recovery roll-forward/roll-back decision lands here as one
// typed, timestamped record. Events live in a bounded in-memory ring (served
// by /events.json and `wavectl events`) and, when a path is configured, are
// appended to a JSONL file — one JSON object per line, the grep-able ops
// format the troubleshooting runbook (docs/OBSERVABILITY.md) assumes.
//
// Events are emitted only on the maintenance path (transitions, retries,
// recoveries), never per query, so the journal costs the hot path nothing.
// Timestamps come from the injected Clock; under the simulation harness the
// whole journal is a deterministic function of the episode seed.

#ifndef WAVEKIT_OBS_EVENT_JOURNAL_H_
#define WAVEKIT_OBS_EVENT_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/day.h"

namespace wavekit {
namespace obs {

/// \brief What happened. Maintenance lifecycle only — query traffic is
/// metrics territory.
enum class EventType {
  kAdvanceStart,        ///< A window transition began.
  kAdvanceCommit,       ///< The transition published its new snapshot.
  kAdvanceRollback,     ///< The transition failed; the old snapshot serves.
  kRetry,               ///< A maintenance primitive retried a transient error.
  kDegradedEnter,       ///< Serving entered degraded mode.
  kDegradedExit,        ///< Serving recovered to healthy.
  kRecoveryRollForward, ///< Restart recovery kept an interrupted transition.
  kRecoveryRollBack,    ///< Restart recovery discarded an interrupted one.
  kServiceStart,        ///< A serving process started (Start() succeeded).
  kScrubStart,          ///< A background scrub pass over live extents began.
  kScrubComplete,       ///< The scrub pass finished (fields: extents, bytes).
  kCorruptionDetected,  ///< A bucket failed checksum verification.
  kQuarantine,          ///< A corrupt constituent was taken out of serving.
  kHealStart,           ///< Online rebuild of a quarantined constituent began.
  kHealComplete,        ///< The rebuilt constituent was swapped back in.
};

const char* EventTypeName(EventType type);

/// \brief One journal record.
struct Event {
  uint64_t sequence = 0;      ///< Monotonic per journal, assigned on append.
  uint64_t timestamp_us = 0;  ///< Injected-clock reading at append.
  EventType type = EventType::kAdvanceStart;
  Day day = 0;                ///< The day involved, or 0 when not day-scoped.
  std::string message;        ///< Human-readable detail (error text, op name).
  /// Extra key/value context, rendered verbatim into the JSON object.
  std::vector<std::pair<std::string, std::string>> fields;

  /// The event as one JSON object (no trailing newline):
  ///   {"seq":1,"t_us":...,"type":"advance_commit","day":9,...}
  std::string ToJson() const;
};

/// \brief Bounded ring + optional JSONL sink. Thread-safe: any thread may
/// append while others read.
class EventJournal {
 public:
  struct Options {
    /// Events kept in memory; the oldest is evicted when full.
    size_t ring_capacity = 256;
    /// When non-empty, every event is also appended (and flushed) to this
    /// file as one JSON line. Open failures are recorded in sink_status()
    /// and the ring keeps working.
    std::string jsonl_path;
    /// Timestamp source; defaults to the wall clock.
    Clock* clock = nullptr;
  };

  explicit EventJournal(Options options);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one event; sequence and timestamp are assigned here.
  void Append(EventType type, Day day, std::string message,
              std::vector<std::pair<std::string, std::string>> fields = {});

  /// The ring contents, oldest first.
  std::vector<Event> Events() const;

  /// Total events ever appended (>= Events().size(); the rest was evicted).
  uint64_t total_appended() const {
    return total_appended_.load(std::memory_order_relaxed);
  }

  /// OK, or why the JSONL sink could not be opened.
  bool sink_ok() const;

  /// JSON document for /events.json:
  ///   {"total_appended":N,"events":[{...},...]}
  std::string RenderJson() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::vector<Event> ring_;  ///< Circular; ring_next_ is the write slot.
  size_t ring_next_ = 0;
  bool ring_full_ = false;
  uint64_t next_sequence_ = 1;
  std::ofstream sink_;
  bool sink_failed_ = false;
  std::atomic<uint64_t> total_appended_{0};
};

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_EVENT_JOURNAL_H_
