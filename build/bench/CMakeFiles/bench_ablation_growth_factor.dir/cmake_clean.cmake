file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_growth_factor.dir/bench_ablation_growth_factor.cc.o"
  "CMakeFiles/bench_ablation_growth_factor.dir/bench_ablation_growth_factor.cc.o.d"
  "bench_ablation_growth_factor"
  "bench_ablation_growth_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_growth_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
