file(REMOVE_RECURSE
  "CMakeFiles/growth_policy_test.dir/index/growth_policy_test.cc.o"
  "CMakeFiles/growth_policy_test.dir/index/growth_policy_test.cc.o.d"
  "growth_policy_test"
  "growth_policy_test.pdb"
  "growth_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
