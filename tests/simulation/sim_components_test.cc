// Unit tests of the deterministic-simulation building blocks: SimClock,
// SimExecutor (the workerless ThreadPool), OracleDB, and ScenarioGenerator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/oracle.h"
#include "testing/scenario.h"
#include "testing/sim_executor.h"
#include "testing/test_env.h"
#include "util/clock.h"

namespace wavekit {
namespace {

using testing::MakeScenarioDay;
using testing::MakeScenarioProbes;
using testing::OracleDB;
using testing::ProbePlan;
using testing::Scenario;
using testing::ScenarioGenerator;
using testing::SimExecutor;

// --- SimClock ---------------------------------------------------------------

TEST(SimClockTest, TimeOnlyMovesWhenAdvanced) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(SimClockTest, SleepAdvancesVirtualTimeInstantly) {
  SimClock clock;
  // A "sleep" that would stall a real run for an hour is free.
  clock.SleepUs(uint64_t{3600} * 1000 * 1000);
  EXPECT_EQ(clock.NowMicros(), uint64_t{3600} * 1000 * 1000);
}

TEST(RealClockTest, IsMonotonicNonDecreasing) {
  Clock* clock = RealClock::Instance();
  const uint64_t a = clock->NowMicros();
  const uint64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

// --- SimExecutor ------------------------------------------------------------

TEST(SimExecutorTest, SubmitDoesNotRunUntilDrained) {
  SimExecutor exec(testing::TestSeed(0));
  int ran = 0;
  exec.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(exec.queue_depth(), 1u);
  EXPECT_EQ(exec.RunUntilIdle(), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(SimExecutorTest, WidthOneIsStrictFifo) {
  // The WaveService async-advance runner is a 1-thread pool and depends on
  // submission order; the simulated stand-in must preserve it for any seed.
  for (uint64_t i = 0; i < 16; ++i) {
    SimExecutor exec(testing::TestSeed(i), /*width=*/1);
    std::vector<int> order;
    for (int t = 0; t < 8; ++t) {
      exec.Submit([&order, t] { order.push_back(t); });
    }
    exec.RunUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
        << "seed " << testing::TestSeed(i);
  }
}

TEST(SimExecutorTest, SameSeedSameInterleaving) {
  const auto run = [](uint64_t seed) {
    SimExecutor exec(seed, /*width=*/3);
    std::vector<int> order;
    for (int t = 0; t < 32; ++t) {
      exec.Submit([&order, t] { order.push_back(t); });
    }
    exec.RunUntilIdle();
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  // Different seeds should (for this many tasks) pick a different order.
  EXPECT_NE(run(7), run(8));
}

TEST(SimExecutorTest, WidthBoundsReordering) {
  // With width k, a task can only run after all tasks submitted more than
  // k-1 positions before it: position in the run order >= submit index - (k-1).
  constexpr size_t kWidth = 3;
  SimExecutor exec(testing::TestSeed(1), kWidth);
  std::vector<int> order;
  for (int t = 0; t < 20; ++t) {
    exec.Submit([&order, t] { order.push_back(t); });
  }
  exec.RunUntilIdle();
  ASSERT_EQ(order.size(), 20u);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    EXPECT_GE(static_cast<int>(pos), order[pos] - static_cast<int>(kWidth) + 1)
        << "task " << order[pos] << " ran at position " << pos;
  }
}

TEST(SimExecutorTest, ReentrantSubmitsRun) {
  SimExecutor exec(testing::TestSeed(0));
  int ran = 0;
  exec.Submit([&] {
    ++ran;
    exec.Submit([&] {
      ++ran;
      exec.Submit([&] { ++ran; });
    });
  });
  exec.RunUntilIdle();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(exec.tasks_run(), 3u);
}

TEST(SimExecutorTest, RunOneStepsExactlyOneTask) {
  SimExecutor exec(testing::TestSeed(0));
  int ran = 0;
  exec.Submit([&] { ++ran; });
  exec.Submit([&] { ++ran; });
  EXPECT_TRUE(exec.RunOne());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(exec.RunOne());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(exec.RunOne());
}

TEST(SimExecutorTest, WaitGroupJoinsOnWorkerlessExecutor) {
  // WaitGroup::Wait would block forever on a workerless pool without the
  // DrainForWait hook; with it, the waiting thread drains inline.
  SimExecutor exec(testing::TestSeed(0));
  int ran = 0;
  ThreadPool::WaitGroup group(&exec);
  group.Submit([&] { ++ran; });
  group.Submit([&] { ++ran; });
  group.Wait();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(group.pending(), 0);
}

// --- OracleDB ---------------------------------------------------------------

TEST(OracleDBTest, WindowExpiryMatchesReference) {
  constexpr int kWindow = 3;
  OracleDB oracle;
  for (Day d = 1; d <= 6; ++d) {
    oracle.AdvanceDay(testing::MakeMixedBatch(d, 4), kWindow);
  }
  EXPECT_EQ(oracle.current_day(), 6);
  EXPECT_EQ(oracle.oldest_day(), 4);

  // Reference over exactly the live window.
  testing::ReferenceIndex reference;
  for (Day d = 4; d <= 6; ++d) reference.Add(testing::MakeMixedBatch(d, 4));
  const DayRange window{4, 6};
  for (const Value& value :
       {Value("alpha"), Value("day4"), Value("day6"), Value("day2")}) {
    EXPECT_EQ(oracle.Probe(value, window), reference.Probe(value, 4, 6))
        << value;
  }
  EXPECT_EQ(oracle.ScanAll(window), reference.ScanAll(4, 6));
  // Expired days serve nothing even if the range asks for them.
  EXPECT_TRUE(oracle.Probe("day2", DayRange{1, 6}).empty());
}

TEST(OracleDBTest, SubrangeFiltersByDay) {
  OracleDB oracle;
  for (Day d = 1; d <= 4; ++d) {
    oracle.AdvanceDay(testing::MakeMixedBatch(d, 3), /*window=*/4);
  }
  const std::vector<Entry> mid = oracle.Probe("alpha", DayRange{2, 3});
  for (const Entry& e : mid) {
    EXPECT_GE(e.day, 2);
    EXPECT_LE(e.day, 3);
  }
  EXPECT_EQ(oracle.ScanAll(DayRange{2, 2}).size(),
            testing::MakeMixedBatch(2, 3).EntryCount());
}

TEST(OracleDBTest, EmptyDayStillOccupiesWindowSlot) {
  OracleDB oracle;
  oracle.AdvanceDay(testing::MakeMixedBatch(1, 3), /*window=*/2);
  DayBatch empty;
  empty.day = 2;
  oracle.AdvanceDay(empty, /*window=*/2);
  oracle.AdvanceDay(testing::MakeMixedBatch(3, 3), /*window=*/2);
  // Window [2,3]: day 1 expired even though day 2 carried no records.
  EXPECT_EQ(oracle.oldest_day(), 2);
  EXPECT_TRUE(oracle.Probe("day1", DayRange::All()).empty());
}

TEST(OracleDBTest, ClearResets) {
  OracleDB oracle;
  oracle.AdvanceDay(testing::MakeMixedBatch(1, 3), 2);
  oracle.Clear();
  EXPECT_EQ(oracle.current_day(), 0);
  EXPECT_EQ(oracle.live_entries(), 0u);
}

// --- ScenarioGenerator ------------------------------------------------------

TEST(ScenarioGeneratorTest, SameSeedSameScenario) {
  const ScenarioGenerator a(42), b(42), c(43);
  for (uint64_t e = 0; e < 32; ++e) {
    EXPECT_EQ(a.Generate(e).ToString(), b.Generate(e).ToString())
        << "episode " << e;
  }
  EXPECT_NE(a.Generate(0).ToString(), c.Generate(0).ToString());
}

TEST(ScenarioGeneratorTest, GeneratedScenariosAreWellFormed) {
  const ScenarioGenerator generator(testing::TestSeedBase());
  for (uint64_t e = 0; e < 64; ++e) {
    const Scenario s = generator.Generate(e);
    SCOPED_TRACE("episode " + std::to_string(e));
    EXPECT_GE(s.window, 4);
    EXPECT_LE(s.window, 10);
    EXPECT_GE(s.num_indexes, 2);  // WATA family needs n >= 2
    EXPECT_LE(s.num_indexes, s.window);
    EXPECT_GE(s.days, 1);
    EXPECT_LE(s.min_day_records, s.max_day_records);
    EXPECT_GE(s.retry_attempts, 1);
    for (const testing::FaultEvent& fault : s.faults) {
      EXPECT_GT(fault.day, static_cast<Day>(s.window));
      EXPECT_LE(fault.day, static_cast<Day>(s.window + s.days));
      if (fault.kind == testing::FaultEvent::Kind::kCrashPoint) {
        EXPECT_FALSE(fault.crash_point.empty());
      } else {
        EXPECT_GE(fault.countdown, 1u);
      }
    }
  }
}

TEST(ScenarioGeneratorTest, DayContentsArePureFunctions) {
  const Scenario s = ScenarioGenerator(7).Generate(3);
  // Same (workload_seed, day) -> identical batch, regardless of call order
  // or what else was generated in between. This is what makes shrinking
  // sound: dropping a day never changes the remaining days.
  const DayBatch once = MakeScenarioDay(s, 5);
  MakeScenarioDay(s, 9);
  MakeScenarioProbes(s, 4);
  const DayBatch again = MakeScenarioDay(s, 5);
  ASSERT_EQ(once.records.size(), again.records.size());
  for (size_t i = 0; i < once.records.size(); ++i) {
    EXPECT_EQ(once.records[i].record_id, again.records[i].record_id);
    EXPECT_EQ(once.records[i].values, again.records[i].values);
  }
  // Probe plans too.
  const std::vector<ProbePlan> p1 = MakeScenarioProbes(s, 11);
  const std::vector<ProbePlan> p2 = MakeScenarioProbes(s, 11);
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].value, p2[i].value);
    EXPECT_EQ(p1[i].range, p2[i].range);
  }
}

TEST(ScenarioGeneratorTest, ProbeRangesStayInsideLiveWindow) {
  const ScenarioGenerator generator(11);
  for (uint64_t e = 0; e < 16; ++e) {
    const Scenario s = generator.Generate(e);
    for (Day day = static_cast<Day>(s.window);
         day <= static_cast<Day>(s.window + s.days); ++day) {
      const Day oldest = day - static_cast<Day>(s.window) + 1;
      for (const ProbePlan& probe : MakeScenarioProbes(s, day)) {
        EXPECT_GE(probe.range.lo, oldest);
        EXPECT_LE(probe.range.hi, day);
        EXPECT_LE(probe.range.lo, probe.range.hi);
      }
    }
  }
}

}  // namespace
}  // namespace wavekit
