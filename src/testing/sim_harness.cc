#include "testing/sim_harness.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/attach.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/fault_injecting_device.h"
#include "storage/metered_device.h"
#include "testing/oracle.h"
#include "util/clock.h"
#include "util/crash_point.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "wave/checkpoint.h"
#include "wave/recovery.h"
#include "wave/scheme_factory.h"
#include "wave/scrubber.h"

namespace wavekit {
namespace testing {
namespace {

constexpr uint64_t kDeviceBytes = uint64_t{1} << 26;
// Keeps the fault stream decorrelated from the workload streams even though
// both derive from workload_seed.
constexpr uint64_t kFaultSeedSalt = 0xFA17'FA17'FA17'FA17ULL;

std::string Sanitize(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

std::string Hex32(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

uint32_t EntriesCrc(const std::vector<Entry>& entries) {
  std::string buf;
  for (const Entry& e : entries) {
    buf += std::to_string(e.record_id);
    buf += ',';
    buf += std::to_string(e.day);
    buf += ',';
    buf += std::to_string(e.aux);
    buf += ';';
  }
  return Crc32(buf);
}

SchemeConfig ConfigFor(SchemeKind kind, const Scenario& scenario) {
  SchemeConfig config;
  config.window = scenario.window;
  config.num_indexes = scenario.num_indexes;
  config.technique = scenario.technique;
  config.codec = scenario.codec;
  if (kind == SchemeKind::kKnownBoundWata) {
    // KB-WATA's "future knowledge": a sound upper bound on any window's
    // total entries, derived from the scenario's worst-case day shape.
    config.size_bound_entries = static_cast<uint64_t>(scenario.window) *
                                    scenario.max_day_records *
                                    scenario.values_per_record +
                                64;
  }
  return config;
}

// The Theorem 2 bound on a soft-window wave's length (total days over
// constituents): W + ceil((W-1)/(n-1)) - 1.
int SoftWindowLengthBound(int window, int num_indexes) {
  const int n = num_indexes > 1 ? num_indexes : 2;
  return window + (window - 1 + (n - 1) - 1) / (n - 1) - 1;
}

// One "process incarnation": everything that dies at a simulated crash. The
// MemoryDevice and the checkpoint/journal files live outside and survive.
struct Incarnation {
  Incarnation(Device* device, uint64_t capacity)
      : metered(device), allocator(capacity) {}

  MeteredDevice metered;
  ExtentAllocator allocator;
  DayStore day_store;
  std::unique_ptr<Scheme> scheme;
  std::unique_ptr<DurableMaintenance> maintenance;
};

Status CheckInvariants(const Scheme& scheme, const Scenario& scenario,
                       Day day) {
  const WaveIndex& wave = scheme.wave();
  const int window = scenario.window;
  const size_t n = wave.num_constituents();
  if (n < 1 || n > static_cast<size_t>(scenario.num_indexes)) {
    return Status::Internal("constituent count " + std::to_string(n) +
                            " outside [1, " +
                            std::to_string(scenario.num_indexes) + "]");
  }
  const TimeSet covered = wave.CoveredDays();
  for (Day d = day - window + 1; d <= day; ++d) {
    if (covered.count(d) == 0) {
      return Status::Internal("window day " + std::to_string(d) +
                              " not covered at day " + std::to_string(day) +
                              "; covered=" + TimeSetToString(covered));
    }
  }
  if (!covered.empty() && *covered.rbegin() > day) {
    return Status::Internal("future day " +
                            std::to_string(*covered.rbegin()) +
                            " covered at day " + std::to_string(day));
  }
  if (scheme.hard_window()) {
    if (covered.size() != static_cast<size_t>(window)) {
      return Status::Internal(
          "hard-window scheme covers " + TimeSetToString(covered) +
          " instead of exactly the last " + std::to_string(window) +
          " days at day " + std::to_string(day));
    }
  } else {
    const int bound = SoftWindowLengthBound(window, scenario.num_indexes);
    if (scheme.WaveLength() > bound) {
      return Status::Internal(
          "wave length " + std::to_string(scheme.WaveLength()) +
          " exceeds Theorem 2 bound " + std::to_string(bound) + " at day " +
          std::to_string(day));
    }
  }
  return Status::OK();
}

// Serialize -> deserialize (fresh allocator, same bytes) -> serialize must be
// the identity. On success `*crc` is the checkpoint body's CRC32 (traced).
Status CheckCheckpointRoundTrip(const WaveIndex& wave, Device* device,
                                uint64_t capacity, uint32_t* crc) {
  WAVEKIT_ASSIGN_OR_RETURN(std::string first, SerializeCheckpoint(wave));
  ExtentAllocator scratch(capacity);
  WAVEKIT_ASSIGN_OR_RETURN(
      WaveIndex reloaded,
      DeserializeCheckpoint(first, device, &scratch,
                            ConstituentIndex::Options{}));
  WAVEKIT_ASSIGN_OR_RETURN(std::string second, SerializeCheckpoint(reloaded));
  if (first != second) {
    return Status::Internal(
        "checkpoint round-trip not identity: " +
        std::to_string(first.size()) + " bytes -> " +
        std::to_string(second.size()) + " bytes");
  }
  *crc = Crc32(first);
  return Status::OK();
}

// Cross-checks every planned probe and a full-window scan against the
// oracle, plus the structural invariants and the checkpoint round-trip.
// Appends one deterministic trace line on success.
Status VerifyDay(const Scheme& scheme, const Scenario& scenario, Day day,
                 const OracleDB& oracle, Device* raw_device,
                 std::string* trace) {
  const WaveIndex& wave = scheme.wave();
  const DayRange window = DayRange::Window(day, scenario.window);

  uint64_t probe_entries = 0;
  std::string probe_digest;
  for (const ProbePlan& plan : MakeScenarioProbes(scenario, day)) {
    std::vector<Entry> got;
    QueryStats stats;
    WAVEKIT_RETURN_NOT_OK(
        wave.TimedIndexProbe(plan.range, plan.value, &got, &stats));
    if (stats.indexes_unhealthy != 0 || stats.indexes_failed != 0) {
      return Status::Internal(
          "degraded probe on a healthy wave at day " + std::to_string(day) +
          ": unhealthy=" + std::to_string(stats.indexes_unhealthy) +
          " failed=" + std::to_string(stats.indexes_failed));
    }
    OracleDB::Sort(&got);
    const std::vector<Entry> want = oracle.Probe(plan.value, plan.range);
    if (got != want) {
      return Status::Internal(
          "probe mismatch at day " + std::to_string(day) + " value '" +
          plan.value + "' range [" + std::to_string(plan.range.lo) + "," +
          std::to_string(plan.range.hi) + "]: wave returned " +
          std::to_string(got.size()) + " entries (crc " +
          Hex32(EntriesCrc(got)) + "), oracle " +
          std::to_string(want.size()) + " (crc " + Hex32(EntriesCrc(want)) +
          ")");
    }
    probe_entries += got.size();
    probe_digest += Hex32(EntriesCrc(got));
  }

  std::vector<Entry> scanned;
  if (scenario.scan_each_day) {
    QueryStats stats;
    WAVEKIT_RETURN_NOT_OK(wave.TimedSegmentScan(
        window,
        [&](const Value&, const Entry& e) { scanned.push_back(e); },
        &stats));
    if (stats.indexes_unhealthy != 0 || stats.indexes_failed != 0) {
      return Status::Internal("degraded scan on a healthy wave at day " +
                              std::to_string(day));
    }
    OracleDB::Sort(&scanned);
    const std::vector<Entry> want = oracle.ScanAll(window);
    if (scanned != want) {
      return Status::Internal(
          "scan mismatch at day " + std::to_string(day) + ": wave returned " +
          std::to_string(scanned.size()) + " entries (crc " +
          Hex32(EntriesCrc(scanned)) + "), oracle " +
          std::to_string(want.size()) + " (crc " +
          Hex32(EntriesCrc(want)) + ")");
    }
  }

  WAVEKIT_RETURN_NOT_OK(CheckInvariants(scheme, scenario, day));

  uint32_t ckpt_crc = 0;
  WAVEKIT_RETURN_NOT_OK(CheckCheckpointRoundTrip(
      wave, raw_device, kDeviceBytes, &ckpt_crc));

  *trace += "day " + std::to_string(day) +
            " ok len=" + std::to_string(scheme.WaveLength()) +
            " n=" + std::to_string(wave.num_constituents()) +
            " probes=" + std::to_string(probe_entries) + "/" +
            Hex32(Crc32(probe_digest)) +
            " scan=" + std::to_string(scanned.size()) + "/" +
            Hex32(EntriesCrc(scanned)) + " ckpt=" + Hex32(ckpt_crc) + "\n";
  return Status::OK();
}

// Multiset-inclusion check: every entry the wave delivered must exist in the
// oracle's answer. Degraded (post-corruption) answers may be incomplete —
// they must never be WRONG. Field-keyed (not sort-order-dependent) so it
// cannot be fooled by a bit flip that lands inside a key.
Status CheckSubsetOfOracle(const std::vector<Entry>& got,
                           const std::vector<Entry>& want, Day day,
                           const char* what) {
  std::map<std::tuple<uint64_t, Day, uint32_t>, int> counts;
  for (const Entry& e : want) ++counts[{e.record_id, e.day, e.aux}];
  for (const Entry& e : got) {
    auto it = counts.find({e.record_id, e.day, e.aux});
    if (it == counts.end() || it->second == 0) {
      return Status::Internal(
          std::string("corrupt data served: ") + what + " at day " +
          std::to_string(day) + " returned entry (" +
          std::to_string(e.record_id) + "," + std::to_string(e.day) + "," +
          std::to_string(e.aux) + ") the oracle does not have");
    }
    --it->second;
  }
  return Status::OK();
}

// One kBitRot strike against a committed day: flip bits in one live bucket
// extent, prove the corruption is DETECTED (scrub pass or query path, per
// the fault), that the wave never serves a wrong entry while degraded, then
// heal online through the durable protocol and prove the wave is whole
// again. The caller's VerifyDay afterwards re-asserts exact oracle equality.
Status RunBitRot(const FaultEvent& fault, Incarnation* inc,
                 FaultInjectingDevice* faulty, const Scenario& scenario,
                 Day day, const OracleDB& oracle, obs::EventJournal* events,
                 std::string* trace) {
  const WaveIndex& wave = inc->scheme->wave();
  const size_t n = wave.num_constituents();
  if (n == 0) return Status::Internal("bit rot scheduled on an empty wave");

  // Deterministic victim selection: constituent by target (linear-probing
  // past empty ones), then one live bucket inside it.
  const ConstituentIndex* victim = nullptr;
  std::vector<std::pair<Value, Extent>> buckets;
  for (size_t step = 0; step < n && victim == nullptr; ++step) {
    const auto& candidate =
        wave.constituents()[(fault.target + step) % n];
    buckets.clear();
    WAVEKIT_RETURN_NOT_OK(candidate->ForEachBucket(
        [&](const Value& value, const BucketInfo& info) {
          if (info.count == 0) return;
          buckets.emplace_back(
              value, Extent{info.extent.offset, info.stored_length()});
        }));
    if (!buckets.empty()) victim = candidate.get();
  }
  if (victim == nullptr) {
    // Every constituent is empty (legal for a tiny day shape): nothing to
    // rot. Trace it so the episode stays byte-identical and explainable.
    *trace += "day " + std::to_string(day) + " bit_rot skipped (no live buckets)\n";
    return Status::OK();
  }
  const auto& [bucket_value, live] =
      buckets[(fault.target / n) % buckets.size()];
  WAVEKIT_RETURN_NOT_OK(faulty->CorruptRange(live, /*salt=*/fault.target,
                                             fault.bits));
  *trace += "day " + std::to_string(day) + " bit_rot idx=" + victim->name() +
            " bucket=" + bucket_value +
            " bytes=" + std::to_string(live.length) +
            " bits=" + std::to_string(fault.bits) +
            (fault.detect_via_scrub ? " via=scrub" : " via=query") + "\n";

  // --- Detect ---------------------------------------------------------------
  if (fault.detect_via_scrub) {
    ScrubOptions scrub;
    scrub.events = events;
    scrub.day = day;
    WAVEKIT_ASSIGN_OR_RETURN(ScrubReport report, ScrubWave(wave, scrub));
    if (report.mismatches < 1) {
      return Status::Internal("scrub missed injected corruption at day " +
                              std::to_string(day) + " (verified " +
                              std::to_string(report.buckets_verified) +
                              " buckets)");
    }
  } else {
    // Query-path detection: a full-window scan must hit the rotten bucket,
    // fail its checksum, self-quarantine the constituent, and degrade to a
    // PartialResult whose entries are a subset of the truth.
    const DayRange window = DayRange::Window(day, scenario.window);
    std::vector<Entry> got;
    QueryStats stats;
    Status scan = wave.TimedSegmentScan(
        window, [&](const Value&, const Entry& e) { got.push_back(e); },
        &stats);
    if (!scan.ok() && !scan.IsPartialResult()) return scan;
    if (stats.indexes_failed == 0 && stats.indexes_unhealthy == 0) {
      return Status::Internal(
          "query path missed injected corruption at day " +
          std::to_string(day) + ": scan reported a fully healthy wave");
    }
    if (!scan.IsPartialResult()) {
      return Status::Internal(
          "degraded scan did not return PartialResult at day " +
          std::to_string(day));
    }
    WAVEKIT_RETURN_NOT_OK(CheckSubsetOfOracle(got, oracle.ScanAll(window),
                                              day, "degraded scan"));
  }
  if (!victim->corrupt() || victim->healthy()) {
    return Status::Internal("detected corruption did not quarantine " +
                            victim->name() + " at day " + std::to_string(day));
  }

  // Degraded probes must also stay subset-correct while the quarantine
  // holds (the detection above may have been the scrub, which never queries).
  for (const ProbePlan& plan : MakeScenarioProbes(scenario, day)) {
    std::vector<Entry> got;
    Status probed = wave.TimedIndexProbe(plan.range, plan.value, &got);
    if (!probed.ok() && !probed.IsPartialResult()) return probed;
    WAVEKIT_RETURN_NOT_OK(CheckSubsetOfOracle(
        got, oracle.Probe(plan.value, plan.range), day, "degraded probe"));
  }
  *trace += "day " + std::to_string(day) + " quarantined=" + victim->name() +
            "\n";

  // --- Heal -----------------------------------------------------------------
  // Re-stock the day store first: the rebuild needs the source batches of
  // every day in the victim's time set, and maintenance may have pruned
  // days that fell out of the window (soft-window schemes keep them
  // indexed). The workload is a pure function of (seed, day), so this
  // models re-fetching the segment data from the archive.
  for (const auto& constituent : wave.constituents()) {
    if (constituent->healthy()) continue;
    for (Day d : constituent->time_set()) {
      Status put = inc->day_store.Put(MakeScenarioDay(scenario, d));
      if (!put.ok() && !put.IsAlreadyExists()) return put;
    }
  }
  WAVEKIT_ASSIGN_OR_RETURN(Scheme::HealReport healed,
                           inc->maintenance->Heal());
  if (healed.healed < 1 || healed.skipped != 0) {
    return Status::Internal(
        "heal did not rebuild the quarantined constituent at day " +
        std::to_string(day) + ": healed=" + std::to_string(healed.healed) +
        " skipped=" + std::to_string(healed.skipped));
  }
  for (const auto& constituent : inc->scheme->wave().constituents()) {
    if (!constituent->healthy()) {
      return Status::Internal("constituent " + constituent->name() +
                              " still unhealthy after heal at day " +
                              std::to_string(day));
    }
  }
  *trace += "day " + std::to_string(day) +
            " healed=" + std::to_string(healed.healed) + "\n";
  return Status::OK();
}

Status MakeSchemeIn(Incarnation* inc, SchemeKind kind,
                    const Scenario& scenario, Clock* clock,
                    obs::EventJournal* events) {
  SchemeEnv env{&inc->metered, &inc->allocator, &inc->day_store};
  env.clock = clock;
  env.events = events;
  env.retry.max_attempts = scenario.retry_attempts;
  WAVEKIT_ASSIGN_OR_RETURN(inc->scheme,
                           MakeScheme(kind, env, ConfigFor(kind, scenario)));
  return Status::OK();
}

// Episode-wide telemetry under the SimClock: a registry sampled by a
// Tick-driven collector, and an event journal fed by retries, recovery
// decisions, and the harness itself. Everything here is a pure function of
// the episode seed — its digest goes into the byte-identical episode trace,
// so a nondeterministic telemetry path fails the sim determinism test.
struct EpisodeTelemetry {
  explicit EpisodeTelemetry(SimClock* clock) {
    obs::EventJournal::Options event_options;
    event_options.ring_capacity = 512;
    event_options.clock = clock;
    events = std::make_unique<obs::EventJournal>(event_options);

    obs::TimeSeriesCollector::Options collector_options;
    collector_options.registry = &registry;
    // One simulated day per sample: Tick fires every time the harness
    // advances the clock by kDayMicros.
    collector_options.interval_us = kDayMicros;
    collector_options.ring_capacity = 64;
    collector_options.clock = clock;
    collector = std::make_unique<obs::TimeSeriesCollector>(collector_options);
  }

  /// Virtual time the harness advances per simulated day.
  static constexpr uint64_t kDayMicros = 1'000'000;

  /// Attaches `device`'s phase counters for the current incarnation; call
  /// Detach(inc) before the incarnation dies.
  void Attach(const MeteredDevice* device, const void* inc) {
    obs::AttachMeteredDevice(&registry, device, "sim", inc);
  }
  void Detach(const void* inc) { registry.Unregister(inc); }

  /// "telemetry samples=N events=M ecrc=..." — digest of every journaled
  /// event (sequence, virtual timestamp, type, day, fields).
  std::string TraceLine() const {
    std::string digest;
    for (const obs::Event& event : events->Events()) {
      digest += event.ToJson();
      digest += '\n';
    }
    return "telemetry samples=" + std::to_string(collector->samples_taken()) +
           " events=" + std::to_string(events->total_appended()) + " ecrc=" +
           Hex32(Crc32(digest)) + "\n";
  }

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::EventJournal> events;
  std::unique_ptr<obs::TimeSeriesCollector> collector;
};

// The whole episode. Appends trace lines as it goes; `*restarts` counts
// simulated crash+recover cycles.
Status RunScenarioImpl(SchemeKind kind, const Scenario& scenario,
                       const DurableMaintenance::Paths& paths,
                       std::string* trace, int* restarts) {
  CrashPoints::Reset();
  const int window = scenario.window;
  const Day last_day = static_cast<Day>(window + scenario.days);

  MemoryDevice memory(kDeviceBytes);
  FaultInjectingDevice::Options fault_options;
  fault_options.seed = scenario.workload_seed ^ kFaultSeedSalt;
  FaultInjectingDevice faulty(&memory, fault_options);
  SimClock clock;
  OracleDB oracle;
  EpisodeTelemetry telemetry(&clock);

  *trace += std::string("start scheme=") + SchemeKindName(kind) + " " +
            "window=" + std::to_string(window) +
            " n=" + std::to_string(scenario.num_indexes) +
            " days=" + std::to_string(scenario.days) +
            " faults=" + std::to_string(scenario.faults.size()) + "\n";

  auto inc = std::make_unique<Incarnation>(&faulty, memory.capacity());
  telemetry.Attach(&inc->metered, inc.get());
  WAVEKIT_RETURN_NOT_OK(MakeSchemeIn(inc.get(), kind, scenario, &clock,
                                     telemetry.events.get()));
  inc->maintenance =
      std::make_unique<DurableMaintenance>(inc->scheme.get(), paths);

  std::vector<DayBatch> first;
  for (Day d = 1; d <= static_cast<Day>(window); ++d) {
    first.push_back(MakeScenarioDay(scenario, d));
  }
  WAVEKIT_RETURN_NOT_OK(inc->maintenance->Start(std::move(first)));
  for (Day d = 1; d <= static_cast<Day>(window); ++d) {
    oracle.AdvanceDay(MakeScenarioDay(scenario, d), window);
  }
  WAVEKIT_RETURN_NOT_OK(VerifyDay(*inc->scheme, scenario,
                                  static_cast<Day>(window), oracle, &memory,
                                  trace));
  clock.Advance(EpisodeTelemetry::kDayMicros);
  telemetry.collector->Tick();

  std::vector<bool> fault_consumed(scenario.faults.size(), false);
  const int max_restarts = scenario.days * 4 + 16;
  // After a restart the interrupted day is re-run fault-free (rates zeroed)
  // so a flaky-disk episode cannot livelock on one day.
  bool fault_free_retry = false;

  Day day = static_cast<Day>(window + 1);
  while (day <= last_day) {
    if (!fault_free_retry) {
      for (size_t i = 0; i < scenario.faults.size(); ++i) {
        const FaultEvent& fault = scenario.faults[i];
        if (fault.day != day || fault_consumed[i]) continue;
        // Bit rot strikes AFTER the day commits (it corrupts data at rest,
        // not the transition): handled in the success branch below.
        if (fault.kind == FaultEvent::Kind::kBitRot) continue;
        fault_consumed[i] = true;
        if (fault.kind == FaultEvent::Kind::kCrashPoint) {
          CrashPoints::Arm(fault.crash_point);
          *trace += "day " + std::to_string(day) + " arm " +
                    fault.crash_point + "\n";
        } else {
          faulty.ArmCrashAfterWrites(fault.countdown);
          *trace += "day " + std::to_string(day) + " arm device_crash@" +
                    std::to_string(fault.countdown) + "\n";
        }
      }
      faulty.set_read_error_rate(scenario.read_error_rate);
      faulty.set_write_error_rate(scenario.write_error_rate);
    }

    const Status advanced =
        inc->maintenance->AdvanceDay(MakeScenarioDay(scenario, day));
    // Queries and verification always run fault-free: the harness tests the
    // maintenance path under faults, and the oracle comparison needs
    // complete (non-PartialResult) answers.
    faulty.set_read_error_rate(0.0);
    faulty.set_write_error_rate(0.0);

    if (advanced.ok()) {
      fault_free_retry = false;
      oracle.AdvanceDay(MakeScenarioDay(scenario, day), window);
      // Data-at-rest corruption lands on the freshly committed day:
      // corrupt -> detect -> quarantine -> heal, and then the exact
      // verification below must hold again on the healed wave.
      for (size_t i = 0; i < scenario.faults.size(); ++i) {
        const FaultEvent& fault = scenario.faults[i];
        if (fault.day != day || fault_consumed[i] ||
            fault.kind != FaultEvent::Kind::kBitRot) {
          continue;
        }
        fault_consumed[i] = true;
        WAVEKIT_RETURN_NOT_OK(RunBitRot(fault, inc.get(), &faulty, scenario,
                                        day, oracle, telemetry.events.get(),
                                        trace));
      }
      WAVEKIT_RETURN_NOT_OK(
          VerifyDay(*inc->scheme, scenario, day, oracle, &memory, trace));
      // One simulated day elapsed: the collector's clock-driven Tick takes
      // exactly one sample.
      clock.Advance(EpisodeTelemetry::kDayMicros);
      telemetry.collector->Tick();
      ++day;
      continue;
    }

    *trace += "day " + std::to_string(day) + " failed (" +
              std::string(IsInjectedCrash(advanced) ? "crash"
                                                    : StatusCodeToString(
                                                          advanced.code())) +
              ")\n";
    ++*restarts;
    if (*restarts > max_restarts) {
      return Status::Internal("restart livelock: " +
                              std::to_string(*restarts) + " restarts");
    }

    // Simulated restart: RAM dies, the device bytes and the two metadata
    // files survive, faults clear.
    CrashPoints::Reset();
    faulty.ClearCrash();
    faulty.DisarmCrash();
    telemetry.Detach(inc.get());
    inc.reset();
    inc = std::make_unique<Incarnation>(&faulty, memory.capacity());
    telemetry.Attach(&inc->metered, inc.get());

    auto recovered = DurableMaintenance::Recover(
        paths, &inc->metered, &inc->allocator, ConstituentIndex::Options{},
        telemetry.events.get());
    WAVEKIT_RETURN_NOT_OK(recovered.status());
    DurableMaintenance::RecoveredState state =
        std::move(recovered).ValueOrDie();
    if (state.interrupted_day.has_value()) {
      if (*state.interrupted_day != day || state.current_day != day - 1) {
        return Status::Internal(
            "recovery reported interrupted day " +
            std::to_string(*state.interrupted_day) + " / current day " +
            std::to_string(state.current_day) + " after failing day " +
            std::to_string(day));
      }
    } else if (state.current_day != day && state.current_day != day - 1) {
      return Status::Internal("recovery landed on day " +
                              std::to_string(state.current_day) +
                              " after failing day " + std::to_string(day));
    }
    *trace += "recovered current=" + std::to_string(state.current_day) +
              " interrupted=" +
              (state.interrupted_day.has_value() ? "yes" : "no") + "\n";

    // Rebuild the oracle for the recovered window: the workload is a pure
    // function of (workload_seed, day), so this is exact.
    oracle.Clear();
    for (Day d = state.current_day - static_cast<Day>(window) + 1;
         d <= state.current_day; ++d) {
      oracle.AdvanceDay(MakeScenarioDay(scenario, d), window);
    }

    for (Day d = state.current_day - static_cast<Day>(window) + 1;
         d <= state.current_day; ++d) {
      WAVEKIT_RETURN_NOT_OK(inc->day_store.Put(MakeScenarioDay(scenario, d)));
    }
    WAVEKIT_RETURN_NOT_OK(MakeSchemeIn(inc.get(), kind, scenario, &clock,
                                       telemetry.events.get()));
    WAVEKIT_RETURN_NOT_OK(
        inc->scheme->Adopt(std::move(state.wave), state.current_day));
    inc->maintenance =
        std::make_unique<DurableMaintenance>(inc->scheme.get(), paths);

    // The recovered wave must already answer exactly like the oracle.
    WAVEKIT_RETURN_NOT_OK(VerifyDay(*inc->scheme, scenario,
                                    state.current_day, oracle, &memory,
                                    trace));

    // Roll-back means the next iteration re-runs the day that just failed;
    // only that re-run is fault-free. Roll-forward moves on to a fresh day,
    // which takes its scheduled faults normally.
    fault_free_retry = state.current_day == day - 1;
    day = state.current_day + 1;
  }

  *trace += telemetry.TraceLine();
  *trace += "episode ok days=" + std::to_string(scenario.days) +
            " restarts=" + std::to_string(*restarts) + "\n";
  return Status::OK();
}

}  // namespace

std::string ReproCommand(uint64_t seed, SchemeKind kind, uint64_t episode) {
  return "sim_torture --seed=" + std::to_string(seed) + " --scheme=" +
         SchemeKindName(kind) + " --episode=" + std::to_string(episode);
}

EpisodeResult Simulator::RunScenario(SchemeKind kind, const Scenario& scenario,
                                     const std::string& label) const {
  EpisodeResult result;
  result.kind = kind;
  result.scenario = scenario;

  const std::string prefix = config_.tmp_dir + "/wavekit_sim_" +
                             Sanitize(std::string(SchemeKindName(kind)) + "_" +
                                      label);
  DurableMaintenance::Paths paths{prefix + "_CHECKPOINT",
                                  prefix + "_JOURNAL"};
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());

  result.status =
      RunScenarioImpl(kind, scenario, paths, &result.trace, &result.restarts);
  if (!result.status.ok()) {
    result.trace += "FAIL: " + result.status.ToString() + "\n";
  }

  CrashPoints::Reset();
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
  return result;
}

EpisodeResult Simulator::RunEpisode(SchemeKind kind, uint64_t episode) const {
  const ScenarioGenerator generator(config_.seed);
  EpisodeResult result =
      RunScenario(kind, generator.Generate(episode),
                  "s" + std::to_string(config_.seed) + "_e" +
                      std::to_string(episode));
  result.episode = episode;
  if (!result.status.ok()) {
    result.repro = ReproCommand(config_.seed, kind, episode);
  }
  return result;
}

EpisodeResult Simulator::RunMany(SchemeKind kind) const {
  EpisodeResult last;
  for (uint64_t e = 0; e < config_.episodes; ++e) {
    last = RunEpisode(kind, e);
    if (!last.status.ok()) return last;
  }
  return last;
}

EpisodeResult Simulator::RunBitRotEpisode(SchemeKind kind,
                                          uint64_t episode) const {
  const ScenarioGenerator generator(config_.seed);
  EpisodeResult result =
      RunScenario(kind, generator.GenerateBitRot(episode),
                  "bitrot_s" + std::to_string(config_.seed) + "_e" +
                      std::to_string(episode));
  result.episode = episode;
  if (!result.status.ok()) {
    result.repro = ReproCommand(config_.seed, kind, episode) + " --bitrot";
  }
  return result;
}

EpisodeResult Simulator::RunManyBitRot(SchemeKind kind) const {
  EpisodeResult last;
  for (uint64_t e = 0; e < config_.episodes; ++e) {
    last = RunBitRotEpisode(kind, e);
    if (!last.status.ok()) return last;
  }
  return last;
}

EpisodeResult Simulator::RunCodecEpisode(SchemeKind kind,
                                         uint64_t episode) const {
  const ScenarioGenerator generator(config_.seed);
  EpisodeResult result =
      RunScenario(kind, generator.GenerateCodec(episode),
                  "codec_s" + std::to_string(config_.seed) + "_e" +
                      std::to_string(episode));
  result.episode = episode;
  if (!result.status.ok()) {
    result.repro = ReproCommand(config_.seed, kind, episode) + " --codec";
  }
  return result;
}

EpisodeResult Simulator::RunManyCodec(SchemeKind kind) const {
  EpisodeResult last;
  for (uint64_t e = 0; e < config_.episodes; ++e) {
    last = RunCodecEpisode(kind, e);
    if (!last.status.ok()) return last;
  }
  return last;
}

EpisodeResult Simulator::RunCodecBitRotEpisode(SchemeKind kind,
                                               uint64_t episode) const {
  const ScenarioGenerator generator(config_.seed);
  EpisodeResult result =
      RunScenario(kind, generator.GenerateCodecBitRot(episode),
                  "codecrot_s" + std::to_string(config_.seed) + "_e" +
                      std::to_string(episode));
  result.episode = episode;
  if (!result.status.ok()) {
    result.repro =
        ReproCommand(config_.seed, kind, episode) + " --codec --bitrot";
  }
  return result;
}

EpisodeResult Simulator::RunManyCodecBitRot(SchemeKind kind) const {
  EpisodeResult last;
  for (uint64_t e = 0; e < config_.episodes; ++e) {
    last = RunCodecBitRotEpisode(kind, e);
    if (!last.status.ok()) return last;
  }
  return last;
}

Scenario Simulator::Shrink(SchemeKind kind, const Scenario& failing,
                           int max_runs) const {
  int runs = 0;
  const auto still_fails = [&](const Scenario& candidate) {
    if (runs >= max_runs) return false;
    ++runs;
    return !RunScenario(kind, candidate, "shrink").status.ok();
  };
  // A fault scheduled past the truncated horizon can never fire.
  const auto truncate_days = [](Scenario s, int days) {
    s.days = days;
    const Day last = static_cast<Day>(s.window + days);
    std::vector<FaultEvent> kept;
    for (FaultEvent& fault : s.faults) {
      if (fault.day <= last) kept.push_back(std::move(fault));
    }
    s.faults = std::move(kept);
    return s;
  };

  Scenario best = failing;
  bool improved = true;
  while (improved && runs < max_runs) {
    improved = false;
    while (best.days > 1) {
      const Scenario candidate = truncate_days(best, best.days / 2);
      if (!still_fails(candidate)) break;
      best = candidate;
      improved = true;
    }
    while (best.days > 1) {
      const Scenario candidate = truncate_days(best, best.days - 1);
      if (!still_fails(candidate)) break;
      best = candidate;
      improved = true;
    }
    for (size_t i = 0; i < best.faults.size();) {
      Scenario candidate = best;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<ptrdiff_t>(i));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++i;
      }
    }
    if (best.read_error_rate > 0.0 || best.write_error_rate > 0.0) {
      Scenario candidate = best;
      candidate.read_error_rate = 0.0;
      candidate.write_error_rate = 0.0;
      candidate.retry_attempts = 1;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
      }
    }
  }
  return best;
}

}  // namespace testing
}  // namespace wavekit
