// REINDEX+ (paper Section 4.1, Figure 14): REINDEX with one temporary index
// that accumulates the recent days of the cluster being rotated, so each day
// only the not-yet-expired OLD days are re-added — about half the re-indexing
// work of REINDEX on average.

#ifndef WAVEKIT_WAVE_REINDEX_PLUS_SCHEME_H_
#define WAVEKIT_WAVE_REINDEX_PLUS_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The REINDEX+ maintenance scheme. Hard windows; no deletion code;
/// extra space for the Temp index (at most ceil(W/n) - 1 days, about
/// (W/n)/2 on average).
class ReindexPlusScheme : public Scheme {
 public:
  ReindexPlusScheme(SchemeEnv env, SchemeConfig config) : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kReindexPlus; }
  std::string_view name() const override { return "REINDEX+"; }
  bool hard_window() const override { return true; }

  std::vector<const ConstituentIndex*> TemporaryIndexes() const override;

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
  Status DoAdopt() override;

 private:
  // Builds the replacement for slot `j` as a copy of Temp plus `extra_days`,
  // packs it when the configured technique demands packed results, and swaps
  // it in.
  Status PromoteCopyOfTemp(size_t j, const TimeSet& extra_days);

  std::shared_ptr<ConstituentIndex> temp_;  // null == "Temp = phi"
  TimeSet days_to_add_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_REINDEX_PLUS_SCHEME_H_
