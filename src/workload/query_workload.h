// QueryWorkload: executes a sampled slice of a case study's daily query
// stream against a wave index and scales the metered cost to the full
// volume.

#ifndef WAVEKIT_WORKLOAD_QUERY_WORKLOAD_H_
#define WAVEKIT_WORKLOAD_QUERY_WORKLOAD_H_

#include <functional>

#include "storage/metered_device.h"
#include "util/random.h"
#include "util/result.h"
#include "wave/wave_index.h"

namespace wavekit {
namespace workload {

struct QueryMix {
  /// TimedIndexProbes per day (Probe_num) and how many to actually execute.
  double probes_per_day = 0;
  int probe_sample = 32;
  /// TimedSegmentScans per day (Scan_num) and how many to actually execute.
  double scans_per_day = 0;
  int scan_sample = 1;
  /// When false, scans cover only the newest day (SCAM's registration
  /// checks); when true, the whole window (TPC-D's Q1).
  bool scans_whole_window = true;
  uint64_t seed = 99;
};

/// \brief Metered query-cost measurement for one day.
struct QueryCosts {
  /// Device seconds for the full daily stream (sampled cost scaled up).
  double seconds = 0;
  /// Averages of the executed sample.
  double seconds_per_probe = 0;
  double seconds_per_scan = 0;
  uint64_t probe_entries = 0;  // entries returned by the sampled probes
  uint64_t scan_entries = 0;   // entries visited by the sampled scans
};

/// \brief Runs the sampled query mix against `wave`, charging Phase::kQuery.
///
/// `value_sampler` produces probe values (e.g. Zipf-popular words);
/// `window` is the hard window the timed queries ask for.
Result<QueryCosts> RunDailyQueries(
    const WaveIndex& wave, MeteredDevice* device, const CostModel& cost,
    const QueryMix& mix, const DayRange& window,
    const std::function<Value(Rng&)>& value_sampler);

/// Multi-disk overload: charges Phase::kQuery on every device and sums the
/// traffic (a serialized-time measure; divide across disks for the parallel
/// view, see DiskArray::ParallelSeconds).
Result<QueryCosts> RunDailyQueries(
    const WaveIndex& wave, const std::vector<MeteredDevice*>& devices,
    const CostModel& cost, const QueryMix& mix, const DayRange& window,
    const std::function<Value(Rng&)>& value_sampler);

}  // namespace workload
}  // namespace wavekit

#endif  // WAVEKIT_WORKLOAD_QUERY_WORKLOAD_H_
