file(REMOVE_RECURSE
  "CMakeFiles/constituent_index_test.dir/index/constituent_index_test.cc.o"
  "CMakeFiles/constituent_index_test.dir/index/constituent_index_test.cc.o.d"
  "constituent_index_test"
  "constituent_index_test.pdb"
  "constituent_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constituent_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
