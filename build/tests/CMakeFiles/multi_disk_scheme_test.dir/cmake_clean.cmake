file(REMOVE_RECURSE
  "CMakeFiles/multi_disk_scheme_test.dir/wave/multi_disk_scheme_test.cc.o"
  "CMakeFiles/multi_disk_scheme_test.dir/wave/multi_disk_scheme_test.cc.o.d"
  "multi_disk_scheme_test"
  "multi_disk_scheme_test.pdb"
  "multi_disk_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_disk_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
