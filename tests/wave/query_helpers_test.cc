#include "wave/query_helpers.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

class QueryHelpersTest : public testing::StoreTest {
 protected:
  // Three constituents covering days 1..6; records with controlled values.
  void SetUp() override {
    // Day 1: r1 {cat, dog}, r2 {cat}
    // Day 2: r3 {dog, fish}
    // Day 3: r4 {cat, dog, fish}         (aux = 10 each via position? no: set)
    // Day 5: r5 {cat}
    // Day 6: r6 {dog}
    AddCluster({Rec(1, 1, {"cat", "dog"}), Rec(2, 1, {"cat"}),
                Rec(3, 2, {"dog", "fish"})});
    AddCluster({Rec(4, 3, {"cat", "dog", "fish"})});
    AddCluster({Rec(5, 5, {"cat"}), Rec(6, 6, {"dog"})});
  }

  static Record Rec(uint64_t id, Day day, std::vector<Value> values) {
    Record r;
    r.record_id = id;
    r.day = day;
    r.values = std::move(values);
    for (size_t i = 0; i < r.values.size(); ++i) {
      r.aux.push_back(static_cast<uint32_t>(id * 10));  // aux = 10 * id
    }
    return r;
  }

  void AddCluster(std::vector<Record> records) {
    std::map<Day, DayBatch> by_day;
    for (Record& r : records) {
      by_day[r.day].day = r.day;
      by_day[r.day].records.push_back(std::move(r));
    }
    std::vector<DayBatch> batches;
    for (auto& [day, batch] : by_day) batches.push_back(std::move(batch));
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    auto built = IndexBuilder::BuildPacked(store_.device(), store_.allocator(),
                                           Options(), ptrs, "I");
    ASSERT_TRUE(built.ok()) << built.status();
    wave_.AddIndex(std::move(built).ValueOrDie());
  }

  WaveIndex wave_;
};

TEST_F(QueryHelpersTest, ConjunctiveProbeRequiresAllValues) {
  ASSERT_OK_AND_ASSIGN(auto results,
                       ConjunctiveProbe(wave_, {"cat", "dog"},
                                        DayRange::All()));
  // Records with BOTH cat and dog: r1 (day 1) and r4 (day 3), newest first.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].record_id, 4u);
  EXPECT_EQ(results[0].newest_day, 3);
  EXPECT_EQ(results[1].record_id, 1u);
}

TEST_F(QueryHelpersTest, ConjunctiveProbeRespectsRange) {
  ASSERT_OK_AND_ASSIGN(auto results,
                       ConjunctiveProbe(wave_, {"cat", "dog"}, DayRange{2, 6}));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].record_id, 4u);
}

TEST_F(QueryHelpersTest, ConjunctiveProbeDeduplicatesQueryValues) {
  ASSERT_OK_AND_ASSIGN(
      auto results,
      ConjunctiveProbe(wave_, {"cat", "cat", "dog"}, DayRange::All()));
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(QueryHelpersTest, ConjunctiveProbeEmptyQuery) {
  ASSERT_OK_AND_ASSIGN(auto results,
                       ConjunctiveProbe(wave_, {}, DayRange::All()));
  EXPECT_TRUE(results.empty());
}

TEST_F(QueryHelpersTest, OverlapProbeRanksByMatchedValues) {
  ASSERT_OK_AND_ASSIGN(
      auto results,
      OverlapProbe(wave_, {"cat", "dog", "fish"}, DayRange::All(), 10));
  // r4 matches 3, r1 and r3 match 2, r2/r5/r6 match 1.
  ASSERT_GE(results.size(), 3u);
  EXPECT_EQ(results[0].record_id, 4u);
  EXPECT_EQ(results[0].matched_values, 3u);
  EXPECT_EQ(results[1].matched_values, 2u);
  EXPECT_EQ(results[2].matched_values, 2u);
}

TEST_F(QueryHelpersTest, OverlapProbeTruncatesToTopK) {
  ASSERT_OK_AND_ASSIGN(
      auto results,
      OverlapProbe(wave_, {"cat", "dog", "fish"}, DayRange::All(), 2));
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(QueryHelpersTest, AggregateScanSumsAux) {
  ASSERT_OK_AND_ASSIGN(ScanAggregate agg, AggregateScan(wave_, DayRange::All()));
  // Entries: r1 x2, r2 x1, r3 x2, r4 x3, r5 x1, r6 x1 = 10 entries.
  EXPECT_EQ(agg.count, 10u);
  // aux = 10 * id per entry.
  EXPECT_EQ(agg.aux_sum, 2 * 10u + 1 * 20u + 2 * 30u + 3 * 40u + 50u + 60u);
  EXPECT_NEAR(agg.aux_mean(), static_cast<double>(agg.aux_sum) / 10, 1e-9);
}

TEST_F(QueryHelpersTest, AggregateScanRange) {
  ASSERT_OK_AND_ASSIGN(ScanAggregate agg, AggregateScan(wave_, DayRange{5, 6}));
  EXPECT_EQ(agg.count, 2u);
  EXPECT_EQ(agg.aux_sum, 50u + 60u);
}

TEST_F(QueryHelpersTest, AggregateProbeGroupsOneValue) {
  ASSERT_OK_AND_ASSIGN(ScanAggregate agg,
                       AggregateProbe(wave_, "cat", DayRange::All()));
  // cat appears in r1, r2, r4, r5.
  EXPECT_EQ(agg.count, 4u);
  EXPECT_EQ(agg.aux_sum, 10u + 20u + 40u + 50u);
}

TEST_F(QueryHelpersTest, AggregateProbeMissingValue) {
  ASSERT_OK_AND_ASSIGN(ScanAggregate agg,
                       AggregateProbe(wave_, "unicorn", DayRange::All()));
  EXPECT_EQ(agg.count, 0u);
  EXPECT_EQ(agg.aux_mean(), 0.0);
}

}  // namespace
}  // namespace wavekit
