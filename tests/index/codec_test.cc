// Bucket codec unit tests: round-trip identity for every codec, auto
// selection (smaller-than-raw or bust), forced-mode raw fallback, malformed
// input rejection, and encode determinism — the properties the packed build
// and checkpoint layers lean on.

#include "index/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "index/entry.h"
#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

/// Packed-build-shaped entries: record ids roughly sorted with small gaps,
/// one day cluster, small aux — the kDelta sweet spot.
std::vector<Entry> SortedRun(size_t count) {
  std::vector<Entry> entries;
  uint64_t rid = 1000;
  for (size_t i = 0; i < count; ++i) {
    rid += 1 + (i % 7);
    entries.push_back(Entry{rid, static_cast<Day>(3 + (i % 2)),
                            static_cast<uint32_t>(i % 50)});
  }
  return entries;
}

/// Narrow-range but unsorted values — the kBitPack sweet spot.
std::vector<Entry> NarrowUnsorted(size_t count) {
  Rng rng(99);
  std::vector<Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back(Entry{5'000'000 + rng.Uniform(4096),
                            static_cast<Day>(10 + rng.Uniform(4)),
                            static_cast<uint32_t>(rng.Uniform(128))});
  }
  return entries;
}

/// Adversarial entries: every field spans its full width, so no codec can
/// beat 16 bytes per entry.
std::vector<Entry> Incompressible(size_t count) {
  Rng rng(7);
  std::vector<Entry> entries;
  for (size_t i = 0; i < count; ++i) {
    entries.push_back(Entry{rng.Next(), static_cast<Day>(rng.Next()),
                            static_cast<uint32_t>(rng.Next())});
  }
  return entries;
}

std::vector<Entry> Decoded(const EncodedBucket& encoded,
                           const std::vector<Entry>& original) {
  std::vector<Entry> out(original.size());
  Status status;
  if (encoded.codec == Codec::kRaw) {
    status = DecodeBucket(
        Codec::kRaw, reinterpret_cast<const std::byte*>(original.data()),
        original.size() * kEntrySize, original.size(), out.data());
  } else {
    status = DecodeBucket(encoded.codec, encoded.bytes.data(),
                          encoded.bytes.size(), original.size(), out.data());
  }
  EXPECT_OK(status);
  return out;
}

bool SameEntries(const std::vector<Entry>& a, const std::vector<Entry>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * kEntrySize) == 0;
}

TEST(CodecTest, RawModeIsIdentity) {
  const std::vector<Entry> entries = SortedRun(32);
  const EncodedBucket encoded =
      EncodeBucket(entries.data(), entries.size(), CodecMode::kRaw);
  EXPECT_EQ(encoded.codec, Codec::kRaw);
  EXPECT_TRUE(encoded.bytes.empty());
  EXPECT_EQ(encoded.stored_length(entries.size()),
            entries.size() * kEntrySize);
}

TEST(CodecTest, DeltaRoundTripsAndShrinksSortedRuns) {
  const std::vector<Entry> entries = SortedRun(200);
  const EncodedBucket encoded =
      EncodeBucket(entries.data(), entries.size(), CodecMode::kDelta);
  ASSERT_EQ(encoded.codec, Codec::kDelta);
  EXPECT_LT(encoded.bytes.size(), entries.size() * kEntrySize);
  EXPECT_TRUE(SameEntries(Decoded(encoded, entries), entries));
}

TEST(CodecTest, BitPackRoundTripsAndShrinksNarrowRanges) {
  const std::vector<Entry> entries = NarrowUnsorted(200);
  const EncodedBucket encoded =
      EncodeBucket(entries.data(), entries.size(), CodecMode::kBitPack);
  ASSERT_EQ(encoded.codec, Codec::kBitPack);
  EXPECT_LT(encoded.bytes.size(), entries.size() * kEntrySize);
  EXPECT_TRUE(SameEntries(Decoded(encoded, entries), entries));
}

TEST(CodecTest, AutoNeverLosesToRawAndRoundTrips) {
  for (const auto& entries :
       {SortedRun(150), NarrowUnsorted(150), Incompressible(150)}) {
    const EncodedBucket encoded =
        EncodeBucket(entries.data(), entries.size(), CodecMode::kAuto);
    EXPECT_LE(encoded.stored_length(entries.size()),
              entries.size() * kEntrySize);
    EXPECT_TRUE(SameEntries(Decoded(encoded, entries), entries));
  }
}

TEST(CodecTest, AutoCompressesTypicalPackedBuckets) {
  const std::vector<Entry> entries = SortedRun(150);
  const EncodedBucket encoded =
      EncodeBucket(entries.data(), entries.size(), CodecMode::kAuto);
  EXPECT_NE(encoded.codec, Codec::kRaw);
  EXPECT_LT(encoded.stored_length(entries.size()),
            entries.size() * kEntrySize);
}

TEST(CodecTest, ForcedModeFallsBackToRawWhenItCannotWin) {
  const std::vector<Entry> entries = Incompressible(100);
  for (const CodecMode mode :
       {CodecMode::kAuto, CodecMode::kDelta, CodecMode::kBitPack}) {
    const EncodedBucket encoded =
        EncodeBucket(entries.data(), entries.size(), mode);
    EXPECT_EQ(encoded.codec, Codec::kRaw) << CodecModeName(mode);
    EXPECT_TRUE(encoded.bytes.empty());
  }
}

TEST(CodecTest, EncodingIsDeterministic) {
  const std::vector<Entry> entries = SortedRun(123);
  for (const CodecMode mode : {CodecMode::kAuto, CodecMode::kDelta,
                               CodecMode::kBitPack, CodecMode::kRaw}) {
    const EncodedBucket a = EncodeBucket(entries.data(), entries.size(), mode);
    const EncodedBucket b = EncodeBucket(entries.data(), entries.size(), mode);
    EXPECT_EQ(a.codec, b.codec);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(CodecTest, EmptyBucketEncodesAndDecodes) {
  const EncodedBucket encoded = EncodeBucket(nullptr, 0, CodecMode::kAuto);
  EXPECT_EQ(encoded.codec, Codec::kRaw);
  EXPECT_EQ(encoded.stored_length(0), 0u);
  EXPECT_OK(DecodeBucket(Codec::kRaw, nullptr, 0, 0, nullptr));
}

TEST(CodecTest, DecodeRejectsTruncatedInput) {
  const std::vector<Entry> entries = SortedRun(64);
  for (const CodecMode mode : {CodecMode::kDelta, CodecMode::kBitPack}) {
    const EncodedBucket encoded =
        EncodeBucket(entries.data(), entries.size(), mode);
    ASSERT_NE(encoded.codec, Codec::kRaw);
    std::vector<Entry> out(entries.size());
    const Status truncated =
        DecodeBucket(encoded.codec, encoded.bytes.data(),
                     encoded.bytes.size() - 1, entries.size(), out.data());
    EXPECT_TRUE(truncated.IsDataLoss()) << truncated;
  }
}

TEST(CodecTest, DecodeRejectsTrailingBytes) {
  const std::vector<Entry> entries = SortedRun(64);
  const EncodedBucket encoded =
      EncodeBucket(entries.data(), entries.size(), CodecMode::kDelta);
  ASSERT_EQ(encoded.codec, Codec::kDelta);
  std::vector<std::byte> padded = encoded.bytes;
  padded.push_back(std::byte{0});
  std::vector<Entry> out(entries.size());
  const Status trailing = DecodeBucket(
      encoded.codec, padded.data(), padded.size(), entries.size(), out.data());
  EXPECT_TRUE(trailing.IsDataLoss()) << trailing;
}

TEST(CodecTest, DecodeRejectsGarbage) {
  std::vector<std::byte> garbage;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    garbage.push_back(static_cast<std::byte>(rng.Uniform(256)));
  }
  std::vector<Entry> out(1000);
  for (int c = 0; c < kNumCodecs; ++c) {
    // Must not crash or overread; any status is acceptable for the packed
    // codecs, but a count/size mismatch on raw must be rejected.
    (void)DecodeBucket(static_cast<Codec>(c), garbage.data(), garbage.size(),
                       out.size(), out.data());
  }
  const Status raw_mismatch = DecodeBucket(Codec::kRaw, garbage.data(),
                                           garbage.size(), 5, out.data());
  EXPECT_FALSE(raw_mismatch.ok());
}

TEST(CodecTest, CodecFromIdValidatesRange) {
  for (uint64_t id = 0; id < static_cast<uint64_t>(kNumCodecs); ++id) {
    ASSERT_OK_AND_ASSIGN(const Codec codec, CodecFromId(id));
    EXPECT_EQ(static_cast<uint64_t>(codec), id);
  }
  const auto bad = CodecFromId(kNumCodecs);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("codec id out of range"),
            std::string::npos);
}

TEST(CodecTest, CodecModeFromNameParsesAllModes) {
  ASSERT_OK_AND_ASSIGN(CodecMode raw, CodecModeFromName("raw"));
  EXPECT_EQ(raw, CodecMode::kRaw);
  ASSERT_OK_AND_ASSIGN(CodecMode auto_mode, CodecModeFromName("auto"));
  EXPECT_EQ(auto_mode, CodecMode::kAuto);
  ASSERT_OK_AND_ASSIGN(CodecMode delta, CodecModeFromName("delta"));
  EXPECT_EQ(delta, CodecMode::kDelta);
  ASSERT_OK_AND_ASSIGN(CodecMode bitpack, CodecModeFromName("bitpack"));
  EXPECT_EQ(bitpack, CodecMode::kBitPack);
  EXPECT_FALSE(CodecModeFromName("zstd").ok());
  for (const CodecMode mode : {CodecMode::kRaw, CodecMode::kAuto,
                               CodecMode::kDelta, CodecMode::kBitPack}) {
    ASSERT_OK_AND_ASSIGN(const CodecMode reparsed,
                         CodecModeFromName(CodecModeName(mode)));
    EXPECT_EQ(reparsed, mode);
  }
}

}  // namespace
}  // namespace wavekit
