#include "index/index_builder.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "index/codec.h"
#include "util/crash_point.h"
#include "util/crc32c.h"
#include "util/macros.h"

namespace wavekit {

namespace {

// One bucket of a codec-enabled build: the merged entries, the encoding
// decision, and the checksum over the stored bytes. Encoding is a pure
// function of the merged entry sequence, so the serial and parallel codec
// builds emit byte-identical extents.
struct CodecBuildBucket {
  std::vector<Entry> entries;
  EncodedBucket encoded;
  uint64_t stored = 0;
  uint32_t crc = 0;

  const std::byte* bytes() const {
    return encoded.codec == Codec::kRaw
               ? reinterpret_cast<const std::byte*>(entries.data())
               : encoded.bytes.data();
  }
};

void EncodeForBuild(CodecMode mode, CodecBuildBucket* bucket) {
  bucket->encoded =
      EncodeBucket(bucket->entries.data(), bucket->entries.size(), mode);
  bucket->stored = bucket->encoded.stored_length(bucket->entries.size());
  bucket->crc = Crc32c(bucket->bytes(), bucket->stored);
}

Status InstallCodecBucket(ConstituentIndex* index, const Value& value,
                          uint64_t offset, const CodecBuildBucket& bucket) {
  const uint32_t n = static_cast<uint32_t>(bucket.entries.size());
  return index->InstallBucket(
      value, BucketInfo{Extent{offset, bucket.stored}, n, n, bucket.crc,
                        bucket.encoded.codec});
}

// The original single-thread build, kept verbatim: with
// num_maintenance_threads=1 the metered op sequence (one Write per bucket,
// fully sequential) must reproduce byte-identically for the cost model.
Result<std::unique_ptr<ConstituentIndex>> BuildPackedSerial(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name) {
  auto index = std::make_unique<ConstituentIndex>(device, allocator, options,
                                                  std::move(name));
  // Pass 1: group entries per value. std::map keeps buckets in sorted value
  // order, which becomes the on-device layout order.
  std::map<Value, std::vector<Entry>> grouped;
  uint64_t total_entries = 0;
  for (const DayBatch* batch : batches) {
    for (const Record& record : batch->records) {
      for (size_t i = 0; i < record.values.size(); ++i) {
        grouped[record.values[i]].push_back(
            Entry{record.record_id, batch->day, record.AuxFor(i)});
        ++total_entries;
      }
    }
  }

  // Pass 2: one contiguous region; exactly-sized buckets written
  // back-to-back, so the write stream is fully sequential (one seek).
  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(total_entries * kEntrySize));
  uint64_t cursor = region.offset;
  for (const auto& [value, entries] : grouped) {
    const uint64_t length = entries.size() * kEntrySize;
    auto* bytes = reinterpret_cast<const std::byte*>(entries.data());
    WAVEKIT_RETURN_NOT_OK(
        device->Write(cursor, std::span<const std::byte>(bytes, length)));
    WAVEKIT_RETURN_NOT_OK(index->InstallBucket(
        value, Extent{cursor, length}, static_cast<uint32_t>(entries.size()),
        static_cast<uint32_t>(entries.size()), Crc32c(bytes, length)));
    cursor += length;
  }

  for (const DayBatch* batch : batches) {
    index->mutable_time_set().insert(batch->day);
  }
  index->set_packed(true);
  return index;
}

// Codec-enabled serial build: the same two-pass shape as BuildPackedSerial,
// with an encode step between grouping and the write pass. Bucket offsets
// are the running sums of *encoded* sizes (content-dependent), so layout is
// computed only after every bucket is encoded.
Result<std::unique_ptr<ConstituentIndex>> BuildPackedSerialCodec(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name) {
  auto index = std::make_unique<ConstituentIndex>(device, allocator, options,
                                                  std::move(name));
  std::map<Value, std::vector<Entry>> grouped;
  for (const DayBatch* batch : batches) {
    for (const Record& record : batch->records) {
      for (size_t i = 0; i < record.values.size(); ++i) {
        grouped[record.values[i]].push_back(
            Entry{record.record_id, batch->day, record.AuxFor(i)});
      }
    }
  }

  std::vector<const Value*> order;
  std::vector<CodecBuildBucket> buckets;
  order.reserve(grouped.size());
  buckets.reserve(grouped.size());
  uint64_t total_bytes = 0;
  for (auto& [value, entries] : grouped) {
    order.push_back(&value);
    CodecBuildBucket bucket;
    bucket.entries = std::move(entries);
    EncodeForBuild(options.codec, &bucket);
    total_bytes += bucket.stored;
    buckets.push_back(std::move(bucket));
  }

  WAVEKIT_ASSIGN_OR_RETURN(Extent region, allocator->Allocate(total_bytes));
  uint64_t cursor = region.offset;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const CodecBuildBucket& bucket = buckets[i];
    WAVEKIT_RETURN_NOT_OK(device->Write(
        cursor, std::span<const std::byte>(bucket.bytes(),
                                           static_cast<size_t>(bucket.stored))));
    WAVEKIT_RETURN_NOT_OK(
        InstallCodecBucket(index.get(), *order[i], cursor, bucket));
    cursor += bucket.stored;
  }

  for (const DayBatch* batch : batches) {
    index->mutable_time_set().insert(batch->day);
  }
  index->set_packed(true);
  return index;
}

// Parallel pipeline: (1) group each contiguous chunk of day batches into a
// sorted local map on the pool; (2) compute the exact serial bucket layout
// from the local maps (cheap arithmetic — same region, same offsets, same
// sorted value order as BuildPackedSerial); (3) range-partition the value
// space and let each task merge its partition's buckets (chunk order ==
// batch order, so entry order matches the serial build) and write them with
// ~1 MiB WriteBatch calls; (4) install directory metadata serially. Output
// bytes and layout are identical to the serial build; only the I/O schedule
// (few large batched writes instead of one Write per bucket) differs.
Result<std::unique_ptr<ConstituentIndex>> BuildPackedParallel(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name,
    const ParallelContext& parallel) {
  auto index = std::make_unique<ConstituentIndex>(device, allocator, options,
                                                  std::move(name));

  // Stage 1: concurrent grouping, one sorted map per batch chunk.
  const size_t group_parts = parallel.Partitions(batches.size());
  std::vector<std::map<Value, std::vector<Entry>>> local(
      std::max<size_t>(group_parts, 1));
  std::vector<Status> group_status(local.size(), Status::OK());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < group_parts; ++p) {
      group.Submit([&, p]() {
        Status crash = CrashPoints::Check("builder.parallel.group");
        if (!crash.ok()) {
          group_status[p] = std::move(crash);
          return;
        }
        const size_t begin = batches.size() * p / group_parts;
        const size_t end = batches.size() * (p + 1) / group_parts;
        auto& mine = local[p];
        for (size_t b = begin; b < end; ++b) {
          const DayBatch* batch = batches[b];
          for (const Record& record : batch->records) {
            for (size_t i = 0; i < record.values.size(); ++i) {
              mine[record.values[i]].push_back(
                  Entry{record.record_id, batch->day, record.AuxFor(i)});
            }
          }
        }
      });
    }
    group.Wait();
  }
  for (Status& status : group_status) {
    WAVEKIT_RETURN_NOT_OK(status);
  }

  // Distinct values in global sorted order, then the per-value entry counts
  // that fix the serial layout. Each local map is consumed once with an
  // advancing cursor, so this costs O(sum of map sizes), not O(V * chunks).
  std::set<Value> distinct;
  for (const auto& m : local) {
    for (const auto& [value, entries] : m) distinct.insert(value);
  }
  const std::vector<Value> values(distinct.begin(), distinct.end());
  std::vector<uint64_t> counts(values.size(), 0);
  uint64_t total_entries = 0;
  for (const auto& m : local) {
    size_t i = 0;
    for (const auto& [value, entries] : m) {
      while (values[i] < value) ++i;
      counts[i] += entries.size();
      total_entries += entries.size();
    }
  }
  std::vector<uint64_t> bucket_starts(values.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    bucket_starts[i] = running;
    running += counts[i] * kEntrySize;
  }

  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(total_entries * kEntrySize));

  // Stage 2: each value-range partition merges its buckets (entries in chunk
  // order) into chunk-sized buffers and writes them batched. Partitions
  // cover disjoint, precomputed regions, so the writes never overlap. Bucket
  // checksums fall out of the merge (each task fills a disjoint slice):
  // chunk order == batch order, so they equal the serial build's.
  std::vector<uint32_t> crcs(values.size(), 0);
  const size_t value_parts = parallel.Partitions(values.size());
  std::vector<Status> write_status(std::max<size_t>(value_parts, 1),
                                   Status::OK());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < value_parts; ++p) {
      group.Submit([&, p]() {
        Status status = CrashPoints::Check("builder.parallel.write");
        if (!status.ok()) {
          write_status[p] = std::move(status);
          return;
        }
        const size_t vbegin = values.size() * p / value_parts;
        const size_t vend = values.size() * (p + 1) / value_parts;
        std::vector<Extent> extents;
        std::vector<std::byte> buffer;
        auto flush = [&]() -> Status {
          if (extents.empty()) return Status::OK();
          Status written = device->WriteBatch(extents, buffer);
          extents.clear();
          buffer.clear();
          return written;
        };
        for (size_t i = vbegin; i < vend; ++i) {
          extents.push_back(
              Extent{region.offset + bucket_starts[i], counts[i] * kEntrySize});
          for (const auto& m : local) {
            auto it = m.find(values[i]);
            if (it == m.end()) continue;
            const auto* bytes =
                reinterpret_cast<const std::byte*>(it->second.data());
            buffer.insert(buffer.end(), bytes,
                          bytes + it->second.size() * kEntrySize);
            crcs[i] = Crc32cExtend(crcs[i], bytes,
                                   it->second.size() * kEntrySize);
          }
          if (buffer.size() >= IndexBuilder::kWriteChunkBytes) {
            status = flush();
            if (!status.ok()) break;
          }
        }
        if (status.ok()) status = flush();
        write_status[p] = std::move(status);
      });
    }
    group.Wait();
  }
  Status failed = Status::OK();
  for (Status& status : write_status) {
    if (!status.ok() && failed.ok()) failed = std::move(status);
  }
  if (!failed.ok()) {
    // All-or-nothing: no bucket was installed yet, so the whole region goes
    // back and the caller may retry cleanly.
    (void)allocator->Free(region);
    return failed;
  }

  // Stage 3: serial metadata install in layout order (the directory is not
  // thread-safe, and this is pure in-memory work).
  for (size_t i = 0; i < values.size(); ++i) {
    WAVEKIT_RETURN_NOT_OK(index->InstallBucket(
        values[i],
        Extent{region.offset + bucket_starts[i], counts[i] * kEntrySize},
        static_cast<uint32_t>(counts[i]), static_cast<uint32_t>(counts[i]),
        crcs[i]));
  }

  for (const DayBatch* batch : batches) {
    index->mutable_time_set().insert(batch->day);
  }
  index->set_packed(true);
  return index;
}

// Codec-enabled parallel build. Stage 1 (chunk grouping) is unchanged, but
// the write stage is restructured: delta coding crosses chunk boundaries,
// so each value-range partition first merges its buckets (chunk order ==
// batch order, matching the serial build) and encodes them whole; a serial
// prefix-sum over the encoded sizes then fixes the layout, and a final
// parallel stage writes the encoded buckets batched. The resulting device
// bytes are identical to BuildPackedSerialCodec's.
Result<std::unique_ptr<ConstituentIndex>> BuildPackedParallelCodec(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name,
    const ParallelContext& parallel) {
  auto index = std::make_unique<ConstituentIndex>(device, allocator, options,
                                                  std::move(name));

  // Stage 1: concurrent grouping, one sorted map per batch chunk.
  const size_t group_parts = parallel.Partitions(batches.size());
  std::vector<std::map<Value, std::vector<Entry>>> local(
      std::max<size_t>(group_parts, 1));
  std::vector<Status> group_status(local.size(), Status::OK());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < group_parts; ++p) {
      group.Submit([&, p]() {
        Status crash = CrashPoints::Check("builder.parallel.group");
        if (!crash.ok()) {
          group_status[p] = std::move(crash);
          return;
        }
        const size_t begin = batches.size() * p / group_parts;
        const size_t end = batches.size() * (p + 1) / group_parts;
        auto& mine = local[p];
        for (size_t b = begin; b < end; ++b) {
          const DayBatch* batch = batches[b];
          for (const Record& record : batch->records) {
            for (size_t i = 0; i < record.values.size(); ++i) {
              mine[record.values[i]].push_back(
                  Entry{record.record_id, batch->day, record.AuxFor(i)});
            }
          }
        }
      });
    }
    group.Wait();
  }
  for (Status& status : group_status) {
    WAVEKIT_RETURN_NOT_OK(status);
  }

  std::set<Value> distinct;
  for (const auto& m : local) {
    for (const auto& [value, entries] : m) distinct.insert(value);
  }
  const std::vector<Value> values(distinct.begin(), distinct.end());

  // Stage 2: merge + encode per value-range partition. Each task owns a
  // disjoint slice of `buckets`, so no synchronization is needed.
  std::vector<CodecBuildBucket> buckets(values.size());
  const size_t value_parts = parallel.Partitions(values.size());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < value_parts; ++p) {
      group.Submit([&, p]() {
        const size_t vbegin = values.size() * p / value_parts;
        const size_t vend = values.size() * (p + 1) / value_parts;
        for (size_t i = vbegin; i < vend; ++i) {
          auto& bucket = buckets[i];
          for (const auto& m : local) {
            auto it = m.find(values[i]);
            if (it == m.end()) continue;
            bucket.entries.insert(bucket.entries.end(), it->second.begin(),
                                  it->second.end());
          }
          EncodeForBuild(options.codec, &bucket);
        }
      });
    }
    group.Wait();
  }

  // Serial layout: running sums of the encoded sizes.
  std::vector<uint64_t> bucket_starts(values.size(), 0);
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    bucket_starts[i] = total_bytes;
    total_bytes += buckets[i].stored;
  }
  WAVEKIT_ASSIGN_OR_RETURN(Extent region, allocator->Allocate(total_bytes));

  // Stage 3: batched writes of the encoded buckets, partitions covering
  // disjoint precomputed regions (same all-or-nothing rule as the raw path).
  std::vector<Status> write_status(std::max<size_t>(value_parts, 1),
                                   Status::OK());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < value_parts; ++p) {
      group.Submit([&, p]() {
        Status status = CrashPoints::Check("builder.parallel.write");
        if (!status.ok()) {
          write_status[p] = std::move(status);
          return;
        }
        const size_t vbegin = values.size() * p / value_parts;
        const size_t vend = values.size() * (p + 1) / value_parts;
        std::vector<Extent> extents;
        std::vector<std::byte> buffer;
        auto flush = [&]() -> Status {
          if (extents.empty()) return Status::OK();
          Status written = device->WriteBatch(extents, buffer);
          extents.clear();
          buffer.clear();
          return written;
        };
        for (size_t i = vbegin; i < vend; ++i) {
          const CodecBuildBucket& bucket = buckets[i];
          extents.push_back(
              Extent{region.offset + bucket_starts[i], bucket.stored});
          buffer.insert(buffer.end(), bucket.bytes(),
                        bucket.bytes() + bucket.stored);
          if (buffer.size() >= IndexBuilder::kWriteChunkBytes) {
            status = flush();
            if (!status.ok()) break;
          }
        }
        if (status.ok()) status = flush();
        write_status[p] = std::move(status);
      });
    }
    group.Wait();
  }
  Status failed = Status::OK();
  for (Status& status : write_status) {
    if (!status.ok() && failed.ok()) failed = std::move(status);
  }
  if (!failed.ok()) {
    (void)allocator->Free(region);
    return failed;
  }

  // Stage 4: serial metadata install in layout order.
  for (size_t i = 0; i < values.size(); ++i) {
    WAVEKIT_RETURN_NOT_OK(InstallCodecBucket(
        index.get(), values[i], region.offset + bucket_starts[i], buckets[i]));
  }

  for (const DayBatch* batch : batches) {
    index->mutable_time_set().insert(batch->day);
  }
  index->set_packed(true);
  return index;
}

}  // namespace

Result<std::unique_ptr<ConstituentIndex>> IndexBuilder::BuildPacked(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options,
    std::span<const DayBatch* const> batches, std::string name,
    const ParallelContext& parallel) {
  if (options.codec != CodecMode::kRaw) {
    if (!parallel.enabled()) {
      return BuildPackedSerialCodec(device, allocator, options, batches,
                                    std::move(name));
    }
    return BuildPackedParallelCodec(device, allocator, options, batches,
                                    std::move(name), parallel);
  }
  if (!parallel.enabled()) {
    return BuildPackedSerial(device, allocator, options, batches,
                             std::move(name));
  }
  return BuildPackedParallel(device, allocator, options, batches,
                             std::move(name), parallel);
}

Result<std::unique_ptr<ConstituentIndex>> IndexBuilder::BuildPacked(
    Device* device, ExtentAllocator* allocator,
    ConstituentIndex::Options options, const DayBatch& batch, std::string name,
    const ParallelContext& parallel) {
  const DayBatch* ptr = &batch;
  return BuildPacked(device, allocator, options,
                     std::span<const DayBatch* const>(&ptr, 1),
                     std::move(name), parallel);
}

}  // namespace wavekit
