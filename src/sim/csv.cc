#include "sim/csv.h"

#include <fstream>

#include "util/format.h"

namespace wavekit {
namespace sim {

std::string DayStatsToCsv(const ExperimentResult& result) {
  std::string out =
      "day,sim_transition_s,sim_precompute_s,sim_query_s,"
      "sim_maintenance_parallel_s,sim_query_parallel_s,"
      "model_transition_s,model_precompute_s,model_query_s,"
      "operation_bytes,constituent_bytes,temporary_bytes,"
      "transition_extra_bytes,wave_length_days,wave_entries\n";
  for (const DayStats& d : result.days) {
    out += std::to_string(d.day) + ",";
    out += FormatDouble(d.sim_transition_seconds, 6) + ",";
    out += FormatDouble(d.sim_precompute_seconds, 6) + ",";
    out += FormatDouble(d.sim_query_seconds, 6) + ",";
    out += FormatDouble(d.sim_maintenance_parallel_seconds, 6) + ",";
    out += FormatDouble(d.sim_query_parallel_seconds, 6) + ",";
    out += FormatDouble(d.model_transition_seconds, 6) + ",";
    out += FormatDouble(d.model_precompute_seconds, 6) + ",";
    out += FormatDouble(d.model_query_seconds, 6) + ",";
    out += std::to_string(d.operation_bytes) + ",";
    out += std::to_string(d.constituent_bytes) + ",";
    out += std::to_string(d.temporary_bytes) + ",";
    out += std::to_string(d.transition_extra_bytes) + ",";
    out += std::to_string(d.wave_length_days) + ",";
    out += std::to_string(d.wave_entries) + "\n";
  }
  return out;
}

Status WriteCsv(const ExperimentResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "'");
  out << DayStatsToCsv(result);
  if (!out.flush()) return Status::IOError("write to '" + path + "'");
  return Status::OK();
}

}  // namespace sim
}  // namespace wavekit
