// Deterministic random number generation and distributions.
//
// All wavekit workloads and experiments use Rng (xoshiro256**) seeded
// explicitly so every run is reproducible. ZipfDistribution provides the
// skewed value-frequency behaviour the paper observes in Netnews words
// ("words in SCAM's Netnews articles exhibit skewed Zipfian behavior").

#ifndef WAVEKIT_UTIL_RANDOM_H_
#define WAVEKIT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wavekit {

/// \brief xoshiro256** pseudo-random generator, seeded via splitmix64.
///
/// Satisfies the UniformRandomBitGenerator concept so it can drive standard
/// <random> distributions as well.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose whole state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Forks an independent generator; deterministic function of the
  /// current state and `stream`. Use to give each day / worker its own stream.
  Rng Fork(uint64_t stream);

 private:
  uint64_t s_[4];
};

/// \brief Zipf distribution over ranks {0, 1, ..., n-1} with exponent `theta`.
///
/// P(rank = k) is proportional to 1 / (k+1)^theta. Sampling uses the
/// rejection-inversion method of Hörmann & Derflinger, which is O(1) per draw
/// and needs no O(n) table, so universes of millions of distinct words are
/// cheap.
class ZipfDistribution {
 public:
  /// `n` must be >= 1 and `theta` > 0 (theta == 1 is handled exactly).
  ZipfDistribution(uint64_t n, double theta);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// \brief Shuffles `items` in place (Fisher–Yates) using `rng`.
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.Uniform(i));
    std::swap(items[i - 1], items[j]);
  }
}

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_RANDOM_H_
