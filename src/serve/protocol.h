// waved wire protocol: transport-free frame encode / decode / validate.
//
// The serving stack splits into this pure codec layer and the socket-owning
// ServerLoop (serve/server_loop.h). Nothing here touches a file descriptor:
// frames go in and out as byte strings, which is what makes the protocol
// fuzzable (tests/fuzz/fuzz_protocol.cc feeds arbitrary bytes straight into
// FrameReader) and sim-drivable (testing/server_sim.h runs a whole server
// over an in-memory loopback under SimClock/SimExecutor).
//
// Wire format (all integers little-endian):
//
//   frame   := header payload
//   header  := payload_len:u32 version:u8 type:u8 tenant_id:u16 request_id:u32
//              (12 bytes; payload_len counts payload only, max 4 MiB)
//
// Request payloads (client -> server):
//   PROBE   := lo:i32 hi:i32 value_len:u32 value:bytes
//   SCAN    := lo:i32 hi:i32 max_entries:u32        (0 = no cap)
//   ADVANCE := day:i32 record_count:u32 record*
//     record := record_id:u64 num_values:u16 (value_len:u32 value:bytes aux:u32)*
//   STATS   := (empty)
//   HEALTH  := (empty)
//
// Reply payloads (server -> client) all begin with a result prefix:
//   result  := code:u8 detail_len:u16 detail:bytes
// where code is the wavekit StatusCode (kOk, kPartialResult for degraded
// serving, kResourceExhausted for rate limiting, ...). A reply frame's type
// is the request type with the high bit set; kErrorReply (0xFF) answers
// frames whose request type was itself unusable. Bodies follow the result
// prefix when code is kOk or kPartialResult (a degraded answer still carries
// the entries it could assemble):
//   PROBE/SCAN reply := result stats entry_count:u32 entry*
//     stats  := accessed:u32 skipped:u32 unhealthy:u32 failed:u32
//               fallbacks:u32 entries_returned:u64
//     entry  := record_id:u64 day:i32 aux:u32
//   ADVANCE reply    := result current_day:i32
//   STATS reply      := result probes:u64 scans:u64 days_advanced:u64
//                       async_advances:u64 pending_advances:u64
//                       degraded_advances:u64 partial_results:u64
//                       current_day:i32 degraded:u8
//   HEALTH reply     := result degraded:u8 detail_len:u32 detail:bytes
//   error reply      := result

#ifndef WAVEKIT_SERVE_PROTOCOL_H_
#define WAVEKIT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/entry.h"
#include "index/record.h"
#include "util/day.h"
#include "util/status.h"
#include "wave/wave_index.h"

namespace wavekit {
namespace serve {

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on a frame payload; FrameReader rejects larger frames before
/// buffering a single payload byte, so a hostile length field cannot drive
/// allocation.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

enum class FrameType : uint8_t {
  kProbe = 1,
  kScan = 2,
  kAdvance = 3,
  kStats = 4,
  kHealth = 5,
  kProbeReply = 0x81,
  kScanReply = 0x82,
  kAdvanceReply = 0x83,
  kStatsReply = 0x84,
  kHealthReply = 0x85,
  /// Answers a frame whose request type was unrecognized; also the type of
  /// the final frame sent before closing a connection whose stream became
  /// unparseable (bad version / oversized frame).
  kErrorReply = 0xFF,
};

/// True for the five client-originated request types.
bool IsRequestType(uint8_t type);

struct FrameHeader {
  uint32_t payload_len = 0;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t tenant_id = 0;
  uint32_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

// --- Request bodies ---------------------------------------------------------

struct ProbeRequest {
  DayRange range;
  Value value;
};

struct ScanRequest {
  DayRange range;
  /// Entries after which the server truncates the reply (with kPartialResult
  /// semantics left to the caller — the count is a transport guard, not a
  /// query semantic). 0 means no cap.
  uint32_t max_entries = 0;
};

struct AdvanceRequest {
  DayBatch batch;
};

// --- Reply bodies -----------------------------------------------------------

/// The result prefix every reply starts with.
struct WireResult {
  StatusCode code = StatusCode::kOk;
  std::string detail;

  bool ok() const { return code == StatusCode::kOk; }
  /// kOk or kPartialResult — the reply carries a usable body.
  bool has_body() const {
    return code == StatusCode::kOk || code == StatusCode::kPartialResult;
  }
};

struct QueryReply {
  WireResult result;
  QueryStats stats;
  std::vector<Entry> entries;
};

struct AdvanceReply {
  WireResult result;
  Day current_day = 0;
};

struct StatsReply {
  WireResult result;
  uint64_t probes = 0;
  uint64_t scans = 0;
  uint64_t days_advanced = 0;
  uint64_t async_advances = 0;
  uint64_t pending_advances = 0;
  uint64_t degraded_advances = 0;
  uint64_t partial_results = 0;
  Day current_day = 0;
  bool degraded = false;
};

struct HealthReply {
  WireResult result;
  bool degraded = false;
  std::string detail;
};

// --- Encode -----------------------------------------------------------------
//
// Encoders cannot fail (they serialize well-formed in-memory structs); each
// returns the complete frame, header included, ready to write to a socket.

std::string EncodeProbeRequest(uint16_t tenant_id, uint32_t request_id,
                               const ProbeRequest& request);
std::string EncodeScanRequest(uint16_t tenant_id, uint32_t request_id,
                              const ScanRequest& request);
std::string EncodeAdvanceRequest(uint16_t tenant_id, uint32_t request_id,
                                 const AdvanceRequest& request);
std::string EncodeStatsRequest(uint16_t tenant_id, uint32_t request_id);
std::string EncodeHealthRequest(uint16_t tenant_id, uint32_t request_id);

std::string EncodeQueryReply(const FrameHeader& request, const QueryReply& reply);
std::string EncodeAdvanceReply(const FrameHeader& request,
                               const AdvanceReply& reply);
std::string EncodeStatsReply(const FrameHeader& request, const StatsReply& reply);
std::string EncodeHealthReply(const FrameHeader& request,
                              const HealthReply& reply);
/// An error reply echoing `request`'s tenant/request ids; `type` chooses the
/// reply frame type (kErrorReply for unusable requests, or the matching
/// reply type when a well-typed request failed).
std::string EncodeErrorReply(const FrameHeader& request, FrameType type,
                             StatusCode code, const std::string& detail);

/// Low-level frame assembly for tests and the fuzzer: wraps `payload` in a
/// header with the given fields verbatim (no validation).
std::string EncodeRawFrame(uint8_t version, uint8_t type, uint16_t tenant_id,
                           uint32_t request_id, const std::string& payload);

// --- Decode -----------------------------------------------------------------
//
// Decoders validate exhaustively: every read is bounds-checked, trailing
// bytes are rejected, and no decoder allocates more than a constant factor of
// the (already length-capped) payload. On error the out-param is untouched.

Status DecodeProbeRequest(const std::string& payload, ProbeRequest* out);
Status DecodeScanRequest(const std::string& payload, ScanRequest* out);
Status DecodeAdvanceRequest(const std::string& payload, AdvanceRequest* out);

Status DecodeQueryReply(const std::string& payload, QueryReply* out);
Status DecodeAdvanceReply(const std::string& payload, AdvanceReply* out);
Status DecodeStatsReply(const std::string& payload, StatsReply* out);
Status DecodeHealthReply(const std::string& payload, HealthReply* out);
/// Decodes just the result prefix (any reply type, including kErrorReply).
Status DecodeResultPrefix(const std::string& payload, WireResult* out);

// --- Incremental reassembly -------------------------------------------------

/// \brief Reassembles frames from an arbitrary byte stream (partial reads,
/// pipelined requests, hostile input).
///
/// Feed() appends bytes; Next() pops complete frames. A framing violation —
/// unsupported version or a payload_len beyond the cap — is *sticky*: the
/// stream past that point cannot be trusted, so Feed() keeps failing and the
/// connection must be torn down after sending one kErrorReply built from
/// error_header(). Violations are detected from the 12 header bytes alone,
/// before any payload is buffered.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends bytes to the stream. Returns the sticky framing error, if any.
  Status Feed(const void* data, size_t size);

  /// Pops the next complete frame into `out`. False when no complete frame
  /// is buffered (or the reader is in the error state).
  bool Next(Frame* out);

  /// The sticky framing error (OK while the stream is well-formed).
  const Status& error() const { return error_; }

  /// The header of the frame that broke the stream (valid when !error().ok();
  /// its tenant/request ids let the server address the final error reply).
  const FrameHeader& error_header() const { return error_header_; }

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out via Next()
  Status error_;
  FrameHeader error_header_;
};

}  // namespace serve
}  // namespace wavekit

#endif  // WAVEKIT_SERVE_PROTOCOL_H_
