// UringDevice: a file-backed Device whose ReadBatch/WriteBatch map 1:1 onto
// io_uring submission-queue entries — a whole scattered batch goes to the
// kernel in one io_uring_enter instead of one syscall per extent.
//
// Built directly on the io_uring syscalls (io_uring_setup/io_uring_enter +
// the mmap'd SQ/CQ rings); no liburing dependency. When the kernel lacks
// io_uring (or seccomp blocks it), every operation gracefully degrades to
// the wrapped FileDevice — same semantics, plain pread/pwrite speed.

#ifndef WAVEKIT_STORAGE_URING_DEVICE_H_
#define WAVEKIT_STORAGE_URING_DEVICE_H_

#include <memory>
#include <string>

#include "storage/file_device.h"
#include "util/result.h"

namespace wavekit {

/// \brief io_uring-backed Device over one file.
///
/// Scalar Read/Write (and Sync) delegate to the underlying FileDevice — a
/// single operation gains nothing from ring submission. ReadBatch and
/// WriteBatch fill one SQE per extent and submit them in waves bounded by
/// the ring's queue depth, reaping completions out of order (each SQE's
/// user_data indexes its extent).
///
/// Thread safety: batch submission serializes on an internal mutex (one
/// ring, one submitter); scalar reads stay lock-free through the
/// FileDevice. The serving stack keeps probes on the scalar path, so
/// concurrent readers never contend here.
class UringDevice : public Device {
 public:
  struct Options {
    /// SQ ring size = bound on in-flight operations per batch wave.
    unsigned queue_depth = 64;
    /// Open the file O_DIRECT (see FileDevice::OpenOptions::direct_io).
    /// Direct batches require 4 KiB-aligned extents; unaligned extents in a
    /// batch fall back to the FileDevice bounce path.
    bool direct_io = false;
  };

  /// True when this kernel accepts io_uring_setup (probed once per process).
  static bool KernelSupported();

  /// Opens (or creates) `path`. Succeeds even without kernel io_uring
  /// support — the device then reports using_ring() == false and serves
  /// everything through its FileDevice.
  static Result<std::unique_ptr<UringDevice>> Open(const std::string& path,
                                                   uint64_t capacity,
                                                   Options options);
  static Result<std::unique_ptr<UringDevice>> Open(const std::string& path,
                                                   uint64_t capacity) {
    return Open(path, capacity, Options{});
  }

  ~UringDevice() override;

  UringDevice(const UringDevice&) = delete;
  UringDevice& operator=(const UringDevice&) = delete;

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status ReadBatch(std::span<const Extent> extents,
                   std::span<std::byte> out) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return file_->capacity(); }
  Status Sync() override;

  const std::string& path() const { return file_->path(); }
  bool direct_io() const { return file_->direct_io(); }

  /// False when the kernel rejected ring setup and batches run on the
  /// FileDevice fallback.
  bool using_ring() const { return ring_ != nullptr; }
  unsigned queue_depth() const { return options_.queue_depth; }

  /// Batches submitted through the ring / extents carried by them (for
  /// tests and the bench-io tool; relaxed counters).
  uint64_t ring_batches() const;
  uint64_t ring_ops() const;

 private:
  struct Ring;  // mmap'd SQ/CQ state (uring_device.cc)

  UringDevice(std::unique_ptr<FileDevice> file, Options options,
              std::unique_ptr<Ring> ring);

  /// Submits one SQE per (non-empty) extent in waves of at most queue_depth
  /// in flight, waiting for each wave's completions. `is_write` selects
  /// IORING_OP_WRITE vs IORING_OP_READ. Buffers[i] is extent i's slice.
  Status RunBatch(std::span<const Extent> extents,
                  std::span<std::byte* const> buffers, bool is_write);

  std::unique_ptr<FileDevice> file_;
  Options options_;
  std::unique_ptr<Ring> ring_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_URING_DEVICE_H_
