// Replicates the paper's worked examples day by day:
//   Table 1  - DEL,       W = 10, n = 2
//   Table 2  - REINDEX,   W = 10, n = 2 (same time-sets as DEL)
//   Table 3  - WATA*,     W = 10, n = 4
//   Table 5  - REINDEX+,  W = 10, n = 2 (including Temp contents)
//   Table 6  - REINDEX++, W = 10, n = 2 (including the T_i ladder)
//   Table 7  - RATA*,     W = 10, n = 4 (including the ladder)
// (Table 4 shows a deliberately WORSE WATA variant the paper argues against;
// WATA* is the Table 3 behaviour, which Theorem 2 proves optimal.)
//
// Constituent order in the wave index may differ from the paper's column
// order after drops/renames, so clusters are compared as unordered
// collections of time-sets.

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_env.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

class TransitionTest : public testing::StoreTest {
 protected:
  void StartScheme(SchemeKind kind, int window, int num_indexes) {
    SchemeConfig config;
    config.window = window;
    config.num_indexes = num_indexes;
    config.technique = UpdateTechniqueKind::kSimpleShadow;
    auto made = MakeScheme(kind, Env(), config);
    ASSERT_TRUE(made.ok()) << made.status();
    scheme_ = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(scheme_->Start(std::move(first)));
  }

  void Advance() {
    ASSERT_OK(scheme_->Transition(MakeMixedBatch(scheme_->current_day() + 1)));
  }

  // The constituents' time-sets, sorted for order-independent comparison.
  std::vector<TimeSet> Clusters() const {
    std::vector<TimeSet> out;
    for (const auto& c : scheme_->wave().constituents()) {
      out.push_back(c->time_set());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<TimeSet> Temps() const {
    std::vector<TimeSet> out;
    for (const ConstituentIndex* t : scheme_->TemporaryIndexes()) {
      out.push_back(t->time_set());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<TimeSet> Sorted(std::vector<TimeSet> clusters) {
    std::sort(clusters.begin(), clusters.end());
    return clusters;
  }

  std::unique_ptr<Scheme> scheme_;
};

TEST_F(TransitionTest, Table1Del) {
  StartScheme(SchemeKind::kDel, 10, 2);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();  // day 11
  EXPECT_EQ(Clusters(), Sorted({{11, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();  // day 12
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();  // day 13
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();  // day 14
  Advance();  // day 15
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {6, 7, 8, 9, 10}}));
  Advance();  // day 16: the second cluster starts rotating
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {16, 7, 8, 9, 10}}));
}

TEST_F(TransitionTest, Table2Reindex) {
  StartScheme(SchemeKind::kReindex, 10, 2);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();
  EXPECT_EQ(Clusters(), Sorted({{11, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  Advance();
  Advance();
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 4, 5}, {6, 7, 8, 9, 10}}));
  // REINDEX keeps every constituent packed at all times.
  for (const auto& c : scheme_->wave().constituents()) {
    EXPECT_TRUE(c->packed());
    EXPECT_OK(c->CheckPacked());
  }
}

TEST_F(TransitionTest, Table3WataStar) {
  StartScheme(SchemeKind::kWata, 10, 4);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10}}));
  Advance();  // day 11: wait
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11}}));
  Advance();  // day 12: wait
  EXPECT_EQ(Clusters(),
            Sorted({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}));
  Advance();  // day 13: I_1 fully expired -> throw away, rebuild with {13}
  EXPECT_EQ(Clusters(), Sorted({{13}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}));
  Advance();  // day 14
  EXPECT_EQ(Clusters(), Sorted({{13, 14}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}));
  Advance();  // day 15
  Advance();  // day 16: {4,5,6} fully expired
  EXPECT_EQ(Clusters(),
            Sorted({{13, 14, 15}, {16}, {7, 8, 9}, {10, 11, 12}}));
}

TEST_F(TransitionTest, Table5ReindexPlus) {
  StartScheme(SchemeKind::kReindexPlus, 10, 2);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{}));  // Temp = phi
  Advance();  // day 11
  EXPECT_EQ(Clusters(), Sorted({{11, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{{11}}));
  Advance();  // day 12
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{{11, 12}}));
  Advance();  // day 13
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 4, 5}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{{11, 12, 13}}));
  Advance();  // day 14
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 5}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{{11, 12, 13, 14}}));
  Advance();  // day 15: Temp absorbed, then dropped
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{}));
  Advance();  // day 16: next cluster starts rotating
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {16, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{{16}}));
}

TEST_F(TransitionTest, Table6ReindexPlusPlus) {
  StartScheme(SchemeKind::kReindexPlusPlus, 10, 2);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}));
  // Ladder for cluster 1: T_0 = {}, T_1 = {5}, T_2 = {4,5}, T_3 = {3,4,5},
  // T_4 = {2,3,4,5}.
  EXPECT_EQ(Temps(),
            Sorted({{}, {5}, {4, 5}, {3, 4, 5}, {2, 3, 4, 5}}));
  Advance();  // day 11: T_4 + d11 promoted
  EXPECT_EQ(Clusters(), Sorted({{2, 3, 4, 5, 11}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), Sorted({{}, {5}, {4, 5}, {3, 4, 5, 11}}));
  Advance();  // day 12
  EXPECT_EQ(Clusters(), Sorted({{3, 4, 5, 11, 12}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), Sorted({{}, {5}, {4, 5, 11, 12}}));
  Advance();  // day 13
  EXPECT_EQ(Clusters(), Sorted({{4, 5, 11, 12, 13}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), Sorted({{}, {5, 11, 12, 13}}));
  Advance();  // day 14
  EXPECT_EQ(Clusters(), Sorted({{5, 11, 12, 13, 14}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(), Sorted({{11, 12, 13, 14}}));
  Advance();  // day 15: T_0 + d15 promoted; next ladder initialized
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {6, 7, 8, 9, 10}}));
  EXPECT_EQ(Temps(),
            Sorted({{}, {10}, {9, 10}, {8, 9, 10}, {7, 8, 9, 10}}));
  Advance();  // day 16
  EXPECT_EQ(Clusters(), Sorted({{11, 12, 13, 14, 15}, {7, 8, 9, 10, 16}}));
  EXPECT_EQ(Temps(), Sorted({{}, {10}, {9, 10}, {8, 9, 10, 16}}));
}

TEST_F(TransitionTest, Table7RataStar) {
  StartScheme(SchemeKind::kRata, 10, 4);
  EXPECT_EQ(Clusters(), Sorted({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10}}));
  // Ladder for the first cluster minus day 1: T_1 = {3}, T_2 = {2,3}.
  EXPECT_EQ(Temps(), Sorted({{3}, {2, 3}}));
  Advance();  // day 11: wait; I_1 replaced by {2,3} -> hard window 2..11
  EXPECT_EQ(Clusters(), Sorted({{2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11}}));
  EXPECT_EQ(Temps(), Sorted({{3}}));
  Advance();  // day 12: window 3..12
  EXPECT_EQ(Clusters(), Sorted({{3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}));
  EXPECT_EQ(Temps(), (std::vector<TimeSet>{}));
  Advance();  // day 13: throw away; new ladder for {4,5,6} minus day 4
  EXPECT_EQ(Clusters(), Sorted({{13}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}));
  EXPECT_EQ(Temps(), Sorted({{6}, {5, 6}}));
  Advance();  // day 14: window 5..14
  EXPECT_EQ(Clusters(), Sorted({{13, 14}, {5, 6}, {7, 8, 9}, {10, 11, 12}}));
  EXPECT_EQ(Temps(), Sorted({{6}}));
}

TEST_F(TransitionTest, HardWindowSchemesCoverExactlyTheWindow) {
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kReindex, SchemeKind::kReindexPlus,
        SchemeKind::kReindexPlusPlus, SchemeKind::kRata}) {
    SCOPED_TRACE(SchemeKindName(kind));
    StartScheme(kind, 10, 2);
    ASSERT_TRUE(scheme_->hard_window());
    for (int i = 0; i < 25; ++i) {
      Advance();
      const Day d = scheme_->current_day();
      TimeSet expected;
      for (Day k = d - 9; k <= d; ++k) expected.insert(k);
      ASSERT_EQ(scheme_->wave().CoveredDays(), expected) << "day " << d;
      ASSERT_EQ(scheme_->WaveLength(), 10) << "day " << d;
    }
    // Reset for the next scheme.
    scheme_.reset();
    day_store_.Prune(kDayPosInf);
  }
}

TEST_F(TransitionTest, WataCoversWindowPlusResidual) {
  StartScheme(SchemeKind::kWata, 10, 4);
  EXPECT_FALSE(scheme_->hard_window());
  for (int i = 0; i < 25; ++i) {
    Advance();
    const Day d = scheme_->current_day();
    const TimeSet covered = scheme_->wave().CoveredDays();
    // Every window day is covered...
    for (Day k = d - 9; k <= d; ++k) ASSERT_TRUE(covered.contains(k));
    // ...and anything extra is a residual OLDER day, never a gap or future.
    ASSERT_EQ(*covered.rbegin(), d);
    ASSERT_GE(*covered.begin(), d - 9 - 2);  // ceil(9/3) - 1 = 2 residual max
  }
}

}  // namespace
}  // namespace wavekit
