// ThreadPool: a small fixed-size worker pool for parallel query fan-out.
//
// The paper (Introduction and Section 8): "if multiple disks and computers
// are available, the queries across indexes can be easily parallelized."
// WaveIndex::ParallelTimedIndexProbe uses this pool to probe constituents
// concurrently.

#ifndef WAVEKIT_UTIL_THREAD_POOL_H_
#define WAVEKIT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavekit {

/// \brief Fixed set of worker threads executing submitted tasks FIFO.
///
/// Concurrency contract (relied on by WaveService, which shares one pool
/// across all query threads):
///  - Submit is safe from any thread at any time before destruction begins,
///    INCLUDING from a task running on a worker (reentrant submits) and
///    concurrently with Wait.
///  - Wait blocks until the pool is idle: every task submitted
///    happens-before the Wait call has finished, including children those
///    tasks submitted transitively. Tasks submitted concurrently with Wait
///    (from other threads) may or may not be covered — call Wait again.
///  - Destruction drains: queued tasks (and tasks they submit) all execute
///    before the destructor returns. No task is dropped.
///  - Tasks must not throw (an escaping exception terminates the process)
///    and must not call Wait (a worker waiting for itself deadlocks).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every previously submitted task (and its transitive
  /// reentrant children) has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued and not yet picked up by a worker (point-in-time sample;
  /// safe from any thread — used by the observability layer).
  size_t queue_depth() const;

  /// Queued + currently executing tasks (the count Wait waits to hit zero).
  int in_flight() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  // Queued + currently executing tasks. A task's reentrant Submit increments
  // this before the parent's own completion decrements it, so Wait (which
  // waits for zero) cannot wake between a parent finishing and its children
  // starting.
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_THREAD_POOL_H_
