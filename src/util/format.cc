#include "util/format.h"

#include <cmath>
#include <cstdio>

#include "util/day.h"

namespace wavekit {

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  double abs = std::fabs(seconds);
  if (abs >= 1.0 || abs == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ns", seconds * 1e9);
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string TimeSetToString(const TimeSet& ts) {
  std::string out = "{";
  bool first = true;
  for (Day d : ts) {
    if (!first) out += ", ";
    out += std::to_string(d);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace wavekit
