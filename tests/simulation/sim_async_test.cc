// AdvanceDayAsync ordering under deterministic simulation: a WaveService
// whose pools are SimExecutors queues async transitions without running
// them, the test interleaves probes between single-stepped transitions, and
// an oracle checks that readers see each published snapshot exactly once, in
// submission order — including the sticky-failure path where a crashed
// transition drops everything queued behind it.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "testing/sim_executor.h"
#include "testing/test_env.h"
#include "util/clock.h"
#include "util/crash_point.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;
using testing::SimExecutor;

constexpr int kWindow = 4;

struct SimService {
  SimClock clock;  // before service_: must outlive it
  std::unique_ptr<WaveService> service;
  SimExecutor* advance_exec = nullptr;       // owned by the service
  FaultInjectingDevice* faulty = nullptr;    // owned by the service
};

// Wires a WaveService entirely onto simulation seams: SimExecutor pools, a
// SimClock, and a FaultInjectingDevice under the whole stack. Initializes in
// place because the pool factory runs lazily (first AdvanceDayAsync) and
// must capture a stable `sim`.
void InitSimService(uint64_t seed, SimService* sim) {
  WaveService::Options options;
  options.scheme = SchemeKind::kDel;
  options.config.window = kWindow;
  options.config.num_indexes = 2;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  options.clock = &sim->clock;
  options.pool_factory = [sim, seed](int /*threads*/,
                                     const std::string& role) {
    // The async advance runner is a 1-thread pool in production; width 1
    // keeps the simulated stand-in strict FIFO, which the ordering contract
    // of AdvanceDayAsync depends on.
    auto exec = std::make_unique<SimExecutor>(seed, /*width=*/1);
    if (role == "advance") sim->advance_exec = exec.get();
    return exec;
  };
  options.device_interposer = [sim, seed](Device* inner) {
    FaultInjectingDevice::Options fault_options;
    fault_options.seed = seed;
    auto faulty = std::make_unique<FaultInjectingDevice>(inner, fault_options);
    sim->faulty = faulty.get();
    return faulty;
  };
  auto created = WaveService::Create(std::move(options));
  EXPECT_TRUE(created.ok()) << created.status();
  if (created.ok()) sim->service = std::move(created).ValueOrDie();
}

void VerifyWindow(const WaveService& service, Day day) {
  ReferenceIndex reference;
  for (Day d = day - kWindow + 1; d <= day; ++d) {
    reference.Add(MakeMixedBatch(d));
  }
  const DayRange range = DayRange::Window(day, kWindow);
  for (const Value& value : {Value("alpha"), Value("day" + std::to_string(day)),
                             Value("day" + std::to_string(day - kWindow))}) {
    std::vector<Entry> out;
    ASSERT_OK(service.TimedIndexProbe(range, value, &out));
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe(value, day - kWindow + 1, day))
        << "value '" << value << "' at day " << day;
  }
}

TEST(SimAsyncAdvanceTest, QueuedAdvancesApplyInOrderExactlyOnce) {
  SimService sim;
  InitSimService(testing::TestSeed(0), &sim);
  ASSERT_NE(sim.service, nullptr);
  WaveService& service = *sim.service;

  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(service.Start(std::move(first)));
  VerifyWindow(service, kWindow);

  // Queue three transitions; nothing runs until the executor is stepped.
  for (Day d = kWindow + 1; d <= kWindow + 3; ++d) {
    service.AdvanceDayAsync(MakeMixedBatch(d));
  }
  ASSERT_NE(sim.advance_exec, nullptr);
  EXPECT_EQ(sim.advance_exec->queue_depth(), 3u);
  EXPECT_EQ(service.pending_advances(), 3);
  EXPECT_EQ(service.current_day(), kWindow);
  // Probes interleaved with queued (unapplied) advances serve the old
  // snapshot, consistently.
  VerifyWindow(service, kWindow);

  // Single-step the runner: each step publishes exactly the next day, once.
  std::vector<Day> published;
  while (sim.advance_exec->RunOne()) {
    published.push_back(service.current_day());
    VerifyWindow(service, service.current_day());
  }
  EXPECT_EQ(published, (std::vector<Day>{kWindow + 1, kWindow + 2,
                                         kWindow + 3}));
  ASSERT_OK(service.WaitForMaintenance());
  EXPECT_EQ(service.pending_advances(), 0);
  EXPECT_EQ(service.Metrics().days_advanced, 3u);
  EXPECT_EQ(service.Metrics().async_advances, 3u);
}

TEST(SimAsyncAdvanceTest, StickyFailureDropsQueuedAdvances) {
  SimService sim;
  InitSimService(testing::TestSeed(1), &sim);
  ASSERT_NE(sim.service, nullptr);
  WaveService& service = *sim.service;

  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(service.Start(std::move(first)));

  // Day 5 applies cleanly; the device then crashes inside day 6's
  // transition; day 7 must be dropped, not applied out of order.
  for (Day d = kWindow + 1; d <= kWindow + 3; ++d) {
    service.AdvanceDayAsync(MakeMixedBatch(d));
  }
  ASSERT_NE(sim.advance_exec, nullptr);
  ASSERT_TRUE(sim.advance_exec->RunOne());
  EXPECT_EQ(service.current_day(), kWindow + 1);

  ASSERT_NE(sim.faulty, nullptr);
  sim.faulty->ArmCrashAfterWrites(1);
  ASSERT_TRUE(sim.advance_exec->RunOne());  // day 6: crashes mid-transition
  EXPECT_EQ(service.current_day(), kWindow + 1) << "failed advance published";
  ASSERT_TRUE(sim.advance_exec->RunOne());  // day 7: dropped
  EXPECT_FALSE(sim.advance_exec->RunOne());

  const Status sticky = service.WaitForMaintenance();
  ASSERT_FALSE(sticky.ok());
  EXPECT_TRUE(IsInjectedCrash(sticky)) << sticky;
  EXPECT_EQ(service.current_day(), kWindow + 1);
  EXPECT_EQ(service.Metrics().days_advanced, 1u);
  EXPECT_EQ(service.Metrics().degraded_advances, 1u);
  EXPECT_EQ(service.Metrics().async_advances, 3u);
  EXPECT_EQ(service.pending_advances(), 0);

  // The restart: persisted bytes stay, faults clear — the service keeps
  // serving the stale day-5 window in degraded mode. The crash left one
  // constituent marked unhealthy, so answers are PartialResult with the
  // unhealthy constituent excluded, never silently wrong.
  sim.faulty->ClearCrash();
  std::vector<Entry> out;
  QueryStats stats;
  const Status degraded = service.TimedIndexProbe(
      DayRange::Window(kWindow + 1, kWindow), "alpha", &out, &stats);
  ASSERT_TRUE(degraded.ok() || degraded.IsPartialResult()) << degraded;
  if (degraded.IsPartialResult()) {
    EXPECT_GT(stats.indexes_unhealthy, 0);
    // What it does return is a subset of the true day-5 window answer.
    ReferenceIndex reference;
    for (Day d = 2; d <= kWindow + 1; ++d) reference.Add(MakeMixedBatch(d));
    const std::vector<Entry> full =
        reference.Probe("alpha", 2, kWindow + 1);
    for (const Entry& e : out) {
      EXPECT_NE(std::find(full.begin(), full.end(), e), full.end());
    }
  }
}

TEST(SimAsyncAdvanceTest, SameSeedSamePublicationSchedule) {
  // The publication schedule (which probe sees which day) is a pure function
  // of the seed: replaying the identical interleaving twice gives identical
  // observations.
  const auto observe = [](uint64_t seed) {
    SimService sim;
    InitSimService(seed, &sim);
    EXPECT_NE(sim.service, nullptr);
    if (sim.service == nullptr) return std::string("create failed");
    WaveService& service = *sim.service;
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
    EXPECT_OK(service.Start(std::move(first)));
    for (Day d = kWindow + 1; d <= kWindow + 4; ++d) {
      service.AdvanceDayAsync(MakeMixedBatch(d));
    }
    std::string log;
    while (sim.advance_exec != nullptr && sim.advance_exec->RunOne()) {
      std::vector<Entry> out;
      EXPECT_OK(service.IndexProbe("alpha", &out));
      log += "day=" + std::to_string(service.current_day()) +
             " alpha=" + std::to_string(out.size()) + ";";
    }
    EXPECT_OK(service.WaitForMaintenance());
    return log;
  };
  const uint64_t seed = testing::TestSeed(2);
  EXPECT_EQ(observe(seed), observe(seed));
}

}  // namespace
}  // namespace wavekit
