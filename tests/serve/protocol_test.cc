// Wire-protocol conformance: golden byte vectors pin the exact on-wire
// layout of every frame type (an incompatible change must fail here, not in
// a mixed-version deployment), and FrameReader's streaming behaviour is
// pinned down: partial-read reassembly, pipelining, version rejection, the
// oversized-frame limit, sticky errors, and the allocation guards on
// hostile count fields.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/protocol.h"
#include "testing/test_env.h"

namespace wavekit {
namespace serve {
namespace {

std::string Bytes(std::initializer_list<unsigned char> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// --- Golden byte vectors ----------------------------------------------------
//
// Layout: header {payload_len:u32, version:u8, type:u8, tenant:u16,
// request_id:u32}, all little-endian, then the payload.

TEST(ProtocolGoldenTest, ProbeRequestBytes) {
  ProbeRequest request;
  request.range = DayRange{3, 7};
  request.value = "ab";
  const std::string frame = EncodeProbeRequest(0x0102, 0x04030201, request);
  const std::string expected = Bytes({
      0x0e, 0x00, 0x00, 0x00,  // payload_len = 14
      0x01,                    // version
      0x01,                    // type = kProbe
      0x02, 0x01,              // tenant = 0x0102
      0x01, 0x02, 0x03, 0x04,  // request_id = 0x04030201
      0x03, 0x00, 0x00, 0x00,  // range.lo = 3
      0x07, 0x00, 0x00, 0x00,  // range.hi = 7
      0x02, 0x00, 0x00, 0x00,  // value_len = 2
      'a', 'b',
  });
  EXPECT_EQ(frame, expected);
}

TEST(ProtocolGoldenTest, ScanRequestBytes) {
  ScanRequest request;
  request.range = DayRange{-1, 2};
  request.max_entries = 5;
  const std::string frame = EncodeScanRequest(1, 2, request);
  const std::string expected = Bytes({
      0x0c, 0x00, 0x00, 0x00,  // payload_len = 12
      0x01, 0x02,              // version, type = kScan
      0x01, 0x00,              // tenant = 1
      0x02, 0x00, 0x00, 0x00,  // request_id = 2
      0xff, 0xff, 0xff, 0xff,  // range.lo = -1
      0x02, 0x00, 0x00, 0x00,  // range.hi = 2
      0x05, 0x00, 0x00, 0x00,  // max_entries = 5
  });
  EXPECT_EQ(frame, expected);
}

TEST(ProtocolGoldenTest, AdvanceRequestBytes) {
  AdvanceRequest request;
  request.batch.day = 9;
  Record record;
  record.record_id = 0x1122334455667788ull;
  record.day = 9;
  record.values = {"xy"};
  record.aux = {7};
  request.batch.records.push_back(record);
  const std::string frame = EncodeAdvanceRequest(0, 1, request);
  const std::string expected = Bytes({
      0x1c, 0x00, 0x00, 0x00,  // payload_len = 28
      0x01, 0x03,              // version, type = kAdvance
      0x00, 0x00,              // tenant = 0
      0x01, 0x00, 0x00, 0x00,  // request_id = 1
      0x09, 0x00, 0x00, 0x00,  // day = 9
      0x01, 0x00, 0x00, 0x00,  // record_count = 1
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // record_id
      0x01, 0x00,              // num_values = 1
      0x02, 0x00, 0x00, 0x00,  // value_len = 2
      'x', 'y',
      0x07, 0x00, 0x00, 0x00,  // aux = 7
  });
  EXPECT_EQ(frame, expected);
}

TEST(ProtocolGoldenTest, StatsAndHealthRequestBytes) {
  EXPECT_EQ(EncodeStatsRequest(3, 4), Bytes({
      0x00, 0x00, 0x00, 0x00, 0x01, 0x04,
      0x03, 0x00, 0x04, 0x00, 0x00, 0x00,
  }));
  EXPECT_EQ(EncodeHealthRequest(0, 0), Bytes({
      0x00, 0x00, 0x00, 0x00, 0x01, 0x05,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  }));
}

TEST(ProtocolGoldenTest, QueryReplyBytes) {
  FrameHeader request;
  request.type = static_cast<uint8_t>(FrameType::kProbe);
  request.tenant_id = 1;
  request.request_id = 2;
  QueryReply reply;
  reply.result.code = StatusCode::kOk;
  reply.stats.indexes_accessed = 2;
  reply.stats.entries_returned = 1;
  reply.entries.push_back(Entry{0x0102030405060708ull, 6, 9});
  const std::string frame = EncodeQueryReply(request, reply);
  const std::string expected = Bytes({
      0x33, 0x00, 0x00, 0x00,  // payload_len = 51
      0x01, 0x81,              // version, type = kProbeReply
      0x01, 0x00,              // tenant = 1
      0x02, 0x00, 0x00, 0x00,  // request_id = 2
      0x00,                    // result code = kOk
      0x00, 0x00,              // detail_len = 0
      0x02, 0x00, 0x00, 0x00,  // indexes_accessed = 2
      0x00, 0x00, 0x00, 0x00,  // indexes_skipped
      0x00, 0x00, 0x00, 0x00,  // indexes_unhealthy
      0x00, 0x00, 0x00, 0x00,  // indexes_failed
      0x00, 0x00, 0x00, 0x00,  // probe_fallbacks
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // entries_returned
      0x01, 0x00, 0x00, 0x00,  // entry_count = 1
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // record_id
      0x06, 0x00, 0x00, 0x00,  // day = 6
      0x09, 0x00, 0x00, 0x00,  // aux = 9
  });
  EXPECT_EQ(frame, expected);
}

TEST(ProtocolGoldenTest, ErrorReplyBytes) {
  FrameHeader request;
  request.tenant_id = 7;
  request.request_id = 8;
  const std::string frame = EncodeErrorReply(
      request, FrameType::kErrorReply, StatusCode::kNotFound, "no");
  const std::string expected = Bytes({
      0x05, 0x00, 0x00, 0x00,  // payload_len = 5
      0x01, 0xff,              // version, type = kErrorReply
      0x07, 0x00,              // tenant = 7
      0x08, 0x00, 0x00, 0x00,  // request_id = 8
      0x02,                    // code = kNotFound
      0x02, 0x00,              // detail_len = 2
      'n', 'o',
  });
  EXPECT_EQ(frame, expected);
}

// --- Reply body round-trips -------------------------------------------------

TEST(ProtocolRoundTripTest, StatsReply) {
  FrameHeader request;
  StatsReply reply;
  reply.probes = 10;
  reply.scans = 3;
  reply.days_advanced = 4;
  reply.async_advances = 2;
  reply.pending_advances = 1;
  reply.degraded_advances = 0;
  reply.partial_results = 5;
  reply.current_day = 42;
  reply.degraded = true;
  const std::string frame = EncodeStatsReply(request, reply);
  StatsReply decoded;
  ASSERT_OK(DecodeStatsReply(frame.substr(kFrameHeaderBytes), &decoded));
  EXPECT_EQ(decoded.probes, 10u);
  EXPECT_EQ(decoded.partial_results, 5u);
  EXPECT_EQ(decoded.current_day, 42);
  EXPECT_TRUE(decoded.degraded);
}

TEST(ProtocolRoundTripTest, HealthReply) {
  FrameHeader request;
  HealthReply reply;
  reply.degraded = true;
  reply.detail = "constituent 2 quarantined";
  const std::string frame = EncodeHealthReply(request, reply);
  HealthReply decoded;
  ASSERT_OK(DecodeHealthReply(frame.substr(kFrameHeaderBytes), &decoded));
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.detail, reply.detail);
}

TEST(ProtocolRoundTripTest, ErrorReplyDecodesAsResultPrefix) {
  FrameHeader request;
  const std::string frame = EncodeErrorReply(
      request, FrameType::kProbeReply, StatusCode::kResourceExhausted,
      "rate limited");
  QueryReply decoded;
  ASSERT_OK(DecodeQueryReply(frame.substr(kFrameHeaderBytes), &decoded));
  EXPECT_EQ(decoded.result.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.result.detail, "rate limited");
  EXPECT_FALSE(decoded.result.has_body());
  EXPECT_TRUE(decoded.entries.empty());
}

// --- FrameReader streaming behaviour ---------------------------------------

TEST(FrameReaderTest, PartialReadReassembly) {
  ProbeRequest request;
  request.range = DayRange{1, 5};
  request.value = "hello";
  const std::string frame = EncodeProbeRequest(0, 1, request);

  FrameReader reader;
  Frame out;
  // Feed byte by byte: no frame until the last byte lands.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_OK(reader.Feed(frame.data() + i, 1));
    EXPECT_FALSE(reader.Next(&out)) << "frame surfaced at byte " << i;
  }
  ASSERT_OK(reader.Feed(frame.data() + frame.size() - 1, 1));
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_EQ(out.header.type, static_cast<uint8_t>(FrameType::kProbe));
  ProbeRequest decoded;
  ASSERT_OK(DecodeProbeRequest(out.payload, &decoded));
  EXPECT_EQ(decoded.value, "hello");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, PipelinedFramesPopInOrder) {
  std::string stream;
  for (uint32_t id = 1; id <= 5; ++id) {
    stream += EncodeStatsRequest(0, id);
  }
  FrameReader reader;
  ASSERT_OK(reader.Feed(stream.data(), stream.size()));
  Frame out;
  for (uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(reader.Next(&out));
    EXPECT_EQ(out.header.request_id, id);
  }
  EXPECT_FALSE(reader.Next(&out));
}

TEST(FrameReaderTest, RejectsVersionMismatch) {
  const std::string frame =
      EncodeRawFrame(9, static_cast<uint8_t>(FrameType::kStats), 3, 7, "");
  FrameReader reader;
  const Status status = reader.Feed(frame.data(), frame.size());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The sticky error reports the offending header so the server can address
  // its final error reply.
  EXPECT_EQ(reader.error_header().tenant_id, 3);
  EXPECT_EQ(reader.error_header().request_id, 7u);
  // Sticky: later feeds keep failing, Next never yields.
  const std::string good = EncodeStatsRequest(0, 1);
  EXPECT_FALSE(reader.Feed(good.data(), good.size()).ok());
  Frame out;
  EXPECT_FALSE(reader.Next(&out));
}

TEST(FrameReaderTest, RejectsOversizedFrameFromHeaderAlone) {
  // A poisoned length field must be rejected from the 12 header bytes,
  // before any payload is buffered.
  FrameReader reader(/*max_payload_bytes=*/1024);
  std::string header = EncodeRawFrame(
      kProtocolVersion, static_cast<uint8_t>(FrameType::kProbe), 0, 1, "");
  header[0] = static_cast<char>(0xFF);  // payload_len = 0xFFFF00FF... > cap
  header[1] = static_cast<char>(0xFF);
  header[2] = static_cast<char>(0xFF);
  header[3] = static_cast<char>(0x7F);
  const Status status = reader.Feed(header.data(), kFrameHeaderBytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reader.buffered_bytes(), 0u);  // nothing retained
}

TEST(FrameReaderTest, ValidFrameUpToTheLimitIsAccepted) {
  FrameReader reader(/*max_payload_bytes=*/64);
  ProbeRequest request;
  request.range = DayRange{1, 1};
  request.value = std::string(52, 'v');  // payload = 12 + 52 = 64
  const std::string frame = EncodeProbeRequest(0, 1, request);
  ASSERT_OK(reader.Feed(frame.data(), frame.size()));
  Frame out;
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_EQ(out.payload.size(), 64u);
}

TEST(FrameReaderTest, LongStreamCompactsItsBuffer) {
  FrameReader reader;
  Frame out;
  // Hundreds of frames through one reader: buffered_bytes returning to zero
  // after each pop proves the buffer is being consumed, not grown.
  for (int i = 0; i < 500; ++i) {
    const std::string frame = EncodeStatsRequest(0, static_cast<uint32_t>(i));
    ASSERT_OK(reader.Feed(frame.data(), frame.size()));
    ASSERT_TRUE(reader.Next(&out));
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

// --- Decoder allocation guards ---------------------------------------------

TEST(DecoderGuardTest, AdvanceRecordCountBeyondPayloadIsRejected) {
  // day + count claiming 4B records, 2 bytes of actual payload behind it.
  std::string payload = Bytes({0x08, 0x00, 0x00, 0x00,
                               0xff, 0xff, 0xff, 0xff, 'x', 'x'});
  AdvanceRequest out;
  const Status status = DecodeAdvanceRequest(payload, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DecoderGuardTest, QueryReplyEntryCountBeyondPayloadIsRejected) {
  std::string payload;
  payload += Bytes({0x00, 0x00, 0x00});  // result: kOk, no detail
  payload.append(28, '\0');              // stats block
  payload += Bytes({0xff, 0xff, 0xff, 0xff});  // entry_count = 4B
  QueryReply out;
  const Status status = DecodeQueryReply(payload, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DecoderGuardTest, TrailingBytesAreRejected) {
  ScanRequest request;
  request.range = DayRange{1, 2};
  const std::string frame = EncodeScanRequest(0, 1, request);
  std::string payload = frame.substr(kFrameHeaderBytes) + "junk";
  ScanRequest out;
  EXPECT_EQ(DecodeScanRequest(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(DecoderGuardTest, ResultPrefixRejectsUnknownStatusCode) {
  const std::string payload = Bytes({0xEE, 0x00, 0x00});
  WireResult out;
  EXPECT_EQ(DecodeResultPrefix(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace wavekit
