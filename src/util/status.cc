#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace wavekit {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kPartialResult:
      return "Partial result";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

void Status::Abort(const std::string& context) const {
  if (ok()) return;
  std::fprintf(stderr, "wavekit fatal: %s%s%s\n", context.c_str(),
               context.empty() ? "" : ": ", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wavekit
