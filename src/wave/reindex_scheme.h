// REINDEX (paper Section 3.2, Figure 13): rebuild the constituent that holds
// the expired day from scratch, swapping the expired day for the new one.

#ifndef WAVEKIT_WAVE_REINDEX_SCHEME_H_
#define WAVEKIT_WAVE_REINDEX_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The REINDEX maintenance scheme. Hard windows; needs no deletion
/// code; every constituent is always packed (rebuilds are packed builds), so
/// queries scan minimal, contiguous indexes — at the price of re-indexing
/// W/n days of data every day.
class ReindexScheme : public Scheme {
 public:
  ReindexScheme(SchemeEnv env, SchemeConfig config) : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kReindex; }
  std::string_view name() const override { return "REINDEX"; }
  bool hard_window() const override { return true; }

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_REINDEX_SCHEME_H_
