# Empty dependencies file for day_store_test.
# This may be replaced when dependencies are built.
