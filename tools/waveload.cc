// waveload: multi-threaded load generator for waved.
//
//   waveload --port=P [--host=127.0.0.1] [--steps=1,2,4,8]
//            [--probes=150000] [--pipeline=64] [--window=3] [--seed=42]
//            [--out=BENCH_serving.json] [--smoke]
//
// For each step (a tenant count T) it opens one connection per tenant and
// drives --probes pipelined PROBE requests per connection, keeping
// --pipeline requests in flight. Probe values are Zipf-sampled from the same
// synthetic Netnews vocabulary waved bootstraps its tenants with, so probes
// hit real postings. Per-request latency (send to matching reply) feeds a
// log-bucketed histogram; the JSON trajectory records throughput + p50/p99
// per tenant count:
//
//   {"bench": "serving", "steps": [{"tenants": 4, "probes": 600000,
//     "probes_per_sec": ..., "p50_us": ..., "p99_us": ...}, ...],
//    "total_probes": ...}
//
// --smoke shrinks the run for CI (and tags the JSON so readers know).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      values_[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
    }
  }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return Get(key, "false") == "true";
  }

 private:
  std::map<std::string, std::string> values_;
};

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct WorkerResult {
  uint64_t probes = 0;
  uint64_t partials = 0;
  uint64_t errors = 0;
  uint64_t entries = 0;
  Histogram latency_us;
  std::string failure;  // transport/protocol breakage aborts the worker
};

/// One connection's worth of pipelined probes against tenant `tenant_id`.
WorkerResult RunWorker(const std::string& host, uint16_t port,
                       uint16_t tenant_id, uint64_t probes, int pipeline,
                       int window, uint64_t seed) {
  WorkerResult result;
  serve::Client::Options options;
  options.host = host;
  options.port = port;
  options.tenant_id = tenant_id;
  auto client = serve::Client::Connect(options);
  if (!client.ok()) {
    result.failure = client.status().ToString();
    return result;
  }

  // Same vocabulary shape the server's tenants were bootstrapped with;
  // SampleWord only needs the Zipf, not the server's per-tenant seed.
  workload::NetnewsGenerator netnews((workload::NetnewsConfig()));
  Rng rng(seed + tenant_id * 7919u);

  // Probes are timed; replies carry the current day so the range tracks
  // server-side advances without a STATS round-trip per probe.
  auto stats = (*client)->Stats();
  if (!stats.ok()) {
    result.failure = stats.status().ToString();
    return result;
  }
  Day latest = stats->current_day;

  std::map<uint32_t, uint64_t> in_flight;  // request id -> send time us
  uint64_t sent = 0;
  while (sent < probes || !in_flight.empty()) {
    while (sent < probes &&
           in_flight.size() < static_cast<size_t>(pipeline)) {
      const DayRange range = DayRange::Window(latest, window);
      auto id = (*client)->SendProbe(range, netnews.SampleWord(rng));
      if (!id.ok()) {
        result.failure = id.status().ToString();
        return result;
      }
      in_flight[*id] = NowUs();
      ++sent;
    }
    auto frame = (*client)->ReadReply();
    if (!frame.ok()) {
      result.failure = frame.status().ToString();
      return result;
    }
    auto it = in_flight.find(frame->header.request_id);
    if (it == in_flight.end()) {
      result.failure = "reply for unknown request id " +
                       std::to_string(frame->header.request_id);
      return result;
    }
    result.latency_us.Record(std::max<uint64_t>(1, NowUs() - it->second));
    in_flight.erase(it);

    serve::QueryReply reply;
    const Status decoded = serve::DecodeQueryReply(frame->payload, &reply);
    if (!decoded.ok()) {
      result.failure = decoded.ToString();
      return result;
    }
    ++result.probes;
    if (reply.result.code == StatusCode::kPartialResult) ++result.partials;
    if (!reply.result.has_body()) ++result.errors;
    result.entries += reply.entries.size();
    for (const Entry& entry : reply.entries) {
      if (entry.day > latest) latest = entry.day;
    }
  }
  return result;
}

struct StepResult {
  int tenants = 0;
  uint64_t probes = 0;
  uint64_t partials = 0;
  uint64_t errors = 0;
  uint64_t entries = 0;
  double seconds = 0;
  Histogram latency_us;
};

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  Args args(argc, argv);
  const std::string host = args.Get("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(args.GetInt("port", 8787));
  const bool smoke = args.GetBool("smoke");
  const uint64_t probes_per_conn =
      static_cast<uint64_t>(args.GetInt("probes", smoke ? 2000 : 150000));
  const int pipeline = args.GetInt("pipeline", 64);
  const int window = args.GetInt("window", 3);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out_path = args.Get("out", "BENCH_serving.json");

  std::vector<int> steps;
  {
    std::stringstream ss(args.Get("steps", smoke ? "1,4" : "1,2,4,8"));
    std::string token;
    while (std::getline(ss, token, ',')) {
      const int t = std::atoi(token.c_str());
      if (t > 0) steps.push_back(t);
    }
  }

  std::vector<StepResult> results;
  uint64_t total_probes = 0;
  for (const int tenants : steps) {
    std::vector<WorkerResult> workers(tenants);
    std::vector<std::thread> threads;
    const uint64_t start_us = NowUs();
    for (int t = 0; t < tenants; ++t) {
      threads.emplace_back([&, t] {
        workers[t] = RunWorker(host, port, static_cast<uint16_t>(t),
                               probes_per_conn, pipeline, window, seed);
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = static_cast<double>(NowUs() - start_us) / 1e6;

    StepResult step;
    step.tenants = tenants;
    step.seconds = seconds;
    for (const WorkerResult& w : workers) {
      if (!w.failure.empty()) {
        std::cerr << "waveload: worker failed: " << w.failure << "\n";
        return 1;
      }
      step.probes += w.probes;
      step.partials += w.partials;
      step.errors += w.errors;
      step.entries += w.entries;
      step.latency_us.Merge(w.latency_us);
    }
    total_probes += step.probes;
    std::cout << "tenants=" << tenants << " probes=" << step.probes
              << " elapsed=" << seconds << "s throughput="
              << static_cast<uint64_t>(step.probes / std::max(1e-9, seconds))
              << "/s p50=" << step.latency_us.Percentile(0.50)
              << "us p99=" << step.latency_us.Percentile(0.99) << "us"
              << std::endl;
    results.push_back(std::move(step));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"serving\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"probes_per_connection\": " << probes_per_conn << ",\n";
  json << "  \"pipeline_depth\": " << pipeline << ",\n";
  json << "  \"probe_window_days\": " << window << ",\n";
  json << "  \"total_probes\": " << total_probes << ",\n";
  json << "  \"steps\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const StepResult& step = results[i];
    json << "    {\"tenants\": " << step.tenants
         << ", \"probes\": " << step.probes
         << ", \"seconds\": " << step.seconds << ", \"probes_per_sec\": "
         << static_cast<uint64_t>(step.probes / std::max(1e-9, step.seconds))
         << ", \"p50_us\": " << step.latency_us.Percentile(0.50)
         << ", \"p99_us\": " << step.latency_us.Percentile(0.99)
         << ", \"mean_us\": " << step.latency_us.mean()
         << ", \"partial_results\": " << step.partials
         << ", \"errors\": " << step.errors
         << ", \"entries_returned\": " << step.entries << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << "wrote " << out_path << " (total probes: " << total_probes
            << ")" << std::endl;
  return 0;
}
