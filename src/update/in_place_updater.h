// InPlaceUpdater: Section 2.1's in-place updating.

#ifndef WAVEKIT_UPDATE_IN_PLACE_UPDATER_H_
#define WAVEKIT_UPDATE_IN_PLACE_UPDATER_H_

#include "update/update_technique.h"

namespace wavekit {

/// \brief Mutates the index directly: CONTIGUOUS appends for inserts,
/// bucket compaction/shrink for deletes. Cheapest in space (no copy), but in
/// a live system requires concurrency control; the resulting index is not
/// packed.
class InPlaceUpdater : public Updater {
 public:
  UpdateTechniqueKind kind() const override {
    return UpdateTechniqueKind::kInPlace;
  }
  Status Apply(std::shared_ptr<ConstituentIndex>* index,
               std::span<const DayBatch* const> adds,
               const TimeSet& deletes) override;
};

}  // namespace wavekit

#endif  // WAVEKIT_UPDATE_IN_PLACE_UPDATER_H_
