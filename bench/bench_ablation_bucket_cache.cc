// Ablation: an LRU bucket cache under the paper's two value distributions.
//
// The paper's workloads differ exactly where caching matters: Netnews words
// are Zipfian ("skewed Zipfian behavior"), TPC-D SUPPKEYs are uniform. A
// small cache absorbs most Zipfian probe traffic (hot buckets stay
// resident) but does little for uniform keys until it approaches the index
// size — quantifying the memory-caching effect the paper invokes
// qualitatively in Sections 2.1 and 6.

#include "bench/common.h"

#include "index/index_builder.h"
#include "storage/cached_device.h"
#include "wave/checkpoint.h"
#include "workload/netnews.h"
#include "workload/tpcd.h"

namespace wavekit {
namespace bench {
namespace {

struct CacheRun {
  double hit_ratio = 0;
  double modeled_seconds_per_probe = 0;
};

// Builds a 7-day packed index behind a cache of `cache_fraction` of the
// index's blocks, runs 4000 distribution-sampled probes, and reports the
// hit ratio and modeled (true-disk-traffic) cost per probe.
template <typename Generator, typename Sampler>
CacheRun RunProbes(Generator& gen, Sampler sample_value,
                   double cache_fraction) {
  MemoryDevice memory(uint64_t{1} << 28);
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(uint64_t{1} << 28);

  std::vector<DayBatch> batches;
  for (Day d = 1; d <= 7; ++d) batches.push_back(gen.GenerateDay(d));
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);
  // Build THROUGH the meter (uncached: builds are one-shot sequential).
  auto built =
      IndexBuilder::BuildPacked(&metered, &allocator, {}, ptrs, "I");
  if (!built.ok()) built.status().Abort("build");
  std::unique_ptr<ConstituentIndex> index = std::move(built).ValueOrDie();

  const uint64_t kBlock = 4096;
  const size_t index_blocks =
      static_cast<size_t>(index->allocated_bytes() / kBlock + 1);
  const size_t cache_blocks = std::max<size_t>(
      static_cast<size_t>(cache_fraction * static_cast<double>(index_blocks)),
      1);
  CachedDevice cached(&metered, cache_blocks, kBlock);

  // Probe through the cache. ConstituentIndex binds its device at
  // construction, so reopen a read view of the same buckets behind the
  // cache via the checkpoint machinery (its own allocator keeps extent
  // ownership disjoint).
  WaveIndex original;
  original.AddIndex(std::move(index));
  auto checkpoint = SerializeCheckpoint(original);
  if (!checkpoint.ok()) checkpoint.status().Abort("serialize");
  ExtentAllocator view_allocator(uint64_t{1} << 28);
  auto view = DeserializeCheckpoint(checkpoint.ValueOrDie(), &cached,
                                    &view_allocator, {});
  if (!view.ok()) view.status().Abort("reopen behind cache");

  metered.Reset();
  Rng rng(99);
  std::vector<Entry> out;
  const int kProbes = 4000;
  for (int i = 0; i < kProbes; ++i) {
    out.clear();
    view.ValueOrDie().IndexProbe(sample_value(rng), &out).Abort("probe");
  }
  CacheRun run;
  run.hit_ratio = cached.stats().HitRatio();
  run.modeled_seconds_per_probe =
      CostModel::Paper().Seconds(metered.total()) / kProbes;
  return run;
}

int Run() {
  Banner("Ablation: LRU bucket cache vs value distribution",
         "Zipfian Netnews probes concentrate on hot buckets — a small cache "
         "absorbs most disk traffic; uniform TPC-D keys defeat small caches "
         "(the memory-caching effect of Sections 2.1/6, quantified).");

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 400;
  netnews_config.words_per_article = 25;
  netnews_config.vocabulary_size = 20000;
  workload::NetnewsGenerator netnews(netnews_config);
  auto netnews_sampler = [&netnews](Rng& rng) {
    return netnews.SampleWord(rng);
  };

  workload::TpcdConfig tpcd_config;
  tpcd_config.rows_per_day = 10000;
  tpcd_config.num_suppliers = 2000;
  workload::TpcdGenerator tpcd(tpcd_config);
  auto tpcd_sampler = [&tpcd](Rng& rng) { return tpcd.SampleSuppkey(rng); };

  const std::vector<double> fractions = {0.01, 0.05, 0.20, 0.60, 1.10};
  sim::TablePrinter table({"cache size (frac of index)", "zipf hit ratio",
                           "zipf s/probe", "uniform hit ratio",
                           "uniform s/probe"});
  std::map<double, CacheRun> zipf, uniform;
  for (double fraction : fractions) {
    zipf[fraction] = RunProbes(netnews, netnews_sampler, fraction);
    uniform[fraction] = RunProbes(tpcd, tpcd_sampler, fraction);
    table.AddRow({Fmt(fraction, 2), Fmt(zipf[fraction].hit_ratio, 3),
                  FormatSeconds(zipf[fraction].modeled_seconds_per_probe),
                  Fmt(uniform[fraction].hit_ratio, 3),
                  FormatSeconds(uniform[fraction].modeled_seconds_per_probe)});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  // Zipf probe TRAFFIC is extremely concentrated (traffic share of bucket k
  // scales with p_k^2), but the hot buckets are themselves large, so an LRU
  // only starts winning once whole hot buckets fit — at a 20% cache the
  // Zipfian hit ratio pulls far ahead of the uniform one, which can only
  // ever hit in proportion to the cache size.
  checks.Check(zipf[0.20].hit_ratio > 2 * uniform[0.20].hit_ratio,
               "at a 20% cache, Zipfian probes hit >2x as often as uniform "
               "ones (hot buckets resident)");
  checks.Check(uniform[0.20].hit_ratio < 0.3,
               "uniform keys hit roughly in proportion to the cache size");
  checks.Check(zipf[0.01].hit_ratio < 0.05,
               "a cache smaller than the hottest bucket thrashes (classic "
               "LRU scan pathology) — caching needs the hot SET to fit");
  bool zipf_monotone = true;
  for (size_t i = 1; i < fractions.size(); ++i) {
    zipf_monotone &= zipf[fractions[i]].modeled_seconds_per_probe <=
                     zipf[fractions[i - 1]].modeled_seconds_per_probe * 1.02;
  }
  checks.Check(zipf_monotone, "probe cost falls as the cache grows");
  checks.Check(uniform[1.10].hit_ratio > 0.9,
               "a cache larger than the index absorbs (almost) everything, "
               "whatever the distribution");
  checks.Check(zipf[0.60].modeled_seconds_per_probe <
                   uniform[0.60].modeled_seconds_per_probe,
               "given the same generous cache, the Zipfian workload pays "
               "less disk traffic — the paper's memory-caching effect");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
