#include "util/random.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

namespace wavekit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(5), parent2(5);
  Rng childa = parent1.Fork(1);
  Rng childb = parent2.Fork(1);
  EXPECT_EQ(childa.Next(), childb.Next());
  Rng parent3(5);
  Rng other = parent3.Fork(2);
  EXPECT_NE(childa.Next(), other.Next());
}

TEST(ZipfTest, RanksWithinUniverse) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, SingleElementUniverse) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SkewMatchesTheta) {
  // With theta = 1, P(rank 0) / P(rank 9) should be about 10.
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(31);
  std::map<uint64_t, int> counts;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  ASSERT_GT(counts[0], 0);
  ASSERT_GT(counts[9], 0);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  Rng rng(37);
  ZipfDistribution mild(1000, 0.8), sharp(1000, 1.4);
  int mild_top = 0, sharp_top = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Sample(rng) < 10) ++mild_top;
    if (sharp.Sample(rng) < 10) ++sharp_top;
  }
  EXPECT_GT(sharp_top, mild_top);
}

TEST(ZipfTest, NonOneThetaSupported) {
  ZipfDistribution zipf(500, 1.2);
  Rng rng(41);
  uint64_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) max_seen = std::max(max_seen, zipf.Sample(rng));
  EXPECT_LT(max_seen, 500u);
  EXPECT_GT(max_seen, 50u);  // the tail is reachable
}

TEST(ShuffleTest, PermutationPreserved) {
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  Rng rng(43);
  Shuffle(items, rng);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace wavekit
