file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scale_factor.dir/bench_fig10_scale_factor.cc.o"
  "CMakeFiles/bench_fig10_scale_factor.dir/bench_fig10_scale_factor.cc.o.d"
  "bench_fig10_scale_factor"
  "bench_fig10_scale_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scale_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
