# Empty dependencies file for parallel_query_test.
# This may be replaced when dependencies are built.
