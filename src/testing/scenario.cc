#include "testing/scenario.h"

#include <algorithm>

#include "util/format.h"

namespace wavekit {
namespace testing {
namespace {

// The named crash points of the DurableMaintenance AdvanceDay protocol, in
// execution order (see wave/recovery.h and the crash-recovery torture).
const char* const kProtocolCrashPoints[] = {
    "journal.intent.before_rename",
    "journal.intent.after_rename",
    "advance.after_intent",
    "advance.after_transition",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "advance.after_checkpoint",
    "journal.commit",
};
constexpr size_t kNumProtocolCrashPoints =
    sizeof(kProtocolCrashPoints) / sizeof(kProtocolCrashPoints[0]);

Value ValueForRank(uint64_t rank) { return "v" + std::to_string(rank); }

}  // namespace

std::string FaultEvent::ToString() const {
  switch (kind) {
    case Kind::kCrashPoint:
      return "day=" + std::to_string(day) + " crash_point=" + crash_point;
    case Kind::kDeviceCrash:
      return "day=" + std::to_string(day) +
             " device_crash_after_writes=" + std::to_string(countdown);
    case Kind::kBitRot:
      return "day=" + std::to_string(day) +
             " bit_rot target=" + std::to_string(target) +
             " bits=" + std::to_string(bits) +
             (detect_via_scrub ? " detect=scrub" : " detect=query");
  }
  return "?";
}

std::string Scenario::ToString() const {
  std::string out;
  out += "workload_seed=" + std::to_string(workload_seed);
  out += " window=" + std::to_string(window);
  out += " num_indexes=" + std::to_string(num_indexes);
  out += std::string(" technique=") +
         (technique == UpdateTechniqueKind::kPackedShadow ? "packed-shadow"
                                                          : "simple-shadow");
  out += " days=" + std::to_string(days);
  out += " records=[" + std::to_string(min_day_records) + "," +
         std::to_string(max_day_records) + "]";
  out += " values_per_record=" + std::to_string(values_per_record);
  out += " universe=" + std::to_string(value_universe);
  out += " zipf_theta=" + FormatDouble(zipf_theta, 3);
  out += " probes_per_day=" + std::to_string(probes_per_day);
  out += std::string(" scan_each_day=") + (scan_each_day ? "1" : "0");
  out += std::string(" codec=") + CodecModeName(codec);
  out += " read_error_rate=" + FormatDouble(read_error_rate, 4);
  out += " write_error_rate=" + FormatDouble(write_error_rate, 4);
  out += " retry_attempts=" + std::to_string(retry_attempts);
  out += " faults=" + std::to_string(faults.size());
  for (const FaultEvent& fault : faults) {
    out += "\n  fault: " + fault.ToString();
  }
  return out;
}

Scenario ScenarioGenerator::Generate(uint64_t episode) const {
  Rng rng = Rng(seed_).Fork(episode);
  Scenario s;
  // A distinct workload stream per episode, stable under shrinking.
  s.workload_seed = rng.Next();
  s.window = 4 + static_cast<int>(rng.Uniform(7));          // 4..10
  const int max_n = std::min(s.window, 5);
  s.num_indexes = 2 + static_cast<int>(rng.Uniform(
                          static_cast<uint64_t>(max_n - 1)));  // 2..max_n
  s.technique = rng.Bernoulli(0.5) ? UpdateTechniqueKind::kSimpleShadow
                                   : UpdateTechniqueKind::kPackedShadow;
  s.days = 8 + static_cast<int>(rng.Uniform(17));           // 8..24
  s.min_day_records = 1 + static_cast<int>(rng.Uniform(3));  // 1..3
  s.max_day_records =
      s.min_day_records + static_cast<int>(rng.Uniform(8));  // min..min+7
  s.values_per_record = 1 + static_cast<int>(rng.Uniform(3));  // 1..3
  s.value_universe = 20 + rng.Uniform(180);                  // 20..199
  s.zipf_theta = 0.5 + rng.NextDouble() * 0.7;               // 0.5..1.2
  s.probes_per_day = 4 + static_cast<int>(rng.Uniform(6));   // 4..9
  s.scan_each_day = true;
  if (rng.Bernoulli(0.4)) {
    // A "flaky disk" episode: transient errors plus enough retry budget
    // that most days still succeed; the rest exercise fail + recover.
    s.read_error_rate = rng.NextDouble() * 0.02;
    s.write_error_rate = rng.NextDouble() * 0.02;
    s.retry_attempts = 2 + static_cast<int>(rng.Uniform(2));  // 2..3
  }
  for (Day d = static_cast<Day>(s.window) + 1;
       d <= static_cast<Day>(s.window + s.days); ++d) {
    if (!rng.Bernoulli(0.12)) continue;
    FaultEvent fault;
    fault.day = d;
    if (rng.Bernoulli(0.5)) {
      fault.kind = FaultEvent::Kind::kCrashPoint;
      fault.crash_point =
          kProtocolCrashPoints[rng.Uniform(kNumProtocolCrashPoints)];
    } else {
      fault.kind = FaultEvent::Kind::kDeviceCrash;
      fault.countdown = 1 + rng.Uniform(80);
    }
    s.faults.push_back(std::move(fault));
  }
  return s;
}

Scenario ScenarioGenerator::GenerateBitRot(uint64_t episode) const {
  Scenario s = Generate(episode);
  // Pure-corruption family: no crashes, no transient errors. Every day's
  // transition commits cleanly, then the medium rots under it. Mixing rot
  // with crash/retry faults would make "healed within the episode" ambiguous
  // (a crash can legitimately outrun the heal), so those axes stay separate.
  s.faults.clear();
  s.read_error_rate = 0.0;
  s.write_error_rate = 0.0;
  s.retry_attempts = 1;
  // A stream of its own — offset far past any episode index so it can never
  // collide with the Fork(episode) stream Generate() draws from. Keeping
  // Generate() untouched keeps every existing episode trace byte-identical.
  Rng rot = Rng(seed_).Fork((uint64_t{1} << 40) + episode);
  const int strikes = 1 + static_cast<int>(rot.Uniform(3));  // 1..3
  for (int i = 0; i < strikes; ++i) {
    FaultEvent fault;
    fault.kind = FaultEvent::Kind::kBitRot;
    fault.day = static_cast<Day>(s.window) + 1 +
                static_cast<Day>(rot.Uniform(static_cast<uint64_t>(s.days)));
    fault.target = rot.Next();
    fault.bits = 1 + static_cast<int>(rot.Uniform(3));  // 1..3 flipped bits
    fault.detect_via_scrub = rot.Bernoulli(0.5);
    s.faults.push_back(std::move(fault));
  }
  // Deterministic handling order when two strikes land on the same day.
  std::stable_sort(s.faults.begin(), s.faults.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.day < b.day;
                   });
  return s;
}

namespace {

// Draws the episode's codec mode from a stream of its own (offset past the
// bit-rot stream at 1<<40) so neither Generate() nor GenerateBitRot() is
// perturbed: the pre-codec episode traces stay byte-identical.
CodecMode DrawCodec(uint64_t seed, uint64_t episode) {
  Rng rng = Rng(seed).Fork((uint64_t{1} << 41) + episode);
  // Mostly the production policy (auto); forced modes keep each codec's
  // decode path under load even on shapes auto would not pick it for.
  const uint64_t draw = rng.Uniform(4);
  switch (draw) {
    case 0:
      return CodecMode::kDelta;
    case 1:
      return CodecMode::kBitPack;
    default:
      return CodecMode::kAuto;
  }
}

}  // namespace

Scenario ScenarioGenerator::GenerateCodec(uint64_t episode) const {
  Scenario s = Generate(episode);
  s.codec = DrawCodec(seed_, episode);
  return s;
}

Scenario ScenarioGenerator::GenerateCodecBitRot(uint64_t episode) const {
  Scenario s = GenerateBitRot(episode);
  s.codec = DrawCodec(seed_, episode);
  return s;
}

DayBatch MakeScenarioDay(const Scenario& scenario, Day day) {
  // Stream 2*day: day contents. Stream 2*day+1: that day's probe plan.
  // Both are pure functions of (workload_seed, day), so a shrunk scenario
  // replays the surviving days byte-for-byte.
  Rng rng = Rng(scenario.workload_seed).Fork(static_cast<uint64_t>(day) * 2);
  const ZipfDistribution zipf(scenario.value_universe, scenario.zipf_theta);
  DayBatch batch;
  batch.day = day;
  const int span = scenario.max_day_records - scenario.min_day_records + 1;
  const int num_records =
      scenario.min_day_records +
      static_cast<int>(rng.Uniform(static_cast<uint64_t>(span)));
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < num_records; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    const int num_values =
        1 + static_cast<int>(
                rng.Uniform(static_cast<uint64_t>(scenario.values_per_record)));
    for (int v = 0; v < num_values; ++v) {
      record.values.push_back(ValueForRank(zipf.Sample(rng)));
    }
    batch.records.push_back(std::move(record));
  }
  return batch;
}

std::vector<ProbePlan> MakeScenarioProbes(const Scenario& scenario, Day day) {
  Rng rng =
      Rng(scenario.workload_seed).Fork(static_cast<uint64_t>(day) * 2 + 1);
  const ZipfDistribution zipf(scenario.value_universe, scenario.zipf_theta);
  const Day oldest = day - static_cast<Day>(scenario.window) + 1;
  std::vector<ProbePlan> probes;
  probes.reserve(static_cast<size_t>(scenario.probes_per_day));
  for (int i = 0; i < scenario.probes_per_day; ++i) {
    ProbePlan probe;
    // Mostly hot values; sometimes a value that cannot exist, so the
    // empty-answer path is exercised too.
    probe.value = rng.Bernoulli(0.85)
                      ? ValueForRank(zipf.Sample(rng))
                      : "missing" + std::to_string(rng.Uniform(1000));
    if (rng.Bernoulli(0.5)) {
      // Full live window. Kept inside the window on purpose: soft-window
      // schemes legitimately retain expired days, and per-entry filtering
      // (which this range triggers) is exactly the invariant under test.
      probe.range = DayRange{oldest, day};
    } else {
      const Day lo =
          oldest + static_cast<Day>(rng.Uniform(
                       static_cast<uint64_t>(scenario.window)));
      const Day hi =
          lo + static_cast<Day>(
                   rng.Uniform(static_cast<uint64_t>(day - lo + 1)));
      probe.range = DayRange{lo, hi};
    }
    probes.push_back(std::move(probe));
  }
  return probes;
}

}  // namespace testing
}  // namespace wavekit
