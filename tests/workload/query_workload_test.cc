#include "workload/query_workload.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "testing/test_env.h"

namespace wavekit {
namespace workload {
namespace {

using ::wavekit::testing::MakeMixedBatch;

class QueryWorkloadTest : public ::wavekit::testing::StoreTest {
 protected:
  void BuildWave(int days) {
    for (Day d = 1; d <= days; ++d) {
      auto built = IndexBuilder::BuildPacked(store_.device(),
                                             store_.allocator(), Options(),
                                             MakeMixedBatch(d, 20), "I");
      ASSERT_TRUE(built.ok()) << built.status();
      wave_.AddIndex(std::move(built).ValueOrDie());
    }
  }

  WaveIndex wave_;
  CostModel cost_;
};

TEST_F(QueryWorkloadTest, ScalesSampledProbeCostToFullVolume) {
  BuildWave(4);
  QueryMix mix;
  mix.probes_per_day = 1000;
  mix.probe_sample = 10;
  auto result = RunDailyQueries(
      wave_, store_.device(), cost_, mix, DayRange::Window(4, 4),
      [](Rng&) { return Value("alpha"); });
  ASSERT_TRUE(result.ok()) << result.status();
  const QueryCosts& costs = std::move(result).ValueOrDie();
  EXPECT_GT(costs.seconds_per_probe, 0.0);
  EXPECT_NEAR(costs.seconds, costs.seconds_per_probe * 1000, 1e-9);
  EXPECT_GT(costs.probe_entries, 0u);
}

TEST_F(QueryWorkloadTest, ScanCurrentDayOnlyIsCheaperThanWindow) {
  BuildWave(6);
  QueryMix window_mix;
  window_mix.scans_per_day = 10;
  window_mix.scan_sample = 1;
  window_mix.scans_whole_window = true;
  auto window_result = RunDailyQueries(
      wave_, store_.device(), cost_, window_mix, DayRange::Window(6, 6),
      [](Rng&) { return Value("alpha"); });
  ASSERT_TRUE(window_result.ok());

  QueryMix day_mix = window_mix;
  day_mix.scans_whole_window = false;
  auto day_result = RunDailyQueries(
      wave_, store_.device(), cost_, day_mix, DayRange::Window(6, 6),
      [](Rng&) { return Value("alpha"); });
  ASSERT_TRUE(day_result.ok());

  EXPECT_LT(day_result.ValueOrDie().seconds_per_scan,
            window_result.ValueOrDie().seconds_per_scan);
  EXPECT_LT(day_result.ValueOrDie().scan_entries,
            window_result.ValueOrDie().scan_entries);
}

TEST_F(QueryWorkloadTest, ChargesQueryPhase) {
  BuildWave(2);
  QueryMix mix;
  mix.probes_per_day = 10;
  mix.probe_sample = 5;
  store_.device()->Reset();
  auto result = RunDailyQueries(
      wave_, store_.device(), cost_, mix, DayRange::All(),
      [](Rng&) { return Value("beta"); });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(store_.device()->counters(Phase::kQuery).bytes_read, 0u);
  EXPECT_EQ(store_.device()->counters(Phase::kTransition).bytes_read, 0u);
}

TEST_F(QueryWorkloadTest, EmptyMixCostsNothing) {
  BuildWave(1);
  QueryMix mix;  // zero volumes
  auto result = RunDailyQueries(
      wave_, store_.device(), cost_, mix, DayRange::All(),
      [](Rng&) { return Value("alpha"); });
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.ValueOrDie().seconds, 0.0);
}

}  // namespace
}  // namespace workload
}  // namespace wavekit
