// Robustness: error propagation (device exhaustion, lifecycle misuse,
// missing data) and cross-scheme equivalence (every hard-window scheme must
// serve byte-identical query results for the same input stream).

#include <gtest/gtest.h>

#include "testing/test_env.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

SchemeConfig Cfg(int window, int n, UpdateTechniqueKind technique) {
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = technique;
  return config;
}

std::unique_ptr<Scheme> MustMake(SchemeKind kind, SchemeEnv env,
                                 SchemeConfig config) {
  auto made = MakeScheme(kind, env, config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  return std::move(made).ValueOrDie();
}

TEST(SchemeLifecycleTest, TransitionBeforeStartFails) {
  Store store;
  DayStore day_store;
  auto scheme =
      MustMake(SchemeKind::kDel,
               SchemeEnv{store.device(), store.allocator(), &day_store},
               Cfg(4, 2, UpdateTechniqueKind::kInPlace));
  EXPECT_TRUE(scheme->Transition(MakeMixedBatch(5)).IsFailedPrecondition());
}

TEST(SchemeLifecycleTest, DoubleStartFails) {
  Store store;
  DayStore day_store;
  auto scheme =
      MustMake(SchemeKind::kDel,
               SchemeEnv{store.device(), store.allocator(), &day_store},
               Cfg(3, 1, UpdateTechniqueKind::kInPlace));
  std::vector<DayBatch> first = {MakeMixedBatch(1), MakeMixedBatch(2),
                                 MakeMixedBatch(3)};
  ASSERT_OK(scheme->Start(std::move(first)));
  std::vector<DayBatch> again = {MakeMixedBatch(1), MakeMixedBatch(2),
                                 MakeMixedBatch(3)};
  EXPECT_TRUE(scheme->Start(std::move(again)).IsFailedPrecondition());
}

TEST(SchemeLifecycleTest, WrongStartShapeFails) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  SchemeConfig config = Cfg(4, 2, UpdateTechniqueKind::kInPlace);
  {
    auto scheme = MustMake(SchemeKind::kDel, env, config);
    std::vector<DayBatch> too_few = {MakeMixedBatch(1)};
    EXPECT_TRUE(scheme->Start(std::move(too_few)).IsInvalidArgument());
  }
  {
    DayStore fresh;
    env.day_store = &fresh;
    auto scheme = MustMake(SchemeKind::kDel, env, config);
    std::vector<DayBatch> wrong_days = {MakeMixedBatch(2), MakeMixedBatch(3),
                                        MakeMixedBatch(4), MakeMixedBatch(5)};
    EXPECT_TRUE(scheme->Start(std::move(wrong_days)).IsInvalidArgument());
  }
}

TEST(SchemeLifecycleTest, NonConsecutiveTransitionFails) {
  Store store;
  DayStore day_store;
  auto scheme =
      MustMake(SchemeKind::kDel,
               SchemeEnv{store.device(), store.allocator(), &day_store},
               Cfg(3, 1, UpdateTechniqueKind::kInPlace));
  std::vector<DayBatch> first = {MakeMixedBatch(1), MakeMixedBatch(2),
                                 MakeMixedBatch(3)};
  ASSERT_OK(scheme->Start(std::move(first)));
  EXPECT_TRUE(scheme->Transition(MakeMixedBatch(6)).IsInvalidArgument());
  EXPECT_TRUE(scheme->Transition(MakeMixedBatch(3)).IsInvalidArgument());
  // The right day still works afterwards.
  EXPECT_OK(scheme->Transition(MakeMixedBatch(4)));
}

TEST(SchemeLifecycleTest, InvalidConfigsRejectedByFactory) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  EXPECT_FALSE(MakeScheme(SchemeKind::kDel, env,
                          Cfg(0, 1, UpdateTechniqueKind::kInPlace))
                   .ok());
  EXPECT_FALSE(MakeScheme(SchemeKind::kDel, env,
                          Cfg(4, 5, UpdateTechniqueKind::kInPlace))
                   .ok());  // n > W
  SchemeEnv incomplete;
  EXPECT_FALSE(MakeScheme(SchemeKind::kDel, incomplete,
                          Cfg(4, 2, UpdateTechniqueKind::kInPlace))
                   .ok());
}

class ExhaustionTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(ExhaustionTest, DeviceExhaustionSurfacesAsError) {
  // A device far too small for the workload: the scheme must surface
  // ResourceExhausted through Start or a Transition, never crash or corrupt.
  Store store(/*capacity=*/4096);
  DayStore day_store;
  SchemeConfig config = Cfg(6, 2, UpdateTechniqueKind::kSimpleShadow);
  auto made = MakeScheme(GetParam(), SchemeEnv{store.device(),
                                               store.allocator(), &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();

  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) {
    first.push_back(MakeMixedBatch(d, /*num_records=*/40));
  }
  Status status = scheme->Start(std::move(first));
  for (Day d = 7; status.ok() && d <= 30; ++d) {
    status = scheme->Transition(MakeMixedBatch(d, 40));
  }
  ASSERT_FALSE(status.ok()) << "4 KiB cannot hold this workload";
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ExhaustionTest,
                         ::testing::ValuesIn(kAllSchemeKinds),
                         [](const auto& info) {
                           std::string name = SchemeKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(SchemeEquivalenceTest, AllHardWindowSchemesServeIdenticalResults) {
  // Same input stream -> every hard-window scheme must return exactly the
  // same probe and scan results every day, whatever its internal rotation.
  const int window = 9;
  const int days = 20;
  const SchemeKind kinds[] = {SchemeKind::kDel, SchemeKind::kReindex,
                              SchemeKind::kReindexPlus,
                              SchemeKind::kReindexPlusPlus, SchemeKind::kRata};

  struct Instance {
    std::unique_ptr<Store> store;
    std::unique_ptr<DayStore> day_store;
    std::unique_ptr<Scheme> scheme;
  };
  std::vector<Instance> instances;
  for (SchemeKind kind : kinds) {
    Instance instance;
    instance.store = std::make_unique<Store>(uint64_t{1} << 26);
    instance.day_store = std::make_unique<DayStore>();
    auto made = MakeScheme(
        kind,
        SchemeEnv{instance.store->device(), instance.store->allocator(),
                  instance.day_store.get()},
        Cfg(window, 3, UpdateTechniqueKind::kSimpleShadow));
    ASSERT_TRUE(made.ok()) << made.status();
    instance.scheme = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(instance.scheme->Start(std::move(first)));
    instances.push_back(std::move(instance));
  }

  for (int i = 0; i < days; ++i) {
    for (Instance& instance : instances) {
      ASSERT_OK(instance.scheme->Transition(
          MakeMixedBatch(instance.scheme->current_day() + 1)));
    }
    const Day d = instances[0].scheme->current_day();
    const DayRange range = DayRange::Window(d, window);
    // Compare every scheme's results against the first scheme's.
    auto results_of = [&](const Instance& instance, const Value& value) {
      std::vector<Entry> out;
      Status s = instance.scheme->wave().TimedIndexProbe(range, value, &out);
      EXPECT_TRUE(s.ok()) << s.ToString();
      ReferenceIndex::Sort(&out);
      return out;
    };
    for (const Value& value : {Value("alpha"), Value("beta"),
                               Value("day" + std::to_string(d))}) {
      const auto baseline = results_of(instances[0], value);
      for (size_t k = 1; k < instances.size(); ++k) {
        ASSERT_EQ(results_of(instances[k], value), baseline)
            << SchemeKindName(kinds[k]) << " diverges on '" << value
            << "' at day " << d;
      }
    }
    // Scans must agree too.
    auto scan_of = [&](const Instance& instance) {
      std::vector<Entry> out;
      Status s = instance.scheme->wave().TimedSegmentScan(
          range, [&out](const Value&, const Entry& e) { out.push_back(e); });
      EXPECT_TRUE(s.ok()) << s.ToString();
      ReferenceIndex::Sort(&out);
      return out;
    };
    const auto scan_baseline = scan_of(instances[0]);
    for (size_t k = 1; k < instances.size(); ++k) {
      ASSERT_EQ(scan_of(instances[k]), scan_baseline)
          << SchemeKindName(kinds[k]) << " scan diverges at day " << d;
    }
  }
}

}  // namespace
}  // namespace wavekit
