file(REMOVE_RECURSE
  "CMakeFiles/format_test.dir/util/format_test.cc.o"
  "CMakeFiles/format_test.dir/util/format_test.cc.o.d"
  "format_test"
  "format_test.pdb"
  "format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
