// Persistence: build a wave index on a real file, checkpoint its metadata,
// "restart" (drop every in-memory object), and reopen — queries work
// immediately, nothing is rebuilt.

#include <cstdio>
#include <iostream>

#include "index/index_builder.h"
#include "storage/file_device.h"
#include "storage/metered_device.h"
#include "util/format.h"
#include "wave/checkpoint.h"
#include "workload/netnews.h"

using namespace wavekit;

int main() {
  const std::string data_path = "/tmp/wavekit_example.data";
  const std::string ckpt_path = "/tmp/wavekit_example.ckpt";
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 200;
  workload::NetnewsGenerator netnews(netnews_config);
  const Value probe_word = netnews.WordForRank(3);

  // --- Session 1: build and checkpoint -------------------------------------
  {
    auto file = FileDevice::Open(data_path, uint64_t{1} << 26);
    file.status().Abort("open");
    MeteredDevice device(file.ValueOrDie().get());
    ExtentAllocator allocator(uint64_t{1} << 26);

    WaveIndex wave;
    for (Day d = 1; d <= 7; ++d) {
      DayBatch batch = netnews.GenerateDay(d);
      auto built = IndexBuilder::BuildPacked(&device, &allocator, {}, batch,
                                             "day" + std::to_string(d));
      built.status().Abort("build");
      wave.AddIndex(std::move(built).ValueOrDie());
    }
    WriteCheckpoint(wave, ckpt_path).Abort("checkpoint");
    file.ValueOrDie()->Sync().Abort("sync");
    std::cout << "session 1: indexed 7 days ("
              << FormatCount(wave.EntryCount()) << " entries, "
              << FormatBytes(wave.AllocatedBytes())
              << " on disk), checkpointed, shutting down.\n";
  }

  // --- Session 2: reopen and query -----------------------------------------
  {
    auto file = FileDevice::Open(data_path, uint64_t{1} << 26);
    file.status().Abort("reopen");
    MeteredDevice device(file.ValueOrDie().get());
    ExtentAllocator allocator(uint64_t{1} << 26);

    auto loaded = LoadCheckpoint(ckpt_path, &device, &allocator, {});
    loaded.status().Abort("load");
    const WaveIndex& wave = loaded.ValueOrDie();

    std::vector<Entry> hits;
    QueryStats stats;
    wave.TimedIndexProbe(DayRange{3, 5}, probe_word, &hits, &stats)
        .Abort("probe");
    std::cout << "session 2: reopened " << wave.num_constituents()
              << " constituents without rebuilding; probe for '" << probe_word
              << "' over days 3-5 returned " << hits.size() << " entries ("
              << stats.indexes_accessed << " indexes read, "
              << stats.indexes_skipped << " pruned by time-set).\n";
  }

  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
  return 0;
}
