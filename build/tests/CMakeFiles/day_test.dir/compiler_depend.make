# Empty compiler generated dependencies file for day_test.
# This may be replaced when dependencies are built.
