// Maintenance-cost model (paper Tables 10 and 11).
//
// Rather than hard-coding per-scheme closed forms, the model executes the
// real scheme at "count level" — day batches of a single tiny record, so the
// device work is negligible — and prices the resulting operation log with
// the Table 12 parameters. This yields exactly the per-day operation mix of
// Appendix A for arbitrary (W, n), including the cases the paper's closed
// forms gloss over (W not divisible by n, cycle boundaries).
//
// ClosedFormMaintenance provides the paper's headline closed forms for the
// schemes where Table 10/11 states them unambiguously; tests cross-check the
// two against each other.

#ifndef WAVEKIT_MODEL_MAINTENANCE_MODEL_H_
#define WAVEKIT_MODEL_MAINTENANCE_MODEL_H_

#include <optional>

#include "model/op_evaluator.h"
#include "update/update_technique.h"
#include "util/result.h"
#include "wave/scheme.h"

namespace wavekit {
namespace model {

/// \brief Runs `scheme_kind` for `measure_days` transitions (after warming up
/// `warmup_days`) on count-level data and returns the average per-day
/// maintenance cost priced with `params`.
Result<MaintenanceCost> MeasureMaintenance(SchemeKind scheme_kind,
                                           UpdateTechniqueKind technique,
                                           const CaseParams& params, int window,
                                           int num_indexes,
                                           int warmup_days = 0,
                                           int measure_days = 0);

/// \brief Table 10 / Table 11 closed forms (average per day, equal clusters
/// X = W/n). Returns nullopt for scheme/technique rows the paper does not
/// state in closed form.
std::optional<MaintenanceCost> ClosedFormMaintenance(
    SchemeKind scheme, UpdateTechniqueKind technique, const CaseParams& params,
    int window, int num_indexes);

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_MAINTENANCE_MODEL_H_
