// Compressed constituents: per-bucket codec (raw vs auto) across the
// paper's three case-study shapes.
//
// Packed constituents are immutable between rebuilds, so their buckets can
// be stored compressed (index/codec.h: delta+varint or bit-packed, chosen
// per bucket) and decoded at the read boundary. This bench builds each
// shape twice — codec=raw and codec=auto — on a REINDEX wave (fully packed
// constituents, rebuilt every transition) with the cache disabled, so every
// probe and scan pays the medium for exactly the stored bytes. A
// MeteredDevice counts the seeks and bytes; the paper's Table 12 cost model
// (14 ms seek, 10 MB/s transfer) prices them into modeled seconds.
//
// Shapes: `scam` and `wse` are Netnews-shaped posting lists (the SCAM and
// Web-Search-Engine case studies); `tpcd` is the LINEITEM/SUPPKEY warehouse
// (uniform keys, large dense buckets — where transfer time matters most);
// `tpcd_file` repeats the TPC-D shape on the real file backend to show the
// savings are not an artifact of the memory device.
//
// Bars (checked on the tpcd shape, skipped under --smoke): codec=auto moves
// >= 1.5x fewer probe-path bytes than raw and delivers >= 1.2x modeled
// probe throughput.
//
// Emits BENCH_compression.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "index/codec.h"
#include "storage/cost_model.h"
#include "util/macros.h"
#include "util/random.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"
#include "workload/tpcd.h"

namespace wavekit {
namespace {

struct Shape {
  std::string name;
  bool tpcd = false;
  std::string backend = "memory";
  int window = 7;
  int days = 4;  // transitions (= REINDEX rebuilds) past the start window
  uint64_t records = 2000;    // articles or LINEITEM rows per day
  uint64_t suppliers = 64;    // SUPPKEY universe (tpcd shapes only)
  int probes = 2000;
  int scans = 2;
};

struct VariantResult {
  std::string codec;
  uint64_t buckets[kNumCodecs] = {0, 0, 0};
  uint64_t stored_bytes = 0;
  uint64_t uncompressed_bytes = 0;
  double rebuild_wall_seconds = 0;
  double rebuild_modeled_seconds = 0;
  uint64_t probe_bytes = 0;
  uint64_t probe_seeks = 0;
  uint64_t probe_entries = 0;
  double probe_wall_seconds = 0;
  double probe_modeled_seconds = 0;
  uint64_t scan_bytes = 0;
  uint64_t scan_entries = 0;
  double scan_wall_seconds = 0;
  double scan_modeled_seconds = 0;

  double bytes_ratio() const {
    return stored_bytes > 0
               ? static_cast<double>(uncompressed_bytes) / stored_bytes
               : 1.0;
  }
};

double Elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Status RunVariant(const Shape& shape, CodecMode codec, VariantResult* result) {
  result->codec = CodecModeName(codec);

  WaveService::Options options;
  options.scheme = SchemeKind::kReindex;
  options.config.window = shape.window;
  options.config.num_indexes = 1;
  options.config.codec = codec;
  // No cache: every probe/scan reads the medium, so the meter sees exactly
  // the stored bytes each query path moves.
  options.cache_blocks = 0;
  options.storage_backend = shape.backend;
  if (shape.backend != "memory") {
    options.storage_path = "/tmp/wavekit_bench_compression_" + shape.name +
                           "_" + result->codec + ".dat";
  }
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WaveService> service,
                           WaveService::Create(options));

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = shape.records;
  workload::NetnewsGenerator netnews(netnews_config);
  workload::TpcdConfig tpcd_config;
  tpcd_config.rows_per_day = shape.records;
  tpcd_config.num_suppliers = shape.suppliers;
  workload::TpcdGenerator tpcd(tpcd_config);
  const auto generate_day = [&](Day d) {
    return shape.tpcd ? tpcd.GenerateDay(d) : netnews.GenerateDay(d);
  };
  const auto sample_value = [&](Rng& rng) {
    return shape.tpcd ? tpcd.SampleSuppkey(rng) : netnews.SampleWord(rng);
  };
  const CostModel model = CostModel::Paper();

  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= static_cast<Day>(shape.window); ++d) {
    first_window.push_back(generate_day(d));
  }
  WAVEKIT_RETURN_NOT_OK(service->Start(std::move(first_window)));

  // REINDEX rebuild cost: every transition rebuilds the full packed window,
  // so `days` advances meter `days` complete rebuilds (reads of the day
  // store plus writes of the new constituent — compressed writes are
  // smaller).
  service->device()->Reset();
  auto t0 = std::chrono::steady_clock::now();
  for (Day d = shape.window + 1;
       d <= shape.window + static_cast<Day>(shape.days); ++d) {
    WAVEKIT_RETURN_NOT_OK(service->AdvanceDay(generate_day(d)));
  }
  result->rebuild_wall_seconds = Elapsed(t0);
  result->rebuild_modeled_seconds = model.Seconds(service->device()->total());

  const ConstituentIndex::CodecBreakdown totals = service->CodecTotals();
  for (int c = 0; c < kNumCodecs; ++c) result->buckets[c] = totals.buckets[c];
  result->stored_bytes = totals.stored_bytes;
  result->uncompressed_bytes = totals.uncompressed_bytes;

  // Probe path: same value sequence for both variants.
  service->device()->Reset();
  Rng rng(424242);
  std::vector<Entry> out;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < shape.probes; ++i) {
    out.clear();
    WAVEKIT_RETURN_NOT_OK(service->IndexProbe(sample_value(rng), &out));
    result->probe_entries += out.size();
  }
  result->probe_wall_seconds = Elapsed(t0);
  IoCounters io = service->device()->total();
  result->probe_bytes = io.bytes_read;
  result->probe_seeks = io.seeks;
  result->probe_modeled_seconds = model.Seconds(io);

  // Scan path: full-window segment scans.
  const DayRange window =
      DayRange::Window(service->current_day(), shape.window);
  service->device()->Reset();
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < shape.scans; ++i) {
    WAVEKIT_RETURN_NOT_OK(service->TimedSegmentScan(
        window, [&result](const Value&, const Entry&) {
          ++result->scan_entries;
        }));
  }
  result->scan_wall_seconds = Elapsed(t0);
  io = service->device()->total();
  result->scan_bytes = io.bytes_read;
  result->scan_modeled_seconds = model.Seconds(io);
  return Status::OK();
}

double Ratio(double raw, double compressed) {
  return compressed > 0 ? raw / compressed : 0.0;
}

void PrintShapeTable(const Shape& shape, const VariantResult& raw,
                     const VariantResult& auto_result) {
  std::printf("\n[%s] window=%d days=%d records/day=%llu backend=%s\n",
              shape.name.c_str(), shape.window, shape.days,
              static_cast<unsigned long long>(shape.records),
              shape.backend.c_str());
  std::printf("  %-6s %14s %14s %12s %14s %14s %12s\n", "codec", "stored",
              "uncompressed", "probe MB", "probe s(mod)", "scan s(mod)",
              "rebuild s");
  for (const VariantResult* v : {&raw, &auto_result}) {
    std::printf("  %-6s %14llu %14llu %12.2f %14.3f %14.3f %12.3f\n",
                v->codec.c_str(),
                static_cast<unsigned long long>(v->stored_bytes),
                static_cast<unsigned long long>(v->uncompressed_bytes),
                v->probe_bytes / 1e6, v->probe_modeled_seconds,
                v->scan_modeled_seconds, v->rebuild_wall_seconds);
  }
  std::printf(
      "  -> stored %.2fx smaller, probe bytes %.2fx fewer, modeled probe "
      "%.2fx faster, modeled scan %.2fx faster\n",
      auto_result.bytes_ratio(),
      Ratio(static_cast<double>(raw.probe_bytes),
            static_cast<double>(auto_result.probe_bytes)),
      Ratio(raw.probe_modeled_seconds, auto_result.probe_modeled_seconds),
      Ratio(raw.scan_modeled_seconds, auto_result.scan_modeled_seconds));
}

void WriteVariantJson(std::ofstream& out, const VariantResult& v,
                      const char* indent) {
  out << indent << "\"codec\": \"" << v.codec << "\",\n"
      << indent << "\"buckets_raw\": " << v.buckets[0] << ",\n"
      << indent << "\"buckets_delta\": " << v.buckets[1] << ",\n"
      << indent << "\"buckets_bitpack\": " << v.buckets[2] << ",\n"
      << indent << "\"stored_bytes\": " << v.stored_bytes << ",\n"
      << indent << "\"uncompressed_bytes\": " << v.uncompressed_bytes << ",\n"
      << indent << "\"probe_bytes\": " << v.probe_bytes << ",\n"
      << indent << "\"probe_seeks\": " << v.probe_seeks << ",\n"
      << indent << "\"probe_entries\": " << v.probe_entries << ",\n"
      << indent << "\"probe_wall_seconds\": " << v.probe_wall_seconds << ",\n"
      << indent << "\"probe_modeled_seconds\": " << v.probe_modeled_seconds
      << ",\n"
      << indent << "\"scan_bytes\": " << v.scan_bytes << ",\n"
      << indent << "\"scan_entries\": " << v.scan_entries << ",\n"
      << indent << "\"scan_wall_seconds\": " << v.scan_wall_seconds << ",\n"
      << indent << "\"scan_modeled_seconds\": " << v.scan_modeled_seconds
      << ",\n"
      << indent << "\"rebuild_wall_seconds\": " << v.rebuild_wall_seconds
      << ",\n"
      << indent
      << "\"rebuild_modeled_seconds\": " << v.rebuild_modeled_seconds << "\n";
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<Shape> shapes;
  {
    Shape scam;
    scam.name = "scam";
    scam.window = 7;
    scam.days = 4;
    scam.records = 1500;
    scam.probes = 4000;
    scam.scans = 4;
    Shape wse;
    wse.name = "wse";
    wse.window = 10;
    wse.days = 4;
    wse.records = 5000;
    wse.probes = 2500;
    wse.scans = 3;
    Shape tpcd;
    tpcd.name = "tpcd";
    tpcd.tpcd = true;
    tpcd.window = 10;
    tpcd.days = 4;
    tpcd.records = 30000;
    tpcd.suppliers = 64;
    tpcd.probes = 1500;
    tpcd.scans = 2;
    Shape tpcd_file;
    tpcd_file.name = "tpcd_file";
    tpcd_file.tpcd = true;
    tpcd_file.backend = "file";
    tpcd_file.window = 10;
    tpcd_file.days = 3;
    tpcd_file.records = 8000;
    tpcd_file.suppliers = 64;
    tpcd_file.probes = 1000;
    tpcd_file.scans = 2;
    shapes = {scam, wse, tpcd, tpcd_file};
  }
  if (smoke) {
    for (Shape& shape : shapes) {
      shape.days = 2;
      shape.records = shape.tpcd ? 1500 : 200;
      shape.suppliers = 32;
      shape.probes = 200;
      shape.scans = 1;
    }
  }

  bench::Banner(
      "Compressed constituents: per-bucket codec (raw vs auto)",
      "packed buckets decode at the read boundary, so probes and scans move "
      "the stored (compressed) bytes; TPC-D bar: >= 1.5x fewer probe-path "
      "bytes, >= 1.2x modeled probe throughput");

  std::vector<VariantResult> raw_results(shapes.size());
  std::vector<VariantResult> auto_results(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    Status status = RunVariant(shapes[i], CodecMode::kRaw, &raw_results[i]);
    if (status.ok()) {
      status = RunVariant(shapes[i], CodecMode::kAuto, &auto_results[i]);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "shape %s failed: %s\n", shapes[i].name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    PrintShapeTable(shapes[i], raw_results[i], auto_results[i]);
  }

  std::ofstream out("BENCH_compression.json");
  out << "{\n"
      << "  \"bench\": \"compression\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"cost_model\": {\"seek_seconds\": 0.014, "
         "\"transfer_bytes_per_second\": 10000000},\n"
      << "  \"shapes\": [\n";
  for (size_t i = 0; i < shapes.size(); ++i) {
    const Shape& shape = shapes[i];
    const VariantResult& raw = raw_results[i];
    const VariantResult& packed = auto_results[i];
    out << "    {\n"
        << "      \"name\": \"" << shape.name << "\",\n"
        << "      \"workload\": \"" << (shape.tpcd ? "tpcd" : "netnews")
        << "\",\n"
        << "      \"backend\": \"" << shape.backend << "\",\n"
        << "      \"window\": " << shape.window << ",\n"
        << "      \"days\": " << shape.days << ",\n"
        << "      \"records_per_day\": " << shape.records << ",\n"
        << "      \"probes\": " << shape.probes << ",\n"
        << "      \"scans\": " << shape.scans << ",\n"
        << "      \"raw\": {\n";
    WriteVariantJson(out, raw, "        ");
    out << "      },\n"
        << "      \"auto\": {\n";
    WriteVariantJson(out, packed, "        ");
    out << "      },\n"
        << "      \"stored_bytes_ratio\": " << packed.bytes_ratio() << ",\n"
        << "      \"probe_bytes_ratio\": "
        << Ratio(static_cast<double>(raw.probe_bytes),
                 static_cast<double>(packed.probe_bytes))
        << ",\n"
        << "      \"probe_modeled_speedup\": "
        << Ratio(raw.probe_modeled_seconds, packed.probe_modeled_seconds)
        << ",\n"
        << "      \"scan_modeled_speedup\": "
        << Ratio(raw.scan_modeled_seconds, packed.scan_modeled_seconds)
        << ",\n"
        << "      \"rebuild_modeled_ratio\": "
        << Ratio(raw.rebuild_modeled_seconds, packed.rebuild_modeled_seconds)
        << "\n"
        << "    }" << (i + 1 < shapes.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::printf("\nWrote BENCH_compression.json\n");

  bench::ShapeChecks checks;
  for (size_t i = 0; i < shapes.size(); ++i) {
    const std::string& name = shapes[i].name;
    const VariantResult& raw = raw_results[i];
    const VariantResult& packed = auto_results[i];
    checks.Check(raw.stored_bytes == raw.uncompressed_bytes,
                 name + ": codec=raw stores buckets byte-identical");
    checks.Check(packed.buckets[1] + packed.buckets[2] > 0,
                 name + ": codec=auto actually compressed buckets");
    checks.Check(packed.stored_bytes < raw.stored_bytes,
                 name + ": codec=auto stores fewer bytes than raw");
    checks.Check(packed.uncompressed_bytes == raw.uncompressed_bytes,
                 name + ": both variants index the same logical bytes");
    checks.Check(packed.probe_entries == raw.probe_entries,
                 name + ": probes returned identical entry counts");
    checks.Check(packed.scan_entries == raw.scan_entries,
                 name + ": scans visited identical entry counts");
    checks.Check(packed.probe_bytes < raw.probe_bytes,
                 name + ": probes moved fewer bytes under compression");
  }
  if (!smoke) {
    const VariantResult& raw = raw_results[2];
    const VariantResult& packed = auto_results[2];
    checks.Check(static_cast<double>(raw.probe_bytes) >=
                     1.5 * static_cast<double>(packed.probe_bytes),
                 "tpcd: >= 1.5x fewer probe-path bytes vs raw");
    checks.Check(raw.probe_modeled_seconds >=
                     1.2 * packed.probe_modeled_seconds,
                 "tpcd: >= 1.2x modeled probe throughput vs raw");
  }
  return checks.Finish();
}
