// Shared test fixtures and helpers.

#ifndef WAVEKIT_TESTS_TESTING_TEST_ENV_H_
#define WAVEKIT_TESTS_TESTING_TEST_ENV_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "index/record.h"
#include "storage/store.h"
#include "util/macros.h"
#include "util/day.h"
#include "util/status.h"
#include "wave/day_store.h"
#include "wave/scheme.h"

namespace wavekit {
namespace testing {

/// \brief Base seed of every randomized test in this binary: the
/// WAVEKIT_TEST_SEED environment variable when set, 1 otherwise. Seed loops
/// iterate TestSeed(0..k), so exporting WAVEKIT_TEST_SEED replays a failing
/// CI shard's exact seeds locally.
inline uint64_t TestSeedBase() {
  static const uint64_t base = [] {
    const char* env = std::getenv("WAVEKIT_TEST_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    }
    return uint64_t{1};
  }();
  return base;
}

/// The seed of iteration `i` of a seed loop.
inline uint64_t TestSeed(uint64_t i) { return TestSeedBase() + i; }

namespace internal {

/// Prints the active base seed at the start of every test, so any failure in
/// CI logs carries the line needed to reproduce it locally.
class SeedLogger : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo& info) override {
    std::printf("[   SEED   ] %s.%s base seed %llu (set WAVEKIT_TEST_SEED "
                "to override)\n",
                info.test_suite_name(), info.name(),
                static_cast<unsigned long long>(TestSeedBase()));
  }
};

// Registered once per test binary (inline variable: one instance even when
// this header is included from several translation units). gtest takes
// ownership of the listener.
inline const bool kSeedLoggerRegistered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedLogger);
  return true;
}();

}  // namespace internal

inline ::testing::AssertionResult IsOkPredFormat(
    const char* expr_str, const ::wavekit::Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr_str << " returned " << status.ToString();
}

#define ASSERT_OK(expr) \
  ASSERT_PRED_FORMAT1(::wavekit::testing::IsOkPredFormat, (expr))

#define EXPECT_OK(expr) \
  EXPECT_PRED_FORMAT1(::wavekit::testing::IsOkPredFormat, (expr))

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                    \
  ASSERT_OK_AND_ASSIGN_IMPL(                                \
      WAVEKIT_CONCAT(_test_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(result_name, lhs, rexpr)  \
  auto result_name = (rexpr);                               \
  ASSERT_TRUE(result_name.ok()) << result_name.status();    \
  lhs = std::move(result_name).ValueOrDie()

/// \brief A deterministic day batch: `entries_per_value` entries for each of
/// `values`, with record ids derived from the day.
inline DayBatch MakeBatch(Day day, const std::vector<Value>& values,
                          int entries_per_value = 1) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < entries_per_value; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = values;
    batch.records.push_back(std::move(record));
  }
  return batch;
}

/// \brief A simple batch with `num_records` records, each holding one value
/// drawn round-robin from a small alphabet plus one day-unique value.
inline DayBatch MakeMixedBatch(Day day, int num_records = 6) {
  static const char* kAlphabet[] = {"alpha", "beta", "gamma"};
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < num_records; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {kAlphabet[i % 3], "day" + std::to_string(day)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

/// \brief Brute-force reference: all (value, entry) pairs of the batches of
/// `days`, for comparing against index query results.
class ReferenceIndex {
 public:
  void Add(const DayBatch& batch) {
    for (const Record& record : batch.records) {
      for (size_t i = 0; i < record.values.size(); ++i) {
        entries_[record.values[i]].push_back(
            Entry{record.record_id, batch.day, record.AuxFor(i)});
      }
    }
  }

  /// Entries for `value` with day in [lo, hi], sorted for comparison.
  std::vector<Entry> Probe(const Value& value, Day lo, Day hi) const {
    std::vector<Entry> out;
    auto it = entries_.find(value);
    if (it == entries_.end()) return out;
    for (const Entry& e : it->second) {
      if (lo <= e.day && e.day <= hi) out.push_back(e);
    }
    Sort(&out);
    return out;
  }

  /// All entries with day in [lo, hi], sorted.
  std::vector<Entry> ScanAll(Day lo, Day hi) const {
    std::vector<Entry> out;
    for (const auto& [value, entries] : entries_) {
      for (const Entry& e : entries) {
        if (lo <= e.day && e.day <= hi) out.push_back(e);
      }
    }
    Sort(&out);
    return out;
  }

  static void Sort(std::vector<Entry>* entries) {
    std::sort(entries->begin(), entries->end(),
              [](const Entry& a, const Entry& b) {
                return std::tie(a.record_id, a.day, a.aux) <
                       std::tie(b.record_id, b.day, b.aux);
              });
  }

 private:
  std::map<Value, std::vector<Entry>> entries_;
};

/// \brief Fixture bundling a Store and a DayStore.
class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(uint64_t{1} << 30) {}

  SchemeEnv Env() {
    return SchemeEnv{store_.device(), store_.allocator(), &day_store_};
  }

  ConstituentIndex::Options Options(
      DirectoryKind kind = DirectoryKind::kHash) {
    ConstituentIndex::Options options;
    options.directory = kind;
    return options;
  }

  Store store_;
  DayStore day_store_;
};

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTS_TESTING_TEST_ENV_H_
