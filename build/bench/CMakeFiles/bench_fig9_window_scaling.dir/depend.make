# Empty dependencies file for bench_fig9_window_scaling.
# This may be replaced when dependencies are built.
