# Empty compiler generated dependencies file for wavectl.
# This may be replaced when dependencies are built.
