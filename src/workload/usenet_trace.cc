#include "workload/usenet_trace.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace wavekit {
namespace workload {

UsenetVolumeTrace::UsenetVolumeTrace(UsenetTraceConfig config)
    : config_(config) {}

uint64_t UsenetVolumeTrace::PostingsOn(int day) const {
  // Weekly base levels (Mon..Sun), in paper-scale postings: weekdays around
  // 85-110k with a mid-week peak, Saturday ~45k, Sunday ~30k (Figure 2).
  static const double kWeekday[7] = {90000, 100000, 110000, 105000,
                                     95000,  45000,  30000};
  const int weekday = ((day - 1) + config_.first_weekday) % 7;
  double volume = kWeekday[weekday];
  // Slow monthly swell (Figure 2 shows the second week of September peaking).
  volume *= 1.0 + 0.06 * std::sin(2.0 * M_PI * day / 30.0);
  // Deterministic per-day noise.
  Rng rng = Rng(config_.seed).Fork(static_cast<uint64_t>(day));
  volume *= 1.0 + config_.noise * (2.0 * rng.NextDouble() - 1.0);
  volume *= config_.scale;
  return static_cast<uint64_t>(std::max(volume, 1.0));
}

std::vector<uint64_t> UsenetVolumeTrace::Series(int num_days) const {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(num_days));
  for (int d = 1; d <= num_days; ++d) out.push_back(PostingsOn(d));
  return out;
}

}  // namespace workload
}  // namespace wavekit
