#include "model/query_model.h"

#include <algorithm>
#include <cmath>

namespace wavekit {
namespace model {

QueryShape ShapeOf(SchemeKind scheme, UpdateTechniqueKind technique, int window,
                   int num_indexes) {
  QueryShape shape;
  const double w = window;
  const double n = num_indexes;
  double total_days = w;
  if (scheme == SchemeKind::kWata || scheme == SchemeKind::kKnownBoundWata) {
    // Soft window: on average about (Y - 1) / 2 residual expired days are
    // still indexed (the residual ramps 0..Y-1 over a drop cycle).
    const double y = n > 1 ? (w - 1) / (n - 1) : w;
    total_days += (y - 1) / 2.0;
  }
  shape.days_per_index = total_days / n;
  // REINDEX rebuilds packed every day; packed shadow updating keeps every
  // scheme's constituents packed.
  shape.packed = scheme == SchemeKind::kReindex ||
                 technique == UpdateTechniqueKind::kPackedShadow;
  return shape;
}

double TimedIndexProbeSeconds(const CaseParams& params, const QueryShape& shape,
                              int indexes_touched) {
  const double per_index =
      params.hardware.seek_seconds +
      shape.days_per_index * params.bucket_bytes_per_day /
          params.hardware.transfer_bytes_per_second;
  return indexes_touched * per_index;
}

double TimedSegmentScanSeconds(const CaseParams& params,
                               const QueryShape& shape, int indexes_touched) {
  const double day_bytes =
      shape.packed ? params.packed_day_bytes : params.unpacked_day_bytes;
  const double per_index =
      params.hardware.seek_seconds +
      shape.days_per_index * day_bytes /
          params.hardware.transfer_bytes_per_second;
  return indexes_touched * per_index;
}

double DailyQuerySeconds(const CaseParams& params, SchemeKind scheme,
                         UpdateTechniqueKind technique, int window,
                         int num_indexes) {
  const QueryShape shape = ShapeOf(scheme, technique, window, num_indexes);
  const int probe_idx = params.probes_touch_all_indexes ? num_indexes : 1;
  const int scan_idx = params.scans_touch_all_indexes ? num_indexes : 1;
  return params.probes_per_day *
             TimedIndexProbeSeconds(params, shape, probe_idx) +
         params.scans_per_day *
             TimedSegmentScanSeconds(params, shape, scan_idx);
}

}  // namespace model
}  // namespace wavekit
