// SynchronizedMeteredDevice: a MeteredDevice whose Read/Write are serialized
// by a mutex, for serving deployments where query threads read while the
// maintenance thread writes (wave/wave_service.h). Serializing I/O matches
// how a single real disk behaves anyway.

#ifndef WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_
#define WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_

#include <mutex>

#include "storage/metered_device.h"

namespace wavekit {

/// \brief Thread-safe MeteredDevice. Phase changes (set_phase / PhaseScope)
/// remain writer-only by convention: metering attribution is advisory under
/// concurrency, but counters and data are always consistent.
class SynchronizedMeteredDevice : public MeteredDevice {
 public:
  using MeteredDevice::MeteredDevice;

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return MeteredDevice::Read(offset, out);
  }

  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return MeteredDevice::Write(offset, data);
  }

 private:
  std::mutex mutex_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_
