// Store: convenience bundle of the storage substrate — a base device (the
// modeled in-memory disk by default, or any registered backend), its
// metering wrapper, and an extent allocator over the same address range.

#ifndef WAVEKIT_STORAGE_STORE_H_
#define WAVEKIT_STORAGE_STORE_H_

#include <memory>
#include <string_view>
#include <utility>

#include "storage/backend_registry.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/metered_device.h"
#include "storage/synchronized_device.h"
#include "util/macros.h"

namespace wavekit {

/// \brief One self-contained disk. Examples, tests, and the experiment
/// driver all start from a Store.
///
/// The device is the synchronized (thread-safe) metered variant, so stores
/// can back concurrent serving and parallel query fan-out out of the box; an
/// uncontended mutex costs nothing measurable next to the simulated I/O.
class Store {
 public:
  explicit Store(uint64_t capacity_bytes = uint64_t{16} << 30)
      : base_(std::make_unique<MemoryDevice>(capacity_bytes)),
        metered_(base_.get()),
        allocator_(capacity_bytes) {}

  /// Wraps an externally opened backend device (takes ownership); the
  /// allocator spans the device's capacity. Prefer Open() below, which also
  /// applies the backend's alignment capability.
  explicit Store(std::unique_ptr<Device> device)
      : base_(std::move(device)),
        metered_(base_.get()),
        allocator_(base_->capacity()) {}

  /// Opens a Store over the named registered backend ("memory", "file",
  /// "uring", "mmap"), applying the backend's effective extent alignment
  /// (O_DIRECT backends get 4 KiB-aligned placement automatically).
  static Result<std::unique_ptr<Store>> Open(std::string_view backend,
                                             const BackendConfig& config) {
    WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<Device> device,
                             BackendRegistry::Global().Create(backend, config));
    WAVEKIT_ASSIGN_OR_RETURN(
        const BackendCapabilities capabilities,
        BackendRegistry::Global().EffectiveCapabilities(backend, config));
    auto store = std::make_unique<Store>(std::move(device));
    if (capabilities.alignment > 1) {
      store->allocator()->set_default_alignment(capabilities.alignment);
    }
    return store;
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  MeteredDevice* device() { return &metered_; }
  ExtentAllocator* allocator() { return &allocator_; }
  const MeteredDevice& device() const { return metered_; }
  const ExtentAllocator& allocator() const { return allocator_; }

  /// The raw backend under the meter (backend-aware tests/benches).
  Device* base_device() { return base_.get(); }

 private:
  std::unique_ptr<Device> base_;
  SynchronizedMeteredDevice metered_;
  ExtentAllocator allocator_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_STORE_H_
