// Observability: one registry and one tracer watching a live wave service.
//
// The paper's evaluation is an accounting exercise — seeks and bytes per
// phase per scheme. This example shows the serving-time version of that
// accounting: a MetricsRegistry consolidating the device's per-phase
// counters, the block cache's per-shard stats, and the service's latency
// histograms; plus an AdvanceDay trace showing which Section 2.2 primitives
// the scheme ran and what each cost on the (simulated) disk.

#include <iostream>

#include "obs/metrics.h"
#include "util/format.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

using namespace wavekit;

int main() {
  // 1. A registry the service will publish everything into, and tracing at
  //    full sampling so every AdvanceDay leaves a span tree behind.
  obs::MetricsRegistry registry;

  WaveService::Options options;
  options.scheme = SchemeKind::kReindexPlusPlus;
  options.config.window = 7;
  options.config.num_indexes = 3;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  options.cache_blocks = 512;
  options.metrics_registry = &registry;
  options.trace_sample_rate = 1.0;
  auto created = WaveService::Create(options);
  if (!created.ok()) {
    std::cerr << created.status() << "\n";
    return 1;
  }
  std::unique_ptr<WaveService> service = std::move(created).ValueOrDie();

  // 2. Serve a short workload: a start window, a week of transitions, and a
  //    few hundred probes.
  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 200;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first_week;
  for (Day d = 1; d <= 7; ++d) first_week.push_back(netnews.GenerateDay(d));
  service->Start(std::move(first_week)).Abort("Start");

  Rng rng(7);
  for (Day d = 8; d <= 14; ++d) {
    service->AdvanceDay(netnews.GenerateDay(d)).Abort("AdvanceDay");
    for (int i = 0; i < 50; ++i) {
      std::vector<Entry> out;
      service->IndexProbe(netnews.SampleWord(rng), &out).Abort("probe");
    }
  }

  // 3. The whole deployment in one snapshot, rendered for a scraper...
  std::cout << "--- Prometheus exposition (excerpt) ---\n";
  const std::string prometheus = registry.RenderPrometheus();
  std::cout << prometheus.substr(0, prometheus.find("wavekit_device"));
  std::cout << "... (" << registry.size() << " metrics total)\n";

  // 4. ...and the last AdvanceDay as a span tree: the root span plus one
  //    child per maintenance primitive, with its seek/byte delta.
  std::cout << "\n--- last AdvanceDay trace ---\n";
  const std::vector<obs::SpanRecord> spans =
      service->tracer()->CompletedSpans();
  const uint64_t last_trace = spans.empty() ? 0 : spans.back().trace_id;
  for (const obs::SpanRecord& span : spans) {
    if (span.trace_id != last_trace) continue;
    std::cout << (span.parent_span_id == 0 ? "" : "  ") << span.name << ": "
              << span.duration_us << " us, " << span.seeks << " seeks, "
              << FormatBytes(span.bytes_read) << " read, "
              << FormatBytes(span.bytes_written) << " written\n";
  }
  std::cout << "\n" << service->tracer()->roots_sampled() << "/"
            << service->tracer()->roots_started()
            << " transitions traced; every number above came from one "
               "registry and one ring buffer — no stop-the-world.\n";
  return 0;
}
