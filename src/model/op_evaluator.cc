#include "model/op_evaluator.h"

namespace wavekit {
namespace model {

double OpEvaluator::PriceOp(const OpRecord& record) const {
  const double days = record.op_days;
  switch (record.kind) {
    case OpKind::kBuildIndex:
      return days * params_.build_seconds;
    case OpKind::kAddToIndex:
      switch (record.mode) {
        case ApplyMode::kIncremental:
          return days * params_.add_seconds;
        case ApplyMode::kRebuild:
          // Packed shadow: inserts are written packed during the smart copy,
          // costing Build rather than Add (Section 6 discussion of Table 11).
          return days * params_.build_seconds;
        case ApplyMode::kMerged:
          return 0;
      }
      return 0;
    case OpKind::kDeleteFromIndex:
      switch (record.mode) {
        case ApplyMode::kIncremental:
          return days * params_.delete_seconds;
        case ApplyMode::kRebuild:
        case ApplyMode::kMerged:
          return 0;  // folded into the smart copy
      }
      return 0;
    case OpKind::kCopyIndex:
      return record.op_days * params_.CpSeconds();
    case OpKind::kSmartCopyIndex:
      return record.op_days * params_.SmcpSeconds();
    case OpKind::kDropIndex:
      // "In a commercial relational database such as Sybase, it takes a few
      // milli-seconds to throw away an index irrespective of the index size."
      return 0.005;
    case OpKind::kRename:
      return 0;
  }
  return 0;
}

MaintenanceCost OpEvaluator::PriceDay(const OpLog& log, Day day) const {
  MaintenanceCost cost;
  for (const OpRecord& record : log.records()) {
    if (record.at_day != day) continue;
    const double seconds = PriceOp(record);
    if (record.phase == Phase::kPrecompute) {
      cost.precompute_seconds += seconds;
    } else {
      cost.transition_seconds += seconds;
    }
  }
  return cost;
}

MaintenanceCost OpEvaluator::AverageOverDays(const OpLog& log, Day first_day,
                                             Day last_day) const {
  MaintenanceCost total;
  for (const OpRecord& record : log.records()) {
    if (record.at_day <= first_day || record.at_day > last_day) continue;
    const double seconds = PriceOp(record);
    if (record.phase == Phase::kPrecompute) {
      total.precompute_seconds += seconds;
    } else {
      total.transition_seconds += seconds;
    }
  }
  const double days = last_day - first_day;
  if (days > 0) {
    total.transition_seconds /= days;
    total.precompute_seconds /= days;
  }
  return total;
}

}  // namespace model
}  // namespace wavekit
