file(REMOVE_RECURSE
  "CMakeFiles/btree_directory_test.dir/index/btree_directory_test.cc.o"
  "CMakeFiles/btree_directory_test.dir/index/btree_directory_test.cc.o.d"
  "btree_directory_test"
  "btree_directory_test.pdb"
  "btree_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
