// Deterministic server-simulation episodes in the test suite: a handful of
// seeds through testing/server_sim.h, asserting every oracle cross-check
// passes and that episodes replay byte-identically (the digest is the
// contract — any nondeterminism in the serving path, down to reply byte
// order, fails here).

#include <gtest/gtest.h>

#include "testing/server_sim.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

testing::ServerSimConfig SmallConfig(uint64_t seed) {
  testing::ServerSimConfig config;
  config.seed = seed;
  config.episodes = 4;
  config.tenants = 2;
  config.days = 3;
  config.articles_per_day = 8;
  config.probes_per_step = 2;
  return config;
}

TEST(ServerSimTest, EpisodesPassAndReplayByteIdentically) {
  // RunMany replays every episode and fails on digest divergence itself.
  const testing::ServerSimulator simulator(SmallConfig(testing::TestSeed(0)));
  const testing::ServerEpisodeResult result = simulator.RunMany();
  EXPECT_OK(result.status) << "repro: " << result.repro << "\n"
                           << result.trace;
  EXPECT_GT(result.requests, 0u);
}

TEST(ServerSimTest, DifferentEpisodesDiverge) {
  // Sanity on the digest itself: distinct episodes must not collide on both
  // digest and trace (if they did, the digest proves nothing).
  const testing::ServerSimulator simulator(SmallConfig(testing::TestSeed(1)));
  const testing::ServerEpisodeResult a = simulator.RunEpisode(0);
  const testing::ServerEpisodeResult b = simulator.RunEpisode(1);
  ASSERT_OK(a.status);
  ASSERT_OK(b.status);
  EXPECT_TRUE(a.digest != b.digest || a.trace != b.trace);
}

TEST(ServerSimTest, FailureCarriesReproCommand) {
  // An impossible config (zero-day episodes still run; use tenants=1 with
  // days=0 to keep it cheap) — here we just assert the repro format from a
  // constructed failure path: an episode that cannot fail returns no repro.
  const testing::ServerSimulator simulator(SmallConfig(testing::TestSeed(2)));
  const testing::ServerEpisodeResult ok = simulator.RunEpisode(0);
  ASSERT_OK(ok.status);
  EXPECT_TRUE(ok.repro.empty());
  EXPECT_EQ(testing::ServerReproCommand(7, 3),
            "sim_torture --serve --seed=7 --episode=3");
}

}  // namespace
}  // namespace wavekit
