// DEL (paper Section 3.1, Figure 12): delete the expired day from the
// constituent that holds it, then insert the new day into the same
// constituent.

#ifndef WAVEKIT_WAVE_DEL_SCHEME_H_
#define WAVEKIT_WAVE_DEL_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The DEL maintenance scheme. Hard windows; requires incremental
/// delete support; the resulting indexes are packed only under packed shadow
/// updating. With n = 1 this is the "obvious" single conventional index.
///
/// Daily cost attribution follows Table 10: under simple shadow updating the
/// shadow copy and the delete run as pre-computation (they do not need the
/// new day's data), so the transition critical path is a single AddToIndex.
class DelScheme : public Scheme {
 public:
  DelScheme(SchemeEnv env, SchemeConfig config)
      : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kDel; }
  std::string_view name() const override { return "DEL"; }
  bool hard_window() const override { return true; }

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_DEL_SCHEME_H_
