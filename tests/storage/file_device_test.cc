#include "storage/file_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <span>

#include "index/index_builder.h"
#include "storage/metered_device.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

class FileDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process AND per fixture: ctest runs tests in parallel
    // processes whose heap layout can coincide, so `this` alone collides.
    path_ = ::testing::TempDir() + "wavekit_file_device_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST_F(FileDeviceTest, WriteReadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
  ASSERT_OK(device->Write(100, Bytes("persisted")));
  std::vector<std::byte> out(9);
  ASSERT_OK(device->Read(100, out));
  EXPECT_EQ(std::memcmp(out.data(), "persisted", 9), 0);
  ASSERT_OK(device->Sync());
}

TEST_F(FileDeviceTest, DataSurvivesReopen) {
  {
    ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
    ASSERT_OK(device->Write(0, Bytes("durable")));
    ASSERT_OK(device->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto reopened, FileDevice::Open(path_, 1 << 20));
  std::vector<std::byte> out(7);
  ASSERT_OK(reopened->Read(0, out));
  EXPECT_EQ(std::memcmp(out.data(), "durable", 7), 0);
}

TEST_F(FileDeviceTest, UnwrittenBytesReadZero) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
  ASSERT_OK(device->Write(0, Bytes("x")));
  std::vector<std::byte> out(16, std::byte{0xFF});
  ASSERT_OK(device->Read(1000, out));  // past EOF of the sparse file
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FileDeviceTest, RejectsOutOfRange) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 64));
  std::vector<std::byte> buf(32);
  EXPECT_TRUE(device->Write(40, buf).IsOutOfRange());
  EXPECT_TRUE(device->Read(40, buf).IsOutOfRange());
  EXPECT_OK(device->Write(32, buf));
}

TEST_F(FileDeviceTest, OpenFailsOnBadPath) {
  auto result = FileDevice::Open("/no/such/directory/x.dat", 64);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FileDeviceTest, ReadBatchByteIdenticalToBaseLoop) {
  // The preadv coalescing override must be indistinguishable from Device's
  // per-extent loop — including sorted-then-restored ordering, duplicate
  // extents, adjacent runs, empty extents, and sparse (EOF) tails.
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
  std::vector<std::byte> blob(48 * 1024);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>((i * 37) & 0xFF);
  }
  ASSERT_OK(device->Write(0, blob));
  const std::vector<Extent> extents = {
      {40000, 1000},  // out of order on purpose
      {0, 512},
      {512, 512},     // file-adjacent to the previous: one coalesced run
      {0, 512},       // duplicate range
      {47 * 1024, 4096},  // crosses EOF into the sparse tail
      {200, 0},       // empty
      {1024, 1},
  };
  uint64_t total = 0;
  for (const Extent& e : extents) total += e.length;
  std::vector<std::byte> batched(total, std::byte{0xCC});
  ASSERT_OK(device->ReadBatch(extents, batched));
  // Base semantics, straight off Device's default implementation.
  std::vector<std::byte> looped(total, std::byte{0x33});
  size_t cursor = 0;
  for (const Extent& e : extents) {
    ASSERT_OK(device->Read(
        e.offset, std::span<std::byte>(looped.data() + cursor, e.length)));
    cursor += e.length;
  }
  EXPECT_EQ(batched, looped);
}

TEST_F(FileDeviceTest, WriteBatchByteIdenticalToBaseLoop) {
  // pwritev-coalesced WriteBatch vs the per-extent loop applied to a twin
  // file: final contents must match byte for byte.
  const std::string twin = path_ + ".twin";
  std::remove(twin.c_str());
  ASSERT_OK_AND_ASSIGN(auto batched_dev, FileDevice::Open(path_, 1 << 20));
  ASSERT_OK_AND_ASSIGN(auto looped_dev, FileDevice::Open(twin, 1 << 20));
  const std::vector<Extent> extents = {
      {30000, 2000}, {0, 100}, {100, 100}, {100000, 50}, {5000, 0},
  };
  uint64_t total = 0;
  for (const Extent& e : extents) total += e.length;
  std::vector<std::byte> data(total);
  for (size_t i = 0; i < total; ++i) {
    data[i] = static_cast<std::byte>((i * 181) & 0xFF);
  }
  ASSERT_OK(batched_dev->WriteBatch(extents, data));
  size_t cursor = 0;
  for (const Extent& e : extents) {
    ASSERT_OK(looped_dev->Write(
        e.offset,
        std::span<const std::byte>(data.data() + cursor, e.length)));
    cursor += e.length;
  }
  std::vector<std::byte> got(110000), want(110000);
  ASSERT_OK(batched_dev->Read(0, got));
  ASSERT_OK(looped_dev->Read(0, want));
  EXPECT_EQ(got, want);
  std::remove(twin.c_str());
}

TEST_F(FileDeviceTest, DirectIoRoundTripWhenSupported) {
  if (!FileDevice::DirectIoSupported(::testing::TempDir())) {
    GTEST_SKIP() << "O_DIRECT unsupported on " << ::testing::TempDir();
  }
  FileDevice::OpenOptions options;
  options.direct_io = true;
  ASSERT_OK_AND_ASSIGN(auto device,
                       FileDevice::Open(path_, 1 << 20, options));
  EXPECT_TRUE(device->direct_io());
  // Aligned write, then an unaligned write that forces the bounce
  // read-modify-write path over the same blocks.
  std::vector<std::byte> block(kDirectIoAlignment, std::byte{0x5A});
  ASSERT_OK(device->Write(0, block));
  ASSERT_OK(device->Write(100, Bytes("unaligned")));
  std::vector<std::byte> out(kDirectIoAlignment);
  ASSERT_OK(device->Read(0, out));
  EXPECT_EQ(out[99], std::byte{0x5A});
  EXPECT_EQ(std::memcmp(out.data() + 100, "unaligned", 9), 0);
  EXPECT_EQ(out[109], std::byte{0x5A});
  ASSERT_OK(device->Sync());
}

TEST_F(FileDeviceTest, WorksUnderTheFullIndexStack) {
  // A packed index built on a real file, queried back correctly.
  ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(path_, 1 << 22));
  MeteredDevice metered(file.get());
  ExtentAllocator allocator(1 << 22);
  DayBatch batch = MakeMixedBatch(1, 20);
  ASSERT_OK_AND_ASSIGN(
      auto index, IndexBuilder::BuildPacked(&metered, &allocator, {}, batch,
                                            "on-disk"));
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));
  EXPECT_FALSE(out.empty());
  ASSERT_OK(index->CheckPacked());
  EXPECT_GT(metered.total().bytes_written, 0u);
}

}  // namespace
}  // namespace wavekit
