# Empty compiler generated dependencies file for query_workload_test.
# This may be replaced when dependencies are built.
