# Empty compiler generated dependencies file for index_builder_test.
# This may be replaced when dependencies are built.
