#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every paper table/figure
# (with shape checks), extension/ablation benches, micro-benchmarks, and the
# examples. Outputs land in test_output.txt and bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "==================== $(basename "$b") ===================="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

for e in build/examples/*; do
  [ -x "$e" ] && [ -f "$e" ] || continue
  echo "== example $(basename "$e")"
  "$e" > /dev/null
done
echo "All reproduction artifacts regenerated."
