// sim_torture: seed-reproducible whole-system simulation torture.
//
//   sim_torture [--serve] [--seed=1] [--episodes=64] [--scheme=all|del|reindex|...]
//               [--episode=E] [--print-trace] [--shrink=1] [--tmp-dir=/tmp]
//               [--inject-window-bug] [--bitrot] [--codec]
//
// --bitrot switches to the bit-rot scenario family (GenerateBitRot): every
// day commits cleanly, then silent data-at-rest corruption strikes and the
// episode asserts detection (scrub or query path), quarantine,
// subset-correct degraded answers, and online self-healing.
//
// --codec switches to the codec scenario family (GenerateCodec): each
// episode builds its indexes under a per-episode bucket codec policy (auto
// or one forced codec), so every oracle cross-check exercises compressed
// probe/scan decode. Composes with --bitrot: rot then lands on compressed
// extents and must still be detected and healed.
//
// Runs seed-derived torture episodes (testing/sim_harness.h) for the chosen
// scheme(s): each episode drives a full maintenance life — crashes, device
// faults, recovery — and cross-checks every query against a brute-force
// oracle. Deterministic by construction: a failing run prints
//
//   repro: sim_torture --seed=S --scheme=K --episode=E
//
// which replays the identical episode anywhere. With --shrink (default on)
// the failing scenario is greedily minimized before it is reported.
// --inject-window-bug enables the deliberate window-invariant mutation
// (wave/scheme.h, internal::SetWindowInvariantMutationForTesting) to
// demonstrate that the harness detects it.

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "testing/server_sim.h"
#include "testing/sim_harness.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unknown argument: " << arg << "\n";
        ok_ = false;
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }
  bool Has(const std::string& key) const { return values_.contains(key); }
  bool ok() const { return ok_; }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

void ReportFailure(const testing::Simulator& simulator,
                   const testing::EpisodeResult& failure, bool print_trace,
                   bool shrink) {
  std::cout << "FAILED: " << SchemeKindName(failure.kind) << " episode "
            << failure.episode << "\n"
            << "status: " << failure.status.ToString() << "\n"
            << "scenario: " << failure.scenario.ToString() << "\n";
  if (print_trace) std::cout << "trace:\n" << failure.trace;
  if (!failure.repro.empty()) {
    std::cout << "repro: " << failure.repro << "\n";
  }
  if (shrink) {
    std::cout << "shrinking...\n";
    const testing::Scenario minimal =
        simulator.Shrink(failure.kind, failure.scenario);
    std::cout << "minimal scenario: " << minimal.ToString() << "\n";
  }
}

/// --serve: the in-process server simulation (testing/server_sim.h) —
/// multi-tenant ServerCore over a loopback seam, probes interleaved with
/// single-stepped async advances, replies cross-checked against the oracle,
/// and every episode replayed to assert a byte-identical digest.
int ServeMain(const Args& args) {
  testing::ServerSimConfig config;
  config.seed = args.GetU64("seed", 1);
  config.episodes = args.GetU64("episodes", 8);
  config.tenants = static_cast<int>(args.GetU64("tenants", 3));
  config.days = static_cast<int>(args.GetU64("days", 5));
  const bool print_trace = args.GetBool("print-trace", false);
  const testing::ServerSimulator simulator(config);

  if (args.Has("episode")) {
    const uint64_t episode = args.GetU64("episode", 0);
    const testing::ServerEpisodeResult result = simulator.RunEpisode(episode);
    if (print_trace) std::cout << result.trace;
    if (result.status.ok()) {
      std::cout << "serve episode " << episode << ": ok (requests="
                << result.requests << " digest=" << result.digest << ")\n";
      return 0;
    }
    std::cout << "FAILED: serve episode " << episode << "\n"
              << "status: " << result.status.ToString() << "\n";
    if (!print_trace) std::cout << "trace:\n" << result.trace;
    if (!result.repro.empty()) std::cout << "repro: " << result.repro << "\n";
    return 1;
  }

  const testing::ServerEpisodeResult result = simulator.RunMany();
  if (result.status.ok()) {
    std::cout << "serve: " << config.episodes
              << " episodes ok (byte-identical replays)\n";
    return 0;
  }
  std::cout << "FAILED: serve episode " << result.episode << "\n"
            << "status: " << result.status.ToString() << "\n"
            << "trace:\n" << result.trace;
  if (!result.repro.empty()) std::cout << "repro: " << result.repro << "\n";
  return 1;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  if (!args.ok()) return 2;

  if (args.GetBool("serve", false)) return ServeMain(args);

  testing::SimConfig config;
  config.seed = args.GetU64("seed", 1);
  config.episodes = args.GetU64("episodes", 64);
  config.tmp_dir = args.Get("tmp-dir", "/tmp");
  const bool print_trace = args.GetBool("print-trace", false);
  const bool shrink = args.GetBool("shrink", true);

  if (args.GetBool("inject-window-bug", false)) {
    internal::SetWindowInvariantMutationForTesting(true);
    std::cout << "window-invariant mutation ENABLED (episodes should fail)\n";
  }

  std::vector<SchemeKind> kinds;
  const std::string scheme = args.Get("scheme", "all");
  if (scheme == "all") {
    kinds.assign(std::begin(kAllSchemeKinds), std::end(kAllSchemeKinds));
  } else {
    auto parsed = SchemeKindFromName(scheme);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 2;
    }
    kinds.push_back(parsed.ValueOrDie());
  }

  const bool bitrot = args.GetBool("bitrot", false);
  const bool codec = args.GetBool("codec", false);
  const testing::Simulator simulator(config);
  const auto run_episode = [&](SchemeKind kind, uint64_t episode) {
    if (codec && bitrot) return simulator.RunCodecBitRotEpisode(kind, episode);
    if (codec) return simulator.RunCodecEpisode(kind, episode);
    if (bitrot) return simulator.RunBitRotEpisode(kind, episode);
    return simulator.RunEpisode(kind, episode);
  };
  const auto run_many = [&](SchemeKind kind) {
    if (codec && bitrot) return simulator.RunManyCodecBitRot(kind);
    if (codec) return simulator.RunManyCodec(kind);
    if (bitrot) return simulator.RunManyBitRot(kind);
    return simulator.RunMany(kind);
  };
  bool failed = false;
  for (SchemeKind kind : kinds) {
    if (args.Has("episode")) {
      const uint64_t episode = args.GetU64("episode", 0);
      const testing::EpisodeResult result = run_episode(kind, episode);
      if (print_trace) std::cout << result.trace;
      if (result.status.ok()) {
        std::cout << SchemeKindName(kind) << " episode " << episode
                  << ": ok (restarts=" << result.restarts << ")\n";
      } else {
        failed = true;
        ReportFailure(simulator, result, !print_trace, shrink);
      }
      continue;
    }
    const testing::EpisodeResult result = run_many(kind);
    if (result.status.ok()) {
      std::cout << SchemeKindName(kind) << ": " << config.episodes
                << " episodes ok\n";
    } else {
      failed = true;
      ReportFailure(simulator, result, true, shrink);
    }
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) { return wavekit::Main(argc, argv); }
