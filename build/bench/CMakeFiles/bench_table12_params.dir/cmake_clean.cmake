file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_params.dir/bench_table12_params.cc.o"
  "CMakeFiles/bench_table12_params.dir/bench_table12_params.cc.o.d"
  "bench_table12_params"
  "bench_table12_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
