#include "sim/driver.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace sim {
namespace {

ExperimentConfig SmallConfig(SchemeKind scheme, int window, int n) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.scheme_config.window = window;
  config.scheme_config.num_indexes = n;
  config.scheme_config.technique = UpdateTechniqueKind::kSimpleShadow;
  config.workload = WorkloadKind::kNetnews;
  config.netnews.articles_per_day = 20;
  config.netnews.words_per_article = 10;
  config.netnews.vocabulary_size = 500;
  config.days_to_run = 2 * window;
  config.warmup_days = window;
  config.query_mix.probes_per_day = 100;
  config.query_mix.probe_sample = 4;
  config.query_mix.scans_per_day = 2;
  config.query_mix.scan_sample = 1;
  return config;
}

TEST(DriverTest, RunsAndCollectsPerDayStats) {
  ExperimentConfig config = SmallConfig(SchemeKind::kDel, 6, 2);
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  const ExperimentResult result = std::move(run).ValueOrDie();
  ASSERT_EQ(result.days.size(), 12u);
  for (const DayStats& day : result.days) {
    EXPECT_GT(day.sim_transition_seconds, 0.0);
    EXPECT_GT(day.model_transition_seconds, 0.0);
    EXPECT_GT(day.operation_bytes, 0u);
    EXPECT_EQ(day.wave_length_days, 6);
    EXPECT_GT(day.sim_query_seconds, 0.0);
    EXPECT_GT(day.model_query_seconds, 0.0);
  }
  EXPECT_GT(result.aggregates.avg_sim_total_work, 0.0);
  EXPECT_GT(result.aggregates.avg_model_total_work, 0.0);
  EXPECT_GE(result.aggregates.max_operation_bytes,
            static_cast<uint64_t>(result.aggregates.avg_operation_bytes));
}

TEST(DriverTest, SimpleShadowShowsTransitionExtraSpace) {
  ExperimentConfig config = SmallConfig(SchemeKind::kDel, 6, 2);
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.ValueOrDie().aggregates.avg_transition_extra_bytes, 0.0);
}

TEST(DriverTest, WataHasSoftWindowLength) {
  ExperimentConfig config = SmallConfig(SchemeKind::kWata, 7, 3);
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  const Aggregates& agg = run.ValueOrDie().aggregates;
  EXPECT_GT(agg.max_wave_length_days, 7);
  EXPECT_LE(agg.max_wave_length_days, 7 + 3 - 1);  // W + ceil(Y) - 1
}

TEST(DriverTest, VolumeTraceOverridesDailyCounts) {
  ExperimentConfig config = SmallConfig(SchemeKind::kDel, 4, 1);
  config.days_to_run = 3;
  config.volume_trace = {5, 5, 5, 5, 50, 5, 5};
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  const ExperimentResult result = std::move(run).ValueOrDie();
  // Day 5 (first transition) carries the 50-article spike.
  EXPECT_GT(result.days[0].wave_entries, result.days[2].wave_entries);
}

TEST(DriverTest, TpcdWorkloadRuns) {
  ExperimentConfig config = SmallConfig(SchemeKind::kReindex, 5, 1);
  config.workload = WorkloadKind::kTpcd;
  config.tpcd.rows_per_day = 50;
  config.tpcd.num_suppliers = 20;
  config.paper = model::CaseParams::Tpcd();
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.ValueOrDie().aggregates.avg_model_transition_seconds, 0.0);
}

TEST(DriverTest, MultiDiskParallelTimesAreConsistent) {
  ExperimentConfig config = SmallConfig(SchemeKind::kReindex, 8, 4);
  config.num_disks = 4;
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  const Aggregates& agg = run.ValueOrDie().aggregates;
  // Parallel elapsed never exceeds the serialized time, and queries over
  // slot-stable constituents actually parallelize.
  EXPECT_LE(agg.avg_sim_query_parallel_seconds,
            agg.avg_sim_query_seconds + 1e-12);
  EXPECT_LT(agg.avg_sim_query_parallel_seconds,
            0.7 * agg.avg_sim_query_seconds);
  EXPECT_LE(agg.avg_sim_maintenance_parallel_seconds,
            agg.avg_sim_transition_seconds + agg.avg_sim_precompute_seconds +
                1e-12);
}

TEST(DriverTest, SingleDiskParallelEqualsSerial) {
  ExperimentConfig config = SmallConfig(SchemeKind::kDel, 6, 2);
  auto run = ExperimentDriver::Run(config);
  ASSERT_TRUE(run.ok()) << run.status();
  const Aggregates& agg = run.ValueOrDie().aggregates;
  EXPECT_NEAR(agg.avg_sim_query_parallel_seconds, agg.avg_sim_query_seconds,
              1e-9);
  EXPECT_NEAR(agg.avg_sim_maintenance_parallel_seconds,
              agg.avg_sim_transition_seconds + agg.avg_sim_precompute_seconds,
              1e-9);
}

TEST(DriverTest, MultiDiskResultsMatchSingleDiskContent) {
  ExperimentConfig config = SmallConfig(SchemeKind::kWata, 7, 3);
  auto one = ExperimentDriver::Run(config);
  config.num_disks = 3;
  auto three = ExperimentDriver::Run(config);
  ASSERT_TRUE(one.ok() && three.ok());
  // Same scheme, same data: the indexed content must be identical; only
  // the physical placement differs.
  ASSERT_EQ(one.ValueOrDie().days.size(), three.ValueOrDie().days.size());
  for (size_t i = 0; i < one.ValueOrDie().days.size(); ++i) {
    EXPECT_EQ(one.ValueOrDie().days[i].wave_entries,
              three.ValueOrDie().days[i].wave_entries);
    EXPECT_EQ(one.ValueOrDie().days[i].wave_length_days,
              three.ValueOrDie().days[i].wave_length_days);
  }
}

TEST(DriverTest, InvalidConfigSurfacesError) {
  ExperimentConfig config = SmallConfig(SchemeKind::kWata, 5, 1);  // n < 2
  EXPECT_FALSE(ExperimentDriver::Run(config).ok());
}

TEST(DriverTest, DeterministicAcrossRuns) {
  ExperimentConfig config = SmallConfig(SchemeKind::kRata, 8, 3);
  auto a = ExperimentDriver::Run(config);
  auto b = ExperimentDriver::Run(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.ValueOrDie().aggregates.avg_sim_total_work,
                   b.ValueOrDie().aggregates.avg_sim_total_work);
  EXPECT_EQ(a.ValueOrDie().aggregates.max_operation_bytes,
            b.ValueOrDie().aggregates.max_operation_bytes);
}

}  // namespace
}  // namespace sim
}  // namespace wavekit
