// ConstituentIndex: one "conventional" index of a wave index.
//
// Holds an in-memory Directory mapping values to on-device buckets of fixed
// 16-byte entries. Supports the paper's access operations (probe / scan with
// optional time restriction) and the mutation primitives the update
// techniques of Section 2.1 are built from: CONTIGUOUS incremental append
// and delete [FJ92], and whole-index copy (the CP operation).
//
// A packed index (Section 2) has every bucket filled exactly (count ==
// capacity) and all buckets laid out contiguously on the device in layout
// order, so a SegmentScan is one seek plus a sequential sweep.

#ifndef WAVEKIT_INDEX_CONSTITUENT_INDEX_H_
#define WAVEKIT_INDEX_CONSTITUENT_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/codec.h"
#include "index/directory.h"
#include "index/entry.h"
#include "index/growth_policy.h"
#include "index/record.h"
#include "storage/extent_allocator.h"
#include "util/day.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace wavekit {

/// Visitor for scans; called once per live entry.
using EntryCallback = std::function<void(const Value&, const Entry&)>;

/// \brief Shared integrity counters, bumped by checksum verification and
/// quarantine across all constituents wired to the same instance (the
/// serving stack owns one and exports it as wavekit_* metrics). All fields
/// are relaxed atomics: counts only, no ordering.
struct IntegrityStats {
  /// Buckets whose checksum was verified on a read path.
  std::atomic<uint64_t> verified_buckets{0};
  /// Buckets served wholly from verified-resident cache blocks, so batch
  /// scans skipped re-verifying them (storage/device.h ReadBatchTracked).
  std::atomic<uint64_t> trusted_buckets{0};
  /// Checksum mismatches detected (read path or scrub).
  std::atomic<uint64_t> corruptions_detected{0};
  /// Constituents quarantined because of a checksum mismatch.
  std::atomic<uint64_t> quarantines{0};
};

/// \brief One constituent index over a cluster of days.
class ConstituentIndex {
 public:
  struct Options {
    DirectoryKind directory = DirectoryKind::kHash;
    GrowthPolicy growth;
    /// When true (the default), every read path recomputes each bucket's
    /// CRC-32C over the bytes the device returned and compares it to the
    /// directory's BucketInfo::crc before delivering entries; a mismatch
    /// quarantines the constituent and fails with Status::DataLoss.
    /// Checksums are *maintained* regardless, so flipping this off (the
    /// integrity-overhead benchmark's baseline) only skips verification.
    bool verify_checksums = true;
    /// Optional shared counters; may be null. Must outlive the index.
    IntegrityStats* integrity = nullptr;
    /// Bucket codec policy for packed builds (index/codec.h). kRaw keeps
    /// every layout byte-identical to pre-codec builds. Compressed buckets
    /// are immutable on device: AppendEntries / DeleteDays decode and
    /// rewrite them as kRaw (rewrite-on-mutation), so simple constituents
    /// stay appendable.
    CodecMode codec = CodecMode::kRaw;
  };

  /// Creates an empty index. `device` and `allocator` must outlive it.
  ConstituentIndex(Device* device, ExtentAllocator* allocator, Options options,
                   std::string name);

  /// Frees all bucket extents (best effort).
  ~ConstituentIndex();

  ConstituentIndex(const ConstituentIndex&) = delete;
  ConstituentIndex& operator=(const ConstituentIndex&) = delete;

  // --- Metadata ------------------------------------------------------------

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The set of days this index covers (its cluster).
  const TimeSet& time_set() const { return time_set_; }
  TimeSet& mutable_time_set() { return time_set_; }

  /// True when the packed invariant is expected to hold (set by packed
  /// builds / packed shadow updates; cleared by incremental updates).
  bool packed() const { return packed_; }
  void set_packed(bool packed) { packed_ = packed; }

  /// Serving health (degraded-mode serving, wave/wave_index.h). Cleared by
  /// the maintenance layer when an update or rebuild of this constituent
  /// failed with an I/O error, so its contents are suspect (stale or
  /// partially written). Queries skip unhealthy constituents and report a
  /// partial result instead of failing. Atomic because published snapshots
  /// share this object with the maintenance thread.
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }
  void set_healthy(bool healthy) {
    healthy_.store(healthy, std::memory_order_relaxed);
  }

  /// True when the constituent was quarantined after a checksum mismatch
  /// (read path, scrub, or recovery revalidation). A corrupt constituent is
  /// always unhealthy; unlike a transiently-unhealthy one, retrying its I/O
  /// never helps — it must be rebuilt from segment data (self-healing,
  /// wave/scheme.h HealUnhealthy).
  bool corrupt() const { return corrupt_.load(std::memory_order_relaxed); }

  /// Quarantines the constituent: marks it corrupt and unhealthy and bumps
  /// the integrity counters. Const because corruption is detected on const
  /// read paths; the flags are the only mutable state touched. Idempotent
  /// (counters bump once).
  void Quarantine() const;

  /// Device bytes reserved by this index (sum of bucket capacities).
  uint64_t allocated_bytes() const { return allocated_bytes_; }

  /// Device bytes holding live entries (sum of bucket counts).
  uint64_t live_bytes() const { return entry_count_ * kEntrySize; }

  /// Number of live entries.
  uint64_t entry_count() const { return entry_count_; }

  /// Number of distinct values.
  size_t distinct_values() const { return directory_->size(); }

  const Options& options() const { return options_; }
  Device* device() const { return device_; }
  ExtentAllocator* allocator() const { return allocator_; }

  /// \brief Per-codec bucket census: how many buckets each codec holds,
  /// stored (on-device) bytes vs. the raw bytes the same entries would
  /// occupy. Directory metadata only, no device I/O.
  struct CodecBreakdown {
    uint64_t buckets[kNumCodecs] = {};
    /// Live stored bytes (stored_length() summed; excludes kRaw slack).
    uint64_t stored_bytes = 0;
    /// The same entries at kEntrySize each.
    uint64_t uncompressed_bytes = 0;

    /// Compression ratio >= 1 (uncompressed / stored); 1.0 when empty.
    double ratio() const {
      return stored_bytes > 0
                 ? static_cast<double>(uncompressed_bytes) /
                       static_cast<double>(stored_bytes)
                 : 1.0;
    }
  };
  CodecBreakdown CodecStats() const;

  /// Values in on-device layout order (the order buckets were placed).
  const std::vector<Value>& layout_order() const { return layout_order_; }

  /// Visits every (value, bucket) pair in layout order — directory metadata
  /// only, no device I/O (used by checkpointing).
  Status ForEachBucket(
      const std::function<void(const Value&, const BucketInfo&)>& fn) const;

  // --- Access operations (paper Section 2.2) --------------------------------

  /// IndexProbe: appends all entries for `value` to `*out`. A miss is OK with
  /// nothing appended.
  Status Probe(const Value& value, std::vector<Entry>* out) const;

  /// TimedIndexProbe restricted to this constituent: appends entries for
  /// `value` whose day lies in `range`. When `range` covers the whole
  /// time-set the per-entry filter is skipped (paper: cluster-aligned timed
  /// queries need no timestamps).
  Status TimedProbe(const Value& value, const DayRange& range,
                    std::vector<Entry>* out) const;

  /// SegmentScan: visits every live entry, bucket by bucket in layout order.
  Status Scan(const EntryCallback& callback) const;

  /// TimedSegmentScan restricted to this constituent.
  Status TimedScan(const DayRange& range, const EntryCallback& callback) const;

  // --- Mutation primitives ---------------------------------------------------

  /// Appends `entries` to `value`'s bucket, growing/relocating it per the
  /// CONTIGUOUS policy. Clears the packed flag.
  Status AppendEntries(const Value& value, std::span<const Entry> entries);

  /// Adds all entries of `batch` (grouped per value) and adds the day to the
  /// time-set. This is the in-place form of the paper's AddToIndex.
  Status AddBatch(const DayBatch& batch);

  /// Deletes every entry whose day is in `days`, shrinking buckets per the
  /// CONTIGUOUS policy and dropping emptied values. Removes the days from
  /// the time-set. This is the in-place form of DeleteFromIndex.
  Status DeleteDays(const TimeSet& days);

  /// Installs a pre-written bucket (used by the packed builder and packed
  /// shadow updater). The extent must already contain `count` entries whose
  /// bytes checksum to `crc` (CRC-32C of the live prefix).
  Status InstallBucket(const Value& value, const Extent& extent,
                       uint32_t count, uint32_t capacity, uint32_t crc);

  /// Installs a pre-written bucket with full metadata (codec included). For
  /// a compressed codec the extent must be exactly the encoded bytes
  /// (strictly smaller than raw) of a count == capacity bucket, and `crc`
  /// covers those stored bytes.
  Status InstallBucket(const Value& value, const BucketInfo& info);

  // --- Whole-index operations -------------------------------------------------

  /// The CP operation: copies every bucket (full capacity, preserving slack)
  /// into one fresh contiguous region and returns the copy. Reads and writes
  /// allocated_bytes() each way. With `parallel.enabled()` the bucket range
  /// is partitioned across the pool and copied with batched reads/writes;
  /// the resulting clone is identical either way (same layout, same bytes).
  Result<std::unique_ptr<ConstituentIndex>> Clone(
      std::string name, const ParallelContext& parallel = {}) const;

  /// Clone onto a DIFFERENT device (multi-disk deployments, paper Section 8:
  /// "building new constituent indices on separate disks avoids contention").
  Result<std::unique_ptr<ConstituentIndex>> CloneTo(
      Device* device, ExtentAllocator* allocator, std::string name,
      const ParallelContext& parallel = {}) const;

  /// Releases every bucket extent and clears the index. Idempotent. This is
  /// the space-reclaiming half of the paper's DropIndex.
  Status Destroy();

  // --- Invariants ---------------------------------------------------------------

  /// Verifies the packed invariant: all buckets exactly filled and physically
  /// contiguous in layout order.
  Status CheckPacked() const;

  /// Verifies internal consistency: directory and layout order agree, counts
  /// and capacities are coherent, accounting sums match.
  Status CheckConsistency() const;

 private:
  // CP with the bucket range partitioned over the pool: each task copies its
  // buckets with batched reads/writes into a disjoint slice of one fresh
  // region; metadata installs serially afterwards.
  Result<std::unique_ptr<ConstituentIndex>> CloneToParallel(
      Device* device, ExtentAllocator* allocator, std::string name,
      const ParallelContext& parallel) const;

  Status ReadBucketEntries(const Value& value, const BucketInfo& info,
                           std::vector<Entry>* out) const;
  Status WriteEntriesAt(uint64_t offset, std::span<const Entry> entries);
  Status RemoveValue(const Value& value);

  /// Verifies `crc` against the `length` stored bytes just read for
  /// `value`'s bucket (the live prefix for kRaw, the whole encoded extent
  /// for compressed codecs). OK when verification is disabled; on mismatch
  /// quarantines the constituent and returns DataLoss.
  Status VerifyBucketBytes(const Value& value, uint32_t crc,
                           const std::byte* bytes, uint64_t length) const;
  /// VerifyBucketBytes without the per-bucket verified_buckets accounting —
  /// batch read paths verify thousands of buckets per flush and charge the
  /// stats atomic once instead of per bucket.
  Status CheckBucketBytes(const Value& value, uint32_t crc,
                          const std::byte* bytes, uint64_t length) const;
  /// Decodes a compressed bucket's stored bytes into `out` (exactly
  /// `count` entries). A decode failure is corruption that slipped past (or
  /// bypassed) the checksum: it bumps the corruption counters, quarantines
  /// the constituent, and returns DataLoss.
  Status DecodeStoredBucket(const Value& value, Codec codec,
                            const std::byte* bytes, uint64_t length,
                            uint32_t count, Entry* out) const;

  Device* device_;
  ExtentAllocator* allocator_;
  Options options_;
  std::string name_;
  std::unique_ptr<Directory> directory_;
  std::vector<Value> layout_order_;
  TimeSet time_set_;
  /// Mutable: corruption is detected (and must quarantine) on const reads.
  mutable std::atomic<bool> healthy_{true};
  mutable std::atomic<bool> corrupt_{false};
  bool packed_ = false;
  uint64_t entry_count_ = 0;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_CONSTITUENT_INDEX_H_
