// Blocking client for the waved binary protocol.
//
// One TCP connection, one tenant. The synchronous calls (Probe/Scan/
// Advance/Stats/Health) are what wavectl uses; the split Send*/ReadReply
// half is for pipelining — waveload keeps a window of requests in flight
// per connection and matches replies by request id.

#ifndef WAVEKIT_SERVE_CLIENT_H_
#define WAVEKIT_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace wavekit {
namespace serve {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    uint16_t tenant_id = 0;
    /// Reply wait budget; a server that goes silent longer than this fails
    /// the call with IOError("recv timeout"). 0 waits forever.
    int recv_timeout_sec = 30;
  };

  static Result<std::unique_ptr<Client>> Connect(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Synchronous calls ----------------------------------------------------
  //
  // Each sends one request and blocks for its reply. The returned reply's
  // `result` carries the server-side status (kPartialResult = degraded
  // answer with a usable body); the Result wrapper fails only on transport
  // or protocol breakage.

  Result<QueryReply> Probe(const DayRange& range, const Value& value);
  Result<QueryReply> Scan(const DayRange& range, uint32_t max_entries = 0);
  Result<AdvanceReply> Advance(DayBatch batch);
  Result<StatsReply> Stats();
  Result<HealthReply> Health();

  // --- Pipelined half -------------------------------------------------------

  /// Sends a PROBE without waiting. Returns the request id to match the
  /// reply by.
  Result<uint32_t> SendProbe(const DayRange& range, const Value& value);

  /// Blocks for the next reply frame (any type).
  Result<Frame> ReadReply();

  uint16_t tenant_id() const { return options_.tenant_id; }

 private:
  explicit Client(Options options) : options_(std::move(options)) {}

  Status SendFrame(const std::string& frame);
  /// Reads until one complete frame is buffered.
  Result<Frame> ReadFrameBlocking();

  Options options_;
  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  FrameReader reader_;
};

}  // namespace serve
}  // namespace wavekit

#endif  // WAVEKIT_SERVE_CLIENT_H_
