# Empty compiler generated dependencies file for space_model_test.
# This may be replaced when dependencies are built.
