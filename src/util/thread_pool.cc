#include "util/thread_pool.h"

#include <algorithm>

namespace wavekit {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

int ThreadPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this]() { return in_flight_ == 0; });
}

void ThreadPool::WaitGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)]() {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void ThreadPool::WaitGroup::Wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_ == 0) return;
  }
  // Workerless executors run our queued tasks inline here; worker-backed
  // pools do nothing and the wait below blocks until their workers finish.
  pool_->DrainForWait();
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this]() { return pending_ == 0; });
}

int ThreadPool::WaitGroup::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace wavekit
