#include "util/random.h"

#include <cmath>

namespace wavekit {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire-style rejection: accept draws below the largest multiple of bound.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Rng Rng::Fork(uint64_t stream) {
  uint64_t mix = Next() ^ (stream * 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

// H(x) = integral of 1/t^theta, the continuous analogue of the harmonic sum.
double ZipfDistribution::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfDistribution::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return static_cast<uint64_t>(k) - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace wavekit
