// B+Tree-specific structural tests: splits, borrows, merges, invariants.

#include "index/btree_directory.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

BucketInfo Info(uint32_t count) {
  return BucketInfo{Extent{0, count * kEntrySize}, count, count};
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

TEST(BTreeDirectoryTest, EmptyTree) {
  BTreeDirectory tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.Find("x"), nullptr);
  ASSERT_OK(tree.CheckInvariants());
}

TEST(BTreeDirectoryTest, GrowsInHeightOnSplits) {
  BTreeDirectory tree(/*max_keys=*/4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(tree.Insert(Key(i), Info(static_cast<uint32_t>(i + 1))));
    ASSERT_OK(tree.CheckInvariants()) << "after inserting " << i;
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GE(tree.height(), 3u);
  for (int i = 0; i < 100; ++i) {
    const BucketInfo* info = tree.Find(Key(i));
    ASSERT_NE(info, nullptr) << Key(i);
    EXPECT_EQ(info->count, static_cast<uint32_t>(i + 1));
  }
}

TEST(BTreeDirectoryTest, ReverseOrderInsertion) {
  BTreeDirectory tree(4);
  for (int i = 99; i >= 0; --i) {
    ASSERT_OK(tree.Insert(Key(i), Info(1)));
    ASSERT_OK(tree.CheckInvariants());
  }
  EXPECT_EQ(tree.size(), 100u);
}

TEST(BTreeDirectoryTest, ShrinksOnRemovals) {
  BTreeDirectory tree(4);
  for (int i = 0; i < 200; ++i) ASSERT_OK(tree.Insert(Key(i), Info(1)));
  const size_t full_height = tree.height();
  // Remove in an order that exercises borrows and merges on both sides.
  for (int i = 0; i < 200; i += 2) {
    ASSERT_OK(tree.Remove(Key(i)));
    ASSERT_OK(tree.CheckInvariants()) << "after removing even " << i;
  }
  for (int i = 199; i >= 1; i -= 2) {
    ASSERT_OK(tree.Remove(Key(i)));
    ASSERT_OK(tree.CheckInvariants()) << "after removing odd " << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_LE(tree.height(), full_height);
}

TEST(BTreeDirectoryTest, OrderedIterationViaLeafChain) {
  BTreeDirectory tree(4);
  Rng rng(3);
  std::vector<int> keys(500);
  for (int i = 0; i < 500; ++i) keys[static_cast<size_t>(i)] = i;
  Shuffle(keys, rng);
  for (int k : keys) ASSERT_OK(tree.Insert(Key(k), Info(1)));
  int expected = 0;
  tree.ForEach([&](const Value& v, const BucketInfo&) {
    EXPECT_EQ(v, Key(expected));
    ++expected;
  });
  EXPECT_EQ(expected, 500);
}

TEST(BTreeDirectoryTest, MinimumFanoutEnforced) {
  BTreeDirectory tree(/*max_keys=*/2);  // clamped up to 3 internally
  for (int i = 0; i < 50; ++i) ASSERT_OK(tree.Insert(Key(i), Info(1)));
  ASSERT_OK(tree.CheckInvariants());
}

TEST(BTreeDirectoryTest, RandomizedChurnAgainstStdMap) {
  BTreeDirectory tree(6);
  std::map<std::string, uint32_t> reference;
  Rng rng(17);
  for (int step = 0; step < 5000; ++step) {
    const std::string key = Key(static_cast<int>(rng.Uniform(300)));
    if (rng.Bernoulli(0.55)) {
      uint32_t payload = static_cast<uint32_t>(step + 1);
      Status s = tree.Insert(key, Info(payload));
      if (reference.contains(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else {
        EXPECT_OK(s);
        reference[key] = payload;
      }
    } else {
      Status s = tree.Remove(key);
      if (reference.contains(key)) {
        EXPECT_OK(s);
        reference.erase(key);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
    if (step % 250 == 0) {
      ASSERT_OK(tree.CheckInvariants()) << "step " << step;
      // Full content comparison.
      auto it = reference.begin();
      tree.ForEach([&](const Value& v, const BucketInfo& info) {
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->first);
        EXPECT_EQ(info.count, it->second);
        ++it;
      });
      EXPECT_EQ(it, reference.end());
    }
  }
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), reference.size());
}

TEST(BTreeDirectoryTest, LargeFanoutStaysShallow) {
  BTreeDirectory tree(128);
  for (int i = 0; i < 10000; ++i) ASSERT_OK(tree.Insert(Key(i), Info(1)));
  EXPECT_LE(tree.height(), 3u);
  ASSERT_OK(tree.CheckInvariants());
}

}  // namespace
}  // namespace wavekit
