// PackedShadowUpdater: Section 2.1's packed shadow updating.

#ifndef WAVEKIT_UPDATE_PACKED_SHADOW_UPDATER_H_
#define WAVEKIT_UPDATE_PACKED_SHADOW_UPDATER_H_

#include <utility>
#include <vector>

#include "update/update_technique.h"

namespace wavekit {

/// \brief Produces a packed replacement index in one pass.
///
/// Exactly the paper's procedure: (1) build a temporary packed index of the
/// inserted records; (2) scan the old index's buckets, copying them to a new
/// contiguous location while dropping entries with expired timestamps and
/// leaving exactly enough room for the inserts; (3) scan the temporary index
/// appending its buckets into the reserved room (values not present in the
/// old index get fresh buckets after the last old bucket); (4) swap the new
/// index in. The result is packed, so subsequent SegmentScans are a single
/// sequential sweep.
class PackedShadowUpdater : public Updater {
 public:
  UpdateTechniqueKind kind() const override {
    return UpdateTechniqueKind::kPackedShadow;
  }
  Status Apply(std::shared_ptr<ConstituentIndex>* index,
               std::span<const DayBatch* const> adds,
               const TimeSet& deletes) override;

 private:
  /// Flush tail for codec-enabled indexes: the merged layout is fixed, but
  /// bucket offsets depend on the *encoded* sizes, so every surviving bucket
  /// is encoded (in parallel when enabled) before the region is sized, then
  /// written and installed with its codec. Finishes the update (time-set,
  /// temp teardown, swap) like the raw flush does.
  Status FlushMergedCodec(
      Device* device, ExtentAllocator* allocator,
      const ConstituentIndex::Options& options,
      const std::vector<std::pair<Value, std::vector<Entry>>>& merged,
      std::shared_ptr<ConstituentIndex> packed, ConstituentIndex* old_index,
      std::span<const DayBatch* const> adds, const TimeSet& deletes,
      const std::shared_ptr<ConstituentIndex>& temp,
      std::shared_ptr<ConstituentIndex>* index);
};

}  // namespace wavekit

#endif  // WAVEKIT_UPDATE_PACKED_SHADOW_UPDATER_H_
