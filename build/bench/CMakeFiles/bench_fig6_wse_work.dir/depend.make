# Empty dependencies file for bench_fig6_wse_work.
# This may be replaced when dependencies are built.
