# Empty dependencies file for maintenance_model_test.
# This may be replaced when dependencies are built.
