// Parallel query fan-out: results must equal the serial operations exactly,
// on a synchronized single device and on a multi-disk array.

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "storage/disk_array.h"
#include "storage/synchronized_device.h"
#include "testing/test_env.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class ParallelQueryTest : public ::testing::Test {
 protected:
  // Builds one constituent per day 1..days, each on disk (day % disks).
  void BuildOnDisks(int days, int num_disks) {
    disks_ = std::make_unique<DiskArray>(num_disks, uint64_t{1} << 26);
    for (Day d = 1; d <= days; ++d) {
      DayBatch batch = MakeMixedBatch(d, 30);
      reference_.Add(batch);
      const int disk = (d - 1) % num_disks;
      auto built = IndexBuilder::BuildPacked(disks_->device(disk),
                                             disks_->allocator(disk), {},
                                             batch, "I" + std::to_string(d));
      ASSERT_TRUE(built.ok()) << built.status();
      wave_.AddIndex(std::move(built).ValueOrDie());
    }
  }

  std::unique_ptr<DiskArray> disks_;
  WaveIndex wave_;
  ReferenceIndex reference_;
  ThreadPool pool_{4};
};

TEST_F(ParallelQueryTest, ParallelProbeEqualsSerialProbe) {
  BuildOnDisks(8, 3);
  for (const DayRange& range :
       {DayRange::All(), DayRange{3, 6}, DayRange{8, 8}, DayRange{9, 12}}) {
    for (const Value& value : {Value("alpha"), Value("day5"), Value("nope")}) {
      std::vector<Entry> serial, parallel;
      QueryStats serial_stats, parallel_stats;
      ASSERT_OK(wave_.TimedIndexProbe(range, value, &serial, &serial_stats));
      ASSERT_OK(wave_.ParallelTimedIndexProbe(&pool_, range, value, &parallel,
                                              &parallel_stats));
      EXPECT_EQ(parallel, serial) << value;  // merged in constituent order
      EXPECT_EQ(parallel_stats.indexes_accessed, serial_stats.indexes_accessed);
      EXPECT_EQ(parallel_stats.indexes_skipped, serial_stats.indexes_skipped);
      EXPECT_EQ(parallel_stats.entries_returned, serial_stats.entries_returned);
    }
  }
}

TEST_F(ParallelQueryTest, ParallelScanEqualsSerialScan) {
  BuildOnDisks(6, 2);
  std::vector<Entry> serial, parallel;
  ASSERT_OK(wave_.TimedSegmentScan(
      DayRange{2, 5},
      [&](const Value&, const Entry& e) { serial.push_back(e); }));
  ASSERT_OK(wave_.ParallelTimedSegmentScan(
      &pool_, DayRange{2, 5},
      [&](const Value&, const Entry& e) { parallel.push_back(e); }));
  EXPECT_EQ(parallel, serial);
}

TEST_F(ParallelQueryTest, WorksOnOneSynchronizedDevice) {
  // Single shared device: concurrency is safe because the device serializes.
  MemoryDevice memory(uint64_t{1} << 26);
  SynchronizedMeteredDevice device(&memory);
  ExtentAllocator allocator(uint64_t{1} << 26);
  WaveIndex wave;
  ReferenceIndex reference;
  for (Day d = 1; d <= 5; ++d) {
    DayBatch batch = MakeMixedBatch(d, 40);
    reference.Add(batch);
    auto built = IndexBuilder::BuildPacked(&device, &allocator, {}, batch,
                                           "I" + std::to_string(d));
    ASSERT_TRUE(built.ok()) << built.status();
    wave.AddIndex(std::move(built).ValueOrDie());
  }
  std::vector<Entry> out;
  ASSERT_OK(wave.ParallelTimedIndexProbe(&pool_, DayRange::All(), "beta",
                                         &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference.Probe("beta", kDayNegInf, kDayPosInf));
}

TEST_F(ParallelQueryTest, EmptyWaveIndex) {
  WaveIndex wave;
  std::vector<Entry> out;
  ASSERT_OK(wave.ParallelTimedIndexProbe(&pool_, DayRange::All(), "x", &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(ParallelQueryTest, ManyConcurrentParallelQueries) {
  // Several caller threads each issuing parallel probes through one pool.
  BuildOnDisks(9, 3);
  const std::vector<Entry> expected =
      reference_.Probe("gamma", kDayNegInf, kDayPosInf);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&]() {
      for (int q = 0; q < 50; ++q) {
        std::vector<Entry> out;
        Status s =
            wave_.ParallelTimedIndexProbe(&pool_, DayRange::All(), "gamma",
                                          &out);
        ReferenceIndex::Sort(&out);
        if (!s.ok() || out != expected) ++failures;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace wavekit
