#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <thread>

namespace wavekit {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

// The sink is read on every emitted line and replaced rarely; a mutex around
// the std::function keeps replacement safe without atomics gymnastics.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = stderr default

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// "2026-08-05 12:34:56.789" in local time.
void AppendTimestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d %H:%M:%S", &tm);
  char with_ms[40];
  std::snprintf(with_ms, sizeof with_ms, "%s.%03d", buffer,
                static_cast<int>(ms));
  out << with_ms;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " ";
    AppendTimestamp(stream_);
    stream_ << " tid=" << std::this_thread::get_id() << " " << base << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level_, line);
  } else {
    std::fputs((line + "\n").c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace wavekit
