#include "wave/scheme_factory.h"

#include <cctype>
#include <string>
#include "util/macros.h"
#include "wave/del_scheme.h"
#include "wave/known_bound_wata_scheme.h"
#include "wave/rata_scheme.h"
#include "wave/reindex_plus_plus_scheme.h"
#include "wave/reindex_plus_scheme.h"
#include "wave/reindex_scheme.h"
#include "wave/wata_scheme.h"

namespace wavekit {

Result<std::unique_ptr<Scheme>> MakeScheme(SchemeKind kind, SchemeEnv env,
                                           SchemeConfig config) {
  std::unique_ptr<Scheme> scheme;
  switch (kind) {
    case SchemeKind::kDel:
      scheme = std::make_unique<DelScheme>(env, config);
      break;
    case SchemeKind::kReindex:
      scheme = std::make_unique<ReindexScheme>(env, config);
      break;
    case SchemeKind::kReindexPlus:
      scheme = std::make_unique<ReindexPlusScheme>(env, config);
      break;
    case SchemeKind::kReindexPlusPlus:
      scheme = std::make_unique<ReindexPlusPlusScheme>(env, config);
      break;
    case SchemeKind::kWata:
      scheme = std::make_unique<WataScheme>(env, config);
      break;
    case SchemeKind::kRata:
      scheme = std::make_unique<RataScheme>(env, config);
      break;
    case SchemeKind::kKnownBoundWata:
      scheme = std::make_unique<KnownBoundWataScheme>(env, config);
      break;
  }
  if (scheme == nullptr) {
    return Status::InvalidArgument("unknown scheme kind");
  }
  WAVEKIT_RETURN_NOT_OK(scheme->ValidateConfig());
  return scheme;
}

namespace {

std::string Canonicalize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == '*' || c == ' ') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

Result<SchemeKind> SchemeKindFromName(const std::string& name) {
  const std::string canonical = Canonicalize(name);
  if (canonical == "del") return SchemeKind::kDel;
  if (canonical == "reindex") return SchemeKind::kReindex;
  if (canonical == "reindex+" || canonical == "reindexplus") {
    return SchemeKind::kReindexPlus;
  }
  if (canonical == "reindex++" || canonical == "reindexplusplus") {
    return SchemeKind::kReindexPlusPlus;
  }
  if (canonical == "wata") return SchemeKind::kWata;
  if (canonical == "rata") return SchemeKind::kRata;
  if (canonical == "kb-wata" || canonical == "kbwata") {
    return SchemeKind::kKnownBoundWata;
  }
  return Status::InvalidArgument(
      "unknown scheme '" + name +
      "' (expected DEL, REINDEX, REINDEX+, REINDEX++, WATA, RATA, KB-WATA)");
}

Result<UpdateTechniqueKind> UpdateTechniqueFromName(const std::string& name) {
  const std::string canonical = Canonicalize(name);
  if (canonical == "in-place" || canonical == "inplace") {
    return UpdateTechniqueKind::kInPlace;
  }
  if (canonical == "simple-shadow" || canonical == "simpleshadow" ||
      canonical == "shadow") {
    return UpdateTechniqueKind::kSimpleShadow;
  }
  if (canonical == "packed-shadow" || canonical == "packedshadow" ||
      canonical == "packed") {
    return UpdateTechniqueKind::kPackedShadow;
  }
  return Status::InvalidArgument(
      "unknown update technique '" + name +
      "' (expected in-place, simple-shadow, packed-shadow)");
}

}  // namespace wavekit
