#include "storage/fault_injecting_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/sharded_cached_device.h"
#include "testing/test_env.h"
#include "util/crash_point.h"

namespace wavekit {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string AsString(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(FaultInjectingDeviceTest, QuietDeviceIsTransparent) {
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory);
  ASSERT_OK(device.Write(64, Bytes("hello")));
  std::vector<std::byte> out(5);
  ASSERT_OK(device.Read(64, out));
  EXPECT_EQ(AsString(out), "hello");
  EXPECT_EQ(device.stats().reads, 1u);
  EXPECT_EQ(device.stats().writes, 1u);
  EXPECT_EQ(device.stats().injected_read_errors, 0u);
  EXPECT_EQ(device.stats().injected_write_errors, 0u);
}

TEST(FaultInjectingDeviceTest, SameSeedReplaysTheSameFaults) {
  // Determinism is the whole point: a failing torture seed must replay.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultInjectingDevice::Options options;
    options.seed = seed;
    options.read_error_rate = 0.3;
    options.write_error_rate = 0.3;
    MemoryDevice memory_a(4096), memory_b(4096);
    FaultInjectingDevice a(&memory_a, options), b(&memory_b, options);
    for (int i = 0; i < 200; ++i) {
      const uint64_t offset = static_cast<uint64_t>(i) * 16;
      if (i % 2 == 0) {
        EXPECT_EQ(a.Write(offset, Bytes("x")).ToString(),
                  b.Write(offset, Bytes("x")).ToString());
      } else {
        std::vector<std::byte> out_a(1), out_b(1);
        EXPECT_EQ(a.Read(offset, out_a).ToString(),
                  b.Read(offset, out_b).ToString());
        EXPECT_EQ(out_a, out_b);
      }
    }
    EXPECT_EQ(a.stats().injected_read_errors, b.stats().injected_read_errors);
    EXPECT_EQ(a.stats().injected_write_errors,
              b.stats().injected_write_errors);
    EXPECT_EQ(a.stats().torn_writes, b.stats().torn_writes);
  }
}

TEST(FaultInjectingDeviceTest, TransientErrorsAreTransient) {
  FaultInjectingDevice::Options options;
  options.read_error_rate = 0.5;
  options.torn_writes = false;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  ASSERT_OK(memory.Write(0, Bytes("abcd")));
  int failures = 0, successes = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> out(4);
    const Status status = device.Read(0, out);
    if (status.ok()) {
      ++successes;
      EXPECT_EQ(AsString(out), "abcd");
    } else {
      EXPECT_TRUE(status.IsIOError()) << status;
      ++failures;
    }
  }
  // At rate 0.5 over 200 ops both outcomes are statistically certain.
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
  EXPECT_EQ(device.stats().injected_read_errors,
            static_cast<uint64_t>(failures));
}

TEST(FaultInjectingDeviceTest, BadRangesArePermanent) {
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory);
  device.AddBadRange(Extent{100, 50});
  std::vector<std::byte> buf(10);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_TRUE(device.Read(120, buf).IsIOError());   // inside
    EXPECT_TRUE(device.Write(95, buf).IsIOError());   // straddles the start
    EXPECT_TRUE(device.Read(145, buf).IsIOError());   // straddles the end
  }
  EXPECT_OK(device.Read(0, buf));    // clear of the range
  EXPECT_OK(device.Write(200, buf));  // past it
  device.ClearBadRanges();
  EXPECT_OK(device.Read(120, buf));
}

TEST(FaultInjectingDeviceTest, CrashAfterWritesTearsAndThenFailsEverything) {
  FaultInjectingDevice::Options options;
  options.seed = 7;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  device.ArmCrashAfterWrites(3);
  ASSERT_OK(device.Write(0, Bytes("aaaa")));
  ASSERT_OK(device.Write(4, Bytes("bbbb")));
  const Status crash = device.Write(8, Bytes("cccc"));
  ASSERT_TRUE(crash.IsIOError());
  EXPECT_TRUE(IsInjectedCrash(crash)) << crash;
  EXPECT_TRUE(device.crashed());
  EXPECT_EQ(device.stats().crashes, 1u);

  // Crashed: every subsequent I/O fails until the simulated restart.
  std::vector<std::byte> buf(4);
  EXPECT_TRUE(IsInjectedCrash(device.Read(0, buf)));
  EXPECT_TRUE(IsInjectedCrash(device.Write(16, Bytes("dddd"))));

  device.ClearCrash();
  EXPECT_FALSE(device.crashed());
  ASSERT_OK(device.Read(0, buf));
  EXPECT_EQ(AsString(buf), "aaaa");  // pre-crash writes survived intact
  ASSERT_OK(device.Read(8, buf));
  // The dying write persisted some prefix of "cccc"; the rest reads as the
  // device's prior contents (zeroes). Never anything else.
  const std::string torn = AsString(buf);
  for (size_t i = 0; i < torn.size(); ++i) {
    EXPECT_TRUE(torn[i] == 'c' || torn[i] == '\0') << "byte " << i;
    if (torn[i] == '\0' && i + 1 < torn.size()) {
      EXPECT_EQ(torn[i + 1], '\0') << "non-prefix tear";
    }
  }
}

TEST(FaultInjectingDeviceTest, ReadBatchPropagatesMidBatchError) {
  // Regression: Device::ReadBatch must surface a failing extent, not return
  // OK with silently-garbage bytes in the middle of the batch.
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory);
  ASSERT_OK(device.Write(0, Bytes("aaaa")));
  ASSERT_OK(device.Write(100, Bytes("bbbb")));
  ASSERT_OK(device.Write(200, Bytes("cccc")));
  device.AddBadRange(Extent{100, 4});
  const std::vector<Extent> extents = {{0, 4}, {100, 4}, {200, 4}};
  std::vector<std::byte> out(12);
  const Status status = device.ReadBatch(extents, out);
  ASSERT_TRUE(status.IsIOError()) << status;
  EXPECT_NE(status.ToString().find("bad device range"), std::string::npos)
      << status;
}

TEST(FaultInjectingDeviceTest, BitFlipReadIsSilentAndTransient) {
  FaultInjectingDevice::Options options;
  options.seed = 11;
  options.bit_flip_read_rate = 0.5;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  ASSERT_OK(memory.Write(0, Bytes("abcdefgh")));
  int flipped = 0, clean = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> out(8);
    ASSERT_OK(device.Read(0, out));  // silent: the status is ALWAYS ok
    if (AsString(out) == "abcdefgh") {
      ++clean;
    } else {
      ++flipped;
      // Exactly one bit differs — the injected flip, nothing more.
      int bits = 0;
      for (size_t b = 0; b < out.size(); ++b) {
        bits += __builtin_popcount(static_cast<unsigned>(out[b]) ^
                                   static_cast<unsigned>("abcdefgh"[b]));
      }
      EXPECT_EQ(bits, 1);
    }
  }
  EXPECT_GT(flipped, 0);
  EXPECT_GT(clean, 0) << "flips must be transient, not sticky";
  EXPECT_EQ(device.stats().bit_flip_reads, static_cast<uint64_t>(flipped));
  // The device's own copy never changed.
  std::vector<std::byte> raw(8);
  ASSERT_OK(memory.Read(0, raw));
  EXPECT_EQ(AsString(raw), "abcdefgh");
}

TEST(FaultInjectingDeviceTest, BitFlipWritePersistsTheCorruption) {
  FaultInjectingDevice::Options options;
  options.seed = 13;
  options.bit_flip_write_rate = 1.0;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  ASSERT_OK(device.Write(0, Bytes("abcdefgh")));
  EXPECT_EQ(device.stats().bit_flip_writes, 1u);
  // The corruption landed on the medium: every later read (however many
  // times) returns the same wrong bytes with OK status.
  std::vector<std::byte> first(8), second(8);
  ASSERT_OK(memory.Read(0, first));
  EXPECT_NE(AsString(first), "abcdefgh");
  ASSERT_OK(memory.Read(0, second));
  EXPECT_EQ(first, second);
}

TEST(FaultInjectingDeviceTest, LostWriteAcknowledgesButNeverLands) {
  FaultInjectingDevice::Options options;
  options.lost_write_rate = 1.0;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  ASSERT_OK(memory.Write(0, Bytes("original")));
  ASSERT_OK(device.Write(0, Bytes("replaced")));  // acknowledged...
  EXPECT_EQ(device.stats().lost_writes, 1u);
  std::vector<std::byte> out(8);
  ASSERT_OK(device.Read(0, out));
  EXPECT_EQ(AsString(out), "original") << "...but never persisted";
}

TEST(FaultInjectingDeviceTest, MisdirectedReadReturnsWrongOffsetBytes) {
  FaultInjectingDevice::Options options;
  options.seed = 17;
  options.misdirected_read_rate = 1.0;
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory, options);
  // Fill the device so a misdirected read lands on recognizably-wrong bytes.
  for (uint64_t off = 0; off + 8 <= 1024; off += 8) {
    ASSERT_OK(memory.Write(off, Bytes("ZZZZZZZZ")));
  }
  ASSERT_OK(memory.Write(512, Bytes("thetruth")));
  std::vector<std::byte> out(8);
  ASSERT_OK(device.Read(512, out));  // OK status, wrong offset's bytes
  EXPECT_EQ(device.stats().misdirected_reads, 1u);
  EXPECT_NE(AsString(out), "thetruth");
}

TEST(FaultInjectingDeviceTest, CorruptRangeIsDeterministicAndOffStream) {
  // Same (seed, extent, salt, bits) → same flips; and arming targeted rot
  // must not consume the main fault stream, so a scheduled error sequence
  // replays identically with or without the rot.
  std::string baseline;
  for (int with_rot = 0; with_rot < 2; ++with_rot) {
    FaultInjectingDevice::Options options;
    options.seed = 23;
    options.read_error_rate = 0.4;
    MemoryDevice memory(1024);
    FaultInjectingDevice device(&memory, options);
    ASSERT_OK(memory.Write(64, Bytes("payload!")));
    if (with_rot) {
      ASSERT_OK(device.CorruptRange(Extent{64, 8}, /*salt=*/5, /*bits=*/2));
    }
    std::string outcomes;
    for (int i = 0; i < 50; ++i) {
      std::vector<std::byte> out(8);
      outcomes += device.Read(0, out).ok() ? 'o' : 'x';
    }
    if (!with_rot) {
      baseline = outcomes;
    } else {
      EXPECT_EQ(outcomes, baseline) << "CorruptRange shifted the fault stream";
    }
  }

  // Determinism of the flips themselves.
  MemoryDevice memory_a(1024), memory_b(1024);
  FaultInjectingDevice a(&memory_a), b(&memory_b);
  ASSERT_OK(memory_a.Write(0, Bytes("samedata")));
  ASSERT_OK(memory_b.Write(0, Bytes("samedata")));
  ASSERT_OK(a.CorruptRange(Extent{0, 8}, 9, 3));
  ASSERT_OK(b.CorruptRange(Extent{0, 8}, 9, 3));
  std::vector<std::byte> out_a(8), out_b(8);
  ASSERT_OK(memory_a.Read(0, out_a));
  ASSERT_OK(memory_b.Read(0, out_b));
  EXPECT_EQ(out_a, out_b);
  EXPECT_NE(AsString(out_a), "samedata");
}

TEST(FaultInjectingDeviceTest, WriteBudgetModelsDiskFull) {
  MemoryDevice memory(1024);
  FaultInjectingDevice device(&memory);
  device.SetWriteBudget(2);
  ASSERT_OK(device.Write(0, Bytes("one")));
  ASSERT_OK(device.Write(16, Bytes("two")));
  const Status full = device.Write(32, Bytes("three"));
  ASSERT_TRUE(full.IsResourceExhausted()) << full;
  EXPECT_NE(full.ToString().find("disk full"), std::string::npos) << full;
  EXPECT_EQ(device.stats().budget_rejected_writes, 1u);
  // A rejected write persists nothing.
  std::vector<std::byte> out(5);
  ASSERT_OK(memory.Read(32, out));
  EXPECT_EQ(AsString(out), std::string(5, '\0'));
  // Reads are unaffected by a spent budget (the disk is full, not dead).
  ASSERT_OK(device.Read(0, out));
  // Freeing space restores writes.
  device.ClearWriteBudget();
  ASSERT_OK(device.Write(32, Bytes("three")));
}

TEST(FaultInjectingDeviceTest, FailedCacheWriteThroughLeavesNoPhantomData) {
  // Regression: the write-through cache used to patch its cached blocks
  // BEFORE the device write, so a failed write left readers seeing bytes
  // that were never on the device.
  FaultInjectingDevice::Options options;
  options.torn_writes = false;  // failed writes persist nothing
  MemoryDevice memory(1 << 16);
  FaultInjectingDevice faulty(&memory, options);
  ShardedCachedDevice cache(&faulty, /*capacity_blocks=*/8,
                            /*block_size=*/64, /*num_shards=*/2);

  ASSERT_OK(cache.Write(0, Bytes("original")));
  std::vector<std::byte> out(8);
  ASSERT_OK(cache.Read(0, out));  // populates the cache
  EXPECT_EQ(AsString(out), "original");

  faulty.set_write_error_rate(1.0);
  EXPECT_TRUE(cache.Write(0, Bytes("phantom!")).IsIOError());
  faulty.set_write_error_rate(0.0);

  ASSERT_OK(cache.Read(0, out));
  EXPECT_EQ(AsString(out), "original") << "cache served never-written bytes";
}

}  // namespace
}  // namespace wavekit
