// DayStore: retains recent day batches so maintenance schemes can rebuild
// indexes (BuildIndex needs the source records of the days it re-indexes).

#ifndef WAVEKIT_WAVE_DAY_STORE_H_
#define WAVEKIT_WAVE_DAY_STORE_H_

#include <map>

#include "index/record.h"
#include "util/day.h"
#include "util/result.h"

namespace wavekit {

/// \brief In-memory archive of the day batches still inside (or near) the
/// window. The driving application Puts each day's batch; schemes Get the
/// batches they re-index; Prune discards batches that can no longer be
/// needed.
class DayStore {
 public:
  /// Stores `batch` under its day. Fails with AlreadyExists on a duplicate.
  Status Put(DayBatch batch);

  /// The batch for `day`, or NotFound.
  Result<const DayBatch*> Get(Day day) const;

  bool Has(Day day) const { return days_.contains(day); }

  /// Discards all batches older than `oldest_needed`.
  void Prune(Day oldest_needed);

  size_t size() const { return days_.size(); }

 private:
  std::map<Day, DayBatch> days_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_DAY_STORE_H_
