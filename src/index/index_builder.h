// IndexBuilder: the paper's BuildIndex operation.
//
// "We assume here that a packed index is achieved by scanning the Days
// records and counting the number of entries needed in each bucket. Then
// contiguous buckets of the appropriate size are allocated on disk."
// (Section 2.2.) The builder performs exactly that two-pass construction.

#ifndef WAVEKIT_INDEX_INDEX_BUILDER_H_
#define WAVEKIT_INDEX_INDEX_BUILDER_H_

#include <memory>
#include <span>
#include <string>

#include "index/constituent_index.h"

namespace wavekit {

/// \brief Builds packed constituent indexes from day batches.
class IndexBuilder {
 public:
  /// Builds a packed index over `batches`. Pass 1 groups and counts entries
  /// per value (in memory); pass 2 allocates one contiguous region and
  /// writes buckets back-to-back in sorted value order. The result's
  /// time-set is the set of batch days; its packed invariant holds.
  static Result<std::unique_ptr<ConstituentIndex>> BuildPacked(
      Device* device, ExtentAllocator* allocator,
      ConstituentIndex::Options options,
      std::span<const DayBatch* const> batches, std::string name);

  /// Convenience overload for a single day.
  static Result<std::unique_ptr<ConstituentIndex>> BuildPacked(
      Device* device, ExtentAllocator* allocator,
      ConstituentIndex::Options options, const DayBatch& batch,
      std::string name);
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_INDEX_BUILDER_H_
