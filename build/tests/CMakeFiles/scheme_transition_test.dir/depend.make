# Empty dependencies file for scheme_transition_test.
# This may be replaced when dependencies are built.
